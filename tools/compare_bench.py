#!/usr/bin/env python
"""CI perf-smoke gate: fresh hot-path timings vs the committed baseline.

Reads a pytest-benchmark ``--benchmark-json`` results file (from
``benchmarks/bench_hotpath.py``) and the committed ``BENCH_CORE.json``
trajectory, and applies three checks per workload:

* **speedup** — the fresh, same-machine legacy-path vs fast-path ratio
  (both measured in this run) must stay above ``--min-speedup``.  This
  is hardware-independent: a slow CI runner is slow on both paths.
* **absolute** — the fast-path time must stay under ``--tolerance``
  times its committed ``fast_s`` baseline, *scaled by the machine
  factor* (observed legacy time over committed ``legacy_s``, floored
  at 1 and capped at ``--max-machine-factor``), so a runner that is
  uniformly slower than the baseline machine does not fail spuriously
  while a genuine fast-path regression still does.
* **compiled** (perf point 1) — when the baseline records a
  ``compiled_s`` for the workload, the fresh compiled-engine time must
  stay under the same ``--tolerance`` times that baseline, scaled by
  the same machine factor.

The factor cap bounds the gate's blind spot for regressions to
*shared* event-core code (which slow both paths and inflate the
factor with them): legacy drift beyond ``tolerance`` prints a loud
warning, and drift beyond ``tolerance * max_machine_factor`` is a
hard failure.  Without pinned CI hardware the window between those
two is irreducible — absolute timing cannot distinguish "uniformly
slower machine" from "uniformly slower code" — but path-specific
regressions are caught at any machine speed by the budget checks and
the speedup floor.

Both tolerances are deliberately generous: only a wholesale regression
— the kind the engine rewrites exist to prevent — should trip them.

With ``--scale`` the gate additionally (or instead — the positional
results file is optional) checks a ``benchmarks/bench_scale.py --json``
payload against the committed trajectory point's ``scale`` block
(perf point 2):

* **shard overhead** — ``sharded_s / wall_s`` per case must stay under
  the committed ``max_shard_overhead``.  Like the speedup floor this
  is a same-machine ratio, so it is hardware-independent.
* **memory ceilings** — each case's ``tracemalloc_peak_mb`` and
  ``peak_rss_mb`` must stay under the committed ceilings.  Peak memory
  is a property of the code, not the machine speed, so these are
  absolute.
* **flatness** — with two or more cases, the largest case's peak heap
  over the smallest case's must stay under ``max_heap_growth``: the
  streaming-metrics contract that 10x the jobs must not cost 10x the
  memory.
* **completion** — every case must complete exactly its ``n_jobs``
  (a silently truncated run would make every other number meaningless).

With ``--tournament`` the gate additionally (or instead) checks a
``policy_tournament`` experiment result file (the ``--results-dir``
payload or its raw ``rows``) for the estimation layer's two
sanity invariants:

* **zero-noise identity** — every ``noise == 0`` cell must show
  exactly zero throughput degradation and identical completion
  counts: the estimator's warm-prior control is pinned bit-identical
  to the oracle, so any deviation is an estimation-stack bug, not
  statistics.
* **price of information** — at the highest swept noise level the
  *mean* paired throughput degradation must stay above
  ``-(--tournament-slack)``: the oracle must be at least as good as
  the estimates in aggregate.  The slack absorbs the paired-noise
  wobble of small samples (a lucky estimated run can beat its oracle
  twin on a finite stream); a systematic inversion — estimates
  reliably *beating* the truth — means the oracle plumbing is broken.

With ``--faults`` the gate additionally (or instead) checks a
``fault_sweep`` experiment result file (the ``--results-dir`` payload
or its raw rows) for the fault layer's two structural invariants:

* **zero-fault identity** — every ``zero`` mode row (a default
  ``FaultConfig`` routed through the fault-aware code path) must be
  exactly equal to its ``none`` mode twin (``faults=None``, the
  historical engine) on every outcome column: throughput, turnaround,
  completions, and all fault counters at their quiescent values.  The
  identity is structural — the fault runtime draws nothing and gates
  nothing when no fault process is configured — so any deviation is
  an engine bug, not noise.
* **availability monotone in MTBF** — the *mean* availability across
  cells at each swept MTBF fraction must be non-decreasing in MTBF
  within ``--faults-slack``: machines that fail less often are up
  more (``availability ~ mtbf / (mtbf + mttr)`` with MTTR fixed).
  The mean across cells (not per-cell ordering) keeps the check
  robust to a single lucky/unlucky failure draw.

Usage::

    python tools/compare_bench.py results/bench_hotpath.json \
        BENCH_CORE.json --tolerance 2.0 --min-speedup 1.3
    python tools/compare_bench.py BENCH_CORE.json \
        --scale results/bench_scale.json
    python tools/compare_bench.py BENCH_CORE.json \
        --tournament results/policy_tournament.json
    python tools/compare_bench.py BENCH_CORE.json \
        --faults results/fault_sweep.json
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path


def parse_results(path: Path) -> dict[str, dict[str, float]]:
    """``{workload: {"fast"|"legacy"|"compiled": min_s}}`` from the
    pytest-benchmark JSON (legacy/compiled entries optional)."""
    out: dict[str, dict[str, float]] = {}
    for bench in json.loads(path.read_text()).get("benchmarks", []):
        name = bench.get("name", "")
        if "[" not in name or not name.endswith("]"):
            continue
        workload = name[name.index("[") + 1 : -1]
        prefix = name.split("[")[0]
        if "legacy" in prefix:
            mode = "legacy"
        elif "compiled" in prefix:
            mode = "compiled"
        else:
            mode = "fast"
        out.setdefault(workload, {})[mode] = bench["stats"]["min"]
    return out


def latest_benchmarks(baseline_path: Path) -> dict[str, dict]:
    """The most recent trajectory point's per-workload baselines, with
    a clear diagnostic (not a KeyError/IndexError) when the committed
    file has no usable point."""
    try:
        payload = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read baseline {baseline_path}: {exc}")
    trajectory = payload.get("trajectory") or []
    if not trajectory:
        raise SystemExit(
            f"baseline {baseline_path} has an empty trajectory — "
            "nothing to compare; refresh it with "
            "tools/profile_hotpaths.py --json"
        )
    benchmarks = trajectory[-1].get("benchmarks")
    if not benchmarks:
        raise SystemExit(
            f"baseline {baseline_path} trajectory point "
            f"{trajectory[-1].get('point')} records no benchmarks — "
            "refresh it with tools/profile_hotpaths.py --json"
        )
    return benchmarks


def latest_scale(baseline_path: Path) -> dict:
    """The most recent trajectory point's ``scale`` block (committed
    shard-overhead bound, memory ceilings, and reference cases)."""
    try:
        payload = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read baseline {baseline_path}: {exc}")
    trajectory = payload.get("trajectory") or []
    if not trajectory:
        raise SystemExit(
            f"baseline {baseline_path} has an empty trajectory — "
            "nothing to compare"
        )
    scale = trajectory[-1].get("scale")
    if not scale:
        raise SystemExit(
            f"baseline {baseline_path} trajectory point "
            f"{trajectory[-1].get('point')} records no scale block — "
            "refresh it with benchmarks/bench_scale.py --json"
        )
    return scale


def check_scale(scale_path: Path, baseline_path: Path) -> list[str]:
    """Scale-out gate; returns failure descriptions (empty = pass)."""
    committed = latest_scale(baseline_path)
    try:
        cases = json.loads(scale_path.read_text()).get("cases") or []
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read scale results {scale_path}: {exc}")
    if not cases:
        raise SystemExit(f"scale results {scale_path} contain no cases")

    max_overhead = committed["max_shard_overhead"]
    heap_ceiling = committed["tracemalloc_ceiling_mb"]
    rss_ceiling = committed["rss_ceiling_mb"]
    failures: list[str] = []
    for case in cases:
        n_jobs = case["n_jobs"]
        label = f"scale[{n_jobs:,} jobs]"
        overhead = case["sharded_s"] / case["wall_s"]
        checks = [
            (
                overhead <= max_overhead,
                f"shard overhead x{overhead:.2f} (max x{max_overhead})",
            ),
            (
                case["tracemalloc_peak_mb"] <= heap_ceiling,
                f"heap peak {case['tracemalloc_peak_mb']:.1f} MB "
                f"(ceiling {heap_ceiling} MB)",
            ),
            (
                case["peak_rss_mb"] <= rss_ceiling,
                f"rss peak {case['peak_rss_mb']:.1f} MB "
                f"(ceiling {rss_ceiling} MB)",
            ),
            (
                case["completed"] == n_jobs,
                f"completed {case['completed']:,}/{n_jobs:,}",
            ),
        ]
        bad = [text for ok, text in checks if not ok]
        verdict = "ok" if not bad else "REGRESSED"
        detail = "   ".join(text for _, text in checks)
        print(f"{label:26s} {detail}   {verdict}")
        failures.extend(f"{label}: {text}" for text in bad)

    if len(cases) > 1:
        max_growth = committed["max_heap_growth"]
        peaks = [c["tracemalloc_peak_mb"] for c in cases]
        jobs = [c["n_jobs"] for c in cases]
        growth = max(peaks) / min(peaks)
        jobs_growth = max(jobs) / min(jobs)
        flat = growth <= max_growth
        print(
            f"{'scale[flatness]':26s} {jobs_growth:.0f}x the jobs cost "
            f"{growth:.2f}x the peak heap (max {max_growth}x)   "
            f"{'ok' if flat else 'REGRESSED'}"
        )
        if not flat:
            failures.append(
                f"scale[flatness]: heap grew {growth:.2f}x over a "
                f"{jobs_growth:.0f}x job range (max {max_growth}x)"
            )
    return failures


def check_tournament(
    tournament_path: Path,
    *,
    zero_tol: float = 1e-9,
    slack: float = 0.05,
) -> list[str]:
    """Tournament gate; returns failure descriptions (empty = pass).

    Accepts either the ``--results-dir`` wrapper written by
    ``python -m repro.experiments policy_tournament`` or the raw
    payload (its ``rows``).
    """
    try:
        data = json.loads(tournament_path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(
            f"cannot read tournament results {tournament_path}: {exc}"
        )
    payload = data.get("rows", data)
    cells = payload.get("cells") if isinstance(payload, dict) else None
    if not cells:
        raise SystemExit(
            f"tournament results {tournament_path} contain no cells"
        )
    noise_levels = sorted({c["noise"] for c in cells})

    failures: list[str] = []

    zero_cells = [c for c in cells if c["noise"] == 0.0]
    if not zero_cells:
        failures.append("no zero-noise control cells in the tournament")
    bad_zero = [
        c
        for c in zero_cells
        if abs(c["tp_degradation"]) > zero_tol
        or c["est_completed"] != c["oracle_completed"]
    ]
    verdict = "ok" if not (bad_zero or not zero_cells) else "REGRESSED"
    print(
        f"{'tournament[noise=0]':26s} {len(zero_cells)} control cells, "
        f"{len(bad_zero)} deviate from oracle (tol {zero_tol:g})   "
        f"{verdict}"
    )
    for c in bad_zero[:5]:
        failures.append(
            f"tournament[noise=0]: {c['policy']}/{c['scenario']} "
            f"rep {c['rep']} deviates from its oracle twin "
            f"(degradation {c['tp_degradation']:.3e}, completed "
            f"{c['est_completed']} vs {c['oracle_completed']}) — "
            "zero-noise estimated runs must be bit-identical"
        )
    if len(bad_zero) > 5:
        failures.append(
            f"tournament[noise=0]: ... and {len(bad_zero) - 5} more "
            "deviating cells"
        )

    high = max(noise_levels)
    if high <= 0.0:
        failures.append(
            "tournament has no noisy cells — the price-of-information "
            "check needs at least one noise level > 0"
        )
    else:
        noisy = [
            c["tp_degradation"] for c in cells if c["noise"] == high
        ]
        mean = sum(noisy) / len(noisy)
        ok = mean >= -slack
        print(
            f"{'tournament[high noise]':26s} noise {high:g}: mean TP "
            f"degradation {mean:+.2%} over {len(noisy)} cells "
            f"(floor {-slack:+.0%})   {'ok' if ok else 'REGRESSED'}"
        )
        if not ok:
            failures.append(
                f"tournament[high noise]: estimates beat the oracle by "
                f"{-mean:.2%} on average at noise {high:g} (slack "
                f"{slack:.0%}) — the oracle side of the pairing is "
                "broken"
            )
    return failures


#: Outcome columns a ``zero`` row must match on its ``none`` twin
#: exactly.  Everything except the mode label and the (inactive)
#: mtbf/mttr knobs — the zero-fault identity is bit-level.
_FAULT_IDENTITY_FIELDS = (
    "throughput",
    "goodput",
    "mean_turnaround",
    "availability",
    "degraded_fraction",
    "lost_work",
    "crashes",
    "retried",
    "abandoned",
    "shed",
    "completed",
)


def _fault_values_equal(a: object, b: object) -> bool:
    """Exact equality, treating NaN == NaN (saturated cells report
    turnaround as NaN on both sides of the identity)."""
    if (
        isinstance(a, float)
        and isinstance(b, float)
        and math.isnan(a)
        and math.isnan(b)
    ):
        return True
    return a == b


def check_faults(
    faults_path: Path, *, slack: float = 0.02
) -> list[str]:
    """Fault-sweep gate; returns failure descriptions (empty = pass).

    Accepts either the ``--results-dir`` wrapper written by
    ``python -m repro.experiments fault_sweep`` or the raw payload
    (its ``rows`` — a list of ``FaultOutcome`` dicts).
    """
    try:
        data = json.loads(faults_path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(
            f"cannot read fault results {faults_path}: {exc}"
        )
    rows = data.get("rows", data) if isinstance(data, dict) else data
    if not isinstance(rows, list) or not rows:
        raise SystemExit(f"fault results {faults_path} contain no rows")

    failures: list[str] = []

    # Zero-fault identity: every cell's "zero" row == its "none" twin.
    by_cell: dict[tuple[str, str], dict[str, dict]] = {}
    for row in rows:
        cell = by_cell.setdefault(
            (row["scenario"], row["dispatcher"]), {}
        )
        cell[row["mode"]] = row
    checked = 0
    bad_cells: list[str] = []
    for (scenario, dispatcher), modes in sorted(by_cell.items()):
        none_row = modes.get("none")
        zero_row = modes.get("zero")
        if none_row is None or zero_row is None:
            failures.append(
                f"faults[identity]: cell {scenario}/{dispatcher} is "
                "missing its 'none' and/or 'zero' control row"
            )
            continue
        checked += 1
        mismatched = [
            field
            for field in _FAULT_IDENTITY_FIELDS
            if not _fault_values_equal(none_row[field], zero_row[field])
        ]
        if mismatched:
            bad_cells.append(f"{scenario}/{dispatcher}")
            for field in mismatched[:3]:
                failures.append(
                    f"faults[identity]: {scenario}/{dispatcher} "
                    f"{field} diverges — none={none_row[field]!r} vs "
                    f"zero={zero_row[field]!r}; a default FaultConfig "
                    "must be bit-identical to the fault-free engine"
                )
    verdict = "ok" if not (bad_cells or not checked) else "REGRESSED"
    print(
        f"{'faults[zero identity]':26s} {checked} cells, "
        f"{len(bad_cells)} deviate from the fault-free engine   "
        f"{verdict}"
    )
    if checked == 0:
        failures.append(
            "faults[identity]: no cells had both control rows — "
            "nothing to gate"
        )

    # Availability law: mean availability across cells must be
    # monotone non-decreasing in the MTBF fraction (MTTR is fixed).
    by_fraction: dict[float, list[float]] = {}
    for row in rows:
        mode = row["mode"]
        if isinstance(mode, str) and mode.startswith("mtbf="):
            by_fraction.setdefault(
                float(mode[len("mtbf="):]), []
            ).append(row["availability"])
    if len(by_fraction) < 2:
        failures.append(
            "faults[monotone]: need at least two MTBF grid points to "
            f"check monotonicity, found {len(by_fraction)}"
        )
    else:
        fractions = sorted(by_fraction)
        means = [
            sum(by_fraction[f]) / len(by_fraction[f]) for f in fractions
        ]
        monotone = all(
            later >= earlier - slack
            for earlier, later in zip(means, means[1:])
        )
        trend = "  ".join(
            f"mtbf={f:g}: {m:.3f}" for f, m in zip(fractions, means)
        )
        print(
            f"{'faults[availability]':26s} {trend} "
            f"(slack {slack:g})   {'ok' if monotone else 'REGRESSED'}"
        )
        if not monotone:
            failures.append(
                f"faults[monotone]: mean availability is not monotone "
                f"in MTBF ({trend}) — machines failing less often must "
                "not be down more; the failure/repair processes are "
                "miscalibrated"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results",
        type=Path,
        nargs="?",
        default=None,
        help="pytest-benchmark JSON (optional with --scale)",
    )
    parser.add_argument("baseline", type=Path, help="BENCH_CORE.json")
    parser.add_argument("--tolerance", type=float, default=2.0)
    parser.add_argument("--min-speedup", type=float, default=1.3)
    parser.add_argument("--max-machine-factor", type=float, default=2.0)
    parser.add_argument(
        "--scale",
        type=Path,
        default=None,
        metavar="FILE",
        help="bench_scale.py --json payload to gate against the "
        "committed scale block",
    )
    parser.add_argument(
        "--tournament",
        type=Path,
        default=None,
        metavar="FILE",
        help="policy_tournament result JSON to sanity-gate (zero-noise "
        "identity, oracle >= estimates at high noise)",
    )
    parser.add_argument(
        "--tournament-slack",
        type=float,
        default=0.05,
        metavar="FRAC",
        help="how far the mean high-noise degradation may dip below "
        "zero before the gate fails (default: %(default)s)",
    )
    parser.add_argument(
        "--faults",
        type=Path,
        default=None,
        metavar="FILE",
        help="fault_sweep result JSON to sanity-gate (zero-fault "
        "bit-identity, availability monotone in MTBF)",
    )
    parser.add_argument(
        "--faults-slack",
        type=float,
        default=0.02,
        metavar="FRAC",
        help="how far mean availability may dip between successive "
        "MTBF grid points before the monotonicity gate fails "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)

    extra_gates = (args.scale, args.tournament, args.faults)
    if args.results is None and all(g is None for g in extra_gates):
        parser.error("nothing to compare: give a results file, --scale, "
                     "--tournament, --faults, or any combination")

    if args.faults is not None:
        fault_failures = check_faults(args.faults, slack=args.faults_slack)
        if fault_failures:
            for failure in fault_failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            print("fault smoke FAILED", file=sys.stderr)
            return 1
        print("fault smoke ok")
        if args.results is None and args.scale is None and args.tournament is None:
            return 0

    if args.tournament is not None:
        tournament_failures = check_tournament(
            args.tournament, slack=args.tournament_slack
        )
        if tournament_failures:
            for failure in tournament_failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            print("tournament sanity FAILED", file=sys.stderr)
            return 1
        print("tournament sanity ok")
        if args.results is None and args.scale is None:
            return 0

    if args.scale is not None:
        scale_failures = check_scale(args.scale, args.baseline)
        if scale_failures:
            for failure in scale_failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            print("scale smoke FAILED", file=sys.stderr)
            return 1
        print("scale smoke ok")
        if args.results is None:
            return 0

    measured = parse_results(args.results)
    committed = latest_benchmarks(args.baseline)

    unknown = sorted(set(measured) - set(committed))
    if unknown:
        # A benchmark the trajectory has never seen is a half-landed
        # change (new workload without a refreshed baseline): say so
        # instead of silently skipping it.
        print(
            f"benchmark name(s) missing from the committed trajectory: "
            f"{', '.join(unknown)} — refresh {args.baseline} with "
            "tools/profile_hotpaths.py --json",
            file=sys.stderr,
        )
        return 1

    failures = []
    compared = 0
    for workload, baseline in sorted(committed.items()):
        if "fast_s" not in baseline:
            print(
                f"{workload:34s} baseline entry has no fast_s — "
                f"refresh {args.baseline}",
                file=sys.stderr,
            )
            failures.append(workload)
            continue
        modes = measured.get(workload)
        if modes is None or "fast" not in modes:
            print(f"{workload:34s} missing from results", file=sys.stderr)
            failures.append(workload)
            continue
        compared += 1
        fast = modes["fast"]
        legacy = modes.get("legacy")

        factor = 1.0
        drift_ok = True
        if legacy is not None and baseline.get("legacy_s"):
            drift = legacy / baseline["legacy_s"]
            factor = min(max(1.0, drift), args.max_machine_factor)
            if drift > args.tolerance * args.max_machine_factor:
                drift_ok = False
                print(
                    f"FAIL: {workload} legacy path ran {drift:.2f}x its "
                    f"committed {baseline['legacy_s']:.4f}s — beyond any "
                    "plausible machine difference; shared event-core "
                    "code has regressed"
                )
            elif drift > args.tolerance:
                print(
                    f"WARNING: {workload} legacy path ran {drift:.2f}x "
                    f"its committed {baseline['legacy_s']:.4f}s — slow "
                    "machine, or a regression to shared event-core code"
                )
        budget = baseline["fast_s"] * args.tolerance * factor
        absolute_ok = fast <= budget and drift_ok

        speedup = legacy / fast if legacy is not None else None
        speedup_ok = speedup is None or speedup >= args.min_speedup

        # Perf point 1: the compiled engine has its own committed
        # budget, gated with the same tolerance and machine factor.
        compiled = modes.get("compiled")
        compiled_ok = True
        compiled_text = "compiled n/a"
        if baseline.get("compiled_s"):
            if compiled is None:
                compiled_ok = False
                compiled_text = "compiled MISSING from results"
            else:
                compiled_budget = (
                    baseline["compiled_s"] * args.tolerance * factor
                )
                compiled_ok = compiled <= compiled_budget
                compiled_text = (
                    f"compiled {compiled:.4f}s (budget "
                    f"{compiled_budget:.4f}s)"
                )

        ok = absolute_ok and speedup_ok and compiled_ok
        verdict = "ok" if ok else "REGRESSED"
        speedup_text = (
            f"speedup {speedup:5.2f}x (floor {args.min_speedup}x)"
            if speedup is not None
            else "speedup n/a"
        )
        print(
            f"{workload:34s} fast {fast:8.4f}s   budget {budget:8.4f}s "
            f"({args.tolerance}x of {baseline['fast_s']:.4f}s, machine "
            f"factor {factor:.2f})   {speedup_text}   {compiled_text}   "
            f"{verdict}"
        )
        if not ok:
            failures.append(workload)

    if compared == 0:
        print("no hot-path benchmarks found in results", file=sys.stderr)
        return 1
    if failures:
        print(
            f"perf smoke FAILED for: {', '.join(failures)}", file=sys.stderr
        )
        return 1
    print(f"perf smoke ok ({compared} workloads within tolerance)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
