#!/usr/bin/env python
"""Docs check: README code snippets must execute, and the runner CLI
must list every registered experiment.

Run from the repository root::

    python tools/check_docs.py

Extracts every ```python fenced block from README.md and executes it in
a fresh namespace (so snippets stay honest as the API evolves), then
runs ``python -m repro.experiments --list`` and checks the registry is
fully enumerated.  Exits non-zero on the first failure.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def check_readme_snippets() -> int:
    sys.path.insert(0, str(SRC))
    text = (ROOT / "README.md").read_text()
    snippets = _FENCE.findall(text)
    if not snippets:
        print("FAIL: README.md has no ```python snippets to check")
        return 1
    for i, snippet in enumerate(snippets, 1):
        try:
            exec(compile(snippet, f"README.md[snippet {i}]", "exec"), {})
        except Exception as exc:  # noqa: BLE001 - report and fail
            print(f"FAIL: README snippet {i} raised {exc!r}:\n{snippet}")
            return 1
        print(f"ok: README snippet {i} ({len(snippet.splitlines())} lines)")
    return 0


def check_cli_list() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "--list"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env=env,
    )
    if proc.returncode != 0:
        print(f"FAIL: --list exited {proc.returncode}:\n{proc.stderr}")
        return 1
    sys.path.insert(0, str(SRC))
    from repro.experiments import registry

    missing = [n for n in registry.names() if n not in proc.stdout]
    if missing:
        print(f"FAIL: --list is missing experiments: {missing}")
        return 1
    print(f"ok: --list enumerates all {len(registry.names())} experiments")
    return 0


def main() -> int:
    return check_readme_snippets() or check_cli_list()


if __name__ == "__main__":
    sys.exit(main())
