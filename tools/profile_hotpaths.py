#!/usr/bin/env python
"""Profile the event-core hot paths across the three engines.

For each workload in :data:`repro.queueing.hotpath.HOTPATH_WORKLOADS`
this tool times (and optionally cProfiles) the engine modes —

* **legacy** (``engine="legacy"``): the pre-interning string path,
  kept bit-identical in-tree, so "before" stays measurable on today's
  hardware instead of living only in an old commit;
* **fast** (``engine="fast"``): int-coded coschedules, flat rate
  arrays, memoized probe candidate sets (perf point 0);
* **compiled** (``engine="compiled"``): count-vector state, event
  fusion, machine batching, and vectorized/filtered probe resolution
  (perf point 1) —

and prints the top stacks of each (so you can *see* the sort/dict
churn leave the profile) plus a speedup table.  ``--json`` writes the
measurements in the ``BENCH_CORE.json`` trajectory format; refresh
the committed baseline with::

    PYTHONPATH=src python tools/profile_hotpaths.py --json BENCH_CORE.json

Usage::

    PYTHONPATH=src python tools/profile_hotpaths.py [--workload NAME]
        [--top N] [--repeats N] [--backend NAME] [--json PATH]
        [--note TEXT]
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
from datetime import date
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.queueing.compiled import BACKENDS  # noqa: E402
from repro.queueing.hotpath import HOTPATH_WORKLOADS, measure  # noqa: E402

ENGINES = ("legacy", "fast", "compiled")


def top_stacks(
    workload: str, *, engine: str, backend: str | None, top: int
) -> str:
    """Top-``top`` functions by internal time for one engine mode."""
    runner = HOTPATH_WORKLOADS[workload]
    profiler = cProfile.Profile()
    profiler.enable()
    runner(engine=engine, backend=backend)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("tottime").print_stats(top)
    lines = buffer.getvalue().splitlines()
    try:
        start = next(i for i, l in enumerate(lines) if "ncalls" in l)
    except StopIteration:
        return buffer.getvalue()
    return "\n".join(lines[start : start + top + 1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workload",
        choices=sorted(HOTPATH_WORKLOADS),
        action="append",
        help="workload(s) to profile (default: all)",
    )
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="compiled-engine scoring backend (default: the benchmarked"
        " winner, see repro.queueing.compiled.default_backend)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        help="write a BENCH_CORE.json-format trajectory to this path",
    )
    parser.add_argument(
        "--note",
        default="count-vector compiled engine (fusion + batching + "
        "filtered probes)",
        help="trajectory-point annotation for --json",
    )
    args = parser.parse_args(argv)
    workloads = args.workload or sorted(HOTPATH_WORKLOADS)

    results: dict[str, dict[str, object]] = {}
    for workload in workloads:
        timed = {
            engine: measure(
                workload,
                engine=engine,
                backend=args.backend if engine == "compiled" else None,
                repeats=args.repeats,
            )
            for engine in ENGINES
        }
        completions = {
            engine: run["completed"] for engine, run in timed.items()
        }
        if len(set(completions.values())) != 1:
            raise SystemExit(
                f"{workload}: engines completed different job counts "
                f"({completions}) — the engines diverged; run the "
                "differential property tests"
            )
        legacy, fast, compiled = (
            timed["legacy"],
            timed["fast"],
            timed["compiled"],
        )
        speedup = legacy["seconds"] / fast["seconds"]
        compiled_speedup = fast["seconds"] / compiled["seconds"]
        compiled_stats = compiled["memo_stats"] or {}
        results[workload] = {
            "legacy_s": round(legacy["seconds"], 4),
            "fast_s": round(fast["seconds"], 4),
            "compiled_s": round(compiled["seconds"], 4),
            "speedup": round(speedup, 2),
            "compiled_speedup": round(compiled_speedup, 2),
            "completed": fast["completed"],
            "memo_stats": fast["memo_stats"],
            "engine_stats": compiled_stats.get("engine"),
        }

        print(f"== {workload} ==")
        print(
            f"legacy {legacy['seconds']:.4f}s   fast "
            f"{fast['seconds']:.4f}s ({speedup:.2f}x)   compiled "
            f"{compiled['seconds']:.4f}s ({compiled_speedup:.2f}x over "
            f"fast)   ({fast['completed']} completions)"
        )
        print(f"memo stats (fast): {fast['memo_stats']}")
        print(f"engine stats (compiled): {compiled_stats.get('engine')}")
        for engine in ENGINES:
            print(f"\n-- top stacks, {engine} engine --")
            print(
                top_stacks(
                    workload,
                    engine=engine,
                    backend=args.backend if engine == "compiled" else None,
                    top=args.top,
                )
            )
        print()

    print("== summary ==")
    for workload, entry in results.items():
        print(
            f"{workload:34s} {entry['legacy_s']:>8.4f}s -> "
            f"{entry['fast_s']:>8.4f}s ({entry['speedup']:.2f}x) -> "
            f"{entry['compiled_s']:>8.4f}s "
            f"({entry['compiled_speedup']:.2f}x over fast)"
        )

    if args.json:
        payload = {
            "version": 1,
            "workloads": "repro.queueing.hotpath.HOTPATH_WORKLOADS",
            "units": "wall-clock seconds, best of --repeats",
            "trajectory": [
                {
                    "point": 0,
                    "recorded": date.today().isoformat(),
                    "note": args.note,
                    "benchmarks": results,
                }
            ],
        }
        existing = None
        if args.json.exists():
            # The trajectory is committed perf history that CI gates
            # on — never silently replace a file we cannot parse.
            try:
                existing = json.loads(args.json.read_text())
            except (OSError, ValueError) as exc:
                raise SystemExit(
                    f"{args.json} exists but cannot be parsed ({exc}); "
                    "fix or remove it explicitly before refreshing — "
                    "refusing to overwrite the committed trajectory"
                )
            if not existing.get("trajectory"):
                raise SystemExit(
                    f"{args.json} exists but has no trajectory points; "
                    "fix or remove it explicitly before refreshing"
                )
        if existing and existing.get("trajectory"):
            trajectory = existing["trajectory"]
            # A partial refresh (--workload X) must not shrink the
            # gate's coverage: both perf gates read trajectory[-1], so
            # carry unprofiled workloads forward from the last point.
            benchmarks = dict(trajectory[-1].get("benchmarks", {}))
            benchmarks.update(results)
            point = trajectory[-1]["point"] + 1
            trajectory.append(
                {
                    "point": point,
                    "recorded": date.today().isoformat(),
                    "note": args.note,
                    "benchmarks": benchmarks,
                }
            )
            payload = existing
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
