#!/usr/bin/env python
"""Profile the event-core hot paths, before vs after the fast path.

For each workload in :data:`repro.queueing.hotpath.HOTPATH_WORKLOADS`
this tool times and cProfiles both engine modes —

* **legacy** (``fast_path=False``): the pre-interning string path,
  kept bit-identical in-tree, so "before" stays measurable on today's
  hardware instead of living only in an old commit;
* **fast** (the default compiled path): int-coded coschedules, flat
  rate arrays, memoized probe candidate sets —

and prints the top stacks of each (so you can *see* the sort/dict
churn leave the profile) plus a speedup table.  ``--json`` writes the
measurements in the ``BENCH_CORE.json`` trajectory format; refresh
the committed baseline with::

    PYTHONPATH=src python tools/profile_hotpaths.py --json BENCH_CORE.json

Usage::

    PYTHONPATH=src python tools/profile_hotpaths.py [--workload NAME]
        [--top N] [--repeats N] [--json PATH] [--note TEXT]
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import pstats
import sys
from datetime import date
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.queueing.hotpath import HOTPATH_WORKLOADS, measure  # noqa: E402


def top_stacks(workload: str, *, fast_path: bool, top: int) -> str:
    """Top-``top`` functions by internal time for one mode."""
    runner = HOTPATH_WORKLOADS[workload]
    profiler = cProfile.Profile()
    profiler.enable()
    runner(fast_path=fast_path)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("tottime").print_stats(top)
    lines = buffer.getvalue().splitlines()
    try:
        start = next(i for i, l in enumerate(lines) if "ncalls" in l)
    except StopIteration:
        return buffer.getvalue()
    return "\n".join(lines[start : start + top + 1])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workload",
        choices=sorted(HOTPATH_WORKLOADS),
        action="append",
        help="workload(s) to profile (default: all)",
    )
    parser.add_argument("--top", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--json",
        type=Path,
        help="write a BENCH_CORE.json-format trajectory to this path",
    )
    parser.add_argument(
        "--note",
        default="interned-type fast path (TypeCodec + compiled RunRateMemo)",
        help="trajectory-point annotation for --json",
    )
    args = parser.parse_args(argv)
    workloads = args.workload or sorted(HOTPATH_WORKLOADS)

    results: dict[str, dict[str, object]] = {}
    for workload in workloads:
        legacy = measure(workload, fast_path=False, repeats=args.repeats)
        fast = measure(workload, fast_path=True, repeats=args.repeats)
        if legacy["completed"] != fast["completed"]:
            raise SystemExit(
                f"{workload}: legacy completed {legacy['completed']} jobs "
                f"but fast completed {fast['completed']} — the paths "
                "diverged; run the equivalence property tests"
            )
        speedup = legacy["seconds"] / fast["seconds"]
        results[workload] = {
            "legacy_s": round(legacy["seconds"], 4),
            "fast_s": round(fast["seconds"], 4),
            "speedup": round(speedup, 2),
            "completed": fast["completed"],
            "memo_stats": fast["memo_stats"],
        }

        print(f"== {workload} ==")
        print(
            f"legacy {legacy['seconds']:.4f}s   fast {fast['seconds']:.4f}s"
            f"   speedup {speedup:.2f}x   ({fast['completed']} completions)"
        )
        print(f"memo stats (fast): {fast['memo_stats']}")
        print("\n-- top stacks, legacy path --")
        print(top_stacks(workload, fast_path=False, top=args.top))
        print("\n-- top stacks, fast path --")
        print(top_stacks(workload, fast_path=True, top=args.top))
        print()

    print("== summary ==")
    for workload, entry in results.items():
        print(
            f"{workload:34s} {entry['legacy_s']:>8.4f}s -> "
            f"{entry['fast_s']:>8.4f}s   {entry['speedup']:.2f}x"
        )

    if args.json:
        payload = {
            "version": 1,
            "workloads": "repro.queueing.hotpath.HOTPATH_WORKLOADS",
            "units": "wall-clock seconds, best of --repeats",
            "trajectory": [
                {
                    "point": 0,
                    "recorded": date.today().isoformat(),
                    "note": args.note,
                    "benchmarks": results,
                }
            ],
        }
        existing = None
        if args.json.exists():
            # The trajectory is committed perf history that CI gates
            # on — never silently replace a file we cannot parse.
            try:
                existing = json.loads(args.json.read_text())
            except (OSError, ValueError) as exc:
                raise SystemExit(
                    f"{args.json} exists but cannot be parsed ({exc}); "
                    "fix or remove it explicitly before refreshing — "
                    "refusing to overwrite the committed trajectory"
                )
            if not existing.get("trajectory"):
                raise SystemExit(
                    f"{args.json} exists but has no trajectory points; "
                    "fix or remove it explicitly before refreshing"
                )
        if existing and existing.get("trajectory"):
            trajectory = existing["trajectory"]
            # A partial refresh (--workload X) must not shrink the
            # gate's coverage: both perf gates read trajectory[-1], so
            # carry unprofiled workloads forward from the last point.
            benchmarks = dict(trajectory[-1].get("benchmarks", {}))
            benchmarks.update(results)
            point = trajectory[-1]["point"] + 1
            trajectory.append(
                {
                    "point": point,
                    "recorded": date.today().isoformat(),
                    "note": args.note,
                    "benchmarks": benchmarks,
                }
            )
            payload = existing
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
