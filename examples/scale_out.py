"""Scale-out tour: sharded runs, checkpoint/resume, parallel fan-out.

README: listed in the "Examples" table of the top-level README.md.

A million-job cluster run needs three things the monolithic loop does
not give you: bounded memory (metrics that stream instead of keeping
every completed job), interruptibility (a checkpoint a killed run can
resume from), and parallelism (independent cells on separate cores).
This tour exercises all three at toy scale:

1. runs the same cluster monolithically and split into 4 time-slice
   shards, and verifies the merged metrics are bit-identical;
2. checkpoints after every shard, "crashes" between two of them by
   simply starting over from the checkpoint directory, and verifies
   the resumed run still matches bit for bit;
3. fans independent (scenario, dispatcher) cells across worker
   processes with ``parallel_map`` — the engine under the runner's
   ``--jobs`` flag — and confirms serial and parallel results agree.

Run:  python examples/scale_out.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.workload import Workload
from repro.microarch.rates import TableRates
from repro.queueing.checkpoint import load
from repro.queueing.cluster import Cluster
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.scenarios import get_scenario
from repro.queueing.schedulers import make_scheduler
from repro.queueing.sharding import (
    CHECKPOINT_NAME,
    parallel_map,
    plan_boundaries,
    run_sharded,
)

RATES = TableRates(
    {
        ("A",): {"A": 1.0},
        ("B",): {"B": 0.7},
        ("C",): {"C": 0.5},
        ("A", "A"): {"A": 1.7},
        ("A", "B"): {"A": 0.85, "B": 0.6},
        ("A", "C"): {"A": 0.9, "C": 0.45},
        ("B", "B"): {"B": 1.15},
        ("B", "C"): {"B": 0.6, "C": 0.42},
        ("C", "C"): {"C": 0.8},
    }
)
WORKLOAD = Workload.of("A", "B", "C")
N_JOBS = 400
MEAN_RATE = 1.8


def build_cluster() -> Cluster:
    return Cluster(
        RATES,
        [
            make_scheduler("maxtp", RATES, 2, workload=WORKLOAD)
            for _ in range(2)
        ],
        make_dispatcher("jsq"),
    )


def build_stream():
    return get_scenario("bursty_mmpp").build_jobs(
        WORKLOAD.types, mean_rate=MEAN_RATE, seed=7, n_jobs=N_JOBS
    )


def payload(metrics) -> list:
    return [m.to_jsonable() for m in metrics.per_machine]


def _cell(args: tuple) -> tuple:
    """One (scenario, dispatcher) cell — module-level so the process
    pool can pickle it, exactly like the runner's ``--jobs`` path."""
    scenario_name, dispatcher = args
    cluster = Cluster(
        RATES,
        [
            make_scheduler("maxtp", RATES, 2, workload=WORKLOAD)
            for _ in range(2)
        ],
        make_dispatcher(dispatcher),
    )
    stream = get_scenario(scenario_name).build_jobs(
        WORKLOAD.types, mean_rate=MEAN_RATE, seed=7, n_jobs=200
    )
    metrics = cluster.run(stream)
    return (scenario_name, dispatcher, metrics.completed,
            round(metrics.mean_turnaround, 6))


def main() -> None:
    # 1. Sharded == monolithic, bit for bit.
    mono = build_cluster().run(build_stream())
    boundaries = plan_boundaries(4, N_JOBS / MEAN_RATE)
    sharded = run_sharded(
        build_cluster(), build_stream, boundaries=boundaries
    )
    assert payload(sharded.metrics) == payload(mono)
    print(
        f"sharded run: {sharded.shards_run} shards at boundaries "
        f"{[round(b, 1) for b in boundaries]}"
    )
    print(
        f"  {sharded.metrics.completed} jobs completed — metrics "
        "bit-identical to the monolithic run"
    )

    # 2. Checkpoint, "crash", resume — still bit-identical.
    with tempfile.TemporaryDirectory() as tmp:
        ckpt_dir = Path(tmp)
        handle = build_cluster().start(build_stream())
        handle.advance(pause_at=boundaries[1])
        from repro.queueing.checkpoint import capture, save

        save(
            ckpt_dir / CHECKPOINT_NAME,
            capture(
                handle,
                extra={
                    "shard": 1,
                    "boundaries": list(boundaries),
                    "accumulated": handle.take_window().to_state(),
                },
            ),
        )
        handle.close()
        state = load(ckpt_dir / CHECKPOINT_NAME)
        print(
            f"checkpoint written after shard 2/4 "
            f"(clock {state['loop']['clock']:.1f}, format "
            f"{state['format']})"
        )

        resumed = run_sharded(
            build_cluster(),
            build_stream,
            boundaries=boundaries,
            checkpoint_dir=ckpt_dir,
        )
        assert resumed.resumed_from_shard == 1
        assert payload(resumed.metrics) == payload(mono)
        print(
            "  resumed from the checkpoint: ran shards 3-4 only, "
            "metrics still bit-identical"
        )

    # 3. Independent cells across worker processes.
    cells = [
        (scenario, dispatcher)
        for scenario in ("baseline_poisson", "bursty_mmpp")
        for dispatcher in ("round_robin", "jsq")
    ]
    serial = [_cell(c) for c in cells]
    parallel = parallel_map(_cell, cells, jobs=2)
    assert parallel == serial
    print(f"\n{len(cells)} cells, serial == 2-worker parallel:")
    for scenario, dispatcher, completed, turnaround in parallel:
        print(
            f"  {scenario:18s} {dispatcher:12s} {completed} jobs, "
            f"mean turnaround {turnaround:.3f}"
        )
    print(
        "\nthe runner exposes all of this as "
        "--jobs / --shards / --checkpoint-dir"
    )


if __name__ == "__main__":
    main()
