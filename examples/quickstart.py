"""Quickstart: how much can a perfect symbiotic scheduler buy you?

README: the "Quickstart" section of the top-level README.md walks
through this script line by line.

Reproduces the paper's core workflow on one workload:

1. simulate per-coschedule performance on the 4-way SMT machine
   (through the memoized rate cache, printing its hit/miss stats);
2. compute the FCFS baseline, the optimal, and the worst long-term
   throughput (Section IV's linear program);
3. print the optimal schedule's coschedule mix;
4. regenerate a full paper artifact through the unified experiment
   runner CLI (``python -m repro.experiments``).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    CachedRateSource,
    RateTable,
    Workload,
    fcfs_throughput,
    optimal_throughput,
    smt_machine,
    worst_throughput,
)
from repro.experiments.runner import main as run_experiments


def main() -> None:
    machine = smt_machine()
    rates = CachedRateSource(RateTable.for_machine(machine))
    workload = Workload.of("hmmer", "mcf", "libquantum", "bzip2")

    print(f"machine : {machine.name} ({machine.contexts} contexts)")
    print(f"workload: {workload.label()}\n")

    # Per-coschedule performance, the raw material of the analysis.
    hetero = tuple(workload.types)
    print("fully heterogeneous coschedule:")
    for name, ipc, wipc in zip(
        hetero, rates.ipcs(hetero), rates.wipcs(hetero)
    ):
        alone = rates.alone_ipc(name)
        print(
            f"  {name:12s} IPC {ipc:.2f} (alone {alone:.2f}) "
            f"-> WIPC {wipc:.2f}"
        )
    print(
        f"  instantaneous throughput it(s) = "
        f"{rates.instantaneous_throughput(hetero):.2f}\n"
    )

    # The three schedulers of Figure 1's third bar.
    best = optimal_throughput(rates, workload)
    base = fcfs_throughput(rates, workload)
    worst = worst_throughput(rates, workload)
    print("long-term average throughput (weighted instructions/cycle):")
    print(f"  optimal scheduler : {best.throughput:.4f}")
    print(f"  FCFS scheduler    : {base.throughput:.4f}")
    print(f"  worst scheduler   : {worst.throughput:.4f}")
    gain = best.throughput / base.throughput - 1.0
    print(f"\n  symbiotic headroom over FCFS: {gain:+.1%}")
    print(
        "  (the paper's headline: this is small — a few percent — even "
        "though per-job\n   performance swings by tens of percent across "
        "coschedules)\n"
    )

    print("optimal schedule (time fraction per coschedule):")
    for coschedule, fraction in sorted(
        best.fractions.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {fraction:6.1%}  {'+'.join(coschedule)}")

    # Every analysis above went through the memoized rate cache; the
    # experiment runner persists the same entries across runs.
    print(f"\n{rates.stats.render()}\n")

    # The same machinery, through the repo's front door: regenerate a
    # full paper artifact (Figure 4 is pure analytics, so it's instant).
    print("regenerating Figure 4 via `python -m repro.experiments figure4`:")
    run_experiments(["figure4", "--no-cache"])


if __name__ == "__main__":
    main()
