"""Scenario tour: the workload-scenario registry, end to end.

README: listed in the "Examples" table of the top-level README.md.

The paper's queueing study assumes Poisson arrivals and exponential
sizes.  The scenario subsystem opens every other regime a cluster
actually sees — this tour:

1. walks the registry (name, traffic shape, what it stresses);
2. shows that arrival *times* are invariant under size-law swaps
   (each purpose draws from its own derived RNG stream);
3. records a bursty workload to a JSON trace, reloads it, and verifies
   the replay is bit-identical — the golden-trace harness's foundation;
4. sweeps three contrasting scenarios across all three dispatchers on
   a 3-machine cluster and prints the turnaround deltas.

Run:  python examples/scenario_tour.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import RateTable, Workload, smt_machine
from repro.experiments.scenario_sweep import compute_scenario_sweep
from repro.queueing.arrivals import poisson_arrivals
from repro.queueing.scenarios import all_scenarios, get_scenario
from repro.queueing.trace import load_trace, save_trace


def main() -> None:
    machine = smt_machine()
    rates = RateTable.for_machine(machine)
    workload = Workload.of("hmmer", "mcf", "libquantum", "bzip2")

    # 1. The registry.
    print("registered scenarios:")
    for s in all_scenarios():
        print(f"  {s.name:18s} {s.description}")
        print(f"  {'':18s}   stresses: {s.stress}")
    print()

    # 2. Arrival times are size-law invariant (derived RNG streams).
    kwargs = dict(rate=2.0, n_jobs=5, seed=42)
    exponential = [
        j.arrival_time
        for j in poisson_arrivals(
            workload.types, size_model={"kind": "exponential"}, **kwargs
        )
    ]
    pareto = [
        j.arrival_time
        for j in poisson_arrivals(
            workload.types,
            size_model={"kind": "bounded_pareto", "alpha": 1.5,
                        "lower": 0.1, "upper": 50.0},
            **kwargs,
        )
    ]
    assert exponential == pareto
    print("arrival times under exponential vs bounded-Pareto sizes:")
    print(f"  {[round(t, 4) for t in exponential]}")
    print("  identical — swapping the size law never reorders "
          "arrival draws\n")

    # 3. Record → save → load → replay, bit-identical.
    bursty = list(
        get_scenario("bursty_mmpp").build_jobs(
            workload.types, mean_rate=2.0, seed=7, n_jobs=50
        )
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(
            Path(tmp) / "bursty.trace.json",
            bursty,
            metadata={"scenario": "bursty_mmpp", "seed": 7},
        )
        replayed = load_trace(path)
    assert [
        (j.job_id, j.job_type, j.size, j.arrival_time) for j in bursty
    ] == [
        (j.job_id, j.job_type, j.size, j.arrival_time) for j in replayed
    ]
    print(f"trace round-trip: {len(replayed)} jobs bit-identical "
          "through JSON\n")

    # 4. A contrasting mini-sweep on the cluster simulator.
    picks = [
        get_scenario(name)
        for name in ("baseline_poisson", "bursty_mmpp", "heavy_tail")
    ]
    outcomes = compute_scenario_sweep(
        rates, workload, scenarios=picks, n_jobs=800, seed=0
    )
    print("mini-sweep (3 machines, MAXTP per machine):")
    print(f"  {'scenario':18s} {'dispatcher':12s} "
          f"{'turnaround':>10s} {'busy ctx':>9s}")
    for o in outcomes:
        print(
            f"  {o.scenario:18s} {o.dispatcher:12s} "
            f"{o.mean_turnaround:10.3f} {o.utilization:9.2f}"
        )
    print("\nfull sweep: python -m repro.experiments scenario_sweep")


if __name__ == "__main__":
    main()
