"""Bring your own benchmark: extend the roster and analyze symbiosis.

Defines a new synthetic job type ("vectorsum", a prefetch-friendly
streaming kernel with very high MLP), adds it to the roster, and asks
the library the questions a performance engineer would:

* who are its best and worst co-runners on the SMT machine?
* how does adding it to a workload change the symbiotic headroom?

README: see the "Examples" section of the top-level README.md and the
roster notes under "Architecture".

Run:  python examples/custom_benchmark.py
"""

from __future__ import annotations

from repro import (
    JobTypeParams,
    RateTable,
    Workload,
    fcfs_throughput,
    optimal_throughput,
    smt_machine,
)
from repro.microarch.benchmarks import default_roster


def make_vectorsum() -> JobTypeParams:
    """A streaming vector kernel: wide, regular, bandwidth-hungry."""
    return JobTypeParams(
        name="vectorsum",
        category="memory",
        cpi_base=0.30,
        ilp_sens=0.15,
        w_need=72,
        br_mpki=0.1,
        cpi_short=0.04,
        mpki_inf=20.0,  # streaming: misses barely react to cache
        mpki_amp=1.0,
        c_half_mb=0.5,
        gamma=1.0,
        mlp=8.0,  # deep prefetch pipeline
    )


def main() -> None:
    roster = default_roster()
    roster["vectorsum"] = make_vectorsum()
    rates = RateTable(smt_machine(), roster)

    alone = rates.alone_ipc("vectorsum")
    print(f"vectorsum alone: IPC {alone:.2f}\n")

    print("pairwise symbiosis on the SMT machine (pair WIPC sum):")
    pairs = []
    for partner in sorted(roster):
        if partner == "vectorsum":
            continue
        coschedule = ("vectorsum", partner)
        pairs.append((rates.instantaneous_throughput(coschedule), partner))
    pairs.sort(reverse=True)
    for it, partner in pairs[:3]:
        print(f"  good partner : {partner:12s} it = {it:.2f}")
    for it, partner in pairs[-3:]:
        print(f"  bad partner  : {partner:12s} it = {it:.2f}")

    print("\nworkload impact:")
    for types in (
        ("hmmer", "calculix", "sjeng", "vectorsum"),
        ("mcf", "libquantum", "xalancbmk", "vectorsum"),
    ):
        workload = Workload.of(*types)
        best = optimal_throughput(rates, workload)
        base = fcfs_throughput(rates, workload)
        gain = best.throughput / base.throughput - 1.0
        print(
            f"  {workload.label():48s} optimal {best.throughput:.3f} "
            f"vs FCFS {base.throughput:.3f} ({gain:+.1%})"
        )
    print(
        "\nAs the paper predicts, pairing the streamer with compute jobs "
        "leaves more\nheadroom than stacking it with other memory-bound "
        "jobs, but either way the\noptimal-over-FCFS margin stays modest."
    )


if __name__ == "__main__":
    main()
