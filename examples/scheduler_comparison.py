"""Head-to-head: FCFS vs MAXIT vs SRPT vs MAXTP on one workload.

Runs both Section-VI experiments on the SMT machine:

* the saturation experiment (Figure 6) — who sustains the highest
  long-term throughput when the queue never empties;
* the latency experiment (Figure 5) — turnaround, utilization, and
  empty fraction at increasing load.

The punchline matches the paper: SRPT wins turnaround at moderate load
without improving throughput at all; MAXTP converts a small throughput
gain into a large turnaround cut only near saturation.

README: the "Examples" section of the top-level README.md links this to
the figure5/figure6 experiments of the unified runner CLI.

Run:  python examples/scheduler_comparison.py
"""

from __future__ import annotations

from repro import (
    RateTable,
    Workload,
    fcfs_throughput,
    optimal_throughput,
    smt_machine,
    worst_throughput,
)
from repro.queueing.experiment import (
    run_latency_experiment,
    run_saturation_experiment,
)

SCHEDULERS = ("fcfs", "maxit", "srpt", "maxtp")


def main() -> None:
    rates = RateTable.for_machine(smt_machine())
    workload = Workload.of("calculix", "mcf", "sjeng", "xalancbmk")
    print(f"workload: {workload.label()}\n")

    best = optimal_throughput(rates, workload).throughput
    worst = worst_throughput(rates, workload).throughput
    analytic = fcfs_throughput(rates, workload).throughput
    print("theoretical bounds (Section IV linear program):")
    print(f"  LP maximum   : {best:.4f}")
    print(f"  FCFS (TPCalc): {analytic:.4f}")
    print(f"  LP minimum   : {worst:.4f}\n")

    print("saturation experiment (throughput, normalized to FCFS):")
    base = run_saturation_experiment(
        rates, workload, "fcfs", n_jobs=3_000, seed=9
    ).throughput
    for name in SCHEDULERS:
        result = run_saturation_experiment(
            rates, workload, name, n_jobs=3_000, seed=9
        )
        print(
            f"  {name:6s}: {result.throughput:.4f} "
            f"({result.throughput / base:5.3f}x)"
        )
    print(f"  (LP maximum would be {best / base:5.3f}x)\n")

    print("latency experiment:")
    print(f"  {'load':>5s}  {'sched':>6s}  {'turnaround':>10s}  "
          f"{'vs fcfs':>8s}  {'util':>5s}  {'empty':>6s}")
    for load in (0.8, 0.9, 0.95):
        fcfs_tt = None
        for name in SCHEDULERS:
            result = run_latency_experiment(
                rates, workload, name, load=load, n_jobs=5_000, seed=7
            )
            if name == "fcfs":
                fcfs_tt = result.mean_turnaround
            ratio = result.mean_turnaround / fcfs_tt
            print(
                f"  {load:5.2f}  {name:>6s}  {result.mean_turnaround:10.3f}  "
                f"{ratio:8.3f}  {result.utilization:5.2f}  "
                f"{result.empty_fraction:6.1%}"
            )
        print()


if __name__ == "__main__":
    main()
