"""Capacity planning: how many machines, and is a smarter scheduler cheaper?

A Section-VI-flavoured what-if for an operator: jobs arrive at a known
rate; you can either provision more identical machines or deploy a
symbiosis-aware scheduler.  This example combines three library layers:

* the Section-IV LP for per-machine capacity under FCFS vs MAXTP-like
  optimal scheduling;
* the Section-III-D multi-machine reduction (capacity scales linearly
  in identical machines);
* M/M/K analytics for the latency consequences (Figure 4's mechanism).

README: the "Examples" section of the top-level README.md maps this
scenario to the library layers it combines.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import (
    RateTable,
    Workload,
    fcfs_throughput,
    optimal_throughput,
    smt_machine,
)
from repro.core.multimachine import reduced_optimal_throughput
from repro.queueing.mmk import MMKQueue

ARRIVAL_RATE = 6.0  # jobs per unit time, mean size 1.0 work unit


def main() -> None:
    rates = RateTable.for_machine(smt_machine())
    workload = Workload.of("bzip2", "hmmer", "libquantum", "mcf")
    print(f"workload    : {workload.label()}")
    print(f"arrival rate: {ARRIVAL_RATE} jobs/time (mean size 1.0)\n")

    fcfs_capacity = fcfs_throughput(rates, workload).throughput
    optimal_capacity = optimal_throughput(rates, workload).throughput
    print(f"per-machine capacity, FCFS scheduling    : {fcfs_capacity:.3f}")
    print(f"per-machine capacity, optimal scheduling : {optimal_capacity:.3f}")
    gain = optimal_capacity / fcfs_capacity - 1.0
    print(f"scheduler upgrade is worth               : {gain:+.1%}\n")

    print("machines needed for stability (utilization < 1):")
    for label, capacity in (
        ("fcfs", fcfs_capacity),
        ("optimal", optimal_capacity),
    ):
        needed = 1
        while ARRIVAL_RATE >= needed * capacity:
            needed += 1
        fleet = reduced_optimal_throughput(rates, workload, needed)
        print(
            f"  {label:8s}: {needed} machines "
            f"(fleet capacity {needed * capacity:.2f}; multi-machine LP "
            f"confirms {fleet.throughput if label == 'optimal' else needed * capacity:.2f})"
        )
    print()

    print("latency picture (jobs modeled as an M/M/K system per fleet):")
    print(f"  {'fleet':>22s}  {'rho':>5s}  {'jobs in system':>14s}  "
          f"{'turnaround':>10s}")
    for label, capacity in (
        ("fcfs", fcfs_capacity),
        ("optimal", optimal_capacity),
    ):
        needed = 1
        while ARRIVAL_RATE >= needed * capacity:
            needed += 1
        for extra in (0, 1):
            servers = needed + extra
            queue = MMKQueue(
                arrival_rate=ARRIVAL_RATE,
                service_rate=capacity,
                servers=servers,
            )
            print(
                f"  {label + ' x ' + str(servers):>22s}  "
                f"{queue.utilization:5.2f}  "
                f"{queue.mean_jobs_in_system:14.1f}  "
                f"{queue.mean_turnaround:10.2f}"
            )
    print(
        "\nThe paper's Figure-4 effect in procurement terms: near "
        "saturation, the few-percent\ncapacity edge of the optimal "
        "scheduler buys a disproportionate turnaround cut —\nor "
        "equivalently, postpones the next machine purchase."
    )


if __name__ == "__main__":
    main()
