"""Using optimal throughput as a metric in a microarchitecture study.

Section VII's methodology demo: you are evaluating SMT fetch policies
(round-robin vs ICOUNT) and ROB partitioning (static vs dynamic).  The
usual methodology reports FCFS throughput; the paper shows you can also
report the *optimal-scheduler* throughput — the LP bound of Section IV
— with no scheduler implementation, and check whether your conclusion
survives intelligent scheduling.

README: the "Examples" section of the top-level README.md links this to
the section7 experiment (`python -m repro.experiments section7`).

Run:  python examples/microarch_study.py
"""

from __future__ import annotations

from repro.core.policy_study import ALL_POLICIES, policy_label, run_policy_study
from repro.core.workload import Workload

WORKLOADS = [
    Workload.of("bzip2", "hmmer", "libquantum", "mcf"),
    Workload.of("calculix", "mcf", "sjeng", "xalancbmk"),
    Workload.of("gcc.g23", "h264ref", "perlbench", "tonto"),
    Workload.of("hmmer", "libquantum", "mcf", "xalancbmk"),
    Workload.of("bzip2", "calculix", "gcc.cp-decl", "sjeng"),
]


def main() -> None:
    print(f"running the 4-policy study over {len(WORKLOADS)} workloads...\n")
    study = run_policy_study(WORKLOADS)

    print(f"{'policy':<22s} {'FCFS TP':>8s} {'optimal TP':>11s} "
          f"{'sched. gain':>12s}")
    for fetch, rob in ALL_POLICIES:
        result = study.result(fetch, rob)
        gain = result.mean_optimal / result.mean_fcfs - 1.0
        print(
            f"{policy_label(fetch, rob):<22s} {result.mean_fcfs:8.3f} "
            f"{result.mean_optimal:11.3f} {gain:12.1%}"
        )

    from repro.microarch.config import FetchPolicy, RobPolicy

    baseline = (FetchPolicy.ROUND_ROBIN, RobPolicy.STATIC)
    best = (FetchPolicy.ICOUNT, RobPolicy.DYNAMIC)
    print()
    print(
        "icount+dynamic over rr+static, FCFS metric   : "
        f"{study.mean_gain_over(baseline, best, metric='fcfs'):+.1%}"
    )
    print(
        "icount+dynamic over rr+static, optimal metric: "
        f"{study.mean_gain_over(baseline, best, metric='optimal'):+.1%}"
    )
    print(
        "workloads whose preferred policy flips       : "
        f"{study.flip_fraction():.0%}"
    )
    print(
        "\nPaper's take-away: the ranking is stable on average, but for "
        "individual\nworkloads the scheduler can change which design wins — "
        "and the scheduling\nheadroom itself can rival the microarchitectural "
        "improvement."
    )


if __name__ == "__main__":
    main()
