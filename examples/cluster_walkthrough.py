"""Cluster walkthrough: from one SMT machine to a dispatched cluster.

README: listed in the "Examples" table of the top-level README.md.

The paper's Section III-D claims multi-machine symbiotic scheduling
reduces to the single-machine problem.  This walkthrough shows both
sides of the claim and the machinery behind it:

1. analytic: the joint M-machine LP gains nothing over M copies of
   the single-machine optimum;
2. dynamic: a simulated M-machine cluster (round-robin dispatch over
   MAXTP machines, saturated backlog) achieves the same throughput as
   M independent single-machine simulations;
3. dispatch policies: round-robin vs join-shortest-queue vs the
   LP-guided symbiosis-affinity router under Poisson arrivals.

Run:  python examples/cluster_walkthrough.py
"""

from __future__ import annotations

from repro import CachedRateSource, RateTable, Workload, smt_machine
from repro.core.multimachine import (
    joint_optimal_throughput,
    reduced_optimal_throughput,
)
from repro.experiments.cluster_exp import compute_cluster
from repro.queueing.arrivals import poisson_arrivals
from repro.queueing.cluster import run_cluster
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.schedulers import make_scheduler

M = 3  # machines in the cluster


def main() -> None:
    machine = smt_machine()
    rates = CachedRateSource(RateTable.for_machine(machine))
    workload = Workload.of("hmmer", "mcf", "libquantum", "bzip2")
    k = machine.contexts

    print(f"cluster : {M} x {machine.name} ({k} contexts each)")
    print(f"workload: {workload.label()}\n")

    # 1. The analytic reduction: machines may specialize in the joint
    # LP, but that freedom buys nothing.
    joint = joint_optimal_throughput(rates, workload, M, contexts=k)
    reduced = reduced_optimal_throughput(rates, workload, M, contexts=k)
    print("Section III-D, analytically (total WIPC):")
    print(f"  joint {M}-machine LP     : {joint.throughput:.4f}")
    print(f"  {M} x single-machine LP  : {reduced.throughput:.4f}")
    gap = abs(joint.throughput - reduced.throughput) / reduced.throughput
    print(f"  relative gap            : {gap:.2e}\n")

    # 2. The dynamic reduction: simulate the cluster.
    comparison = compute_cluster(
        rates, [workload], n_machines=M, jobs_per_machine=240, seed=0
    )[0]
    print("Section III-D, dynamically (saturated MAXTP machines):")
    print(f"  cluster simulation      : {comparison.cluster_throughput:.4f}")
    print(
        f"  {M} independent machines : "
        f"{comparison.independent_throughput:.4f}"
    )
    print(
        f"  cluster vs independent  : {comparison.cluster_vs_independent:.3f}"
        f"   cluster vs joint LP: {comparison.cluster_vs_joint_lp:.3f}"
    )
    verdict = "holds" if comparison.within_tolerance else "violated"
    print(
        f"  -> the reduction {verdict} within "
        f"{comparison.tolerance:.0%} tolerance\n"
    )

    # 3. Dispatch policies under Poisson load: with identical machines
    # and a symbiosis-aware per-machine scheduler, smarter dispatch has
    # little left to win — the reduction again.
    print("dispatch policies at moderate load (mean turnaround):")
    arrival_rate = 0.75 * comparison.independent_throughput  # unit sizes
    for name in ("round_robin", "jsq", "affinity"):
        dispatcher = make_dispatcher(
            name, rates=rates, workload=workload, contexts=k
        )
        metrics = run_cluster(
            rates,
            [
                make_scheduler("maxtp", rates, k, workload=workload)
                for _ in range(M)
            ],
            dispatcher,
            poisson_arrivals(
                workload.types,
                rate=arrival_rate,
                n_jobs=1_500,
                seed=7,
            ),
        )
        print(
            f"  {name:12s} turnaround {metrics.mean_turnaround:7.3f}   "
            f"busy contexts {metrics.utilization:5.2f}/{M * k}"
        )

    # One persisted-cache layer served every analysis above.
    print(f"\n{rates.stats.render()}")


if __name__ == "__main__":
    main()
