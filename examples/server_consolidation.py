"""Server consolidation: is symbiosis worth scheduling for on my box?

The paper's motivating scenario: a server runs a small set of job types
(the intro's "web servers, database servers, etc.").  This example
models a four-service consolidation on the quad-core machine —
a cache-friendly service, a branchy interpreter, a streaming analytics
job, and a pointer-chasing database — and answers the operator's
questions:

* how much throughput does an optimal symbiotic scheduler add?
* which coschedules should actually run?
* what happens to latency at realistic loads (Section VI)?

README: the "Examples" section of the top-level README.md maps this
scenario to the paper sections it draws on.

Run:  python examples/server_consolidation.py
"""

from __future__ import annotations

from repro import (
    RateTable,
    Workload,
    fcfs_throughput,
    optimal_throughput,
    quad_core_machine,
)
from repro.core.bottleneck import fit_linear_bottleneck
from repro.core.sensitivity import workload_sensitivity
from repro.queueing.experiment import run_latency_experiment

# Stand-ins from the roster: hmmer ~ compute service, perlbench ~
# interpreter, libquantum ~ streaming analytics, mcf ~ database.
SERVICES = {
    "hmmer": "compute microservice",
    "perlbench": "scripting/interpreter tier",
    "libquantum": "streaming analytics",
    "mcf": "in-memory database",
}


def main() -> None:
    machine = quad_core_machine()
    rates = RateTable.for_machine(machine)
    workload = Workload.of(*SERVICES)

    print(f"machine : {machine.name} (shared {machine.llc_mb:g} MB LLC + bus)")
    for name, role in SERVICES.items():
        print(f"  {name:12s} as {role}")
    print()

    base = fcfs_throughput(rates, workload)
    best = optimal_throughput(rates, workload)
    gain = best.throughput / base.throughput - 1.0
    print(f"FCFS throughput    : {base.throughput:.3f} WIPC")
    print(f"optimal throughput : {best.throughput:.3f} WIPC  ({gain:+.1%})\n")

    sensitivity = workload_sensitivity(rates, workload)
    bottleneck = fit_linear_bottleneck(rates, workload)
    print(f"mean job sensitivity        : {sensitivity.mean_sensitivity:.1%}")
    print(f"linear-bottleneck lsq error : {bottleneck.error:.4f}")
    print(
        "  (low sensitivity or a near-zero error would mean scheduling "
        "cannot help)\n"
    )

    print("recommended coschedule mix (optimal scheduler):")
    for coschedule, fraction in sorted(
        best.fractions.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {fraction:6.1%}  {'+'.join(coschedule)}")
    print()

    print("latency at realistic loads (Poisson arrivals, Section VI):")
    print(f"  {'load':>5s}  {'scheduler':>9s}  {'turnaround':>10s}  "
          f"{'utilization':>11s}  {'empty':>6s}")
    for load in (0.8, 0.95):
        for scheduler in ("fcfs", "maxtp"):
            result = run_latency_experiment(
                rates, workload, scheduler, load=load, n_jobs=4_000, seed=42
            )
            print(
                f"  {load:5.2f}  {scheduler:>9s}  "
                f"{result.mean_turnaround:10.2f}  "
                f"{result.utilization:11.2f}  "
                f"{result.empty_fraction:6.1%}"
            )
    print(
        "\nNote how the symbiosis-aware MAXTP scheduler pays off mainly "
        "near saturation,\nand shows up as lower utilization / more empty "
        "time — the paper's honest metrics."
    )


if __name__ == "__main__":
    main()
