"""Tests for the FCFS throughput model (repro.core.fcfs)."""

from __future__ import annotations

import pytest

from repro.core.fcfs import fcfs_throughput, simulate_fcfs_throughput
from repro.core.optimal import optimal_throughput, worst_throughput
from repro.core.workload import Workload
from repro.errors import ModelError, WorkloadError
from repro.microarch.rates import TableRates

AB = Workload.of("A", "B")


class TestMarkovModel:
    def test_fractions_sum_to_one(self, synthetic_rates):
        result = fcfs_throughput(synthetic_rates, AB, contexts=2)
        assert sum(result.fractions.values()) == pytest.approx(1.0)

    def test_insensitive_rates_analytic(self, insensitive_rates):
        """With insensitive jobs (A rate .8, B rate .4 always), FCFS
        must land on the scheduler-independent throughput."""
        result = fcfs_throughput(insensitive_rates, AB, contexts=2)
        expected = 2 * 2 / (1 / 0.8 + 1 / 0.4)
        assert result.throughput == pytest.approx(expected, rel=1e-6)

    def test_slow_jobs_linger(self, insensitive_rates):
        """Slow type B (rate .4 vs A's .8) occupies contexts longer, so
        B-heavy coschedules get more than their multinomial share —
        the Table-II deviation the paper explains."""
        result = fcfs_throughput(insensitive_rates, AB, contexts=2)
        # Multinomial draw: AA 25%, AB 50%, BB 25%.
        assert result.fraction_of(("B", "B")) > 0.25
        assert result.fraction_of(("A", "A")) < 0.25

    def test_symmetric_types_get_symmetric_fractions(self):
        rates = TableRates(
            {
                ("A", "A"): {"A": 1.0},
                ("A", "B"): {"A": 0.6, "B": 0.6},
                ("B", "B"): {"B": 1.0},
            }
        )
        result = fcfs_throughput(rates, AB, contexts=2)
        assert result.fraction_of(("A", "A")) == pytest.approx(
            result.fraction_of(("B", "B")), rel=1e-6
        )

    def test_between_worst_and_optimal(self, smt_rates, mixed_workload):
        """FCFS satisfies the equal-work constraint in steady state, so
        it must lie within the LP bounds."""
        fcfs = fcfs_throughput(smt_rates, mixed_workload)
        best = optimal_throughput(smt_rates, mixed_workload)
        worst = worst_throughput(smt_rates, mixed_workload)
        assert worst.throughput - 1e-6 <= fcfs.throughput <= best.throughput + 1e-6

    def test_zero_rate_rejected(self):
        rates = TableRates(
            {
                ("A", "A"): {"A": 0.0},
                ("A", "B"): {"A": 0.5, "B": 0.5},
                ("B", "B"): {"B": 1.0},
            }
        )
        with pytest.raises(ModelError):
            fcfs_throughput(rates, AB, contexts=2)

    def test_contexts_required_for_frozen_tables(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            fcfs_throughput(synthetic_rates, AB)


class TestSimulation:
    def test_matches_markov_model(self, synthetic_rates):
        analytic = fcfs_throughput(synthetic_rates, AB, contexts=2)
        simulated = simulate_fcfs_throughput(
            synthetic_rates, AB, contexts=2, n_jobs=30_000, seed=11
        )
        assert simulated.throughput == pytest.approx(
            analytic.throughput, rel=0.03
        )

    def test_matches_markov_on_simulated_rates(self, smt_rates, mixed_workload):
        analytic = fcfs_throughput(smt_rates, mixed_workload)
        simulated = simulate_fcfs_throughput(
            smt_rates, mixed_workload, n_jobs=15_000, seed=3
        )
        assert simulated.throughput == pytest.approx(
            analytic.throughput, rel=0.04
        )

    def test_deterministic_given_seed(self, synthetic_rates):
        a = simulate_fcfs_throughput(
            synthetic_rates, AB, contexts=2, n_jobs=2_000, seed=5
        )
        b = simulate_fcfs_throughput(
            synthetic_rates, AB, contexts=2, n_jobs=2_000, seed=5
        )
        assert a.throughput == b.throughput

    def test_fraction_normalization(self, synthetic_rates):
        result = simulate_fcfs_throughput(
            synthetic_rates, AB, contexts=2, n_jobs=5_000, seed=1
        )
        assert sum(result.fractions.values()) == pytest.approx(1.0)

    def test_too_few_jobs_rejected(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            simulate_fcfs_throughput(
                synthetic_rates, AB, contexts=2, n_jobs=1
            )

    def test_bad_job_size_rejected(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            simulate_fcfs_throughput(
                synthetic_rates, AB, contexts=2, n_jobs=100, job_size=0.0
            )
