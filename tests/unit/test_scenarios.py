"""Tests for the workload-scenario registry."""

from __future__ import annotations

import json
import statistics

import pytest

from repro.errors import WorkloadError
from repro.queueing.scenarios import (
    SCENARIOS,
    Scenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)

TYPES = ("A", "B", "C", "D")


def fields(jobs):
    return [
        (j.job_id, j.job_type, j.size, j.arrival_time) for j in jobs
    ]


class TestRegistry:
    def test_ships_the_documented_scenarios(self):
        names = scenario_names()
        assert len(names) >= 8
        for expected in (
            "baseline_poisson",
            "heavy_tail",
            "mice_elephants",
            "bursty_mmpp",
            "diurnal_cycle",
            "batch_storms",
            "skewed_types",
            "saturated_backlog",
            "replayed_burst",
        ):
            assert expected in names

    def test_get_unknown_raises(self):
        with pytest.raises(WorkloadError, match="unknown scenario"):
            get_scenario("does_not_exist")

    def test_reregistration_replaces(self):
        original = get_scenario("baseline_poisson")
        try:
            replacement = Scenario(
                name="baseline_poisson",
                description="x",
                stress="y",
                arrival="poisson",
            )
            register_scenario(replacement)
            assert get_scenario("baseline_poisson") is replacement
            assert len(all_scenarios()) == len(scenario_names())
        finally:
            register_scenario(original)

    def test_to_jsonable_is_serializable(self):
        for scenario in all_scenarios():
            json.dumps(scenario.to_jsonable())


class TestBuildJobs:
    @pytest.mark.parametrize(
        "name", sorted(SCENARIOS), ids=lambda n: n
    )
    def test_every_scenario_generates_a_valid_stream(self, name):
        scenario = get_scenario(name)
        jobs = list(
            scenario.build_jobs(TYPES, mean_rate=2.0, seed=1, n_jobs=150)
        )
        assert len(jobs) == 150
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)
        assert [j.job_id for j in jobs] == list(range(150))
        assert all(j.size > 0.0 for j in jobs)
        assert set(j.job_type for j in jobs) <= set(TYPES)
        if scenario.saturated:
            assert all(t == 0.0 for t in times)

    @pytest.mark.parametrize(
        "name", sorted(SCENARIOS), ids=lambda n: n
    )
    def test_streams_are_deterministic(self, name):
        scenario = get_scenario(name)
        a = list(scenario.build_jobs(TYPES, mean_rate=2.0, seed=4,
                                     n_jobs=60))
        b = list(scenario.build_jobs(TYPES, mean_rate=2.0, seed=4,
                                     n_jobs=60))
        assert fields(a) == fields(b)

    def test_mean_rate_is_normalized_across_shapes(self):
        """Every non-saturated shape offers the configured mean rate —
        including MMPP, whose state rates are stored as multipliers."""
        for name in ("baseline_poisson", "bursty_mmpp", "diurnal_cycle",
                     "batch_storms"):
            scenario = get_scenario(name)
            jobs = list(
                scenario.build_jobs(
                    TYPES, mean_rate=3.0, seed=2, n_jobs=30_000
                )
            )
            rate = len(jobs) / jobs[-1].arrival_time
            assert rate == pytest.approx(3.0, rel=0.15), name

    def test_replay_is_bit_identical_to_its_base(self):
        base = list(
            get_scenario("bursty_mmpp").build_jobs(
                TYPES, mean_rate=2.0, seed=11, n_jobs=80
            )
        )
        replayed = list(
            get_scenario("replayed_burst").build_jobs(
                TYPES, mean_rate=2.0, seed=11, n_jobs=80
            )
        )
        assert fields(replayed) == fields(base)

    def test_skewed_types_skews(self):
        jobs = list(
            get_scenario("skewed_types").build_jobs(
                TYPES, mean_rate=2.0, seed=3, n_jobs=4_000
            )
        )
        counts = statistics.multimode(j.job_type for j in jobs)
        shares = {
            t: sum(1 for j in jobs if j.job_type == t) / len(jobs)
            for t in TYPES
        }
        # Weight 8:1:1:1 → the dominant type takes ~8/11 of arrivals.
        assert max(shares.values()) > 0.6
        assert counts == ["A"]

    def test_heavy_tail_sizes_are_heavy(self):
        jobs = list(
            get_scenario("heavy_tail").build_jobs(
                TYPES, mean_rate=2.0, seed=5, n_jobs=5_000
            )
        )
        sizes = sorted(j.size for j in jobs)
        assert sizes[-1] / statistics.median(sizes) > 10.0

    def test_arrival_times_invariant_under_size_law(self):
        """The derived-stream guarantee at the scenario level: two
        scenarios differing only in size law see identical clocks."""
        base = get_scenario("baseline_poisson")
        tailed = get_scenario("heavy_tail")
        t_base = [
            j.arrival_time
            for j in base.build_jobs(TYPES, mean_rate=2.0, seed=6,
                                     n_jobs=100)
        ]
        t_tail = [
            j.arrival_time
            for j in tailed.build_jobs(TYPES, mean_rate=2.0, seed=6,
                                       n_jobs=100)
        ]
        assert t_base == t_tail


class TestValidation:
    def test_unknown_arrival_kind(self):
        with pytest.raises(WorkloadError, match="unknown arrival kind"):
            Scenario(name="x", description="", stress="",
                     arrival="teleport")

    def test_load_bounds(self):
        with pytest.raises(WorkloadError, match="load"):
            Scenario(name="x", description="", stress="",
                     arrival="poisson", load=0.0)
        with pytest.raises(WorkloadError, match="load"):
            Scenario(name="x", description="", stress="",
                     arrival="poisson", load=1.5)

    def test_n_jobs_positive(self):
        with pytest.raises(WorkloadError, match="n_jobs"):
            Scenario(name="x", description="", stress="",
                     arrival="poisson", n_jobs=0)

    def test_weights_project_onto_any_roster(self):
        scenario = get_scenario("skewed_types")
        two = scenario.weights_for(("p", "q"))
        assert set(two) == {"p", "q"}
        assert two["p"] > two["q"]
        assert scenario.weights_for(("a",)) == {"a": 8.0}
        assert get_scenario("baseline_poisson").weights_for(TYPES) is None

    def test_weights_order_double_digit_ranks_numerically(self):
        """rank10 must sort after rank9, not between rank1 and rank2."""
        scenario = Scenario(
            name="_many_ranks",
            description="x",
            stress="y",
            arrival="poisson",
            type_weights={f"rank{i}": float(20 - i) for i in range(12)},
        )
        roster = tuple(f"t{i}" for i in range(12))
        weights = scenario.weights_for(roster)
        assert [weights[t] for t in roster] == [
            float(20 - i) for i in range(12)
        ]

    def test_weights_never_recycle_on_large_rosters(self):
        """Types beyond the rank list weigh 0: a one-dominant-type
        scenario stays one-dominant on a 6-type roster instead of
        wrapping the rank weights around."""
        scenario = get_scenario("skewed_types")
        six = ("t0", "t1", "t2", "t3", "t4", "t5")
        weights = scenario.weights_for(six)
        assert weights["t0"] == 8.0
        assert weights["t4"] == 0.0 and weights["t5"] == 0.0
        jobs = list(
            scenario.build_jobs(six, mean_rate=2.0, seed=1, n_jobs=500)
        )
        assert {j.job_type for j in jobs} <= {"t0", "t1", "t2", "t3"}

    def test_replay_honors_its_own_default_n_jobs(self):
        """The replay branch resolves n_jobs before delegating: a
        replay scenario with its own default must not inherit the base
        scenario's (larger) default stream length."""
        short = Scenario(
            name="_short_replay",
            description="x",
            stress="y",
            arrival="replay",
            arrival_params={"base": "bursty_mmpp"},
            n_jobs=25,
        )
        jobs = list(short.build_jobs(TYPES, mean_rate=2.0, seed=3))
        assert len(jobs) == 25
