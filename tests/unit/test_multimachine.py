"""Tests for the Section-III-D multi-machine reduction."""

from __future__ import annotations

import pytest

from repro.core.multimachine import (
    joint_optimal_throughput,
    reduced_optimal_throughput,
    verify_reduction,
)
from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.errors import WorkloadError

AB = Workload.of("A", "B")


class TestReduction:
    @pytest.mark.parametrize("n_machines", [1, 2, 3])
    def test_joint_equals_reduced(self, synthetic_rates, n_machines):
        """The paper's remark: the joint LP gains nothing over solving
        one machine and replicating."""
        joint = joint_optimal_throughput(
            synthetic_rates, AB, n_machines, contexts=2
        )
        reduced = reduced_optimal_throughput(
            synthetic_rates, AB, n_machines, contexts=2
        )
        assert joint.throughput == pytest.approx(
            reduced.throughput, rel=1e-8
        )

    def test_verify_reduction_true(self, synthetic_rates):
        assert verify_reduction(synthetic_rates, AB, 3, contexts=2)

    def test_per_machine_throughput(self, synthetic_rates):
        schedule = reduced_optimal_throughput(
            synthetic_rates, AB, 4, contexts=2
        )
        single = optimal_throughput(synthetic_rates, AB, contexts=2)
        assert schedule.per_machine_throughput == pytest.approx(
            single.throughput
        )

    def test_reduced_replicates_fractions(self, synthetic_rates):
        schedule = reduced_optimal_throughput(
            synthetic_rates, AB, 2, contexts=2
        )
        assert len(schedule.per_machine_fractions) == 2
        assert (
            schedule.per_machine_fractions[0]
            == schedule.per_machine_fractions[1]
        )

    def test_joint_machine_budgets_each_sum_to_one(self, synthetic_rates):
        joint = joint_optimal_throughput(
            synthetic_rates, AB, 2, contexts=2
        )
        for fractions in joint.per_machine_fractions:
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_on_simulated_rates(self, smt_rates, mixed_workload):
        assert verify_reduction(smt_rates, mixed_workload, 2)

    def test_bad_machine_count(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            joint_optimal_throughput(synthetic_rates, AB, 0, contexts=2)
        with pytest.raises(WorkloadError):
            reduced_optimal_throughput(synthetic_rates, AB, -1, contexts=2)
