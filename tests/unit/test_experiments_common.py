"""Tests for the experiments-layer plumbing."""

from __future__ import annotations

import pytest

from repro.core.workload import Workload, all_workloads
from repro.experiments.common import (
    default_context,
    format_table,
    sample_workloads,
)
from repro.microarch.benchmarks import BENCHMARK_NAMES


class TestSampleWorkloads:
    def test_deterministic(self):
        pool = all_workloads(BENCHMARK_NAMES, 4)
        a = sample_workloads(pool, 10, seed=3)
        b = sample_workloads(pool, 10, seed=3)
        assert a == b

    def test_seed_changes_sample(self):
        pool = all_workloads(BENCHMARK_NAMES, 4)
        a = sample_workloads(pool, 10, seed=3)
        b = sample_workloads(pool, 10, seed=4)
        assert a != b

    def test_count_respected(self):
        pool = all_workloads(BENCHMARK_NAMES, 4)
        assert len(sample_workloads(pool, 7)) == 7

    def test_oversample_returns_all(self):
        pool = [Workload.of("a", "b"), Workload.of("a", "c")]
        assert len(sample_workloads(pool, 10)) == 2

    def test_no_duplicates(self):
        pool = all_workloads(BENCHMARK_NAMES, 4)
        sample = sample_workloads(pool, 50, seed=1)
        assert len({w.types for w in sample}) == 50


class TestDefaultContext:
    def test_full_default(self):
        context = default_context()
        assert len(context.workloads) == 495
        assert context.smt_rates.machine.is_smt
        assert not context.quad_rates.machine.is_smt

    def test_subsampled(self):
        context = default_context(max_workloads=12, seed=5)
        assert len(context.workloads) == 12

    def test_rates_for(self):
        context = default_context(max_workloads=2)
        assert context.rates_for("smt") is context.smt_rates
        assert context.rates_for("quad") is context.quad_rates
        with pytest.raises(ValueError):
            context.rates_for("gpu")


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [("a", 1), ("longer", 22)]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line.rstrip()) for line in lines[:2]}) >= 1
        assert "longer" in lines[3]

    def test_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_cell_stringification(self):
        text = format_table(["v"], [(1.5,), (None,)])
        assert "1.5" in text
        assert "None" in text
