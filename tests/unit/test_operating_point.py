"""Tests for the Figure-4 operating-point classifier."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.queueing.operating_point import (
    classify_operating_point,
    operating_report,
)


class TestClassification:
    def test_region_a_sparse(self):
        point = classify_operating_point(0.1, 1.0, 4)
        assert point.region == "A"
        assert not point.scheduler_leverage

    def test_region_b_concurrent_no_queue(self):
        point = classify_operating_point(1.6, 1.0, 4)
        assert point.region == "B"
        assert point.wait_probability < 0.25

    def test_region_c_queueing(self):
        """The paper's experimental operating point (load ~0.8-0.95)."""
        point = classify_operating_point(3.4, 1.0, 4)
        assert point.region == "C"
        assert point.scheduler_leverage

    def test_region_d_saturation(self):
        point = classify_operating_point(3.9, 1.0, 4)
        assert point.region == "D"

    def test_region_d_unstable(self):
        point = classify_operating_point(5.0, 1.0, 4)
        assert point.region == "D"
        assert point.mean_jobs_in_system == float("inf")

    def test_regions_ordered_by_load(self):
        regions = [
            classify_operating_point(rate, 1.0, 4).region
            for rate in (0.2, 1.5, 3.4, 3.95)
        ]
        assert regions == ["A", "B", "C", "D"]

    def test_paper_loads_are_region_c(self):
        """The paper's Figure-5 loads (0.8-0.95) sit in region C."""
        for load in (0.8, 0.9, 0.95):
            assert classify_operating_point(load * 4.0, 1.0, 4).region == "C"

    def test_bad_contexts(self):
        with pytest.raises(ConfigurationError):
            classify_operating_point(1.0, 1.0, 0)


class TestReport:
    def test_sweep(self):
        report = operating_report(4.0, 4, [0.05, 0.4, 0.85, 0.99])
        assert [p.region for _, p in report] == ["A", "B", "C", "D"]

    def test_paper_experiment_sits_in_c(self):
        """Loads 0.8-0.95 of capacity (the Figure-5 grid) are region C:
        the machine is mostly full and some jobs queue."""
        report = operating_report(4.0, 4, [0.8, 0.9])
        for _, point in report:
            assert point.region == "C"
            assert point.scheduler_leverage
