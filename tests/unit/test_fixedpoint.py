"""Tests for repro.util.fixedpoint."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConvergenceError
from repro.util.fixedpoint import solve_fixed_point


class TestSolveFixedPoint:
    def test_converges_on_contraction(self):
        # x = cos(x) has the Dottie fixed point ~0.739085.
        result = solve_fixed_point(
            lambda x: [math.cos(x[0])], [0.0], damping=1.0
        )
        assert result.value[0] == pytest.approx(0.7390851, abs=1e-6)

    def test_converges_on_linear_system(self):
        # x = Ax + b with spectral radius < 1.
        def linear(x):
            return [0.5 * x[0] + 0.1 * x[1] + 1.0, 0.2 * x[0] + 0.3 * x[1] + 2.0]

        result = solve_fixed_point(linear, [0.0, 0.0])
        x, y = result.value
        assert x == pytest.approx(0.5 * x + 0.1 * y + 1.0, abs=1e-6)
        assert y == pytest.approx(0.2 * x + 0.3 * y + 2.0, abs=1e-6)

    def test_damping_tames_oscillation(self):
        # x -> 2 - x oscillates forever undamped but has fixed point 1.
        result = solve_fixed_point(lambda x: [2.0 - x[0]], [0.0], damping=0.5)
        assert result.value[0] == pytest.approx(1.0, abs=1e-6)

    def test_divergence_raises(self):
        with pytest.raises(ConvergenceError):
            solve_fixed_point(
                lambda x: [2.0 * x[0] + 1.0], [1.0], max_iterations=50
            )

    def test_reports_iterations_and_residual(self):
        result = solve_fixed_point(lambda x: [0.5 * x[0]], [1.0])
        assert result.iterations >= 1
        assert result.residual <= 1e-9

    def test_identity_converges_immediately(self):
        result = solve_fixed_point(lambda x: list(x), [3.0, 4.0])
        assert result.value == (3.0, 4.0)
        assert result.iterations == 1

    def test_invalid_damping_rejected(self):
        for damping in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                solve_fixed_point(lambda x: list(x), [1.0], damping=damping)

    def test_empty_start_rejected(self):
        with pytest.raises(ValueError):
            solve_fixed_point(lambda x: list(x), [])

    def test_dimension_change_rejected(self):
        with pytest.raises(ValueError):
            solve_fixed_point(lambda x: [1.0, 2.0], [1.0])
