"""Tests for the Section-IV throughput LP (repro.core.optimal)."""

from __future__ import annotations

from itertools import combinations_with_replacement

import pytest

from repro.core.optimal import optimal_throughput, worst_throughput
from repro.core.workload import Workload
from repro.errors import WorkloadError
from repro.microarch.rates import TableRates

AB = Workload.of("A", "B")


class TestSyntheticTwoTypes:
    """Hand-checkable 2-type, 2-context programs."""

    def test_optimal_matches_hand_computation(self, synthetic_rates):
        # Schedules: pure-AB (fair? r_A=0.9, r_B=0.5 -> unequal work);
        # candidates combine AA (A:1.6), AB (A:.9,B:.5), BB (B:.8).
        best = optimal_throughput(synthetic_rates, AB, contexts=2)
        worst = worst_throughput(synthetic_rates, AB, contexts=2)
        # Brute-force over the 2-simplex of (x_AA, x_AB, x_BB).
        def throughput(x_aa, x_ab):
            x_bb = 1.0 - x_aa - x_ab
            work_a = 1.6 * x_aa + 0.9 * x_ab
            work_b = 0.5 * x_ab + 0.8 * x_bb
            if abs(work_a - work_b) > 1e-6:
                return None
            return work_a + work_b

        feasible = []
        steps = 2000
        for i in range(steps + 1):
            x_aa = i / steps
            # Solve the equal-work constraint for x_ab given x_aa:
            # 1.6 a + 0.9 m = 0.5 m + 0.8 (1 - a - m)
            # 1.6 a + 0.4 m = 0.8 - 0.8 a - 0.8 m -> m = (0.8 - 2.4 a)/1.2
            x_ab = (0.8 - 2.4 * x_aa) / 1.2
            if 0.0 <= x_ab and x_aa + x_ab <= 1.0 + 1e-12:
                value = throughput(x_aa, x_ab)
                if value is not None:
                    feasible.append(value)
        assert best.throughput == pytest.approx(max(feasible), abs=1e-3)
        assert worst.throughput == pytest.approx(min(feasible), abs=1e-3)

    def test_equal_work_satisfied(self, synthetic_rates):
        best = optimal_throughput(synthetic_rates, AB, contexts=2)
        work = {"A": 0.0, "B": 0.0}
        for cos, fraction in best.fractions.items():
            for b, rate in synthetic_rates.type_rates(cos).items():
                work[b] += fraction * rate
        assert work["A"] == pytest.approx(work["B"], rel=1e-6)

    def test_fractions_sum_to_one(self, synthetic_rates):
        for solve in (optimal_throughput, worst_throughput):
            schedule = solve(synthetic_rates, AB, contexts=2)
            assert sum(schedule.fractions.values()) == pytest.approx(1.0)

    def test_per_type_rate(self, synthetic_rates):
        best = optimal_throughput(synthetic_rates, AB, contexts=2)
        assert best.per_type_rate == pytest.approx(best.throughput / 2)

    def test_insensitive_rates_leave_no_headroom(self, insensitive_rates):
        best = optimal_throughput(insensitive_rates, AB, contexts=2)
        worst = worst_throughput(insensitive_rates, AB, contexts=2)
        # Per-job rates A=0.8, B=0.4 regardless of coschedule: harmonic
        # balance gives AT = 2/(1/0.8 + 1/0.4) ... times 2 contexts.
        expected = 2 * 2 / (1 / 0.8 + 1 / 0.4)
        assert best.throughput == pytest.approx(expected, rel=1e-9)
        assert worst.throughput == pytest.approx(expected, rel=1e-9)

    def test_linear_bottleneck_rates_fix_throughput(self):
        """If r_b(s) = f_b(s) * R_b with shares summing to 1, every
        scheduler achieves N / sum(1/R_b) (paper Equation 7)."""
        R = {"A": 2.0, "B": 1.0}
        table = {}
        for cos in combinations_with_replacement("AB", 2):
            counts = {b: cos.count(b) for b in set(cos)}
            # Each job gets an equal share of the bottleneck resource.
            table[cos] = {
                b: (counts[b] / 2.0) * R[b] for b in counts
            }
        rates = TableRates(table)
        best = optimal_throughput(rates, AB, contexts=2)
        worst = worst_throughput(rates, AB, contexts=2)
        expected = 2 / (1 / 2.0 + 1 / 1.0)
        assert best.throughput == pytest.approx(expected, rel=1e-9)
        assert worst.throughput == pytest.approx(worst.throughput, rel=1e-9)
        assert best.throughput == pytest.approx(worst.throughput, rel=1e-9)


class TestOnSimulatedRates:
    def test_support_at_most_n_types(self, smt_rates, mixed_workload):
        best = optimal_throughput(smt_rates, mixed_workload)
        assert best.support_size() <= mixed_workload.n_types

    def test_optimal_at_least_worst(self, smt_rates, mixed_workload):
        best = optimal_throughput(smt_rates, mixed_workload)
        worst = worst_throughput(smt_rates, mixed_workload)
        assert best.throughput >= worst.throughput - 1e-9

    def test_contexts_inferred_from_machine(self, smt_rates, mixed_workload):
        implicit = optimal_throughput(smt_rates, mixed_workload)
        explicit = optimal_throughput(smt_rates, mixed_workload, contexts=4)
        assert implicit.throughput == pytest.approx(explicit.throughput)

    def test_contexts_required_for_frozen_tables(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            optimal_throughput(synthetic_rates, AB)

    def test_bad_contexts_rejected(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            optimal_throughput(synthetic_rates, AB, contexts=0)

    def test_fraction_of_unused_coschedule_is_zero(self, synthetic_rates):
        best = optimal_throughput(synthetic_rates, AB, contexts=2)
        total = sum(
            best.fraction_of(cos) for cos in AB.coschedules(2)
        )
        assert total == pytest.approx(1.0)
