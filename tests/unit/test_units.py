"""Tests for the unit-of-work comparison (Section III-B)."""

from __future__ import annotations

import pytest

from repro.core.units import compare_units, instruction_rate_view
from repro.core.workload import Workload
from repro.errors import WorkloadError


class TestInstructionRateView:
    def test_rates_are_raw_ipc_totals(self, smt_rates):
        view = instruction_rate_view(
            smt_rates, ("bzip2", "mcf"), sizes=(2,)
        )
        cos = ("bzip2", "mcf")
        expected = dict(
            zip(smt_rates.result(cos).job_names, smt_rates.result(cos).ipcs)
        )
        assert view.type_rates(cos) == pytest.approx(expected)

    def test_multiplicity_accumulates(self, smt_rates):
        view = instruction_rate_view(smt_rates, ("hmmer",), sizes=(2,))
        cos = ("hmmer", "hmmer")
        assert view.type_rates(cos)["hmmer"] == pytest.approx(
            sum(smt_rates.result(cos).ipcs)
        )

    def test_empty_types_rejected(self, smt_rates):
        with pytest.raises(WorkloadError):
            instruction_rate_view(smt_rates, ())


class TestCompareUnits:
    @pytest.fixture(scope="class")
    def comparison(self, smt_rates, mixed_workload):
        return compare_units(smt_rates, mixed_workload)

    def test_both_units_present(self, comparison):
        assert set(comparison) == {"weighted", "instruction"}
        for values in comparison.values():
            assert set(values) == {"optimal", "fcfs", "worst", "gain"}

    def test_bounds_hold_under_both_units(self, comparison):
        for values in comparison.values():
            assert values["worst"] - 1e-9 <= values["fcfs"]
            assert values["fcfs"] <= values["optimal"] + 1e-9

    def test_qualitative_conclusion_unit_independent(self, comparison):
        """The paper: the optimal-over-FCFS margin is small under both
        the weighted and the raw instruction unit."""
        assert 0.0 <= comparison["weighted"]["gain"] < 0.20
        assert 0.0 <= comparison["instruction"]["gain"] < 0.20

    def test_units_differ_numerically(self, comparison):
        """Raw-IPC throughput is a different quantity (hmmer counts 4x
        more than mcf per unit time)."""
        assert comparison["weighted"]["fcfs"] != pytest.approx(
            comparison["instruction"]["fcfs"], rel=1e-3
        )
