"""Unit tests for the fault layer (``repro.queueing.faults``).

Three contracts under test:

* **Zero-fault identity** — ``FaultConfig()`` (no process enabled)
  routed through the fault-aware code path is bit-identical to
  ``faults=None`` on metrics *and* pick sequences: the runtime draws
  nothing and gates nothing when quiescent.
* **Engine agreement under faults** — crashes, outages, degraded
  episodes, retries, and shedding produce the same bits on the legacy,
  fast, and compiled engines (both probe backends): fault events fire
  at the same iteration points in every loop.
* **Recovery semantics** — retry budgets, backoff, abandonment, the
  restart/resume-fraction progress-loss policies, the shed valve, the
  livelock guard, and kill+resume checkpointing straight through a
  failure event.

Plus the robustness satellites: checkpoint-corruption diagnostics,
``JobQueue.remove_ids`` edge cases, and dispatcher behavior on an
empty machine set.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    CheckpointError,
    ConfigurationError,
    EngineStallError,
    WorkloadError,
)
from repro.experiments.registry import to_jsonable
from repro.microarch.codec import TypeCodec
from repro.microarch.rates import TableRates
from repro.queueing import checkpoint
from repro.queueing.cluster import Cluster, JobQueue, Machine
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.faults import FaultConfig, FaultRuntime
from repro.queueing.job import Job
from repro.queueing.schedulers import FcfsScheduler
from repro.core.workload import Workload


@pytest.fixture()
def pair_rates() -> TableRates:
    """Two types, two contexts, mild symbiosis (A|B beats the homo
    pairs per-job) — enough texture that scheduling decisions matter."""
    return TableRates(
        {
            ("A",): {"A": 1.0},
            ("B",): {"B": 0.8},
            ("A", "A"): {"A": 0.7},
            ("A", "B"): {"A": 0.9, "B": 0.7},
            ("B", "B"): {"B": 0.5},
        }
    )


def stream(n: int = 120, spacing: float = 0.25) -> list[Job]:
    """A deterministic two-type arrival stream (no RNG: the fault
    processes are the only stochastic element under test)."""
    sizes = (1.0, 2.0, 0.5)
    return [
        Job(
            job_id=i,
            job_type="AB"[i % 2],
            size=sizes[i % 3],
            arrival_time=i * spacing,
        )
        for i in range(n)
    ]


def make_machines(rates: TableRates, m: int) -> list[Machine]:
    return [
        Machine(machine_id=i, scheduler=FcfsScheduler(rates, 2))
        for i in range(m)
    ]


def make_cluster(rates: TableRates, m: int, dispatcher: str = "jsq") -> Cluster:
    return Cluster(
        rates,
        [FcfsScheduler(rates, 2) for _ in range(m)],
        make_dispatcher(
            dispatcher,
            rates=rates,
            workload=Workload.of("A", "B"),
            contexts=2,
        ),
    )


#: A fault config that exercises every process in a ~30-time-unit run:
#: frequent crashes, occasional correlated outages with a drain grace,
#: degraded episodes, retries with backoff, and a shed valve.
CHAOS = FaultConfig(
    seed=7,
    mtbf=4.0,
    mttr=1.0,
    degraded_mtbf=6.0,
    degraded_duration=1.5,
    degraded_factor=0.5,
    correlated_mtbf=15.0,
    blast_fraction=0.67,
    drain_grace=0.5,
    retry_budget=2,
    backoff_base=0.2,
    backoff_factor=2.0,
    crash_policy="resume_fraction",
    resume_fraction=0.5,
    shed_after=5.0,
)


def run_once(
    cluster: Cluster,
    *,
    faults: FaultConfig | None,
    engine: str,
    backend: str | None = None,
    **kwargs,
) -> tuple[object, list, dict | None]:
    picks: list = []
    metrics = cluster.run(
        stream(),
        engine=engine,
        backend=backend,
        pick_log=picks,
        faults=faults,
        **kwargs,
    )
    return to_jsonable(metrics), picks, cluster.last_fault_stats


def run_metrics(
    cluster: Cluster,
    *,
    faults: FaultConfig | None,
    engine: str,
    **kwargs,
):
    """Like :func:`run_once` but keeps the live metrics object (the
    jsonable payload only carries per-machine windows)."""
    metrics = cluster.run(stream(), engine=engine, faults=faults, **kwargs)
    return metrics, cluster.last_fault_stats


class TestFaultConfig:
    def test_defaults_are_inactive(self):
        config = FaultConfig()
        assert not config.active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mtbf": 0.0},
            {"mtbf": -1.0},
            {"degraded_mtbf": -2.0},
            {"correlated_mtbf": 0.0},
            {"mttr": 0.0},
            {"degraded_duration": -1.0},
            {"backoff_factor": 0.0},
            {"degraded_factor": 0.0},
            {"degraded_factor": 1.5},
            {"blast_fraction": 0.0},
            {"blast_fraction": 1.1},
            {"drain_grace": -0.1},
            {"retry_budget": -1},
            {"backoff_base": -0.5},
            {"crash_policy": "explode"},
            {"resume_fraction": 1.5},
            {"shed_after": -1.0},
            {"degraded_dispatch": "sometimes"},
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultConfig(**kwargs)

    def test_jsonable_round_trip(self):
        rebuilt = FaultConfig.from_jsonable(
            json.loads(json.dumps(CHAOS.to_jsonable()))
        )
        assert rebuilt == CHAOS

    def test_active_per_process(self):
        assert FaultConfig(mtbf=1.0).active
        assert FaultConfig(degraded_mtbf=1.0).active
        assert FaultConfig(correlated_mtbf=1.0).active
        # Recovery knobs alone enable nothing.
        assert not FaultConfig(retry_budget=0, shed_after=1.0).active


class TestZeroFaultIdentity:
    """An inactive FaultConfig must not move a single bit."""

    @pytest.mark.parametrize("engine", ["legacy", "fast", "compiled"])
    def test_inactive_config_is_bit_identical(self, pair_rates, engine):
        reference = run_once(
            make_cluster(pair_rates, 2), faults=None, engine=engine
        )
        gated = run_once(
            make_cluster(pair_rates, 2),
            faults=FaultConfig(seed=99),
            engine=engine,
        )
        assert gated[0] == reference[0]
        assert gated[1] == reference[1]
        # The fault-free run records no stats; the gated run records
        # a quiescent block.
        assert reference[2] is None
        assert gated[2] is not None
        assert gated[2]["crashes"] == 0
        assert gated[2]["availability"] == 1.0


class TestEngineAgreement:
    """The same chaos on every engine produces the same bits."""

    @pytest.mark.parametrize("dispatcher", ["round_robin", "jsq", "affinity"])
    def test_engines_agree_under_chaos(self, pair_rates, dispatcher):
        reference = run_once(
            make_cluster(pair_rates, 3, dispatcher),
            faults=CHAOS,
            engine="legacy",
        )
        for engine, backend in (
            ("fast", None),
            ("compiled", "tuples"),
            ("compiled", "numpy"),
        ):
            metrics, picks, stats = run_once(
                make_cluster(pair_rates, 3, dispatcher),
                faults=CHAOS,
                engine=engine,
                backend=backend,
            )
            label = f"{engine}/{backend or '-'} + {dispatcher}"
            assert metrics == reference[0], f"{label}: metrics diverge"
            assert picks == reference[1], f"{label}: picks diverge"
            assert stats == reference[2], f"{label}: fault stats diverge"

    def test_chaos_actually_happened(self, pair_rates):
        """Guard against the agreement test passing vacuously."""
        _, _, stats = run_once(
            make_cluster(pair_rates, 3), faults=CHAOS, engine="fast"
        )
        assert stats["crashes"] > 0
        assert stats["retried"] > 0
        assert stats["availability"] < 1.0

    def test_same_seed_is_deterministic(self, pair_rates):
        first = run_once(
            make_cluster(pair_rates, 2), faults=CHAOS, engine="compiled"
        )
        second = run_once(
            make_cluster(pair_rates, 2), faults=CHAOS, engine="compiled"
        )
        assert first == second

    def test_different_seeds_diverge(self, pair_rates):
        base = run_once(
            make_cluster(pair_rates, 2), faults=CHAOS, engine="fast"
        )
        other = run_once(
            make_cluster(pair_rates, 2),
            faults=FaultConfig(**{**CHAOS.to_jsonable(), "seed": 8}),
            engine="fast",
        )
        assert base[2] != other[2]


class TestRecoverySemantics:
    def test_accounting_closes(self, pair_rates):
        """Every offered job ends as completed, abandoned, or shed."""
        metrics, stats = run_metrics(
            make_cluster(pair_rates, 2), faults=CHAOS, engine="compiled"
        )
        assert (
            metrics.completed + stats["abandoned"] + stats["shed"]
            == len(stream())
        )

    def test_zero_budget_abandons_every_kill(self, pair_rates):
        config = FaultConfig(seed=3, mtbf=4.0, mttr=1.0, retry_budget=0)
        _, stats = run_metrics(
            make_cluster(pair_rates, 2), faults=config, engine="fast"
        )
        assert stats["jobs_killed"] > 0
        assert stats["retried"] == 0
        assert stats["abandoned"] == stats["jobs_killed"]

    def test_full_resume_loses_no_work(self, pair_rates):
        config = FaultConfig(
            seed=3, mtbf=4.0, mttr=1.0,
            crash_policy="resume_fraction", resume_fraction=1.0,
        )
        _, stats = run_metrics(
            make_cluster(pair_rates, 2), faults=config, engine="compiled"
        )
        assert stats["crashes"] > 0
        assert stats["lost_work"] == 0.0

    def test_restart_loses_at_least_resume_half(self, pair_rates):
        """Same seed → same failure timeline, so the loss policies are
        directly comparable: restart destroys everything the resume
        policy would have kept."""
        base = {**CHAOS.to_jsonable(), "correlated_mtbf": None}
        restart = FaultConfig(**{**base, "crash_policy": "restart"})
        resume = FaultConfig(
            **{
                **base,
                "crash_policy": "resume_fraction",
                "resume_fraction": 0.5,
            }
        )
        _, restart_stats = run_metrics(
            make_cluster(pair_rates, 2), faults=restart, engine="fast"
        )
        _, resume_stats = run_metrics(
            make_cluster(pair_rates, 2), faults=resume, engine="fast"
        )
        assert restart_stats["crashes"] > 0
        assert restart_stats["lost_work"] > resume_stats["lost_work"]

    def test_degraded_only_slows_but_never_kills(self, pair_rates):
        config = FaultConfig(
            seed=11, degraded_mtbf=3.0, degraded_duration=1.0,
            degraded_factor=0.5,
        )
        metrics, stats = run_metrics(
            make_cluster(pair_rates, 2), faults=config, engine="compiled"
        )
        assert stats["degrade_episodes"] > 0
        assert stats["degraded_fraction"] > 0.0
        assert stats["availability"] == 1.0
        assert stats["crashes"] == 0
        assert stats["lost_work"] == 0.0
        assert metrics.completed == len(stream())

    def test_degraded_run_is_slower(self, pair_rates):
        config = FaultConfig(
            seed=11, degraded_mtbf=3.0, degraded_duration=2.0,
            degraded_factor=0.25,
        )
        clean, _ = run_metrics(
            make_cluster(pair_rates, 2), faults=None, engine="fast"
        )
        slowed, _ = run_metrics(
            make_cluster(pair_rates, 2), faults=config, engine="fast"
        )
        assert slowed.mean_turnaround > clean.mean_turnaround

    def test_shed_valve_drops_blocked_arrivals(self, pair_rates):
        """One machine, long repairs, a short patience window: arrivals
        blocked behind the outage are shed instead of waiting forever."""
        config = FaultConfig(
            seed=2, mtbf=3.0, mttr=8.0, retry_budget=1, shed_after=0.5,
        )
        metrics, stats = run_metrics(
            make_cluster(pair_rates, 1), faults=config, engine="compiled"
        )
        assert stats["shed"] > 0
        assert (
            metrics.completed + stats["abandoned"] + stats["shed"]
            == len(stream())
        )

    def test_outages_with_drain_grace(self, pair_rates):
        config = FaultConfig(
            seed=5, correlated_mtbf=8.0, blast_fraction=1.0,
            drain_grace=0.5, mttr=1.0,
        )
        _, stats = run_metrics(
            make_cluster(pair_rates, 3), faults=config, engine="fast"
        )
        assert stats["outages"] > 0
        assert stats["drains"] > 0
        # blast_fraction=1.0 targets every machine per outage; machines
        # still down from the previous outage are skipped, so the floor
        # is one fresh crash per outage, not three.
        assert stats["crashes"] >= stats["outages"]


class TestStallGuard:
    """Four identical jobs on four machines all complete at the same
    instant: the last three completion events advance the clock by
    exactly zero, the shape a livelock produces."""

    def burst(self) -> list[Job]:
        return [
            Job(job_id=i, job_type="A", size=1.0, arrival_time=0.0)
            for i in range(4)
        ]

    @pytest.mark.parametrize("engine", ["legacy", "fast", "compiled"])
    def test_simultaneous_completions_trip_a_tiny_budget(
        self, pair_rates, engine
    ):
        with pytest.raises(EngineStallError) as excinfo:
            make_cluster(pair_rates, 4, "round_robin").run(
                self.burst(), engine=engine, stall_events=2
            )
        message = str(excinfo.value)
        assert "no clock progress" in message
        assert "in_system" in message

    def test_default_budget_tolerates_coincidences(self, pair_rates):
        metrics = make_cluster(pair_rates, 4, "round_robin").run(
            self.burst(), engine="fast"
        )
        assert metrics.completed == 4


class TestKillResumeThroughFailure:
    """Checkpoint mid-run — with failure events on both sides of the
    boundary — and resume bit-identically."""

    @pytest.mark.parametrize(
        "engine,backend",
        [("legacy", None), ("fast", None), ("compiled", "tuples")],
    )
    def test_round_trip_is_bit_identical(
        self, pair_rates, tmp_path, engine, backend
    ):
        reference = run_once(
            make_cluster(pair_rates, 2), faults=CHAOS, engine=engine,
            backend=backend,
        )

        picks: list = []
        handle = make_cluster(pair_rates, 2).start(
            stream(), engine=engine, backend=backend, pick_log=picks,
            faults=CHAOS,
        )
        finished = handle.advance(pause_at=12.0)
        assert not finished, "pause must land mid-run for a real test"
        path = tmp_path / "ckpt.json"
        checkpoint.save(path, checkpoint.capture(handle))
        handle.close()

        resumed_cluster = make_cluster(pair_rates, 2)
        resumed_picks: list = []
        resumed = checkpoint.restore(
            resumed_cluster,
            stream(),
            checkpoint.load(path),
            pick_log=resumed_picks,
        )
        resumed.advance()
        resumed.close()
        assert to_jsonable(resumed.result()) == reference[0]
        assert resumed_picks == reference[1][len(picks):]
        assert resumed_cluster.last_fault_stats == reference[2]

    def test_resume_under_different_faults_is_refused(
        self, pair_rates, tmp_path
    ):
        from repro.errors import SimulationError
        from repro.queueing.sharding import run_sharded

        cluster = make_cluster(pair_rates, 2)
        run_sharded(
            cluster,
            stream,
            boundaries=[10.0, 20.0],
            checkpoint_dir=tmp_path,
            faults=CHAOS,
        )
        # Completed runs clean up; fabricate an interrupted one by
        # re-running with a kill switch via a mid-plan checkpoint.
        handle = make_cluster(pair_rates, 2).start(
            stream(), engine="fast", faults=CHAOS
        )
        handle.advance(pause_at=10.0)
        payload = checkpoint.capture(
            handle,
            extra={
                "shard": 0,
                "boundaries": [10.0, 20.0],
                "accumulated": handle.take_window().to_state(),
            },
        )
        handle.close()
        checkpoint.save(tmp_path / "checkpoint.json", payload)
        with pytest.raises(SimulationError, match="different fault config"):
            run_sharded(
                make_cluster(pair_rates, 2),
                stream,
                boundaries=[10.0, 20.0],
                checkpoint_dir=tmp_path,
                faults=None,
            )


class TestCheckpointCorruption:
    """Satellite 2: short of a well-formed checkpoint, ``load`` raises
    a CheckpointError naming the file and expected format — never a
    bare JSONDecodeError/KeyError."""

    def make_payload(self, pair_rates, tmp_path):
        handle = make_cluster(pair_rates, 1).start(
            stream(20), engine="fast"
        )
        handle.advance(pause_at=2.0)
        payload = checkpoint.capture(handle)
        handle.close()
        path = tmp_path / "ckpt.json"
        checkpoint.save(path, payload)
        return path

    def test_valid_payload_loads(self, pair_rates, tmp_path):
        path = self.make_payload(pair_rates, tmp_path)
        assert checkpoint.load(path)["format"] == (
            checkpoint.CHECKPOINT_FORMAT
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            checkpoint.load(tmp_path / "absent.json")

    def test_truncated_file(self, pair_rates, tmp_path):
        path = self.make_payload(pair_rates, tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError) as excinfo:
            checkpoint.load(path)
        message = str(excinfo.value)
        assert "truncated or corrupt" in message
        assert checkpoint.CHECKPOINT_FORMAT in message

    def test_not_json_object(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointError, match="JSON object"):
            checkpoint.load(path)

    def test_wrong_format_version(self, pair_rates, tmp_path):
        path = self.make_payload(pair_rates, tmp_path)
        payload = json.loads(path.read_text())
        payload["format"] = "repro-checkpoint-v1"
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError) as excinfo:
            checkpoint.load(path)
        message = str(excinfo.value)
        assert "repro-checkpoint-v1" in message
        assert checkpoint.CHECKPOINT_FORMAT in message

    def test_missing_section(self, pair_rates, tmp_path):
        path = self.make_payload(pair_rates, tmp_path)
        payload = json.loads(path.read_text())
        del payload["machines"]
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="machines"):
            checkpoint.load(path)

    def test_fault_run_requires_fault_state(self, pair_rates, tmp_path):
        """A payload declaring a fault config but stripped of its
        runtime state is refused, not silently re-seeded."""
        handle = make_cluster(pair_rates, 1).start(
            stream(60), engine="fast", faults=CHAOS
        )
        handle.advance(pause_at=5.0)
        payload = checkpoint.capture(handle)
        handle.close()
        payload.pop("faults_state", None)
        path = tmp_path / "ckpt.json"
        checkpoint.save(path, payload)
        with pytest.raises(CheckpointError, match="fault"):
            checkpoint.restore(
                make_cluster(pair_rates, 1),
                stream(60),
                checkpoint.load(path),
            )


class TestJobQueueRemoveIds:
    """Satellite 3: ``remove_ids`` edge cases, with and without the
    per-type-code index."""

    def make_queue(self, *, indexed: bool) -> tuple[JobQueue, TypeCodec]:
        queue = JobQueue()
        codec = TypeCodec()
        if indexed:
            queue.enable_index(codec)
        for i, job_type in enumerate("AABBA"):
            job = Job(
                job_id=i, job_type=job_type, size=1.0, arrival_time=0.0
            )
            job.type_code = codec.encode(job_type)
            queue.admit(job)
        return queue, codec

    @pytest.mark.parametrize("indexed", [False, True])
    def test_empty_id_set_is_a_no_op(self, indexed):
        queue, _ = self.make_queue(indexed=indexed)
        queue.remove_ids(set(), set())
        assert [job.job_id for job in queue] == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("indexed", [False, True])
    def test_unknown_ids_are_ignored(self, indexed):
        queue, codec = self.make_queue(indexed=indexed)
        queue.remove_ids({97, 98}, {codec.encode("A")})
        assert len(queue) == 5

    def test_removes_only_named_pools(self):
        queue, codec = self.make_queue(indexed=True)
        a, b = codec.encode("A"), codec.encode("B")
        # Job 2 is a B, but only pool A is named: the flat list drops
        # it while pool B keeps a stale entry — exactly the contract
        # (callers must name every affected code).
        queue.remove_ids({0, 2}, {a})
        assert [job.job_id for job in queue] == [1, 3, 4]
        assert [job.job_id for job in queue.by_code[a]] == [1, 4]
        assert [job.job_id for job in queue.by_code[b]] == [2, 3]

    def test_codes_absent_from_index_are_tolerated(self):
        queue, codec = self.make_queue(indexed=True)
        queue.remove_ids({0}, {codec.encode("A"), 999, None})
        assert [job.job_id for job in queue] == [1, 2, 3, 4]

    @pytest.mark.parametrize("indexed", [False, True])
    def test_removing_everything_empties_the_queue(self, indexed):
        queue, codec = self.make_queue(indexed=indexed)
        codes = {codec.encode("A"), codec.encode("B")}
        queue.remove_ids({0, 1, 2, 3, 4}, codes)
        assert len(queue) == 0
        if indexed:
            assert all(not pool for pool in queue.by_code.values())

    def test_enable_index_seeds_existing_jobs(self):
        queue, codec = self.make_queue(indexed=False)
        queue.enable_index(codec)
        a = codec.encode("A")
        assert [job.job_id for job in queue.by_code[a]] == [0, 1, 4]


class TestDispatchersWithoutMachines:
    """Satellite 3: every dispatcher raises a WorkloadError — not an
    IndexError or ValueError from ``min()`` — when routing with no
    eligible machine (the state a fully-DOWN cluster presents)."""

    def job(self) -> Job:
        return Job(job_id=0, job_type="A", size=1.0, arrival_time=0.0)

    @pytest.mark.parametrize("name", ["round_robin", "jsq"])
    def test_simple_dispatchers_raise(self, name):
        dispatcher = make_dispatcher(name)
        with pytest.raises(WorkloadError, match="no eligible machine"):
            dispatcher.route(self.job(), [], [], 0.0)

    def test_affinity_raises(self, synthetic_rates):
        dispatcher = make_dispatcher(
            "affinity",
            rates=synthetic_rates,
            workload=Workload.of("A", "B"),
            contexts=2,
        )
        with pytest.raises(WorkloadError, match="no eligible machine"):
            dispatcher.route(self.job(), [], [], 0.0)

    def test_empty_eligible_with_machines_present(self, pair_rates):
        """Non-empty cluster, empty eligibility list — the fault-layer
        shape when every machine is DOWN or full."""
        machines = make_machines(pair_rates, 2)
        dispatcher = make_dispatcher("jsq")
        with pytest.raises(WorkloadError, match="no eligible machine"):
            dispatcher.route(self.job(), machines, [], 0.0)


class TestFaultRuntimeUnits:
    """Direct FaultRuntime mechanics not visible through a full run."""

    def test_quiescent_runtime_gates_nothing(self, pair_rates):
        machines = make_machines(pair_rates, 3)
        rt = FaultRuntime(FaultConfig(), machines)
        assert rt.dispatch_eligible() == [0, 1, 2]
        assert rt.any_dispatchable()
        assert rt.next_wake(0.0, True, 0) == float("inf")
        assert rt.idle()
        assert rt.retry_pending() == 0

    def test_state_round_trip(self, pair_rates):
        machines = make_machines(pair_rates, 2)
        rt = FaultRuntime(CHAOS, machines)
        state = json.loads(json.dumps(rt.state_dict()))
        fresh = FaultRuntime(CHAOS, machines)
        fresh.load_state(state)
        assert fresh.state_dict() == rt.state_dict()
