"""Unit tests for the CI perf-smoke gate (``tools/compare_bench.py``).

The gate is the last line of defense for the committed perf
trajectory, so its *failure modes* are part of its contract: a
half-landed change (new benchmark without a refreshed baseline, or a
baseline file with no usable trajectory point) must produce a clear
one-line diagnostic — never a bare ``KeyError``/``IndexError`` that
reads like the gate itself is broken.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import compare_bench  # noqa: E402


def write_results(path: Path, workloads: dict[str, dict[str, float]]):
    """A minimal pytest-benchmark JSON with the gate's naming scheme."""
    benches = []
    for workload, modes in workloads.items():
        for mode, seconds in modes.items():
            prefix = {
                "fast": "test_hotpath",
                "legacy": "test_hotpath_legacy",
                "compiled": "test_hotpath_compiled",
            }[mode]
            benches.append(
                {
                    "name": f"{prefix}[{workload}]",
                    "stats": {"min": seconds},
                }
            )
    path.write_text(json.dumps({"benchmarks": benches}))


def write_baseline(path: Path, trajectory: list[dict]):
    path.write_text(json.dumps({"version": 1, "trajectory": trajectory}))


BASELINE_POINT = {
    "point": 1,
    "benchmarks": {
        "saturated_demo": {
            "legacy_s": 1.0,
            "fast_s": 0.25,
            "compiled_s": 0.1,
            "completed": 100,
        }
    },
}


def test_matching_results_pass(tmp_path):
    results = tmp_path / "results.json"
    baseline = tmp_path / "baseline.json"
    write_results(
        results,
        {"saturated_demo": {"legacy": 1.0, "fast": 0.25, "compiled": 0.1}},
    )
    write_baseline(baseline, [BASELINE_POINT])
    assert compare_bench.main([str(results), str(baseline)]) == 0


def test_empty_trajectory_fails_with_clear_message(tmp_path):
    """An empty trajectory must exit with a diagnostic, not IndexError."""
    results = tmp_path / "results.json"
    baseline = tmp_path / "baseline.json"
    write_results(results, {"saturated_demo": {"fast": 0.25}})
    write_baseline(baseline, [])
    with pytest.raises(SystemExit) as excinfo:
        compare_bench.main([str(results), str(baseline)])
    assert "empty trajectory" in str(excinfo.value)


def test_pointless_trajectory_fails_with_clear_message(tmp_path):
    """A trajectory point with no benchmarks must not KeyError."""
    results = tmp_path / "results.json"
    baseline = tmp_path / "baseline.json"
    write_results(results, {"saturated_demo": {"fast": 0.25}})
    write_baseline(baseline, [{"point": 0}])
    with pytest.raises(SystemExit) as excinfo:
        compare_bench.main([str(results), str(baseline)])
    assert "records no benchmarks" in str(excinfo.value)


def test_unknown_benchmark_name_fails_with_clear_message(tmp_path, capsys):
    """A measured workload the trajectory has never seen is a
    half-landed change — named explicitly, not silently skipped."""
    results = tmp_path / "results.json"
    baseline = tmp_path / "baseline.json"
    write_results(
        results,
        {
            "saturated_demo": {"legacy": 1.0, "fast": 0.25, "compiled": 0.1},
            "brand_new_workload": {"fast": 0.5},
        },
    )
    write_baseline(baseline, [BASELINE_POINT])
    assert compare_bench.main([str(results), str(baseline)]) == 1
    err = capsys.readouterr().err
    assert "brand_new_workload" in err
    assert "missing from the committed trajectory" in err


def test_workload_missing_from_results_fails(tmp_path, capsys):
    results = tmp_path / "results.json"
    baseline = tmp_path / "baseline.json"
    write_results(results, {})
    write_baseline(baseline, [BASELINE_POINT])
    assert compare_bench.main([str(results), str(baseline)]) == 1
    assert "missing from results" in capsys.readouterr().err


def test_compiled_regression_fails(tmp_path, capsys):
    """Perf point 1 is gated: compiled time over tolerance x baseline
    fails even when the fast path is healthy."""
    results = tmp_path / "results.json"
    baseline = tmp_path / "baseline.json"
    write_results(
        results,
        {"saturated_demo": {"legacy": 1.0, "fast": 0.25, "compiled": 0.5}},
    )
    write_baseline(baseline, [BASELINE_POINT])
    assert (
        compare_bench.main(
            [str(results), str(baseline), "--tolerance", "2.0"]
        )
        == 1
    )
    assert "saturated_demo" in capsys.readouterr().err


def test_missing_compiled_measurement_fails(tmp_path, capsys):
    """A baseline with compiled_s requires a compiled measurement."""
    results = tmp_path / "results.json"
    baseline = tmp_path / "baseline.json"
    write_results(
        results, {"saturated_demo": {"legacy": 1.0, "fast": 0.25}}
    )
    write_baseline(baseline, [BASELINE_POINT])
    assert compare_bench.main([str(results), str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "compiled MISSING from results" in out


def test_baseline_entry_without_fast_s_fails(tmp_path, capsys):
    results = tmp_path / "results.json"
    baseline = tmp_path / "baseline.json"
    write_results(results, {"saturated_demo": {"fast": 0.25}})
    write_baseline(
        baseline,
        [{"point": 0, "benchmarks": {"saturated_demo": {"completed": 1}}}],
    )
    assert compare_bench.main([str(results), str(baseline)]) == 1
    assert "no fast_s" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The --scale gate (perf point 2: bench_scale.py payloads).
# ----------------------------------------------------------------------

SCALE_POINT = {
    "point": 2,
    "benchmarks": BASELINE_POINT["benchmarks"],
    "scale": {
        "max_shard_overhead": 1.5,
        "tracemalloc_ceiling_mb": 16.0,
        "rss_ceiling_mb": 80.0,
        "max_heap_growth": 3.0,
    },
}


def scale_case(n_jobs, *, sharded_s=None, heap_mb=2.2, rss_mb=34.0,
               completed=None):
    wall_s = n_jobs / 40_000
    return {
        "n_jobs": n_jobs,
        "wall_s": wall_s,
        "sharded_s": wall_s * 1.05 if sharded_s is None else sharded_s,
        "shards": 8,
        "completed": n_jobs if completed is None else completed,
        "jobs_per_s": 40_000,
        "tracemalloc_peak_mb": heap_mb,
        "peak_rss_mb": rss_mb,
    }


def write_scale(path: Path, cases: list[dict]):
    path.write_text(json.dumps({"config": {}, "cases": cases}))


def test_scale_only_invocation_passes(tmp_path, capsys):
    """--scale works without a pytest-benchmark results file."""
    baseline = tmp_path / "baseline.json"
    scale = tmp_path / "scale.json"
    write_baseline(baseline, [SCALE_POINT])
    write_scale(scale, [scale_case(100_000), scale_case(1_000_000)])
    assert compare_bench.main(
        [str(baseline), "--scale", str(scale)]
    ) == 0
    assert "scale smoke ok" in capsys.readouterr().out


def test_scale_gate_composes_with_perf_gate(tmp_path):
    """Both positional results and --scale in one invocation."""
    results = tmp_path / "results.json"
    baseline = tmp_path / "baseline.json"
    scale = tmp_path / "scale.json"
    write_results(
        results,
        {"saturated_demo": {"legacy": 1.0, "fast": 0.25, "compiled": 0.1}},
    )
    write_baseline(baseline, [SCALE_POINT])
    write_scale(scale, [scale_case(100_000)])
    assert compare_bench.main(
        [str(results), str(baseline), "--scale", str(scale)]
    ) == 0


def test_scale_shard_overhead_regression_fails(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    scale = tmp_path / "scale.json"
    write_baseline(baseline, [SCALE_POINT])
    write_scale(
        scale, [scale_case(100_000, sharded_s=100_000 / 40_000 * 2.0)]
    )
    assert compare_bench.main(
        [str(baseline), "--scale", str(scale)]
    ) == 1
    assert "shard overhead" in capsys.readouterr().err


def test_scale_memory_ceiling_regression_fails(tmp_path, capsys):
    """A heap peak past the committed ceiling fails — the constant-
    memory contract, gated absolutely."""
    baseline = tmp_path / "baseline.json"
    scale = tmp_path / "scale.json"
    write_baseline(baseline, [SCALE_POINT])
    write_scale(scale, [scale_case(100_000, heap_mb=64.0)])
    assert compare_bench.main(
        [str(baseline), "--scale", str(scale)]
    ) == 1
    assert "heap peak" in capsys.readouterr().err


def test_scale_flatness_regression_fails(tmp_path, capsys):
    """Heap growing with the job count — even under the ceiling — is a
    streaming regression (completed jobs being retained again)."""
    baseline = tmp_path / "baseline.json"
    scale = tmp_path / "scale.json"
    write_baseline(baseline, [SCALE_POINT])
    write_scale(
        scale,
        [
            scale_case(100_000, heap_mb=2.0),
            scale_case(1_000_000, heap_mb=12.0),
        ],
    )
    assert compare_bench.main(
        [str(baseline), "--scale", str(scale)]
    ) == 1
    assert "flatness" in capsys.readouterr().err


def test_scale_truncated_run_fails(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    scale = tmp_path / "scale.json"
    write_baseline(baseline, [SCALE_POINT])
    write_scale(scale, [scale_case(100_000, completed=99_000)])
    assert compare_bench.main(
        [str(baseline), "--scale", str(scale)]
    ) == 1
    assert "completed" in capsys.readouterr().err


def test_scale_block_missing_fails_with_clear_message(tmp_path):
    baseline = tmp_path / "baseline.json"
    scale = tmp_path / "scale.json"
    write_baseline(baseline, [BASELINE_POINT])
    write_scale(scale, [scale_case(100_000)])
    with pytest.raises(SystemExit) as excinfo:
        compare_bench.main([str(baseline), "--scale", str(scale)])
    assert "records no scale block" in str(excinfo.value)


# ----------------------------------------------------------------------
# The --tournament gate (estimation sanity invariants).
# ----------------------------------------------------------------------


def tournament_cell(noise, degradation, *, policy="maxit",
                    scenario="baseline_poisson", rep=0, completed=50,
                    est_completed=None):
    oracle_tp = 2.0
    return {
        "scenario": scenario,
        "policy": policy,
        "noise": noise,
        "warmup_frac": 0.0,
        "rep": rep,
        "oracle_throughput": oracle_tp,
        "est_throughput": oracle_tp * (1.0 - degradation),
        "tp_degradation": degradation,
        "oracle_completed": completed,
        "est_completed": (
            completed if est_completed is None else est_completed
        ),
    }


def write_tournament(path: Path, cells: list[dict], *, wrap=False):
    payload = {"noise_levels": sorted({c["noise"] for c in cells}),
               "cells": cells}
    if wrap:
        payload = {"name": "policy_tournament", "rows": payload}
    path.write_text(json.dumps(payload))


def healthy_cells():
    return [
        tournament_cell(0.0, 0.0),
        tournament_cell(0.0, 0.0, rep=1),
        tournament_cell(0.4, 0.02),
        tournament_cell(0.4, -0.01, rep=1),
    ]


def test_tournament_healthy_passes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    tournament = tmp_path / "tournament.json"
    write_baseline(baseline, [BASELINE_POINT])
    write_tournament(tournament, healthy_cells())
    assert compare_bench.main(
        [str(baseline), "--tournament", str(tournament)]
    ) == 0
    assert "tournament sanity ok" in capsys.readouterr().out


def test_tournament_accepts_results_dir_wrapper(tmp_path):
    """The runner's --results-dir file nests the payload under rows."""
    baseline = tmp_path / "baseline.json"
    tournament = tmp_path / "tournament.json"
    write_baseline(baseline, [BASELINE_POINT])
    write_tournament(tournament, healthy_cells(), wrap=True)
    assert compare_bench.main(
        [str(baseline), "--tournament", str(tournament)]
    ) == 0


def test_tournament_zero_noise_drift_fails(tmp_path, capsys):
    """A zero-noise cell that is not bit-identical to its oracle twin
    is an estimation-stack bug, whatever its sign."""
    baseline = tmp_path / "baseline.json"
    tournament = tmp_path / "tournament.json"
    write_baseline(baseline, [BASELINE_POINT])
    cells = healthy_cells()
    cells[0] = tournament_cell(0.0, 1e-4)
    write_tournament(tournament, cells)
    assert compare_bench.main(
        [str(baseline), "--tournament", str(tournament)]
    ) == 1
    assert "bit-identical" in capsys.readouterr().err


def test_tournament_zero_noise_completion_drift_fails(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    tournament = tmp_path / "tournament.json"
    write_baseline(baseline, [BASELINE_POINT])
    cells = healthy_cells()
    cells[1] = tournament_cell(0.0, 0.0, rep=1, est_completed=49)
    write_tournament(tournament, cells)
    assert compare_bench.main(
        [str(baseline), "--tournament", str(tournament)]
    ) == 1
    assert "49 vs 50" in capsys.readouterr().err


def test_tournament_inverted_price_of_information_fails(tmp_path, capsys):
    """Estimates systematically beating the oracle at high noise means
    the oracle side of the pairing is broken."""
    baseline = tmp_path / "baseline.json"
    tournament = tmp_path / "tournament.json"
    write_baseline(baseline, [BASELINE_POINT])
    cells = [
        tournament_cell(0.0, 0.0),
        tournament_cell(0.4, -0.10),
        tournament_cell(0.4, -0.12, rep=1),
    ]
    write_tournament(tournament, cells)
    assert compare_bench.main(
        [str(baseline), "--tournament", str(tournament)]
    ) == 1
    assert "beat the oracle" in capsys.readouterr().err


def test_tournament_slack_is_configurable(tmp_path):
    baseline = tmp_path / "baseline.json"
    tournament = tmp_path / "tournament.json"
    write_baseline(baseline, [BASELINE_POINT])
    cells = [
        tournament_cell(0.0, 0.0),
        tournament_cell(0.4, -0.10),
    ]
    write_tournament(tournament, cells)
    assert compare_bench.main(
        [str(baseline), "--tournament", str(tournament),
         "--tournament-slack", "0.2"]
    ) == 0


def test_tournament_without_controls_fails(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    tournament = tmp_path / "tournament.json"
    write_baseline(baseline, [BASELINE_POINT])
    write_tournament(tournament, [tournament_cell(0.4, 0.02)])
    assert compare_bench.main(
        [str(baseline), "--tournament", str(tournament)]
    ) == 1
    assert "no zero-noise control cells" in capsys.readouterr().err


def test_tournament_without_noise_fails(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    tournament = tmp_path / "tournament.json"
    write_baseline(baseline, [BASELINE_POINT])
    write_tournament(tournament, [tournament_cell(0.0, 0.0)])
    assert compare_bench.main(
        [str(baseline), "--tournament", str(tournament)]
    ) == 1
    assert "no noisy cells" in capsys.readouterr().err


def test_tournament_empty_fails_with_clear_message(tmp_path):
    baseline = tmp_path / "baseline.json"
    tournament = tmp_path / "tournament.json"
    write_baseline(baseline, [BASELINE_POINT])
    tournament.write_text(json.dumps({"cells": []}))
    with pytest.raises(SystemExit) as excinfo:
        compare_bench.main([str(baseline), "--tournament", str(tournament)])
    assert "no cells" in str(excinfo.value)


# ----------------------------------------------------------------------
# The --faults gate (fault-layer structural invariants).
# ----------------------------------------------------------------------


def fault_row(mode, *, scenario="baseline_poisson", dispatcher="jsq",
              throughput=2.0, availability=1.0, completed=250,
              turnaround=12.5, lost_work=0.0, crashes=0, retried=0,
              abandoned=0, shed=0):
    if mode.startswith("mtbf="):
        fraction = float(mode[len("mtbf="):])
        mtbf, mttr = fraction * 100.0, 5.0
    else:
        mtbf = mttr = 0.0
    return {
        "scenario": scenario,
        "dispatcher": dispatcher,
        "mode": mode,
        "mtbf": mtbf,
        "mttr": mttr,
        "n_machines": 3,
        "n_jobs": 250,
        "throughput": throughput,
        "goodput": throughput - lost_work / 100.0,
        "mean_turnaround": turnaround,
        "availability": availability,
        "degraded_fraction": 0.0,
        "lost_work": lost_work,
        "crashes": crashes,
        "retried": retried,
        "abandoned": abandoned,
        "shed": shed,
        "completed": completed,
        "engine": "compiled",
    }


def healthy_fault_rows():
    rows = []
    for dispatcher in ("round_robin", "jsq"):
        rows.append(fault_row("none", dispatcher=dispatcher))
        rows.append(fault_row("zero", dispatcher=dispatcher))
        for fraction, avail in ((0.08, 0.70), (0.25, 0.85), (0.75, 0.95)):
            rows.append(fault_row(
                f"mtbf={fraction:g}", dispatcher=dispatcher,
                throughput=1.8, availability=avail, completed=240,
                lost_work=8.0, crashes=4, retried=6, abandoned=1,
            ))
    return rows


def write_faults(path: Path, rows: list[dict], *, wrap=False):
    payload = {"name": "fault_sweep", "rows": rows} if wrap else rows
    path.write_text(json.dumps(payload))


def test_faults_healthy_passes(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    faults = tmp_path / "faults.json"
    write_baseline(baseline, [BASELINE_POINT])
    write_faults(faults, healthy_fault_rows())
    assert compare_bench.main(
        [str(baseline), "--faults", str(faults)]
    ) == 0
    assert "fault smoke ok" in capsys.readouterr().out


def test_faults_accepts_results_dir_wrapper(tmp_path):
    """The runner's --results-dir file nests the rows under "rows"."""
    baseline = tmp_path / "baseline.json"
    faults = tmp_path / "faults.json"
    write_baseline(baseline, [BASELINE_POINT])
    write_faults(faults, healthy_fault_rows(), wrap=True)
    assert compare_bench.main(
        [str(baseline), "--faults", str(faults)]
    ) == 0


def test_faults_zero_identity_drift_fails(tmp_path, capsys):
    """A "zero" row deviating from its "none" twin on any outcome
    column is an engine bug — the identity is structural."""
    baseline = tmp_path / "baseline.json"
    faults = tmp_path / "faults.json"
    write_baseline(baseline, [BASELINE_POINT])
    rows = healthy_fault_rows()
    for row in rows:
        if row["mode"] == "zero" and row["dispatcher"] == "jsq":
            row["throughput"] = 1.999999
    write_faults(faults, rows)
    assert compare_bench.main(
        [str(baseline), "--faults", str(faults)]
    ) == 1
    err = capsys.readouterr().err
    assert "bit-identical" in err
    assert "throughput" in err


def test_faults_zero_identity_counter_drift_fails(tmp_path, capsys):
    """Even a single spurious retry under a default FaultConfig breaks
    the identity — the counters are part of the contract."""
    baseline = tmp_path / "baseline.json"
    faults = tmp_path / "faults.json"
    write_baseline(baseline, [BASELINE_POINT])
    rows = healthy_fault_rows()
    for row in rows:
        if row["mode"] == "zero" and row["dispatcher"] == "round_robin":
            row["retried"] = 1
    write_faults(faults, rows)
    assert compare_bench.main(
        [str(baseline), "--faults", str(faults)]
    ) == 1
    assert "retried" in capsys.readouterr().err


def test_faults_nan_turnaround_matches_itself(tmp_path):
    """Saturated cells report turnaround as NaN on both sides of the
    identity; NaN != NaN must not produce a spurious failure."""
    baseline = tmp_path / "baseline.json"
    faults = tmp_path / "faults.json"
    write_baseline(baseline, [BASELINE_POINT])
    rows = healthy_fault_rows()
    for row in rows:
        if row["mode"] in ("none", "zero"):
            row["mean_turnaround"] = float("nan")
    write_faults(faults, rows)
    assert compare_bench.main(
        [str(baseline), "--faults", str(faults)]
    ) == 0


def test_faults_missing_control_row_fails(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    faults = tmp_path / "faults.json"
    write_baseline(baseline, [BASELINE_POINT])
    rows = [r for r in healthy_fault_rows()
            if not (r["mode"] == "none" and r["dispatcher"] == "jsq")]
    write_faults(faults, rows)
    assert compare_bench.main(
        [str(baseline), "--faults", str(faults)]
    ) == 1
    assert "missing its 'none' and/or 'zero' control row" in (
        capsys.readouterr().err
    )


def test_faults_non_monotone_availability_fails(tmp_path, capsys):
    """Mean availability dropping as MTBF grows (beyond the slack)
    means the failure/repair processes are miscalibrated."""
    baseline = tmp_path / "baseline.json"
    faults = tmp_path / "faults.json"
    write_baseline(baseline, [BASELINE_POINT])
    rows = healthy_fault_rows()
    for row in rows:
        if row["mode"] == "mtbf=0.75":
            row["availability"] = 0.60
    write_faults(faults, rows)
    assert compare_bench.main(
        [str(baseline), "--faults", str(faults)]
    ) == 1
    assert "not monotone" in capsys.readouterr().err


def test_faults_slack_is_configurable(tmp_path):
    """A small availability dip inside the slack is stochastic wiggle,
    not a regression."""
    baseline = tmp_path / "baseline.json"
    faults = tmp_path / "faults.json"
    write_baseline(baseline, [BASELINE_POINT])
    rows = healthy_fault_rows()
    for row in rows:
        if row["mode"] == "mtbf=0.75":
            row["availability"] = 0.80  # 0.05 below the 0.25 point
    write_faults(faults, rows)
    assert compare_bench.main(
        [str(baseline), "--faults", str(faults)]
    ) == 1
    assert compare_bench.main(
        [str(baseline), "--faults", str(faults), "--faults-slack", "0.1"]
    ) == 0


def test_faults_single_grid_point_fails(tmp_path, capsys):
    """Monotonicity over one point is vacuous — the gate says so
    instead of silently passing."""
    baseline = tmp_path / "baseline.json"
    faults = tmp_path / "faults.json"
    write_baseline(baseline, [BASELINE_POINT])
    rows = [r for r in healthy_fault_rows()
            if r["mode"] in ("none", "zero", "mtbf=0.25")]
    write_faults(faults, rows)
    assert compare_bench.main(
        [str(baseline), "--faults", str(faults)]
    ) == 1
    assert "at least two MTBF grid points" in capsys.readouterr().err


def test_faults_empty_fails_with_clear_message(tmp_path):
    baseline = tmp_path / "baseline.json"
    faults = tmp_path / "faults.json"
    write_baseline(baseline, [BASELINE_POINT])
    faults.write_text(json.dumps([]))
    with pytest.raises(SystemExit) as excinfo:
        compare_bench.main([str(baseline), "--faults", str(faults)])
    assert "no rows" in str(excinfo.value)


def test_faults_composes_with_perf_gate(tmp_path):
    results = tmp_path / "results.json"
    baseline = tmp_path / "baseline.json"
    faults = tmp_path / "faults.json"
    write_results(
        results,
        {"saturated_demo": {"legacy": 1.0, "fast": 0.25, "compiled": 0.1}},
    )
    write_baseline(baseline, [BASELINE_POINT])
    write_faults(faults, healthy_fault_rows())
    assert compare_bench.main(
        [str(results), str(baseline), "--faults", str(faults)]
    ) == 0


def test_tournament_composes_with_perf_gate(tmp_path):
    results = tmp_path / "results.json"
    baseline = tmp_path / "baseline.json"
    tournament = tmp_path / "tournament.json"
    write_results(
        results,
        {"saturated_demo": {"legacy": 1.0, "fast": 0.25, "compiled": 0.1}},
    )
    write_baseline(baseline, [BASELINE_POINT])
    write_tournament(tournament, healthy_cells())
    assert compare_bench.main(
        [str(results), str(baseline), "--tournament", str(tournament)]
    ) == 0
