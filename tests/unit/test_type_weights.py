"""Tests for generalized per-type work weights (Section III-D remark)."""

from __future__ import annotations

import pytest

from repro.core.fcfs import fcfs_throughput
from repro.core.optimal import optimal_throughput, worst_throughput
from repro.core.workload import Workload
from repro.errors import WorkloadError
from repro.experiments.skew_exp import geometric_weights

AB = Workload.of("A", "B")


class TestWeightedLp:
    def test_uniform_weights_match_default(self, synthetic_rates):
        default = optimal_throughput(synthetic_rates, AB, contexts=2)
        uniform = optimal_throughput(
            synthetic_rates, AB, contexts=2,
            type_weights={"A": 1.0, "B": 1.0},
        )
        assert uniform.throughput == pytest.approx(default.throughput)

    def test_weights_normalized(self, synthetic_rates):
        a = optimal_throughput(
            synthetic_rates, AB, contexts=2,
            type_weights={"A": 1.0, "B": 3.0},
        )
        b = optimal_throughput(
            synthetic_rates, AB, contexts=2,
            type_weights={"A": 10.0, "B": 30.0},
        )
        assert a.throughput == pytest.approx(b.throughput)

    def test_work_shares_respected(self, synthetic_rates):
        weights = {"A": 1.0, "B": 3.0}
        schedule = optimal_throughput(
            synthetic_rates, AB, contexts=2, type_weights=weights
        )
        work = {"A": 0.0, "B": 0.0}
        for cos, fraction in schedule.fractions.items():
            for b, rate in synthetic_rates.type_rates(cos).items():
                work[b] += fraction * rate
        assert work["B"] / work["A"] == pytest.approx(3.0, rel=1e-6)

    def test_missing_weight_rejected(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            optimal_throughput(
                synthetic_rates, AB, contexts=2, type_weights={"A": 1.0}
            )

    def test_nonpositive_weight_rejected(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            optimal_throughput(
                synthetic_rates, AB, contexts=2,
                type_weights={"A": 1.0, "B": 0.0},
            )


class TestWeightedFcfs:
    def test_uniform_matches_default(self, synthetic_rates):
        default = fcfs_throughput(synthetic_rates, AB, contexts=2)
        uniform = fcfs_throughput(
            synthetic_rates, AB, contexts=2,
            type_weights={"A": 2.0, "B": 2.0},
        )
        assert uniform.throughput == pytest.approx(default.throughput)

    def test_skewed_draw_shifts_mix(self, insensitive_rates):
        """With A drawn 9x more often, AA coschedules dominate."""
        result = fcfs_throughput(
            insensitive_rates, AB, contexts=2,
            type_weights={"A": 9.0, "B": 1.0},
        )
        assert result.fraction_of(("A", "A")) > 0.5

    def test_fcfs_within_weighted_lp_bounds(self, synthetic_rates):
        """With matching weights, weighted FCFS is a feasible point of
        the weighted LP (equal job sizes make draw shares equal work
        shares)."""
        weights = {"A": 1.0, "B": 2.0}
        fcfs = fcfs_throughput(
            synthetic_rates, AB, contexts=2, type_weights=weights
        )
        best = optimal_throughput(
            synthetic_rates, AB, contexts=2, type_weights=weights
        )
        worst = worst_throughput(
            synthetic_rates, AB, contexts=2, type_weights=weights
        )
        assert worst.throughput - 1e-6 <= fcfs.throughput
        assert fcfs.throughput <= best.throughput + 1e-6


class TestSkewRemark:
    def test_geometric_weights(self):
        weights = geometric_weights(Workload.of("a", "b", "c"), 2.0)
        assert weights == {"a": 1.0, "b": 2.0, "c": 4.0}
        with pytest.raises(ValueError):
            geometric_weights(AB, 0.0)

    def test_skew_reduces_symbiotic_headroom(self, smt_rates, mixed_workload):
        """The paper's Section-III-D remark, quantified: a heavily
        skewed workload leaves less optimal-over-FCFS headroom than the
        equal-work one."""
        def gain(weights):
            best = optimal_throughput(
                smt_rates, mixed_workload, type_weights=weights
            ).throughput
            base = fcfs_throughput(
                smt_rates, mixed_workload, type_weights=weights
            ).throughput
            return best / base - 1.0

        equal = gain(None)
        skewed = gain(geometric_weights(mixed_workload, 10.0))
        assert skewed < equal
        assert skewed < 0.03
