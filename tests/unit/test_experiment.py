"""Tests for the latency / saturation experiment wrappers."""

from __future__ import annotations

import pytest

from repro.core.fcfs import fcfs_throughput
from repro.core.workload import Workload
from repro.errors import WorkloadError
from repro.microarch.rates import TableRates
from repro.queueing.experiment import (
    run_latency_experiment,
    run_saturation_experiment,
)

AB = Workload.of("A", "B")


@pytest.fixture()
def rates() -> TableRates:
    return TableRates(
        {
            ("A",): {"A": 1.0},
            ("B",): {"B": 1.0},
            ("A", "A"): {"A": 1.6},
            ("A", "B"): {"A": 0.9, "B": 0.5},
            ("B", "B"): {"B": 0.8},
        }
    )


class TestLatencyExperiment:
    def test_metrics_sane(self, rates):
        result = run_latency_experiment(
            rates, AB, "fcfs", load=0.8, n_jobs=3_000, seed=1, contexts=2
        )
        assert result.mean_turnaround > 0.0
        assert 0.0 < result.utilization <= 2.0
        assert 0.0 <= result.empty_fraction < 1.0
        assert result.scheduler_name == "fcfs"
        assert result.load == 0.8

    def test_higher_load_increases_turnaround(self, rates):
        low = run_latency_experiment(
            rates, AB, "fcfs", load=0.5, n_jobs=4_000, seed=2, contexts=2
        )
        high = run_latency_experiment(
            rates, AB, "fcfs", load=0.95, n_jobs=4_000, seed=2, contexts=2
        )
        assert high.mean_turnaround > low.mean_turnaround
        assert high.empty_fraction < low.empty_fraction

    def test_same_seed_same_arrivals(self, rates):
        a = run_latency_experiment(
            rates, AB, "fcfs", load=0.8, n_jobs=1_000, seed=3, contexts=2
        )
        b = run_latency_experiment(
            rates, AB, "fcfs", load=0.8, n_jobs=1_000, seed=3, contexts=2
        )
        assert a.mean_turnaround == b.mean_turnaround

    def test_bad_load_rejected(self, rates):
        with pytest.raises(WorkloadError):
            run_latency_experiment(
                rates, AB, "fcfs", load=0.0, contexts=2
            )

    def test_contexts_required_for_frozen_rates(self, rates):
        with pytest.raises(WorkloadError):
            run_latency_experiment(rates, AB, "fcfs", load=0.5)


class TestSaturationExperiment:
    def test_fcfs_matches_analytic(self, rates):
        result = run_saturation_experiment(
            rates, AB, "fcfs", n_jobs=6_000, seed=4, contexts=2, backlog=8
        )
        analytic = fcfs_throughput(rates, AB, contexts=2).throughput
        assert result.throughput == pytest.approx(analytic, rel=0.05)

    def test_maxtp_beats_fcfs(self, rates):
        fcfs = run_saturation_experiment(
            rates, AB, "fcfs", n_jobs=6_000, seed=5, contexts=2, backlog=8
        )
        maxtp = run_saturation_experiment(
            rates, AB, "maxtp", n_jobs=6_000, seed=5, contexts=2, backlog=8
        )
        assert maxtp.throughput >= fcfs.throughput * 0.999

    def test_backlog_validation(self, rates):
        with pytest.raises(WorkloadError):
            run_saturation_experiment(
                rates, AB, "fcfs", contexts=2, backlog=1
            )
