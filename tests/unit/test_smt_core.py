"""Tests for the SMT core sharing model internals."""

from __future__ import annotations

import pytest

from repro.microarch.benchmarks import default_roster
from repro.microarch.config import FetchPolicy, RobPolicy, smt_machine
from repro.microarch.smt_core import evaluate_smt

ROSTER = default_roster()
MACHINE = smt_machine()


def evaluate(names, machine=MACHINE, ipcs=None, shares=None):
    jobs = [ROSTER[n] for n in names]
    n = len(jobs)
    ipcs = ipcs or [1.0] * n
    shares = shares or [machine.llc_mb / n] * n
    return evaluate_smt(machine, jobs, ipcs, shares)


class TestEvaluateSmt:
    def test_output_shapes(self):
        result = evaluate(["bzip2", "mcf", "hmmer"])
        assert len(result.next_ipcs) == 3
        assert len(result.next_shares) == 3
        assert len(result.mpkis) == 3
        assert len(result.windows) == 3
        assert len(result.stall_fractions) == 3

    def test_positive_rates(self):
        result = evaluate(["mcf"] * 4)
        assert all(ipc > 0.0 for ipc in result.next_ipcs)

    def test_shares_conserve_llc(self):
        result = evaluate(["bzip2", "mcf", "hmmer", "sjeng"])
        assert sum(result.next_shares) == pytest.approx(MACHINE.llc_mb)

    def test_memory_thread_stalls_more(self):
        result = evaluate(["hmmer", "mcf"])
        hmmer_stall, mcf_stall = result.stall_fractions
        assert mcf_stall > hmmer_stall

    def test_windows_respect_rob_capacity(self):
        result = evaluate(["hmmer", "h264ref", "calculix", "tonto"])
        assert sum(result.windows) <= MACHINE.rob_size + 1e-9

    def test_static_rob_partitions_evenly(self):
        machine = smt_machine(rob_policy=RobPolicy.STATIC)
        result = evaluate(["hmmer", "mcf"], machine=machine)
        assert result.windows == (128.0, 128.0)

    def test_latency_includes_bus_delay(self):
        light = evaluate(["hmmer"])
        heavy = evaluate(
            ["libquantum"] * 4, ipcs=[0.4] * 4, shares=[1.0] * 4
        )
        assert heavy.memory_latency > light.memory_latency

    def test_icount_boosts_compute_over_rr(self):
        """With a memory-bound co-runner, ICOUNT gives the compute
        thread more throughput than round-robin fetch does."""
        icount = smt_machine(fetch_policy=FetchPolicy.ICOUNT)
        rr = smt_machine(fetch_policy=FetchPolicy.ROUND_ROBIN)
        mix = ["hmmer", "mcf", "mcf", "mcf"]
        ipc_icount = evaluate(mix, machine=icount).next_ipcs[0]
        ipc_rr = evaluate(mix, machine=rr).next_ipcs[0]
        assert ipc_icount > ipc_rr

    def test_state_length_validated(self):
        jobs = [ROSTER["bzip2"]]
        with pytest.raises(ValueError):
            evaluate_smt(MACHINE, jobs, [1.0, 1.0], [2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_smt(MACHINE, [], [], [])

    def test_fragmentation_shrinks_aggregate_width(self):
        """Four active compute threads get less aggregate dispatch than
        the nominal width (front-end fragmentation)."""
        result = evaluate(
            ["hmmer", "h264ref", "calculix", "tonto"],
            ipcs=[0.6] * 4,
        )
        assert sum(result.next_ipcs) < MACHINE.width
