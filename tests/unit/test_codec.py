"""Unit tests: TypeCodec interning and the compiled RunRateMemo."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.microarch.codec import TypeCodec
from repro.microarch.rates import TableRates
from repro.queueing.job import Job
from repro.queueing.ratememo import RunRateMemo
from repro.queueing.schedulers import make_scheduler


@pytest.fixture()
def pair_rates() -> TableRates:
    return TableRates(
        {
            ("A",): {"A": 1.0},
            ("B",): {"B": 0.5},
            ("A", "A"): {"A": 1.6},
            ("A", "B"): {"A": 0.9, "B": 0.4},
            ("B", "B"): {"B": 0.8},
        }
    )


class TestTypeCodec:
    def test_interns_in_encounter_order(self):
        codec = TypeCodec()
        assert codec.encode("mcf") == 0
        assert codec.encode("hmmer") == 1
        assert codec.encode("mcf") == 0
        assert codec.size == 2
        assert codec.decode(1) == "hmmer"
        assert codec.names() == ("mcf", "hmmer")

    def test_seed_vocabulary(self):
        codec = TypeCodec(("b", "a"))
        assert codec.encode("b") == 0
        assert codec.encode("a") == 1
        assert codec.size == 2

    def test_canonical_names_sorts_by_name_not_id(self):
        # "z" interned first gets id 0; the canonical *name* tuple must
        # still be name-sorted, not id-sorted.
        codec = TypeCodec(("z", "a"))
        codes = (codec.encode("z"), codec.encode("a"))
        assert codec.canonical_names(tuple(sorted(codes))) == ("a", "z")

    def test_canonical_names_is_memoized(self):
        codec = TypeCodec(("x", "y"))
        key = (0, 1)
        assert codec.canonical_names(key) is codec.canonical_names(key)


class TestCompiledMemo:
    def test_compiled_entry_matches_string_path(self, pair_rates):
        memo = RunRateMemo(pair_rates)
        a, b = memo.codec.encode("A"), memo.codec.encode("B")
        entry = memo.compiled_entry(tuple(sorted((a, b))))
        assert entry.names == ("A", "B")
        assert entry.per_job == memo.per_job_rates(("A", "B"))
        assert entry.rates_by_code[a] == entry.per_job["A"]
        assert entry.rates_by_code[b] == entry.per_job["B"]

    def test_probe_candidates_matches_legacy_enumeration(self, pair_rates):
        memo = RunRateMemo(pair_rates)
        a, b = memo.codec.encode("A"), memo.codec.encode("B")
        probe = memo.probe_candidates(
            tuple(sorted(((a, 2), (b, 1)))), 2
        )
        assert [c.names for c in probe.candidates] == [
            ("A", "A"),
            ("A", "B"),
        ]
        aa, ab = probe.candidates
        assert aa.it == sum(pair_rates.type_rates(("A", "A")).values())
        assert ab.it == sum(pair_rates.type_rates(("A", "B")).values())
        assert probe.max_it_group == [aa]  # 1.6 > 1.3
        assert ab.srpt_items == ((a, 1, 0.9), (b, 1, 0.4))

    def test_probe_prunes_zero_rate_candidates(self):
        rates = TableRates(
            {
                ("A",): {"A": 1.0},
                ("B",): {"B": 0.0},
                ("A", "B"): {"A": 0.9, "B": 0.0},
                ("A", "A"): {"A": 1.5},
                ("B", "B"): {"B": 0.0},
            }
        )
        memo = RunRateMemo(rates)
        a, b = memo.codec.encode("A"), memo.codec.encode("B")
        probe = memo.probe_candidates(tuple(sorted(((a, 2), (b, 2)))), 2)
        assert [c.names for c in probe.feasible] == [("A", "A")]

    def test_stats_count_hits_and_misses(self, pair_rates):
        memo = RunRateMemo(pair_rates)
        a = memo.codec.encode("A")
        # First compiled lookup misses both the compiled layer and the
        # string layer beneath it (the entry is derived from it).
        memo.compiled_entry((a, a))
        memo.compiled_entry((a, a))
        memo.type_rates(("A", "B"))
        memo.type_rates(("B", "A"))
        stats = memo.stats
        assert stats.hits == 2
        assert stats.misses == 3
        assert stats.hit_rate == 0.4
        sizes = memo.sizes()
        assert sizes["compiled"] == 1
        # Only the coded path interns ("A" here); pure string lookups
        # ("A", "B") never touch the codec.
        assert sizes["interned_types"] == 1
        payload = memo.stats_dict()
        assert payload["sizes"] == sizes
        assert payload["label"] == "run-memo"

    def test_legacy_mode_has_no_compiled_state(self, pair_rates):
        memo = RunRateMemo(pair_rates, compiled=False)
        assert memo.compiled is False
        assert memo.type_rates(("B", "A")) == pair_rates.type_rates(
            ("A", "B")
        )

    def test_delegates_unknown_attributes(self, pair_rates):
        memo = RunRateMemo(pair_rates)
        assert memo.coschedules() == pair_rates.coschedules()


class TestStaleTypeCodes:
    def test_standalone_probe_ignores_foreign_codes(self, pair_rates):
        """A job carrying another run's type_code must be grouped by
        the probing scheduler's own codec — and left untouched (the
        field belongs to whichever event loop set it)."""
        jobs = [
            Job(job_id=0, job_type="A", size=1.0, arrival_time=0.0),
            Job(job_id=1, job_type="B", size=1.0, arrival_time=1.0),
        ]
        # Simulate ids left behind by a previous run whose codec
        # interned types in the opposite order (B=0, A=1).
        jobs[0].type_code = 1
        jobs[1].type_code = 0
        scheduler = make_scheduler("maxit", pair_rates, 2)
        memo = RunRateMemo(pair_rates)
        scheduler.bind_rates(memo)
        picked = scheduler.select(jobs, clock=0.0)
        # ("A", "A") has it=1.6 > ("A", "B")'s 1.3, but only one A is
        # present: the probe must still see {A: 1, B: 1} and pick the
        # mixed pair, oldest-first order.
        assert [job.job_id for job in picked] == [0, 1]
        assert jobs[0].type_code == 1
        assert jobs[1].type_code == 0

    def test_counterfactual_scheduler_inside_foreign_run(self, pair_rates):
        """A scheduler probing its own compiled memo (a counterfactual
        table) inside another run keeps working: the machine queue's
        index is keyed by the run's codec and must not be decoded
        with the scheduler's."""
        from repro.queueing.cluster import run_cluster
        from repro.queueing.dispatch import RoundRobinDispatcher
        from repro.queueing.schedulers import SrptScheduler

        counterfactual = TableRates(
            {
                ("A",): {"A": 0.5},
                ("B",): {"B": 1.0},
                ("A", "A"): {"A": 0.8},
                ("A", "B"): {"A": 0.45, "B": 0.8},
                ("B", "B"): {"B": 1.6},
            }
        )
        scheduler = SrptScheduler(RunRateMemo(counterfactual), 2)
        jobs = [
            Job(job_id=i, job_type=t, size=1.0, arrival_time=0.0)
            # "B" first: the run codec and the scheduler's codec
            # intern the types in different orders.
            for i, t in enumerate(("B", "A", "B", "A"))
        ]
        metrics = run_cluster(
            pair_rates, [scheduler], RoundRobinDispatcher(), jobs
        )
        assert metrics.completed == 4


class TestSrptZeroRateEquivalence:
    def test_srpt_skips_zero_rate_candidates_on_both_paths(self):
        rates = TableRates(
            {
                ("A",): {"A": 1.0},
                ("B",): {"B": 0.0},
                ("A", "B"): {"A": 0.9, "B": 0.0},
                ("A", "A"): {"A": 1.5},
                ("B", "B"): {"B": 0.0},
            }
        )
        jobs = [
            Job(job_id=0, job_type="B", size=1.0, arrival_time=0.0),
            Job(job_id=1, job_type="A", size=1.0, arrival_time=0.5),
            Job(job_id=2, job_type="A", size=2.0, arrival_time=1.0),
        ]
        string_pick = make_scheduler("srpt", rates, 2).select(jobs, 0.0)
        coded = make_scheduler("srpt", rates, 2)
        coded.bind_rates(RunRateMemo(rates))
        coded_pick = coded.select(jobs, 0.0)
        assert [j.job_id for j in string_pick] == [1, 2]
        assert [j.job_id for j in coded_pick] == [1, 2]

    def test_srpt_raises_when_nothing_is_feasible_on_both_paths(self):
        rates = TableRates({("B",): {"B": 0.0}, ("B", "B"): {"B": 0.0}})
        jobs = [Job(job_id=0, job_type="B", size=1.0, arrival_time=0.0)]
        with pytest.raises(SimulationError, match="no feasible"):
            make_scheduler("srpt", rates, 2).select(jobs, 0.0)
        coded = make_scheduler("srpt", rates, 2)
        coded.bind_rates(RunRateMemo(rates))
        with pytest.raises(SimulationError, match="no feasible"):
            coded.select(jobs, 0.0)
