"""Tests for the exception hierarchy."""

from __future__ import annotations

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    InfeasibleError,
    ModelError,
    ReproError,
    SimulationError,
    SolverError,
    UnboundedError,
    WorkloadError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError,
            ConvergenceError,
            InfeasibleError,
            ModelError,
            SimulationError,
            SolverError,
            UnboundedError,
            WorkloadError,
        ):
            assert issubclass(exc, ReproError)

    def test_convergence_is_model_error(self):
        assert issubclass(ConvergenceError, ModelError)

    def test_lp_errors_are_solver_errors(self):
        assert issubclass(InfeasibleError, SolverError)
        assert issubclass(UnboundedError, SolverError)

    def test_catchable_as_repro_error(self):
        try:
            raise WorkloadError("bad workload")
        except ReproError as caught:
            assert "bad workload" in str(caught)
