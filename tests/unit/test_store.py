"""Tests for on-disk rate-table persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.microarch.benchmarks import roster_by_name
from repro.microarch.config import quad_core_machine, smt_machine
from repro.microarch.rates import RateTable
from repro.microarch.store import load_rates, machine_fingerprint, save_rates


@pytest.fixture()
def small_table() -> RateTable:
    return RateTable(smt_machine(), roster_by_name("bzip2", "mcf"))


class TestSaveLoad:
    def test_round_trip(self, small_table, tmp_path):
        path = tmp_path / "rates.json"
        count = save_rates(small_table, path)
        assert count == 2 + 3 + 4 + 5  # sizes 1..4 of 2 types
        loaded, metadata = load_rates(path)
        cos = ("bzip2", "mcf")
        assert loaded.type_rates(cos) == pytest.approx(
            small_table.type_rates(cos)
        )
        assert metadata["name"] == "smt4"

    def test_explicit_coschedules(self, small_table, tmp_path):
        path = tmp_path / "rates.json"
        count = save_rates(
            small_table, path, coschedules=[("mcf", "bzip2")]
        )
        assert count == 1
        loaded, _ = load_rates(path)
        assert loaded.coschedules() == [("bzip2", "mcf")]

    def test_fingerprint_match_accepted(self, small_table, tmp_path):
        path = tmp_path / "rates.json"
        save_rates(small_table, path, coschedules=[("bzip2",)])
        loaded, _ = load_rates(path, expect_machine=smt_machine())
        assert loaded.coschedules() == [("bzip2",)]

    def test_fingerprint_mismatch_rejected(self, small_table, tmp_path):
        path = tmp_path / "rates.json"
        save_rates(small_table, path, coschedules=[("bzip2",)])
        with pytest.raises(ConfigurationError) as excinfo:
            load_rates(path, expect_machine=quad_core_machine())
        assert "different machine" in str(excinfo.value)

    def test_version_mismatch_rejected(self, small_table, tmp_path):
        path = tmp_path / "rates.json"
        save_rates(small_table, path, coschedules=[("bzip2",)])
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_rates(path)

    def test_fingerprint_contents(self):
        fp = machine_fingerprint(smt_machine())
        assert fp["kind"] == "smt"
        assert fp["fetch_policy"] == "icount"
        assert fp["rob_policy"] == "dynamic"
        assert fp["llc_mb"] == 4.0
