"""LP duality checks on the Section-IV program.

The duals of the throughput LP have a clean interpretation: the
time-budget dual is the marginal value of time, and the equal-work
duals price work imbalance between types.  Complementary slackness
links them to the primal support — a strong internal-consistency check
on both the formulation and the simplex implementation.
"""

from __future__ import annotations

import pytest

from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload

AB = Workload.of("A", "B")


class TestDuals:
    def test_duals_present(self, synthetic_rates):
        schedule = optimal_throughput(synthetic_rates, AB, contexts=2)
        assert "time_budget" in schedule.duals
        assert "equal_work[B]" in schedule.duals

    def test_complementary_slackness(self, synthetic_rates):
        """Every coschedule in the support satisfies
        it(s) = y_time + sum_b y_b (r_b(s) - r_ref(s)) exactly."""
        schedule = optimal_throughput(synthetic_rates, AB, contexts=2)
        y_time = schedule.duals["time_budget"]
        reference = AB.types[0]
        for s in schedule.fractions:
            rates = synthetic_rates.type_rates(s)
            it = sum(rates.values())
            adjusted = y_time
            for b in AB.types[1:]:
                adjusted += schedule.duals[f"equal_work[{b}]"] * (
                    rates.get(b, 0.0) - rates.get(reference, 0.0)
                )
            assert it == pytest.approx(adjusted, rel=1e-7)

    def test_unused_coschedules_priced_out(self, synthetic_rates):
        """Dual feasibility: for every coschedule (used or not),
        it(s) <= y_time + sum_b y_b (r_b - r_ref) for a max program."""
        schedule = optimal_throughput(synthetic_rates, AB, contexts=2)
        y_time = schedule.duals["time_budget"]
        reference = AB.types[0]
        for s in AB.coschedules(2):
            rates = synthetic_rates.type_rates(s)
            it = sum(rates.values())
            adjusted = y_time
            for b in AB.types[1:]:
                adjusted += schedule.duals[f"equal_work[{b}]"] * (
                    rates.get(b, 0.0) - rates.get(reference, 0.0)
                )
            assert it <= adjusted + 1e-7

    def test_strong_duality(self, synthetic_rates):
        """The time-budget dual equals the optimal throughput (the only
        constraint with a non-zero right-hand side)."""
        schedule = optimal_throughput(synthetic_rates, AB, contexts=2)
        assert schedule.duals["time_budget"] == pytest.approx(
            schedule.throughput, rel=1e-8
        )

    def test_duals_on_simulated_rates(self, smt_rates, mixed_workload):
        schedule = optimal_throughput(smt_rates, mixed_workload)
        assert schedule.duals["time_budget"] == pytest.approx(
            schedule.throughput, rel=1e-6
        )
