"""Tests for the multicore sharing model internals."""

from __future__ import annotations

import pytest

from repro.microarch.benchmarks import default_roster
from repro.microarch.config import quad_core_machine
from repro.microarch.multicore import evaluate_multicore

ROSTER = default_roster()
MACHINE = quad_core_machine()


def evaluate(names, ipcs=None, shares=None):
    jobs = [ROSTER[n] for n in names]
    n = len(jobs)
    ipcs = ipcs or [1.0] * n
    shares = shares or [MACHINE.llc_mb / n] * n
    return evaluate_multicore(MACHINE, jobs, ipcs, shares)


class TestEvaluateMulticore:
    def test_output_shapes(self):
        result = evaluate(["bzip2", "mcf"])
        assert len(result.next_ipcs) == 2
        assert len(result.next_shares) == 2
        assert len(result.mpkis) == 2

    def test_per_core_width_cap(self):
        result = evaluate(["hmmer", "h264ref", "calculix", "tonto"])
        assert all(ipc <= MACHINE.width for ipc in result.next_ipcs)

    def test_no_width_sharing_between_cores(self):
        """Unlike SMT, four compute jobs can together exceed one core's
        width on the quad (each owns a core)."""
        result = evaluate(
            ["hmmer", "h264ref", "calculix", "tonto"],
            ipcs=[2.0] * 4,
            shares=[0.5] * 4,
        )
        assert sum(result.next_ipcs) > MACHINE.width

    def test_shares_conserve_llc(self):
        result = evaluate(["mcf", "xalancbmk", "gcc.g23", "libquantum"])
        assert sum(result.next_shares) == pytest.approx(MACHINE.llc_mb)

    def test_bus_contention_raises_latency(self):
        light = evaluate(["hmmer"])
        heavy = evaluate(["libquantum"] * 4, ipcs=[0.5] * 4)
        assert heavy.memory_latency > light.memory_latency

    def test_state_length_validated(self):
        with pytest.raises(ValueError):
            evaluate_multicore(MACHINE, [ROSTER["mcf"]], [1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_multicore(MACHINE, [], [], [])

    def test_compute_jobs_mostly_unaffected_by_each_other(self):
        alone = evaluate(["hmmer"], shares=[MACHINE.llc_mb])
        together = evaluate(["hmmer", "sjeng", "calculix", "tonto"])
        assert together.next_ipcs[0] > 0.6 * alone.next_ipcs[0]
