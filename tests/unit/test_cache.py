"""Tests for the shared-cache contention model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.microarch.cache import cache_shares

pressures = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=1,
    max_size=8,
)


class TestCacheShares:
    def test_single_job_gets_everything(self):
        assert cache_shares([5.0], 4.0) == [4.0]

    def test_zero_pressure_splits_evenly(self):
        assert cache_shares([0.0, 0.0], 4.0) == [2.0, 2.0]

    def test_higher_pressure_gets_more(self):
        low, high = cache_shares([1.0, 4.0], 8.0)
        assert high > low

    def test_floor_respected(self):
        shares = cache_shares([0.0001, 100.0], 4.0, floor_fraction=0.1)
        assert min(shares) >= 0.1 * 4.0 - 1e-12

    def test_concave_exponent_softens_dominance(self):
        linear = cache_shares([1.0, 9.0], 10.0, exponent=1.0, floor_fraction=0.0)
        concave = cache_shares([1.0, 9.0], 10.0, exponent=0.5, floor_fraction=0.0)
        assert concave[0] > linear[0]

    def test_equal_pressures_split_evenly(self):
        shares = cache_shares([2.0, 2.0, 2.0, 2.0], 8.0)
        assert all(s == pytest.approx(2.0) for s in shares)

    def test_empty_input(self):
        assert cache_shares([], 4.0) == []

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            cache_shares([1.0], 0.0)
        with pytest.raises(ValueError):
            cache_shares([-1.0, 1.0], 4.0)
        with pytest.raises(ValueError):
            cache_shares([1.0, 1.0], 4.0, exponent=0.0)
        with pytest.raises(ValueError):
            cache_shares([1.0] * 4, 4.0, floor_fraction=0.3)

    @given(pressures, st.floats(min_value=0.1, max_value=64.0))
    def test_conservation(self, pressure_list, total):
        shares = cache_shares(pressure_list, total)
        assert sum(shares) == pytest.approx(total, rel=1e-9)

    @given(pressures, st.floats(min_value=0.1, max_value=64.0))
    def test_all_nonnegative(self, pressure_list, total):
        assert all(s >= 0.0 for s in cache_shares(pressure_list, total))

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=6,
        )
    )
    def test_order_preserved(self, pressure_list):
        """More pressure never yields less cache."""
        shares = cache_shares(pressure_list, 16.0)
        pairs = sorted(zip(pressure_list, shares))
        for (p1, s1), (p2, s2) in zip(pairs, pairs[1:]):
            if p2 > p1:
                assert s2 >= s1 - 1e-12
