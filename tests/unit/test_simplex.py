"""Tests for the from-scratch simplex solver (repro.lp.simplex)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SolverError
from repro.lp.model import Model, Sense
from repro.lp.simplex import solve_standard_form
from repro.lp.solution import SolveStatus


def build(sense=Sense.MAXIMIZE):
    return Model("test", sense=sense)


class TestStandardFormSolver:
    def test_simple_max(self):
        # max x + y s.t. x + 2y <= 4, 3x + y <= 6 -> handled via model API
        m = build()
        x = m.add_variable("x")
        y = m.add_variable("y")
        m.add_constraint(x + 2 * y <= 4.0)
        m.add_constraint(3 * x + y <= 6.0)
        m.set_objective(x + y)
        solution = m.solve()
        assert solution.is_optimal
        assert solution.objective == pytest.approx(2.8)
        assert solution.value("x") == pytest.approx(1.6)
        assert solution.value("y") == pytest.approx(1.2)

    def test_equality_constraints(self):
        m = build(Sense.MINIMIZE)
        x = m.add_variable("x")
        y = m.add_variable("y")
        m.add_constraint(x + y == 10.0)
        m.set_objective(2 * x + 3 * y)
        solution = m.solve()
        assert solution.objective == pytest.approx(20.0)
        assert solution.value("x") == pytest.approx(10.0)

    def test_infeasible(self):
        m = build()
        x = m.add_variable("x")
        m.add_constraint(x >= 5.0)
        m.add_constraint(x <= 3.0)
        m.set_objective(x)
        solution = m.solve()
        assert solution.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        m = build()
        x = m.add_variable("x")
        m.set_objective(x)
        solution = m.solve()
        assert solution.status is SolveStatus.UNBOUNDED

    def test_degenerate_problem_terminates(self):
        # Classic degeneracy: multiple constraints meeting at a vertex.
        m = build()
        x = m.add_variable("x")
        y = m.add_variable("y")
        m.add_constraint(x + y <= 1.0)
        m.add_constraint(x + y <= 1.0)
        m.add_constraint(x <= 1.0)
        m.set_objective(x + y)
        solution = m.solve()
        assert solution.is_optimal
        assert solution.objective == pytest.approx(1.0)

    def test_redundant_rows_dropped(self):
        m = build(Sense.MINIMIZE)
        x = m.add_variable("x")
        y = m.add_variable("y")
        m.add_constraint(x + y == 4.0)
        m.add_constraint(2 * x + 2 * y == 8.0)  # redundant
        m.set_objective(x + 2 * y)
        solution = m.solve()
        assert solution.is_optimal
        assert solution.objective == pytest.approx(4.0)

    def test_lower_bound_shift(self):
        m = build(Sense.MINIMIZE)
        x = m.add_variable("x", lower=2.0)
        m.set_objective(x)
        solution = m.solve()
        assert solution.objective == pytest.approx(2.0)

    def test_free_variable(self):
        m = build(Sense.MINIMIZE)
        x = m.add_variable("x", lower=None)
        m.add_constraint(x >= -3.0)
        m.set_objective(x)
        solution = m.solve()
        assert solution.objective == pytest.approx(-3.0)
        assert solution.value("x") == pytest.approx(-3.0)

    def test_upper_bounds(self):
        m = build()
        x = m.add_variable("x", upper=1.5)
        y = m.add_variable("y", upper=2.5)
        m.set_objective(x + y)
        solution = m.solve()
        assert solution.objective == pytest.approx(4.0)

    def test_objective_constant(self):
        m = build(Sense.MINIMIZE)
        x = m.add_variable("x", lower=1.0)
        m.set_objective(x + 10.0)
        solution = m.solve()
        assert solution.objective == pytest.approx(11.0)

    def test_duals_on_binding_constraints(self):
        # max 3x + 2y s.t. x + y <= 4, x <= 2 -> optimum (2, 2).
        m = build()
        x = m.add_variable("x")
        y = m.add_variable("y")
        c1 = m.add_constraint(x + y <= 4.0, name="capacity")
        m.add_constraint(x <= 2.0, name="xcap")
        m.set_objective(3 * x + 2 * y)
        solution = m.solve()
        assert solution.objective == pytest.approx(10.0)
        # Relaxing 'capacity' by 1 raises the optimum by 2 (y increases).
        assert solution.duals["capacity"] == pytest.approx(2.0)
        assert c1.name == "capacity"

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(SolverError):
            solve_standard_form(
                np.array([1.0]), np.eye(2), np.array([1.0, 1.0])
            )

    def test_negative_rhs_rejected(self):
        with pytest.raises(SolverError):
            solve_standard_form(
                np.array([1.0, 0.0]),
                np.array([[1.0, 1.0]]),
                np.array([-1.0]),
            )

    def test_vertex_solution_support_bound(self):
        """A vertex optimum has at most (#rows) nonzero variables."""
        m = build()
        xs = [m.add_variable(f"x{i}") for i in range(10)]
        m.add_constraint(
            sum(x * 1.0 for x in xs[1:]) + xs[0] == 1.0, name="budget"
        )
        m.set_objective(sum((i + 1.0) * x for i, x in enumerate(xs)))
        solution = m.solve()
        assert solution.is_optimal
        assert len(solution.support()) <= 1
