"""Tests for fetch-policy weights and the water-filling allocator."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.microarch.config import FetchPolicy
from repro.microarch.fetch import rival_weights, water_fill


class TestRivalWeights:
    def test_round_robin_wastes_slots_on_stalled_threads(self):
        """Under RR a stalled thread still eats a share of fetch slots."""
        rr = rival_weights(
            FetchPolicy.ROUND_ROBIN, [0.1, 0.9], rr_slot_waste=0.5
        )
        assert rr == pytest.approx([0.55, 0.95])

    def test_round_robin_full_waste(self):
        assert rival_weights(
            FetchPolicy.ROUND_ROBIN, [0.1, 0.9], rr_slot_waste=1.0
        ) == [1.0, 1.0]

    def test_icount_rivals_below_rr(self):
        activities = [0.2, 0.6]
        icount = rival_weights(FetchPolicy.ICOUNT, activities, strength=2.5)
        rr = rival_weights(
            FetchPolicy.ROUND_ROBIN, activities, rr_slot_waste=0.5
        )
        assert all(i < r for i, r in zip(icount, rr))

    def test_bad_rr_waste_rejected(self):
        with pytest.raises(ValueError):
            rival_weights(
                FetchPolicy.ROUND_ROBIN, [0.5], rr_slot_waste=1.5
            )

    def test_icount_discounts_stalled_threads(self):
        """Under ICOUNT a mostly-stalled thread is a weak rival."""
        weights = rival_weights(FetchPolicy.ICOUNT, [1.0, 0.2], strength=2.5)
        assert weights[0] == pytest.approx(1.0)
        assert weights[1] < 0.5

    def test_zero_strength_equals_round_robin(self):
        weights = rival_weights(FetchPolicy.ICOUNT, [0.2, 0.7], strength=0.0)
        assert weights == [1.0, 1.0]

    def test_high_strength_approaches_activity(self):
        weights = rival_weights(FetchPolicy.ICOUNT, [0.3], strength=1e9)
        assert weights[0] == pytest.approx(0.3, abs=1e-6)

    def test_invalid_activity_rejected(self):
        with pytest.raises(ValueError):
            rival_weights(FetchPolicy.ICOUNT, [1.5])

    def test_monotone_in_activity(self):
        weights = rival_weights(
            FetchPolicy.ICOUNT, [0.0, 0.25, 0.5, 0.75, 1.0]
        )
        assert weights == sorted(weights)

    def test_bounded(self):
        for weight in rival_weights(FetchPolicy.ICOUNT, [0.0, 0.5, 1.0]):
            assert 0.0 <= weight <= 1.0


demands_st = st.lists(
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    min_size=1,
    max_size=6,
)


class TestWaterFill:
    def test_under_subscribed_grants_demands(self):
        alloc = water_fill([1.0, 0.5], [1.0, 1.0], 4.0)
        assert alloc == pytest.approx([1.0, 0.5])

    def test_over_subscribed_shares_capacity(self):
        alloc = water_fill([3.0, 3.0], [1.0, 1.0], 4.0)
        assert alloc == pytest.approx([2.0, 2.0])

    def test_weighted_split(self):
        alloc = water_fill([5.0, 5.0], [3.0, 1.0], 4.0)
        assert alloc == pytest.approx([3.0, 1.0])

    def test_leftover_redistributed(self):
        # Thread 0 only wants 0.5; thread 1 should absorb the rest.
        alloc = water_fill([0.5, 10.0], [1.0, 1.0], 4.0)
        assert alloc == pytest.approx([0.5, 3.5])

    def test_zero_capacity(self):
        assert water_fill([1.0, 2.0], [1.0, 1.0], 0.0) == [0.0, 0.0]

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            water_fill([1.0], [1.0, 2.0], 4.0)
        with pytest.raises(ValueError):
            water_fill([-1.0], [1.0], 4.0)
        with pytest.raises(ValueError):
            water_fill([1.0], [-1.0], 4.0)
        with pytest.raises(ValueError):
            water_fill([1.0], [1.0], -1.0)

    @given(demands_st, st.floats(min_value=0.0, max_value=10.0))
    def test_capacity_and_demand_caps(self, demands, capacity):
        weights = [1.0] * len(demands)
        alloc = water_fill(demands, weights, capacity)
        assert sum(alloc) <= capacity + 1e-9
        for a, d in zip(alloc, demands):
            assert -1e-12 <= a <= d + 1e-9

    @given(demands_st)
    def test_work_conserving(self, demands):
        """If total demand exceeds capacity, all capacity is used."""
        capacity = 1.0
        if sum(demands) >= capacity:
            alloc = water_fill(demands, [1.0] * len(demands), capacity)
            assert sum(alloc) == pytest.approx(capacity, abs=1e-9)
