"""Tests for the ASCII plot helpers."""

from __future__ import annotations

import pytest

from repro.util.asciiplot import hbar, scatter


class TestScatter:
    def test_contains_markers_and_labels(self):
        text = scatter(
            [1.0, 2.0, 3.0], [1.0, 4.0, 9.0], x_label="in", y_label="out"
        )
        assert "o" in text
        assert "out" in text
        assert "in" in text

    def test_extra_series(self):
        text = scatter(
            [0.0, 1.0],
            [0.0, 1.0],
            extra={"x": ([0.5], [0.9])},
        )
        assert "x" in text
        assert "o" in text

    def test_constant_series_does_not_crash(self):
        text = scatter([1.0, 1.0], [2.0, 2.0])
        assert "o" in text

    def test_dimension_checks(self):
        with pytest.raises(ValueError):
            scatter([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            scatter([], [])
        with pytest.raises(ValueError):
            scatter([1.0], [1.0], width=4)
        with pytest.raises(ValueError):
            scatter([1.0], [1.0], extra={"x": ([1.0], [])})

    def test_grid_dimensions(self):
        text = scatter([0, 1], [0, 1], width=30, height=10)
        lines = text.splitlines()
        # caption + height rows + x-axis line
        assert len(lines) == 1 + 10 + 1

    def test_corners_mapped_to_extremes(self):
        text = scatter([0.0, 10.0], [0.0, 10.0], width=20, height=8)
        lines = text.splitlines()
        assert lines[1].rstrip().endswith("o")  # top-right point
        assert "o" in lines[-2]  # bottom-left point


class TestHbar:
    def test_basic_bars(self):
        text = hbar(["a", "bb"], [1.0, 2.0])
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") > lines[0].count("#")

    def test_negative_bars_extend_left(self):
        text = hbar(["pos", "neg"], [0.5, -0.5], width=20)
        pos_line, neg_line = text.splitlines()
        assert pos_line.index("#") > neg_line.index("#")

    def test_values_annotated(self):
        text = hbar(["x"], [0.123])
        assert "+0.123" in text

    def test_zero_baseline(self):
        text = hbar(["a"], [5.0], zero=5.0)
        assert "#" not in text

    def test_errors(self):
        with pytest.raises(ValueError):
            hbar(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            hbar([], [])
