"""Tests for the memory-bus contention model."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.microarch.membus import bus_queueing_delay, bus_utilization


class TestBusUtilization:
    def test_zero_traffic(self):
        assert bus_utilization(0.0, 20.0) == 0.0

    def test_linear_region(self):
        assert bus_utilization(0.01, 20.0) == pytest.approx(0.2)

    def test_clamped(self):
        assert bus_utilization(1.0, 100.0) == 0.95
        assert bus_utilization(1.0, 100.0, max_utilization=0.9) == 0.9

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            bus_utilization(-0.1, 20.0)
        with pytest.raises(ValueError):
            bus_utilization(0.1, 0.0)


class TestBusQueueingDelay:
    def test_zero_at_zero_load(self):
        assert bus_queueing_delay(0.0, 20.0) == 0.0

    def test_md1_formula(self):
        # U = 0.5 -> delay = S * 0.5 / (2 * 0.5) = S / 2.
        assert bus_queueing_delay(0.025, 20.0) == pytest.approx(10.0)

    def test_explodes_near_saturation(self):
        low = bus_queueing_delay(0.02, 20.0)
        high = bus_queueing_delay(0.047, 20.0)
        assert high > 5 * low

    def test_finite_at_clamp(self):
        delay = bus_queueing_delay(10.0, 20.0)
        assert delay == pytest.approx(20.0 * 0.95 / (2 * 0.05))

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=1.0, max_value=100.0),
    )
    def test_nonnegative_and_monotone(self, rate, service):
        delay = bus_queueing_delay(rate, service)
        assert delay >= 0.0
        assert bus_queueing_delay(rate * 0.5, service) <= delay + 1e-12
