"""Tests for repro.util.multiset."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.multiset import (
    distinct_count,
    multiset_count,
    multiset_draw_probability,
    multisets,
    replace_one,
    sub_multisets,
)


class TestMultisets:
    def test_enumerates_combinations_with_repetition(self):
        assert list(multisets("AB", 2)) == [
            ("A", "A"),
            ("A", "B"),
            ("B", "B"),
        ]

    def test_paper_counts(self):
        # 4 types on 4 contexts -> 35 coschedules; 12 benchmarks -> 1365.
        assert len(list(multisets("ABCD", 4))) == 35
        assert len(list(multisets("ABCDEFGHIJKL", 4))) == 1365

    def test_size_zero_yields_empty_tuple(self):
        assert list(multisets("AB", 0)) == [()]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            multisets("AB", -1)

    def test_duplicate_items_rejected(self):
        with pytest.raises(ValueError):
            multisets("AA", 2)

    def test_results_are_canonically_sorted(self):
        for combo in multisets(("a", "b", "c"), 3):
            assert tuple(sorted(combo)) == combo


class TestMultisetCount:
    def test_matches_enumeration(self):
        for n, k in [(1, 1), (2, 3), (4, 4), (5, 2)]:
            items = [str(i) for i in range(n)]
            assert multiset_count(n, k) == len(list(multisets(items, k)))

    def test_formula(self):
        assert multiset_count(4, 4) == math.comb(7, 4) == 35

    def test_zero_items(self):
        assert multiset_count(0, 0) == 1
        assert multiset_count(0, 3) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            multiset_count(-1, 2)


class TestDrawProbability:
    def test_homogeneous_four_of_four(self):
        # P(AAAA) = (1/4)^4; there are 4 such coschedules -> 4/256.
        assert multiset_draw_probability(("A",) * 4, 4) == pytest.approx(
            (1 / 4) ** 4
        )

    def test_fully_heterogeneous(self):
        # P(ABCD in any order) = 4! / 4^4.
        assert multiset_draw_probability(("A", "B", "C", "D"), 4) == pytest.approx(
            24 / 256
        )

    def test_paper_heterogeneity_percentages(self):
        """The paper's 2% / 33% / 56% / 9% FCFS draw mix at N=K=4."""
        by_heterogeneity = {1: 0.0, 2: 0.0, 3: 0.0, 4: 0.0}
        for combo in multisets("ABCD", 4):
            by_heterogeneity[distinct_count(combo)] += (
                multiset_draw_probability(combo, 4)
            )
        assert by_heterogeneity[1] == pytest.approx(0.0156, abs=1e-3)
        assert by_heterogeneity[2] == pytest.approx(0.3281, abs=1e-3)
        assert by_heterogeneity[3] == pytest.approx(0.5625, abs=1e-3)
        assert by_heterogeneity[4] == pytest.approx(0.0938, abs=1e-3)

    @given(st.integers(2, 6), st.integers(1, 5))
    def test_probabilities_sum_to_one(self, n_types, k):
        items = [str(i) for i in range(n_types)]
        total = sum(
            multiset_draw_probability(ms, n_types)
            for ms in multisets(items, k)
        )
        assert total == pytest.approx(1.0)

    def test_more_distinct_than_types_rejected(self):
        with pytest.raises(ValueError):
            multiset_draw_probability(("A", "B", "C"), 2)

    def test_bad_n_types_rejected(self):
        with pytest.raises(ValueError):
            multiset_draw_probability(("A",), 0)


class TestReplaceOne:
    def test_basic_replacement(self):
        assert replace_one(("A", "A", "B"), "A", "C") == ("A", "B", "C")

    def test_replacement_with_same_type_is_identity(self):
        assert replace_one(("A", "B"), "B", "B") == ("A", "B")

    def test_missing_element_rejected(self):
        with pytest.raises(ValueError):
            replace_one(("A", "B"), "C", "A")

    def test_result_is_canonical(self):
        result = replace_one(("A", "C"), "C", "B")
        assert result == tuple(sorted(result))


class TestSubMultisets:
    def test_distinct_submultisets(self):
        assert sorted(set(sub_multisets(("A", "A", "B"), 2))) == [
            ("A", "A"),
            ("A", "B"),
        ]

    def test_size_larger_than_multiset(self):
        assert list(sub_multisets(("A",), 2)) == []

    def test_full_size_returns_self(self):
        ms = ("A", "B", "B", "C")
        assert set(sub_multisets(ms, 4)) == {ms}

    def test_size_zero(self):
        assert set(sub_multisets(("A", "B"), 0)) == {()}

    @given(
        st.lists(st.sampled_from("ABC"), min_size=1, max_size=6),
        st.integers(0, 6),
    )
    def test_every_result_is_contained(self, items, size):
        ms = tuple(sorted(items))
        from collections import Counter

        outer = Counter(ms)
        for sub in sub_multisets(ms, size):
            assert len(sub) == size or size > len(ms)
            inner = Counter(sub)
            assert all(inner[key] <= outer[key] for key in inner)
