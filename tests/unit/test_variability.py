"""Tests for the Figure-1 variability metrics."""

from __future__ import annotations

import pytest

from repro.core.variability import job_wipc_stats, workload_variability
from repro.core.workload import Workload
from repro.microarch.rates import TableRates

AB = Workload.of("A", "B")


@pytest.fixture()
def skewed_rates() -> TableRates:
    """Type A's per-job rate swings 0.5..1.0; B is constant 0.4."""
    return TableRates(
        {
            ("A", "A"): {"A": 2.0},  # per-job 1.0
            ("A", "B"): {"A": 0.5, "B": 0.4},  # per-job A 0.5
            ("B", "B"): {"B": 0.8},  # per-job 0.4
        }
    )


class TestJobStats:
    def test_per_job_rates_collected(self, skewed_rates):
        stats = job_wipc_stats(skewed_rates, AB, 2)
        assert stats["A"].stats.maximum == pytest.approx(1.0)
        assert stats["A"].stats.minimum == pytest.approx(0.5)
        assert stats["B"].stats.maximum == pytest.approx(0.4)

    def test_relative_swings(self, skewed_rates):
        stats = job_wipc_stats(skewed_rates, AB, 2)
        assert stats["A"].relative_max == pytest.approx(1.0 / 0.75 - 1.0)
        assert stats["A"].relative_min == pytest.approx(0.5 / 0.75 - 1.0)
        assert stats["B"].spread == pytest.approx(0.0)

    def test_insensitive_types_have_zero_spread(self, insensitive_rates):
        stats = job_wipc_stats(insensitive_rates, AB, 2)
        assert stats["A"].spread == pytest.approx(0.0)
        assert stats["B"].spread == pytest.approx(0.0)


class TestWorkloadVariability:
    def test_report_fields_consistent(self, skewed_rates):
        report = workload_variability(skewed_rates, AB, contexts=2)
        assert report.optimal_tp >= report.fcfs_tp - 1e-9
        assert report.worst_tp <= report.fcfs_tp + 1e-9
        assert report.avg_tp_best >= -1e-9
        assert report.avg_tp_worst <= 1e-9
        assert report.avg_tp_spread == pytest.approx(
            report.avg_tp_best - report.avg_tp_worst, rel=1e-9
        )

    def test_bridged_fraction_bounds(self, skewed_rates):
        report = workload_variability(skewed_rates, AB, contexts=2)
        assert -1e-9 <= report.bridged_fraction <= 1.0 + 1e-9

    def test_insensitive_workload_has_zero_tp_spread(self, insensitive_rates):
        report = workload_variability(insensitive_rates, AB, contexts=2)
        assert report.avg_tp_spread == pytest.approx(0.0, abs=1e-9)
        assert report.bridged_fraction == 1.0  # degenerate gap

    def test_inst_tp_stats(self, skewed_rates):
        report = workload_variability(skewed_rates, AB, contexts=2)
        # it values: AA=2.0, AB=0.9, BB=0.8 -> mean 1.2333
        assert report.inst_tp_stats.maximum == pytest.approx(2.0)
        assert report.inst_tp_stats.minimum == pytest.approx(0.8)
        assert report.inst_tp_relative_max == pytest.approx(2.0 / 1.2333 - 1, rel=1e-3)

    def test_contexts_required_without_machine(self, skewed_rates):
        with pytest.raises(ValueError):
            workload_variability(skewed_rates, AB)

    def test_on_simulated_rates_paper_ordering(self, smt_rates, mixed_workload):
        """The paper's headline ordering for a sensitive workload:
        average-TP variability is (much) smaller than instantaneous-TP
        variability."""
        report = workload_variability(smt_rates, mixed_workload)
        assert report.avg_tp_spread < report.inst_tp_spread
