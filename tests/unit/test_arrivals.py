"""Tests for the arrival processes."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.queueing.arrivals import poisson_arrivals, saturated_arrivals


class TestPoissonArrivals:
    def test_count_and_ordering(self):
        jobs = list(
            poisson_arrivals(("a", "b"), rate=2.0, n_jobs=100, seed=1)
        )
        assert len(jobs) == 100
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)
        assert [j.job_id for j in jobs] == list(range(100))

    def test_mean_rate(self):
        jobs = list(
            poisson_arrivals(("a",), rate=4.0, n_jobs=20_000, seed=2)
        )
        duration = jobs[-1].arrival_time
        assert 20_000 / duration == pytest.approx(4.0, rel=0.05)

    def test_types_roughly_uniform(self):
        jobs = list(
            poisson_arrivals(("a", "b"), rate=1.0, n_jobs=10_000, seed=3)
        )
        share_a = sum(1 for j in jobs if j.job_type == "a") / len(jobs)
        assert share_a == pytest.approx(0.5, abs=0.03)

    def test_exponential_sizes_mean(self):
        jobs = list(
            poisson_arrivals(
                ("a",), rate=1.0, n_jobs=20_000, mean_size=2.0, seed=4
            )
        )
        mean = sum(j.size for j in jobs) / len(jobs)
        assert mean == pytest.approx(2.0, rel=0.05)

    def test_fixed_sizes(self):
        jobs = list(
            poisson_arrivals(
                ("a",), rate=1.0, n_jobs=50, mean_size=1.5,
                fixed_sizes=True, seed=5,
            )
        )
        assert all(j.size == 1.5 for j in jobs)

    def test_deterministic(self):
        a = [j.arrival_time for j in poisson_arrivals(("a",), rate=1.0, n_jobs=20, seed=9)]
        b = [j.arrival_time for j in poisson_arrivals(("a",), rate=1.0, n_jobs=20, seed=9)]
        assert a == b

    def test_bad_inputs(self):
        with pytest.raises(SimulationError):
            list(poisson_arrivals(("a",), rate=0.0, n_jobs=1))
        with pytest.raises(SimulationError):
            list(poisson_arrivals((), rate=1.0, n_jobs=1))
        with pytest.raises(SimulationError):
            list(poisson_arrivals(("a",), rate=1.0, n_jobs=-1))


class TestSaturatedArrivals:
    def test_all_at_time_zero(self):
        jobs = list(saturated_arrivals(("a", "b"), n_jobs=50, seed=0))
        assert len(jobs) == 50
        assert all(j.arrival_time == 0.0 for j in jobs)

    def test_bad_inputs(self):
        with pytest.raises(SimulationError):
            list(saturated_arrivals((), n_jobs=5))
