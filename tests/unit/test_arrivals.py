"""Tests for the arrival processes."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.errors import SimulationError
from repro.queueing.arrivals import (
    batch_arrivals,
    diurnal_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
    saturated_arrivals,
)
from repro.queueing.sizes import BoundedParetoSizes, FixedSizes
from repro.util.rng import derive_rng


class TestPoissonArrivals:
    def test_count_and_ordering(self):
        jobs = list(
            poisson_arrivals(("a", "b"), rate=2.0, n_jobs=100, seed=1)
        )
        assert len(jobs) == 100
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)
        assert [j.job_id for j in jobs] == list(range(100))

    def test_mean_rate(self):
        jobs = list(
            poisson_arrivals(("a",), rate=4.0, n_jobs=20_000, seed=2)
        )
        duration = jobs[-1].arrival_time
        assert 20_000 / duration == pytest.approx(4.0, rel=0.05)

    def test_types_roughly_uniform(self):
        jobs = list(
            poisson_arrivals(("a", "b"), rate=1.0, n_jobs=10_000, seed=3)
        )
        share_a = sum(1 for j in jobs if j.job_type == "a") / len(jobs)
        assert share_a == pytest.approx(0.5, abs=0.03)

    def test_exponential_sizes_mean(self):
        jobs = list(
            poisson_arrivals(
                ("a",), rate=1.0, n_jobs=20_000, mean_size=2.0, seed=4
            )
        )
        mean = sum(j.size for j in jobs) / len(jobs)
        assert mean == pytest.approx(2.0, rel=0.05)

    def test_fixed_sizes(self):
        jobs = list(
            poisson_arrivals(
                ("a",), rate=1.0, n_jobs=50, mean_size=1.5,
                fixed_sizes=True, seed=5,
            )
        )
        assert all(j.size == 1.5 for j in jobs)

    def test_deterministic(self):
        a = [j.arrival_time for j in poisson_arrivals(("a",), rate=1.0, n_jobs=20, seed=9)]
        b = [j.arrival_time for j in poisson_arrivals(("a",), rate=1.0, n_jobs=20, seed=9)]
        assert a == b

    def test_bad_inputs(self):
        with pytest.raises(SimulationError):
            list(poisson_arrivals(("a",), rate=0.0, n_jobs=1))
        with pytest.raises(SimulationError):
            list(poisson_arrivals((), rate=1.0, n_jobs=1))
        with pytest.raises(SimulationError):
            list(poisson_arrivals(("a",), rate=1.0, n_jobs=-1))


class TestSaturatedArrivals:
    def test_all_at_time_zero(self):
        jobs = list(saturated_arrivals(("a", "b"), n_jobs=50, seed=0))
        assert len(jobs) == 50
        assert all(j.arrival_time == 0.0 for j in jobs)

    def test_bad_inputs(self):
        with pytest.raises(SimulationError):
            list(saturated_arrivals((), n_jobs=5))


class TestLegacyCompatibility:
    """The legacy single-stream path is frozen: every Section-VI
    artifact is pinned bit-identical to the seed engine's arrival
    stream.  These values were recorded from the pre-scenario
    implementation — if either test fails, the refactor changed the
    draw order and the paper reproductions are no longer comparable.
    """

    def test_poisson_stream_pinned(self):
        jobs = list(
            poisson_arrivals(
                ("a", "b"), rate=2.0, n_jobs=4, mean_size=1.5, seed=123
            )
        )
        assert [(j.arrival_time, j.job_type, j.size) for j in jobs] == [
            (0.026892196695146378, "a", 2.1977231884264836),
            (0.18189272076581647, "a", 0.714936645662992),
            (0.5950248673543646, "b", 2.866692659381341),
            (0.6820006469664195, "b", 1.2347539944656476),
        ]

    def test_saturated_stream_pinned(self):
        jobs = list(
            saturated_arrivals(("x", "y", "z"), n_jobs=3, mean_size=2.0,
                               seed=321)
        )
        assert [(j.job_type, j.size) for j in jobs] == [
            ("y", 0.9916874480959128),
            ("y", 1.6496298462874508),
            ("y", 0.8344266606432227),
        ]


class TestDerivedStreams:
    """The new path: each purpose (times, types, sizes) has its own
    derived RNG stream, so swapping one distribution never reorders
    the draws of another."""

    def test_arrival_times_invariant_under_size_model(self):
        kwargs = dict(rate=2.0, n_jobs=50, seed=9)
        exp = list(
            poisson_arrivals(("a", "b"),
                             size_model={"kind": "exponential"}, **kwargs)
        )
        pareto = list(
            poisson_arrivals(
                ("a", "b"),
                size_model=BoundedParetoSizes(
                    alpha=1.5, lower=0.1, upper=50.0
                ),
                **kwargs,
            )
        )
        assert [j.arrival_time for j in exp] == [
            j.arrival_time for j in pareto
        ]
        assert [j.job_type for j in exp] == [j.job_type for j in pareto]
        assert [j.size for j in exp] != [j.size for j in pareto]

    def test_sizes_invariant_under_type_weights(self):
        kwargs = dict(rate=2.0, n_jobs=50, seed=9)
        uniform = list(
            poisson_arrivals(("a", "b"),
                             size_model={"kind": "exponential"}, **kwargs)
        )
        skewed = list(
            poisson_arrivals(
                ("a", "b"),
                size_model={"kind": "exponential"},
                type_weights={"a": 10.0, "b": 1.0},
                **kwargs,
            )
        )
        assert [j.size for j in uniform] == [j.size for j in skewed]
        assert [j.arrival_time for j in uniform] == [
            j.arrival_time for j in skewed
        ]

    def test_type_weights_skew_the_mix(self):
        jobs = list(
            poisson_arrivals(
                ("a", "b"),
                rate=1.0,
                n_jobs=5_000,
                type_weights={"a": 9.0, "b": 1.0},
                seed=2,
            )
        )
        share_a = sum(1 for j in jobs if j.job_type == "a") / len(jobs)
        assert share_a == pytest.approx(0.9, abs=0.03)

    def test_bad_type_weights(self):
        with pytest.raises(SimulationError, match="non-negative"):
            list(poisson_arrivals(("a",), rate=1.0, n_jobs=1,
                                  type_weights={"a": -1.0}))
        with pytest.raises(SimulationError, match="positive total"):
            list(poisson_arrivals(("a",), rate=1.0, n_jobs=1,
                                  type_weights={"b": 1.0}))

    def test_derive_rng_streams_are_stable_and_distinct(self):
        a1 = derive_rng(42, "sizes").random()
        a2 = derive_rng(42, "sizes").random()
        b = derive_rng(42, "types").random()
        c = derive_rng(43, "sizes").random()
        assert a1 == a2
        assert a1 != b
        assert a1 != c

    def test_derive_rng_none_matches_make_rng_semantics(self):
        """seed=None means OS entropy (fresh every call), exactly like
        make_rng(None) — never a silently fixed stream."""
        assert derive_rng(None, "x").random() != derive_rng(
            None, "x"
        ).random()

    def test_derive_rng_from_generator_consumes_parent(self):
        parent = random.Random(0)
        first = derive_rng(parent, "x").random()
        second = derive_rng(parent, "x").random()
        assert first != second  # successive derivations stay distinct
        # ... but the derivation is deterministic for a seeded parent.
        again = derive_rng(random.Random(0), "x").random()
        assert first == again


class TestMmppArrivals:
    def test_ordering_and_count(self):
        jobs = list(
            mmpp_arrivals(
                ("a", "b"),
                state_rates=(8.0, 1.0),
                mean_dwells=(5.0, 40.0),
                n_jobs=500,
                seed=1,
            )
        )
        assert len(jobs) == 500
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)

    def test_burstiness_exceeds_poisson(self):
        """A strongly modulated MMPP has inter-arrival CV well above
        the exponential's 1.0."""
        jobs = list(
            mmpp_arrivals(
                ("a",),
                state_rates=(20.0, 0.5),
                mean_dwells=(2.0, 20.0),
                n_jobs=20_000,
                seed=3,
            )
        )
        gaps = [
            b.arrival_time - a.arrival_time
            for a, b in zip(jobs, jobs[1:])
        ]
        cv = statistics.pstdev(gaps) / statistics.mean(gaps)
        assert cv > 1.3

    def test_zero_rate_state_is_a_pure_lull(self):
        jobs = list(
            mmpp_arrivals(
                ("a",),
                state_rates=(5.0, 0.0),
                mean_dwells=(1.0, 10.0),
                n_jobs=200,
                seed=4,
            )
        )
        assert len(jobs) == 200

    def test_bad_inputs(self):
        with pytest.raises(SimulationError, match="equal-length"):
            list(mmpp_arrivals(("a",), state_rates=(1.0,),
                               mean_dwells=(1.0, 2.0), n_jobs=1))
        with pytest.raises(SimulationError, match="non-negative"):
            list(mmpp_arrivals(("a",), state_rates=(-1.0, 1.0),
                               mean_dwells=(1.0, 1.0), n_jobs=1))
        with pytest.raises(SimulationError, match="one state rate"):
            list(mmpp_arrivals(("a",), state_rates=(0.0, 0.0),
                               mean_dwells=(1.0, 1.0), n_jobs=1))
        with pytest.raises(SimulationError, match="dwell"):
            list(mmpp_arrivals(("a",), state_rates=(1.0, 1.0),
                               mean_dwells=(1.0, 0.0), n_jobs=1))


class TestDiurnalArrivals:
    def test_rate_tracks_the_sine(self):
        """More arrivals land in the peak half-period than the trough."""
        period = 100.0
        jobs = list(
            diurnal_arrivals(
                ("a",),
                base_rate=2.0,
                amplitude=0.9,
                period=period,
                n_jobs=20_000,
                seed=5,
            )
        )
        peak = trough = 0
        for job in jobs:
            phase = (job.arrival_time % period) / period
            if phase < 0.5:
                peak += 1  # sin positive: above-mean rate
            else:
                trough += 1
        assert peak / trough > 1.5

    def test_zero_amplitude_is_plain_poisson_rate(self):
        jobs = list(
            diurnal_arrivals(("a",), base_rate=4.0, amplitude=0.0,
                             period=10.0, n_jobs=20_000, seed=6)
        )
        rate = len(jobs) / jobs[-1].arrival_time
        assert rate == pytest.approx(4.0, rel=0.05)

    def test_bad_inputs(self):
        with pytest.raises(SimulationError, match="base_rate"):
            list(diurnal_arrivals(("a",), base_rate=0.0, amplitude=0.5,
                                  period=1.0, n_jobs=1))
        with pytest.raises(SimulationError, match="amplitude"):
            list(diurnal_arrivals(("a",), base_rate=1.0, amplitude=1.5,
                                  period=1.0, n_jobs=1))
        with pytest.raises(SimulationError, match="period"):
            list(diurnal_arrivals(("a",), base_rate=1.0, amplitude=0.5,
                                  period=0.0, n_jobs=1))


class TestBatchArrivals:
    def test_jobs_share_batch_timestamps(self):
        jobs = list(
            batch_arrivals(
                ("a", "b"),
                batch_rate=0.5,
                mean_batch_size=6.0,
                n_jobs=600,
                seed=7,
            )
        )
        assert len(jobs) == 600
        distinct = len({j.arrival_time for j in jobs})
        # ~600/6 = 100 batch epochs expected; far fewer timestamps
        # than jobs proves the batching.
        assert distinct < 200
        mean_batch = len(jobs) / distinct
        assert mean_batch == pytest.approx(6.0, rel=0.35)

    def test_unit_batches_degenerate_to_one_job_per_epoch(self):
        jobs = list(
            batch_arrivals(("a",), batch_rate=2.0, mean_batch_size=1.0,
                           n_jobs=300, seed=8)
        )
        assert len({j.arrival_time for j in jobs}) == 300

    def test_bad_inputs(self):
        with pytest.raises(SimulationError, match="batch_rate"):
            list(batch_arrivals(("a",), batch_rate=0.0,
                                mean_batch_size=2.0, n_jobs=1))
        with pytest.raises(SimulationError, match="mean_batch_size"):
            list(batch_arrivals(("a",), batch_rate=1.0,
                                mean_batch_size=0.5, n_jobs=1))


class TestSizeModelIntegration:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda **kw: poisson_arrivals(("a", "b"), rate=2.0, **kw),
            lambda **kw: mmpp_arrivals(
                ("a", "b"), state_rates=(4.0, 1.0),
                mean_dwells=(3.0, 10.0), **kw
            ),
            lambda **kw: diurnal_arrivals(
                ("a", "b"), base_rate=2.0, amplitude=0.5, period=20.0,
                **kw
            ),
            lambda **kw: batch_arrivals(
                ("a", "b"), batch_rate=0.5, mean_batch_size=4.0, **kw
            ),
        ],
        ids=["poisson", "mmpp", "diurnal", "batch"],
    )
    def test_fixed_sizes_flow_through_every_process(self, factory):
        jobs = list(
            factory(n_jobs=40, seed=1, size_model=FixedSizes(size=2.5))
        )
        assert len(jobs) == 40
        assert all(j.size == 2.5 for j in jobs)
