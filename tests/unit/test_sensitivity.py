"""Tests for the job-sensitivity analysis (Section V.C.1a)."""

from __future__ import annotations

import pytest

from repro.core.sensitivity import per_type_rate_spread, workload_sensitivity
from repro.core.workload import Workload
from repro.microarch.rates import TableRates

AB = Workload.of("A", "B")


class TestSensitivity:
    def test_insensitive_workload(self, insensitive_rates):
        report = workload_sensitivity(insensitive_rates, AB, contexts=2)
        assert report.mean_sensitivity == pytest.approx(0.0, abs=1e-12)
        assert report.is_insensitive()

    def test_sensitive_workload(self, synthetic_rates):
        report = workload_sensitivity(synthetic_rates, AB, contexts=2)
        assert report.mean_sensitivity > 0.1
        assert not report.is_insensitive()

    def test_per_type_entries(self, synthetic_rates):
        report = workload_sensitivity(synthetic_rates, AB, contexts=2)
        assert set(report.per_type) == {"A", "B"}
        assert report.mean_sensitivity == pytest.approx(
            sum(report.per_type.values()) / 2
        )

    def test_threshold_configurable(self, synthetic_rates):
        report = workload_sensitivity(synthetic_rates, AB, contexts=2)
        assert report.is_insensitive(threshold=10.0)

    def test_contexts_required_without_machine(self, synthetic_rates):
        with pytest.raises(ValueError):
            workload_sensitivity(synthetic_rates, AB)


class TestRateSpread:
    def test_equal_types_zero_spread(self):
        rates = TableRates(
            {
                ("A", "A"): {"A": 1.0},
                ("A", "B"): {"A": 0.5, "B": 0.5},
                ("B", "B"): {"B": 1.0},
            }
        )
        assert per_type_rate_spread(rates, AB, contexts=2) == pytest.approx(0.0)

    def test_fast_slow_spread(self, insensitive_rates):
        # A mean per-job rate 0.8, B 0.4 -> spread 0.4.
        assert per_type_rate_spread(
            insensitive_rates, AB, contexts=2
        ) == pytest.approx(0.4)

    def test_smt_has_large_spread_on_mixed_workload(self, smt_rates, mixed_workload):
        """Mixing mcf with hmmer gives a large per-type mean-WIPC spread
        — the paper's Section V.C.2 mechanism on SMT."""
        assert per_type_rate_spread(smt_rates, mixed_workload) > 0.1
