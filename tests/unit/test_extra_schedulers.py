"""Tests for the LJF and RANDOM control schedulers."""

from __future__ import annotations

import pytest

from repro.microarch.rates import TableRates
from repro.queueing.job import Job
from repro.queueing.schedulers import (
    LongJobFirstScheduler,
    RandomScheduler,
    make_scheduler,
)


@pytest.fixture()
def rates() -> TableRates:
    return TableRates(
        {
            ("A",): {"A": 1.0},
            ("A", "A"): {"A": 2.0},
        }
    )


def make_jobs(*remainings) -> list[Job]:
    return [
        Job(job_id=i, job_type="A", size=r, arrival_time=float(i), remaining=r)
        for i, r in enumerate(remainings)
    ]


class TestLongJobFirst:
    def test_picks_longest(self, rates):
        scheduler = LongJobFirstScheduler(rates, contexts=2)
        jobs = make_jobs(1.0, 5.0, 3.0)
        selected = scheduler.select(jobs, clock=0.0)
        assert sorted(j.remaining for j in selected) == [3.0, 5.0]

    def test_tie_break_by_id(self, rates):
        scheduler = LongJobFirstScheduler(rates, contexts=1)
        jobs = make_jobs(2.0, 2.0)
        selected = scheduler.select(jobs, clock=0.0)
        assert selected[0].job_id == 0

    def test_factory(self, rates):
        assert make_scheduler("ljf", rates, 2).name == "ljf"


class TestRandom:
    def test_takes_all_when_few(self, rates):
        scheduler = RandomScheduler(rates, contexts=4, seed=1)
        jobs = make_jobs(1.0, 2.0)
        assert len(scheduler.select(jobs, clock=0.0)) == 2

    def test_samples_without_replacement(self, rates):
        scheduler = RandomScheduler(rates, contexts=2, seed=1)
        jobs = make_jobs(1.0, 2.0, 3.0, 4.0)
        selected = scheduler.select(jobs, clock=0.0)
        assert len({j.job_id for j in selected}) == 2

    def test_deterministic_given_seed(self, rates):
        jobs = make_jobs(1.0, 2.0, 3.0, 4.0)
        a = RandomScheduler(rates, contexts=2, seed=5).select(jobs, 0.0)
        b = RandomScheduler(rates, contexts=2, seed=5).select(jobs, 0.0)
        assert [j.job_id for j in a] == [j.job_id for j in b]

    def test_factory_passes_seed(self, rates):
        scheduler = make_scheduler("random", rates, 2, seed=3)
        assert scheduler.name == "random"
