"""Unit tests for the memoized coschedule-rate cache."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import WorkloadError
from repro.microarch.config import smt_machine
from repro.microarch.rate_cache import (
    CachedRateSource,
    CacheStats,
    RateCacheStore,
)
from repro.microarch.rates import RateTable, TableRates
from repro.util.multiset import multisets


def small_table() -> TableRates:
    """Rates for all multisets of {A, B} up to size 2."""
    per_job = {"A": 1.0, "B": 0.5}
    table = {}
    for size in (1, 2):
        for cos in multisets(("A", "B"), size):
            table[cos] = {b: per_job[b] * cos.count(b) * 0.9 for b in set(cos)}
    return TableRates(table)


class CountingSource:
    """Minimal RateSource that counts delegated calls."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def type_rates(self, coschedule):
        self.calls += 1
        return self.inner.type_rates(coschedule)


class TestCacheStats:
    def test_hit_rate_and_render(self):
        stats = CacheStats(hits=3, misses=1, preloaded=2, label="smt4")
        assert stats.lookups == 4
        assert stats.hit_rate == pytest.approx(0.75)
        line = stats.render()
        assert "smt4" in line and "3 hits" in line and "1 misses" in line

    def test_idle_hit_rate_zero(self):
        assert CacheStats().hit_rate == 0.0

    def test_merge(self):
        merged = CacheStats(hits=1, label="a").merge(
            CacheStats(misses=2, preloaded=3, label="b")
        )
        assert (merged.hits, merged.misses, merged.preloaded) == (1, 2, 3)
        assert merged.label == "a+b"

    def test_as_dict_roundtrips_through_json(self):
        payload = json.loads(json.dumps(CacheStats(hits=5).as_dict()))
        assert payload["hits"] == 5


class TestCachedRateSource:
    def test_hit_miss_accounting(self):
        source = CountingSource(small_table())
        cached = CachedRateSource(source)
        cached.type_rates(("A", "B"))
        assert (cached.stats.hits, cached.stats.misses) == (0, 1)
        cached.type_rates(("A", "B"))
        assert (cached.stats.hits, cached.stats.misses) == (1, 1)
        assert source.calls == 1

    def test_canonicalization_equivalence(self):
        """Permutations of a multiset share one entry and agree with
        the uncached source."""
        table = small_table()
        cached = CachedRateSource(table)
        assert cached.type_rates(("B", "A")) == table.type_rates(("A", "B"))
        assert cached.type_rates(("A", "B")) == table.type_rates(("B", "A"))
        assert cached.stats.misses == 1
        assert cached.stats.hits == 1

    def test_matches_uncached_source_everywhere(self):
        table = small_table()
        cached = CachedRateSource(table)
        for cos in table.coschedules():
            assert cached.type_rates(cos) == table.type_rates(cos)
            assert cached.per_job_rate(cos, cos[0]) == pytest.approx(
                table.per_job_rate(cos, cos[0])
            )
            assert cached.instantaneous_throughput(cos) == pytest.approx(
                table.instantaneous_throughput(cos)
            )

    def test_returns_copies(self):
        cached = CachedRateSource(small_table())
        first = cached.type_rates(("A",))
        first["A"] = 123.0
        assert cached.type_rates(("A",))["A"] != 123.0

    def test_per_job_rate_unknown_type(self):
        cached = CachedRateSource(small_table())
        with pytest.raises(WorkloadError):
            cached.per_job_rate(("A",), "B")

    def test_delegates_unknown_attributes(self):
        rates = RateTable(smt_machine())
        cached = CachedRateSource(rates)
        assert cached.machine is rates.machine
        assert cached.roster is rates.roster

    def test_persistence_round_trip(self, tmp_path):
        table = small_table()
        cached = CachedRateSource(table)
        for cos in table.coschedules():
            cached.type_rates(cos)
        path = tmp_path / "cache.json"
        cached.save(path)

        class Exploding:
            def type_rates(self, coschedule):  # pragma: no cover
                raise AssertionError("should never be consulted")

        reloaded = CachedRateSource.open(Exploding(), path)
        assert reloaded.stats.preloaded == len(table.coschedules())
        for cos in table.coschedules():
            assert reloaded.type_rates(cos) == table.type_rates(cos)
        assert reloaded.stats.misses == 0

    def test_open_missing_file_starts_empty(self, tmp_path):
        cached = CachedRateSource.open(small_table(), tmp_path / "nope.json")
        assert cached.stats.preloaded == 0
        assert cached.coschedules() == []

    def test_open_corrupt_file_warns_and_starts_cold(self, tmp_path, capsys):
        path = tmp_path / "cache.json"
        path.write_text("{ not json")
        cached = CachedRateSource.open(small_table(), path)
        assert cached.stats.preloaded == 0
        assert "unreadable rate cache" in capsys.readouterr().err
        assert cached.type_rates(("A",))  # still usable

    def test_open_shape_corrupt_file_warns_and_starts_cold(
        self, tmp_path, capsys
    ):
        """Valid JSON with the wrong shape must not crash either."""
        path = tmp_path / "cache.json"
        path.write_text('{"machine": "m", "entries": {"A": [1.0]}}')
        cached = CachedRateSource.open(small_table(), path)
        assert cached.stats.preloaded == 0
        assert "unreadable rate cache" in capsys.readouterr().err

    def test_open_machine_mismatch_starts_cold(self, tmp_path, capsys):
        """A cache saved for one machine must not feed another."""
        smt = CachedRateSource(RateTable(smt_machine()))
        smt.type_rates(("mcf", "hmmer"))
        path = tmp_path / "cache.json"
        smt.save(path)

        from repro.microarch.config import quad_core_machine

        quad = CachedRateSource.open(RateTable(quad_core_machine()), path)
        assert quad.stats.preloaded == 0
        assert "starting cold" in capsys.readouterr().err
        # Same machine still preloads.
        again = CachedRateSource.open(RateTable(smt_machine()), path)
        assert again.stats.preloaded == 1

    def test_json_format_compatible_with_tablerates(self):
        """RateTable.to_json payloads (with ipcs) load fine too."""
        table = small_table()
        cached = CachedRateSource(table)
        cached.type_rates(("A", "B"))
        buf = io.StringIO()
        cached.to_json(buf)
        buf.seek(0)
        assert TableRates.from_json(buf).type_rates(
            ("A", "B")
        ) == table.type_rates(("A", "B"))

    def test_new_entries_only_fresh(self, tmp_path):
        table = small_table()
        warm = CachedRateSource(table)
        warm.type_rates(("A",))
        path = tmp_path / "cache.json"
        warm.save(path)
        reloaded = CachedRateSource.open(table, path)
        reloaded.type_rates(("A",))  # preloaded -> not fresh
        reloaded.type_rates(("A", "B"))  # computed -> fresh
        assert list(reloaded.new_entries()) == [("A", "B")]

    def test_empty_coschedule_round_trip(self, tmp_path):
        """() must survive persistence as (), not ('',)."""
        cached = CachedRateSource(TableRates({(): {}}))
        assert cached.type_rates(()) == {}
        path = tmp_path / "cache.json"
        cached.save(path)
        reloaded = CachedRateSource.open(TableRates({(): {}}), path)
        assert reloaded.coschedules() == [()]
        assert reloaded.type_rates(()) == {}
        assert reloaded.stats.misses == 0

    def test_precompute_covers_all_multisets(self):
        rates = RateTable(smt_machine())
        cached = CachedRateSource(rates)
        count = cached.precompute(types=("mcf", "hmmer"), contexts=2)
        assert count == 5  # (mcf) (hmmer) (mm) (mh) (hh)
        assert cached.stats.misses == 5
        cached.type_rates(("hmmer", "mcf"))
        assert cached.stats.hits == 1

    def test_precompute_requires_sizing_info(self):
        cached = CachedRateSource(small_table())
        with pytest.raises(WorkloadError):
            cached.precompute(types=("A",))

    def test_reserved_separator_rejected_on_save(self):
        cached = CachedRateSource(
            TableRates({("a|b",): {"a|b": 1.0}})
        )
        cached.type_rates(("a|b",))
        with pytest.raises(WorkloadError):
            cached.to_json(io.StringIO())


class TestCrashSafePersistence:
    """A failed dump must never truncate an existing cache file."""

    def test_cached_source_failed_save_preserves_existing_file(
        self, tmp_path
    ):
        path = tmp_path / "rates.json"
        good = CachedRateSource(small_table())
        good.type_rates(("A", "B"))
        good.save(path)
        before = path.read_text()

        # The reserved separator makes to_json raise midway through
        # the dump — after the temp file was opened for writing.
        bad = CachedRateSource(TableRates({("a|b",): {"a|b": 1.0}}))
        bad.type_rates(("a|b",))
        with pytest.raises(WorkloadError):
            bad.save(path)

        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path], "temp file left behind"

    def test_store_failed_save_preserves_existing_file(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "rates.json"
        store = RateCacheStore(path)
        store.wrap(small_table(), section="toy").type_rates(("A", "B"))
        store.save()
        before = path.read_text()

        import repro.microarch.rate_cache as rate_cache

        def exploding_dump(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(rate_cache.json, "dump", exploding_dump)
        with pytest.raises(OSError, match="disk full"):
            store.save()

        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path], "temp file left behind"

    def test_save_replaces_atomically_on_success(self, tmp_path):
        path = tmp_path / "rates.json"
        cached = CachedRateSource(small_table())
        cached.type_rates(("A",))
        cached.save(path)
        cached.type_rates(("A", "B"))
        cached.save(path)
        entries = json.loads(path.read_text())["entries"]
        assert sorted(entries) == ["A", "A|B"]
        assert list(tmp_path.iterdir()) == [path]


class TestRateCacheStore:
    def test_wrap_save_reload(self, tmp_path):
        path = tmp_path / "rates.json"
        store = RateCacheStore(path)
        rates = store.wrap(small_table(), section="toy")
        rates.type_rates(("A", "B"))
        assert store.save() == 1

        fresh = RateCacheStore(path)
        assert fresh.sections() == ["toy"]
        reloaded = fresh.wrap(small_table(), section="toy")
        assert reloaded.stats.preloaded == 1

    def test_section_defaults_to_machine_name(self, tmp_path):
        store = RateCacheStore(tmp_path / "rates.json")
        rates = store.wrap(RateTable(smt_machine()))
        assert rates.stats.label == smt_machine().name

    def test_sectionless_source_requires_explicit_section(self, tmp_path):
        store = RateCacheStore(tmp_path / "rates.json")
        with pytest.raises(WorkloadError):
            store.wrap(small_table())

    def test_migrates_single_source_file(self, tmp_path):
        """A file written by CachedRateSource.save ({machine, entries})
        loads as a section instead of being silently discarded."""
        rates = CachedRateSource(RateTable(smt_machine()))
        rates.type_rates(("mcf", "hmmer"))
        path = tmp_path / "rates.json"
        rates.save(path)

        store = RateCacheStore(path)
        assert store.sections() == [smt_machine().name]
        assert ("hmmer", "mcf") in store.entries_for(smt_machine().name)
        # And saving upgrades the file to the sections format.
        store.save()
        assert RateCacheStore(path).sections() == [smt_machine().name]

    def test_machineless_single_source_file_warns(self, tmp_path, capsys):
        path = tmp_path / "rates.json"
        path.write_text('{"machine": null, "entries": {"A": {"A": 1.0}}}')
        store = RateCacheStore(path)
        assert store.sections() == []
        assert "no machine name" in capsys.readouterr().err

    def test_corrupt_file_warns_and_starts_cold(self, tmp_path, capsys):
        path = tmp_path / "rates.json"
        path.write_text("{ not json")
        store = RateCacheStore(path)
        assert store.sections() == []
        assert "unreadable rate cache" in capsys.readouterr().err
        store.merge("toy", {("A",): {"A": 1.0}})
        store.save()
        assert RateCacheStore(path).sections() == ["toy"]

    @pytest.mark.parametrize(
        "payload",
        [
            '{"sections": "oops"}',
            '{"sections": {"smt4": {"A|B": [1.0, 2.0]}}}',
            '{"sections": {"smt4": {"A": {"A": "not a number"}}}}',
            "[1, 2, 3]",
        ],
    )
    def test_shape_corrupt_file_warns_and_starts_cold(
        self, tmp_path, capsys, payload
    ):
        path = tmp_path / "rates.json"
        path.write_text(payload)
        store = RateCacheStore(path)
        assert store.sections() == []
        assert "unreadable rate cache" in capsys.readouterr().err

    def test_merge_external_entries(self, tmp_path):
        store = RateCacheStore(tmp_path / "rates.json")
        size = store.merge("toy", {("B", "A"): {"A": 1.0, "B": 0.5}})
        assert size == 1
        assert ("A", "B") in store.entries_for("toy")

    def test_sections_are_isolated(self, tmp_path):
        path = tmp_path / "rates.json"
        store = RateCacheStore(path)
        store.merge("one", {("A",): {"A": 1.0}})
        store.merge("two", {("A",): {"A": 2.0}})
        store.save()
        fresh = RateCacheStore(path)
        assert fresh.entries_for("one")[("A",)]["A"] == 1.0
        assert fresh.entries_for("two")[("A",)]["A"] == 2.0

    def test_stats_aggregates_wrappers(self, tmp_path):
        store = RateCacheStore(tmp_path / "rates.json")
        a = store.wrap(small_table(), section="a")
        b = store.wrap(small_table(), section="b")
        a.type_rates(("A",))
        b.type_rates(("B",))
        b.type_rates(("B",))
        total = store.stats()
        assert total.misses == 2
        assert total.hits == 1


class TestAtomicDumpDurability:
    """The crash-safety ordering of ``_atomic_dump``: temp-file fsync,
    then the rename, then the directory fsync — the sequence that lets
    checkpoint restores trust whatever file they find."""

    def test_fsync_file_then_replace_then_fsync_dir(
        self, tmp_path, monkeypatch
    ):
        import os
        import stat

        from repro.microarch.rate_cache import _atomic_dump

        events: list[str] = []
        real_fsync = os.fsync
        real_replace = os.replace

        def spy_fsync(fd):
            kind = (
                "dir"
                if stat.S_ISDIR(os.fstat(fd).st_mode)
                else "file"
            )
            events.append(f"fsync:{kind}")
            real_fsync(fd)

        def spy_replace(src, dst):
            events.append("replace")
            real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        target = tmp_path / "out.json"
        _atomic_dump(target, lambda fp: fp.write('{"ok": true}'))
        assert events == ["fsync:file", "replace", "fsync:dir"]
        assert json.loads(target.read_text()) == {"ok": True}

    def test_failed_write_leaves_existing_file_and_no_temp(
        self, tmp_path, monkeypatch
    ):
        import os

        from repro.microarch.rate_cache import _atomic_dump

        target = tmp_path / "out.json"
        target.write_text('{"old": 1}')

        def spy_replace(src, dst):  # pragma: no cover - must not run
            raise AssertionError("rename must not happen on failure")

        monkeypatch.setattr(os, "replace", spy_replace)
        with pytest.raises(RuntimeError, match="disk full"):
            _atomic_dump(
                target,
                lambda fp: (_ for _ in ()).throw(RuntimeError("disk full")),
            )
        assert json.loads(target.read_text()) == {"old": 1}
        assert list(tmp_path.iterdir()) == [target]

    def test_fsync_failure_cleans_up_the_temp_file(
        self, tmp_path, monkeypatch
    ):
        import os

        from repro.microarch.rate_cache import _atomic_dump

        def failing_fsync(fd):
            raise OSError("no durability today")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        target = tmp_path / "out.json"
        with pytest.raises(OSError, match="no durability"):
            _atomic_dump(target, lambda fp: fp.write("{}"))
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []
