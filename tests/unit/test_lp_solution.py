"""Tests for LPSolution helpers."""

from __future__ import annotations

import pytest

from repro.errors import InfeasibleError, UnboundedError
from repro.lp.solution import LPSolution, SolveStatus


class TestLpSolution:
    def test_value_defaults_to_zero(self):
        solution = LPSolution(
            status=SolveStatus.OPTIMAL, objective=1.0, values={"x": 2.0}
        )
        assert solution.value("x") == 2.0
        assert solution.value("missing") == 0.0

    def test_support_filters_small_values(self):
        solution = LPSolution(
            status=SolveStatus.OPTIMAL,
            values={"x": 1e-15, "y": 0.5},
        )
        assert solution.support() == {"y": 0.5}

    def test_require_optimal_passthrough(self):
        solution = LPSolution(status=SolveStatus.OPTIMAL)
        assert solution.require_optimal() is solution

    def test_require_optimal_infeasible(self):
        solution = LPSolution(status=SolveStatus.INFEASIBLE)
        with pytest.raises(InfeasibleError) as excinfo:
            solution.require_optimal(context="throughput LP")
        assert "throughput LP" in str(excinfo.value)

    def test_require_optimal_unbounded(self):
        solution = LPSolution(status=SolveStatus.UNBOUNDED)
        with pytest.raises(UnboundedError):
            solution.require_optimal()
