"""Tests for workload-trace recording, serialization, and replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError
from repro.microarch.rates import TableRates
from repro.queueing.arrivals import poisson_arrivals
from repro.queueing.engine import run_system
from repro.queueing.job import Job
from repro.queueing.schedulers import FcfsScheduler
from repro.queueing.trace import (
    TRACE_FORMAT,
    TraceRecorder,
    jobs_from_trace,
    load_trace,
    save_trace,
    trace_arrivals,
    trace_from_jobs,
)


def stream(n=20, seed=5):
    return list(
        poisson_arrivals(("a", "b"), rate=1.5, n_jobs=n, seed=seed)
    )


def fields(jobs):
    return [
        (j.job_id, j.job_type, j.size, j.arrival_time) for j in jobs
    ]


class TestRoundTrip:
    def test_payload_round_trip_is_bit_identical(self):
        jobs = stream()
        payload = trace_from_jobs(jobs, metadata={"note": "test"})
        # Through actual JSON text, as the golden harness does.
        restored = jobs_from_trace(json.loads(json.dumps(payload)))
        assert fields(restored) == fields(jobs)

    def test_file_round_trip(self, tmp_path):
        jobs = stream()
        path = save_trace(
            tmp_path / "sub" / "t.json", jobs, metadata={"seed": 5}
        )
        assert path.exists()
        assert fields(load_trace(path)) == fields(jobs)
        assert json.loads(path.read_text())["metadata"] == {"seed": 5}

    def test_trace_arrivals_accepts_all_forms(self, tmp_path):
        jobs = stream(n=8)
        payload = trace_from_jobs(jobs)
        path = save_trace(tmp_path / "t.json", jobs)
        for source in (payload, jobs, path, str(path)):
            assert fields(trace_arrivals(source)) == fields(jobs)

    def test_trace_arrivals_yields_fresh_jobs(self):
        jobs = stream(n=4)
        replayed = list(trace_arrivals(jobs))
        assert fields(replayed) == fields(jobs)
        assert all(a is not b for a, b in zip(replayed, jobs))


class TestRecorder:
    def test_recorder_tees_stream_unchanged(self):
        jobs = stream(n=10)
        recorder = TraceRecorder()
        seen = list(recorder.capture(iter(jobs)))
        assert seen == jobs
        assert fields(jobs_from_trace(recorder.trace())) == fields(jobs)

    def test_recorder_snapshots_before_simulation_mutates(self):
        """The recorded trace is pristine even though the simulator
        zeroes each job's ``remaining`` and stamps completions."""
        rates = TableRates(
            {("a",): {"a": 1.0}, ("a", "a"): {"a": 2.0}}
        )
        jobs = list(
            poisson_arrivals(("a",), rate=0.5, n_jobs=6, seed=3)
        )
        expected = fields(jobs)
        recorder = TraceRecorder()
        metrics = run_system(
            rates, FcfsScheduler(rates, 2), recorder.capture(iter(jobs))
        )
        assert metrics.completed == 6
        assert all(j.remaining == 0.0 for j in jobs)  # sim did mutate
        assert fields(jobs_from_trace(recorder.trace())) == expected

    def test_recorder_save(self, tmp_path):
        recorder = TraceRecorder()
        list(recorder.capture(iter(stream(n=5))))
        path = recorder.save(tmp_path / "r.json", metadata={"n": 5})
        assert fields(load_trace(path)) == fields(stream(n=5))


class TestValidation:
    def test_rejects_wrong_format(self):
        with pytest.raises(SimulationError, match="not a repro-trace"):
            jobs_from_trace({"format": "something-else", "jobs": []})

    def test_rejects_missing_jobs(self):
        with pytest.raises(SimulationError, match="no 'jobs' list"):
            jobs_from_trace({"format": TRACE_FORMAT})

    def test_rejects_missing_fields(self):
        payload = {
            "format": TRACE_FORMAT,
            "jobs": [{"job_id": 0, "job_type": "a", "size": 1.0}],
        }
        with pytest.raises(SimulationError, match="missing fields"):
            jobs_from_trace(payload)

    def test_rejects_out_of_order_arrivals(self):
        jobs = [
            Job(job_id=0, job_type="a", size=1.0, arrival_time=2.0),
            Job(job_id=1, job_type="a", size=1.0, arrival_time=1.0),
        ]
        with pytest.raises(SimulationError, match="before"):
            jobs_from_trace(trace_from_jobs(jobs))
