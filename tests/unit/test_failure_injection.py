"""Failure-injection tests: the library must fail loudly and helpfully."""

from __future__ import annotations

import pytest

import repro.microarch.simulator as simulator_module
from repro.errors import ConvergenceError, SimulationError
from repro.microarch.benchmarks import default_roster
from repro.microarch.config import smt_machine
from repro.microarch.rates import TableRates
from repro.microarch.simulator import simulate_coschedule
from repro.queueing.engine import run_system
from repro.queueing.job import Job
from repro.queueing.schedulers import FcfsScheduler, Scheduler


class TestSimulatorFailures:
    def test_convergence_failure_names_the_coschedule(self, monkeypatch):
        """If every damping level fails, the error says which coschedule
        and machine were being simulated."""

        def always_diverges(*args, **kwargs):
            raise ConvergenceError("injected divergence")

        monkeypatch.setattr(
            simulator_module, "solve_fixed_point", always_diverges
        )
        with pytest.raises(ConvergenceError) as excinfo:
            simulate_coschedule(
                smt_machine(), default_roster(), ("bzip2", "mcf")
            )
        message = str(excinfo.value)
        assert "bzip2" in message and "mcf" in message
        assert "smt4" in message


class _OverbookingScheduler(Scheduler):
    """A buggy scheduler that selects more jobs than contexts."""

    name = "overbooking"

    def select(self, jobs, clock):
        return list(jobs)


class _DuplicatingScheduler(Scheduler):
    """A buggy scheduler that selects the same job twice."""

    name = "duplicating"

    def select(self, jobs, clock):
        return [jobs[0], jobs[0]]


class TestEngineGuards:
    @pytest.fixture()
    def rates(self):
        return TableRates(
            {
                ("A",): {"A": 1.0},
                ("A", "A"): {"A": 2.0},
                ("A", "A", "A"): {"A": 3.0},
            }
        )

    def jobs(self, n):
        return [
            Job(job_id=i, job_type="A", size=1.0, arrival_time=0.0)
            for i in range(n)
        ]

    def test_overbooking_detected(self, rates):
        with pytest.raises(SimulationError) as excinfo:
            run_system(rates, _OverbookingScheduler(rates, 2), self.jobs(3))
        assert "overbooking" in str(excinfo.value)

    def test_duplicate_selection_detected(self, rates):
        with pytest.raises(SimulationError) as excinfo:
            run_system(rates, _DuplicatingScheduler(rates, 2), self.jobs(2))
        assert "twice" in str(excinfo.value)

    def test_honest_scheduler_passes_guards(self, rates):
        metrics = run_system(rates, FcfsScheduler(rates, 2), self.jobs(3))
        assert metrics.completed == 3
