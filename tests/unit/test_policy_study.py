"""Tests for the Section-VII policy study."""

from __future__ import annotations

import pytest

from repro.core.policy_study import (
    ALL_POLICIES,
    policy_label,
    run_policy_study,
)
from repro.core.workload import Workload
from repro.microarch.config import FetchPolicy, RobPolicy

WORKLOADS = [
    Workload.of("bzip2", "hmmer", "libquantum", "mcf"),
    Workload.of("calculix", "mcf", "sjeng", "xalancbmk"),
]


@pytest.fixture(scope="module")
def study():
    return run_policy_study(WORKLOADS)


class TestPolicyStudy:
    def test_four_policies(self, study):
        assert len(study.results) == 4
        labels = {r.label for r in study.results}
        assert labels == {policy_label(f, r) for f, r in ALL_POLICIES}

    def test_result_accessor(self, study):
        result = study.result(FetchPolicy.ICOUNT, RobPolicy.DYNAMIC)
        assert result.label == "icount+dynamic"
        with pytest.raises(KeyError):
            # a policy tuple not in this study
            run_policy_study(
                WORKLOADS[:1],
                policies=[(FetchPolicy.ICOUNT, RobPolicy.DYNAMIC)],
            ).result(FetchPolicy.ROUND_ROBIN, RobPolicy.STATIC)

    def test_optimal_at_least_fcfs_per_policy(self, study):
        for result in study.results:
            for label in study.workload_labels:
                assert (
                    result.optimal_tp[label]
                    >= result.fcfs_tp[label] - 1e-9
                )

    def test_flip_fraction_bounds(self, study):
        assert 0.0 <= study.flip_fraction() <= 1.0

    def test_mean_gain_self_is_zero(self, study):
        gain = study.mean_gain_over(
            (FetchPolicy.ICOUNT, RobPolicy.DYNAMIC),
            (FetchPolicy.ICOUNT, RobPolicy.DYNAMIC),
            metric="fcfs",
        )
        assert gain == pytest.approx(0.0)

    def test_best_policy_metrics(self, study):
        label = study.workload_labels[0]
        assert study.best_policy(label, metric="fcfs") in {
            r.label for r in study.results
        }
        with pytest.raises(ValueError):
            study.best_policy(label, metric="bogus")

    def test_icount_dynamic_beats_rr_static(self, study):
        """The paper's headline Section-VII ordering."""
        gain = study.mean_gain_over(
            (FetchPolicy.ROUND_ROBIN, RobPolicy.STATIC),
            (FetchPolicy.ICOUNT, RobPolicy.DYNAMIC),
            metric="fcfs",
        )
        assert gain > 0.0
