"""Unit tests for the heap-driven multi-machine event core."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.microarch.rates import TableRates
from repro.queueing.cluster import (
    Cluster,
    ClusterMetrics,
    RunRateMemo,
    run_cluster,
)
from repro.queueing.dispatch import (
    Dispatcher,
    JoinShortestQueueDispatcher,
    RoundRobinDispatcher,
)
from repro.queueing.job import Job
from repro.queueing.schedulers import FcfsScheduler, make_scheduler


@pytest.fixture()
def unit_rates() -> TableRates:
    """Every job progresses at rate 1 regardless of coschedule."""
    return TableRates(
        {
            ("A",): {"A": 1.0},
            ("B",): {"B": 1.0},
            ("A", "A"): {"A": 2.0},
            ("A", "B"): {"A": 1.0, "B": 1.0},
            ("B", "B"): {"B": 2.0},
        }
    )


def jobs_at(*specs) -> list[Job]:
    """specs: (type, arrival, size)."""
    return [
        Job(job_id=i, job_type=t, size=s, arrival_time=a)
        for i, (t, a, s) in enumerate(specs)
    ]


def fcfs_cluster(rates: TableRates, m: int, contexts: int = 2) -> Cluster:
    return Cluster(
        rates,
        [FcfsScheduler(rates, contexts) for _ in range(m)],
        RoundRobinDispatcher(),
    )


class TestClusterBasics:
    def test_round_robin_splits_batch(self, unit_rates):
        """Two simultaneous jobs land on different machines and finish
        in parallel at t=1."""
        metrics = fcfs_cluster(unit_rates, 2).run(
            jobs_at(("A", 0.0, 1.0), ("A", 0.0, 1.0))
        )
        assert metrics.completed == 2
        assert metrics.mean_turnaround == pytest.approx(1.0)
        for machine in metrics.per_machine:
            assert machine.completed == 1
            assert machine.measured_time == pytest.approx(1.0)

    def test_single_machine_cluster_behaves_like_engine(self, unit_rates):
        metrics = fcfs_cluster(unit_rates, 1).run(
            jobs_at(("A", 0.0, 2.0), ("B", 0.0, 1.0))
        )
        assert metrics.n_machines == 1
        assert metrics.completed == 2
        assert metrics.work_done == pytest.approx(3.0)

    def test_idle_machine_accumulates_empty_time(self, unit_rates):
        """With one job on a 2-machine cluster, the second machine is
        empty for the whole window (the flush covers its tail)."""
        metrics = fcfs_cluster(unit_rates, 2).run(
            jobs_at(("A", 0.0, 2.0))
        )
        busy, idle = metrics.per_machine
        assert busy.completed == 1
        assert idle.completed == 0
        assert idle.measured_time == pytest.approx(2.0)
        assert idle.empty_fraction == pytest.approx(1.0)
        assert metrics.empty_fraction == pytest.approx(0.5)

    def test_staggered_arrivals_cross_machines(self, unit_rates):
        """Arrivals while another machine is mid-job progress lazily."""
        metrics = fcfs_cluster(unit_rates, 2).run(
            jobs_at(("A", 0.0, 3.0), ("B", 1.0, 1.0), ("A", 1.5, 0.5))
        )
        assert metrics.completed == 3
        assert metrics.work_done == pytest.approx(4.5)
        # Machine 0 got jobs 0 and 2 (round-robin), machine 1 job 1.
        assert metrics.per_machine[0].completed == 2
        assert metrics.per_machine[1].completed == 1

    def test_per_machine_cap_bounds_concurrency(self, unit_rates):
        metrics = fcfs_cluster(unit_rates, 2).run(
            jobs_at(*[("A", 0.0, 1.0) for _ in range(8)]),
            keep_in_system=2,
        )
        assert metrics.completed == 8
        for machine in metrics.per_machine:
            assert machine.utilization <= 2.0 + 1e-9

    def test_stop_when_fewer_than_counts_cluster_wide(self, unit_rates):
        metrics = fcfs_cluster(unit_rates, 2, contexts=1).run(
            jobs_at(*[("A", 0.0, 1.0) for _ in range(6)]),
            stop_when_fewer_than=2,
        )
        # The threshold is cluster-wide: the run stops only when a
        # single job remains in the whole cluster, not per machine.
        assert metrics.completed == 5

    def test_horizon_stops_all_machines(self, unit_rates):
        metrics = fcfs_cluster(unit_rates, 2).run(
            jobs_at(("A", 0.0, 100.0), ("B", 0.0, 100.0)),
            horizon=5.0,
        )
        assert metrics.completed == 0
        for machine in metrics.per_machine:
            assert machine.measured_time == pytest.approx(5.0)

    def test_warmup_discards_early_observations(self, unit_rates):
        metrics = fcfs_cluster(unit_rates, 2).run(
            jobs_at(("A", 0.0, 1.0), ("A", 0.0, 1.0), ("A", 10.0, 1.0)),
            warmup_time=5.0,
        )
        assert metrics.completed == 1
        for machine in metrics.per_machine:
            assert machine.measured_time == pytest.approx(6.0)

    def test_many_machines_conserve_work(self, unit_rates):
        sizes = [0.3 * (i % 5 + 1) for i in range(40)]
        metrics = fcfs_cluster(unit_rates, 8).run(
            jobs_at(*[("A", 0.1 * i, s) for i, s in enumerate(sizes)])
        )
        assert metrics.completed == 40
        assert metrics.work_done == pytest.approx(sum(sizes), rel=1e-9)

    def test_cluster_throughput_sums_machines(self, unit_rates):
        metrics = fcfs_cluster(unit_rates, 2).run(
            jobs_at(("A", 0.0, 2.0), ("B", 0.0, 2.0))
        )
        assert metrics.throughput == pytest.approx(
            sum(m.throughput for m in metrics.per_machine)
        )
        assert metrics.utilization == pytest.approx(2.0)


class TestClusterGuards:
    def test_needs_at_least_one_machine(self, unit_rates):
        with pytest.raises(SimulationError):
            Cluster(unit_rates, [], RoundRobinDispatcher())

    def test_out_of_order_arrivals_rejected(self, unit_rates):
        stream = [
            Job(job_id=0, job_type="A", size=1.0, arrival_time=5.0),
            Job(job_id=1, job_type="A", size=1.0, arrival_time=1.0),
        ]
        with pytest.raises(SimulationError, match="out of order"):
            fcfs_cluster(unit_rates, 2).run(stream)

    def test_zero_rate_rejected(self):
        rates = TableRates({("A",): {"A": 0.0}})
        with pytest.raises(SimulationError, match="zero rate"):
            run_cluster(
                rates,
                [FcfsScheduler(rates, 1)],
                RoundRobinDispatcher(),
                jobs_at(("A", 0.0, 1.0)),
            )

    def test_event_budget_enforced(self, unit_rates):
        with pytest.raises(SimulationError, match="exceeded"):
            fcfs_cluster(unit_rates, 2).run(
                jobs_at(*[("A", 0.0, 1.0) for _ in range(10)]),
                max_events=2,
            )

    def test_bad_dispatcher_target_rejected(self, unit_rates):
        class Elsewhere(Dispatcher):
            name = "elsewhere"

            def route(self, job, machines, eligible, clock):
                return len(machines)  # out of range

        with pytest.raises(SimulationError, match="routed to invalid"):
            run_cluster(
                unit_rates,
                [FcfsScheduler(unit_rates, 2) for _ in range(2)],
                Elsewhere(),
                jobs_at(("A", 0.0, 1.0)),
            )


class TestRunRateMemo:
    def test_memoizes_type_rates_per_canonical_key(self, unit_rates):
        calls = []

        class Counting:
            def type_rates(self, coschedule):
                calls.append(tuple(coschedule))
                return unit_rates.type_rates(coschedule)

        memo = RunRateMemo(Counting())
        assert memo.type_rates(("B", "A")) == {"A": 1.0, "B": 1.0}
        assert memo.type_rates(("A", "B")) == {"A": 1.0, "B": 1.0}
        assert calls == [("A", "B")]

    def test_per_job_rates_divide_by_multiplicity(self, unit_rates):
        memo = RunRateMemo(unit_rates)
        assert memo.per_job_rates(("A", "A")) == {"A": 1.0}
        assert memo.per_job_rates(()) == {}

    def test_delegates_unknown_attributes(self, unit_rates):
        memo = RunRateMemo(unit_rates)
        assert memo.coschedules() == unit_rates.coschedules()

    def test_schedulers_share_the_run_memo(self, unit_rates):
        """During a run, every scheduler probe goes through one memo:
        the underlying source sees each multiset at most once."""
        calls = []

        class Counting:
            def type_rates(self, coschedule):
                calls.append(tuple(coschedule))
                return unit_rates.type_rates(coschedule)

        source = Counting()
        schedulers = [make_scheduler("maxit", source, 2) for _ in range(2)]
        run_cluster(
            source,
            schedulers,
            RoundRobinDispatcher(),
            jobs_at(*[("A" if i % 2 else "B", 0.0, 1.0) for i in range(6)]),
        )
        assert len(calls) == len(set(calls))
        # The original source is restored once the run ends.
        assert all(s.rates is source for s in schedulers)


class TestJsqComposition:
    def test_jsq_balances_uneven_service(self, unit_rates):
        """JSQ sends newcomers to the machine that drained."""
        metrics = run_cluster(
            unit_rates,
            [FcfsScheduler(unit_rates, 1) for _ in range(2)],
            JoinShortestQueueDispatcher(),
            jobs_at(
                ("A", 0.0, 5.0),  # machine 0, long
                ("A", 0.0, 1.0),  # machine 1, short
                ("A", 1.5, 1.0),  # machine 1 is empty again -> goes there
            ),
        )
        assert metrics.per_machine[0].completed == 1
        assert metrics.per_machine[1].completed == 2


class TestClusterMetrics:
    def test_mean_turnaround_requires_completions(self):
        metrics = ClusterMetrics(per_machine=())
        with pytest.raises(SimulationError):
            metrics.mean_turnaround


class TestMachineJobQueuePath:
    """Regression: every engine routes completions through JobQueue's
    incremental ``remove_ids`` — the O(queue)-per-completion plain-list
    rebuild path is gone and must stay gone."""

    def test_plain_list_jobs_normalized_to_jobqueue(self, unit_rates):
        from repro.queueing.cluster import JobQueue, Machine

        machine = Machine(
            machine_id=0,
            scheduler=FcfsScheduler(unit_rates, 2),
            jobs=jobs_at(("A", 0.0, 1.0), ("B", 0.0, 1.0)),
        )
        assert type(machine.jobs) is JobQueue
        assert [job.job_type for job in machine.jobs] == ["A", "B"]

    def test_completions_route_through_remove_ids(
        self, unit_rates, monkeypatch
    ):
        from repro.queueing.cluster import JobQueue

        removed: list[int] = []
        original = JobQueue.remove_ids

        def spy(self, ids, codes):
            removed.append(len(ids))
            return original(self, ids, codes)

        monkeypatch.setattr(JobQueue, "remove_ids", spy)
        metrics = fcfs_cluster(unit_rates, 2).run(
            jobs_at(("A", 0.0, 1.0), ("B", 0.0, 1.0), ("A", 0.5, 1.0))
        )
        assert metrics.completed == 3
        assert sum(removed) == 3

    @pytest.mark.parametrize("engine", ["legacy", "fast", "compiled"])
    def test_every_engine_keeps_the_queue_a_jobqueue(
        self, unit_rates, engine
    ):
        from repro.queueing.cluster import JobQueue

        cluster = fcfs_cluster(unit_rates, 2)
        stream = jobs_at(
            ("A", 0.0, 1.0), ("B", 0.2, 1.0), ("A", 0.4, 1.0),
            ("B", 0.6, 1.0),
        )
        handle = cluster.start(iter(stream), engine=engine)
        try:
            assert not handle.advance(pause_at=0.5)
            for machine in handle.machines:
                assert type(machine.jobs) is JobQueue
            assert handle.advance()
        finally:
            handle.close()
