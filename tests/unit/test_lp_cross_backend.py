"""Cross-validation: from-scratch simplex vs scipy HiGHS.

The paper used glpk; we cross-check our simplex against an independent
industrial solver on randomized instances and on real Section-IV
throughput programs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

pytest.importorskip("scipy")

from repro.core.optimal import optimal_throughput, worst_throughput
from repro.core.workload import Workload
from repro.lp.model import Model, Sense
from repro.lp.solution import SolveStatus


@st.composite
def random_lp(draw):
    """A random bounded-feasible LP: max c'x s.t. Ax <= b, 0 <= x <= u."""
    n = draw(st.integers(2, 6))
    m_rows = draw(st.integers(1, 5))
    # Coefficients rounded to 3 decimals: sub-tolerance values (1e-7)
    # make the two solvers legitimately disagree about which side of
    # zero a degenerate optimum sits on.
    coef = st.floats(
        min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False
    ).map(lambda x: round(x, 3))
    pos = st.floats(
        min_value=0.5, max_value=10.0, allow_nan=False, allow_infinity=False
    ).map(lambda x: round(x, 3))
    c = draw(st.lists(coef, min_size=n, max_size=n))
    A = [
        draw(st.lists(coef, min_size=n, max_size=n)) for _ in range(m_rows)
    ]
    b = draw(st.lists(pos, min_size=m_rows, max_size=m_rows))
    u = draw(st.lists(pos, min_size=n, max_size=n))
    return c, A, b, u


def build_model(c, A, b, u) -> Model:
    model = Model("random", sense=Sense.MAXIMIZE)
    xs = [
        model.add_variable(f"x{i}", lower=0.0, upper=u[i])
        for i in range(len(c))
    ]
    for row, rhs in zip(A, b):
        model.add_constraint(
            sum(coef * x for coef, x in zip(row, xs)) <= rhs
        )
    model.set_objective(sum(coef * x for coef, x in zip(c, xs)))
    return model


class TestRandomInstances:
    @given(random_lp())
    @settings(max_examples=40, deadline=None)
    def test_objectives_agree(self, instance):
        c, A, b, u = instance
        ours = build_model(c, A, b, u).solve(backend="simplex")
        scipys = build_model(c, A, b, u).solve(backend="scipy")
        assert ours.status == scipys.status
        if ours.status is SolveStatus.OPTIMAL:
            assert ours.objective == pytest.approx(
                scipys.objective, rel=1e-6, abs=1e-7
            )

    @given(random_lp())
    @settings(max_examples=40, deadline=None)
    def test_simplex_solution_is_feasible(self, instance):
        c, A, b, u = instance
        model = build_model(c, A, b, u)
        solution = model.solve(backend="simplex")
        if solution.status is SolveStatus.OPTIMAL:
            assert model.check_feasible(solution.values)


class TestThroughputPrograms:
    """Real Section-IV LPs on simulated rates, both backends."""

    @pytest.mark.parametrize(
        "types",
        [
            ("bzip2", "hmmer", "libquantum", "mcf"),
            ("calculix", "h264ref", "hmmer", "tonto"),
            ("gcc.cp-decl", "mcf", "sjeng", "xalancbmk"),
        ],
    )
    def test_backends_agree_on_optimal(self, smt_rates, types):
        workload = Workload.of(*types)
        ours = optimal_throughput(smt_rates, workload, backend="simplex")
        scipys = optimal_throughput(smt_rates, workload, backend="scipy")
        assert ours.throughput == pytest.approx(scipys.throughput, rel=1e-7)

    def test_backends_agree_on_worst(self, smt_rates):
        workload = Workload.of("bzip2", "hmmer", "libquantum", "mcf")
        ours = worst_throughput(smt_rates, workload, backend="simplex")
        scipys = worst_throughput(smt_rates, workload, backend="scipy")
        assert ours.throughput == pytest.approx(scipys.throughput, rel=1e-7)
