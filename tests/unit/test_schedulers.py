"""Tests for the four Section-VI schedulers."""

from __future__ import annotations

import pytest

from repro.core.workload import Workload
from repro.errors import SimulationError, WorkloadError
from repro.microarch.rates import TableRates
from repro.queueing.job import Job
from repro.queueing.schedulers import (
    FcfsScheduler,
    MaxItScheduler,
    MaxTpScheduler,
    SrptScheduler,
    make_scheduler,
)

AB = Workload.of("A", "B")


@pytest.fixture()
def rates() -> TableRates:
    """AA is the best coschedule; AB is unfair; BB is poor."""
    return TableRates(
        {
            ("A",): {"A": 1.0},
            ("B",): {"B": 1.0},
            ("A", "A"): {"A": 1.8},
            ("A", "B"): {"A": 0.9, "B": 0.4},
            ("B", "B"): {"B": 0.7},
        }
    )


def make_jobs(*specs) -> list[Job]:
    """specs: (type, arrival, remaining)."""
    return [
        Job(
            job_id=i,
            job_type=t,
            size=max(rem, 1e-6),
            arrival_time=arr,
            remaining=rem,
        )
        for i, (t, arr, rem) in enumerate(specs)
    ]


class TestFcfs:
    def test_takes_oldest(self, rates):
        scheduler = FcfsScheduler(rates, contexts=2)
        jobs = make_jobs(("A", 0.0, 1.0), ("B", 1.0, 1.0), ("A", 2.0, 1.0))
        selected = scheduler.select(jobs, clock=5.0)
        assert [j.job_id for j in selected] == [0, 1]

    def test_fewer_jobs_than_contexts(self, rates):
        scheduler = FcfsScheduler(rates, contexts=4)
        jobs = make_jobs(("A", 0.0, 1.0))
        assert len(scheduler.select(jobs, clock=0.0)) == 1


class TestMaxIt:
    def test_picks_highest_throughput_combination(self, rates):
        scheduler = MaxItScheduler(rates, contexts=2)
        jobs = make_jobs(("A", 0.0, 1.0), ("A", 1.0, 1.0), ("B", 0.5, 1.0))
        selected = scheduler.select(jobs, clock=2.0)
        assert sorted(j.job_type for j in selected) == ["A", "A"]

    def test_tie_broken_by_age(self):
        tie_rates = TableRates(
            {
                ("A", "A"): {"A": 1.0},
                ("A", "B"): {"A": 0.5, "B": 0.5},
                ("B", "B"): {"B": 1.0},
            }
        )
        scheduler = MaxItScheduler(tie_rates, contexts=2)
        jobs = make_jobs(("B", 0.0, 1.0), ("B", 1.0, 1.0), ("A", 2.0, 1.0), ("A", 3.0, 1.0))
        selected = scheduler.select(jobs, clock=4.0)
        # AA, AB, BB all have it = 1.0; oldest pair is the two Bs.
        assert sorted(j.job_id for j in selected) == [0, 1]

    def test_empty(self, rates):
        assert MaxItScheduler(rates, contexts=2).select([], 0.0) == []

    def test_selects_oldest_jobs_within_type(self, rates):
        scheduler = MaxItScheduler(rates, contexts=2)
        jobs = make_jobs(("A", 5.0, 1.0), ("A", 1.0, 1.0), ("A", 3.0, 1.0))
        selected = scheduler.select(jobs, clock=6.0)
        assert sorted(j.arrival_time for j in selected) == [1.0, 3.0]


class TestSrpt:
    def test_prefers_short_jobs(self, rates):
        scheduler = SrptScheduler(rates, contexts=2)
        jobs = make_jobs(("A", 0.0, 10.0), ("A", 1.0, 0.1), ("A", 2.0, 0.2))
        selected = scheduler.select(jobs, clock=3.0)
        assert sorted(j.remaining for j in selected) == [0.1, 0.2]

    def test_accounts_for_rates_in_combination(self):
        """A short B job can lose to A jobs because B's rate in any
        available combination is poor."""
        rates = TableRates(
            {
                ("A", "A"): {"A": 2.0},
                ("A", "B"): {"A": 1.0, "B": 0.05},
                ("B", "B"): {"B": 0.05},
            }
        )
        scheduler = SrptScheduler(rates, contexts=2)
        jobs = make_jobs(("A", 0.0, 1.0), ("A", 1.0, 1.0), ("B", 2.0, 0.5))
        selected = scheduler.select(jobs, clock=3.0)
        # AA: 1/1 + 1/1 = 2.0; best with B: 1/1 + 0.5/0.05 = 11.
        assert sorted(j.job_type for j in selected) == ["A", "A"]

    def test_empty(self, rates):
        assert SrptScheduler(rates, contexts=2).select([], 0.0) == []


class TestMaxTp:
    def test_follows_optimal_fractions(self, rates):
        workload = AB
        scheduler = MaxTpScheduler(rates, 2, workload)
        assert scheduler.target_fractions  # offline phase ran
        jobs = make_jobs(("A", 0.0, 1.0), ("A", 1.0, 1.0), ("B", 2.0, 1.0))
        selected = scheduler.select(jobs, clock=3.0)
        multiset = tuple(sorted(j.job_type for j in selected))
        assert multiset in scheduler.target_fractions

    def test_deficit_tracking(self, rates):
        scheduler = MaxTpScheduler(rates, 2, AB)
        coschedules = list(scheduler.target_fractions)
        first = coschedules[0]
        scheduler.observe(first, 10.0)
        # having over-served `first`, its deficit must be lowest now
        deficits = {s: scheduler._deficit(s) for s in coschedules}
        assert min(deficits, key=deficits.get) == first

    def test_fallback_when_no_optimal_composable(self):
        """If the jobs present cannot form any optimal coschedule, the
        scheduler falls back to MAXIT."""
        rates = TableRates(
            {
                ("A", "A"): {"A": 1.0},
                ("A", "B"): {"A": 0.9, "B": 0.9},
                ("B", "B"): {"B": 1.0},
            }
        )
        scheduler = MaxTpScheduler(rates, 2, AB)
        only_if_ab = ("A", "B") in scheduler.target_fractions
        jobs = make_jobs(("A", 0.0, 1.0), ("A", 1.0, 1.0))
        selected = scheduler.select(jobs, clock=2.0)
        assert len(selected) == 2  # served via fallback if needed
        assert only_if_ab  # sanity: hetero coschedule is optimal here

    def test_fewer_jobs_than_contexts_falls_back(self, rates):
        scheduler = MaxTpScheduler(rates, 2, AB)
        jobs = make_jobs(("A", 0.0, 1.0))
        assert len(scheduler.select(jobs, clock=0.0)) == 1


class TestFactory:
    def test_all_names(self, rates):
        for name in ("fcfs", "maxit", "srpt"):
            assert make_scheduler(name, rates, 2).name == name
        assert make_scheduler("maxtp", rates, 2, workload=AB).name == "maxtp"

    def test_maxtp_requires_workload(self, rates):
        with pytest.raises(WorkloadError):
            make_scheduler("maxtp", rates, 2)

    def test_unknown_name(self, rates):
        with pytest.raises(WorkloadError):
            make_scheduler("greedy-oracle", rates, 2)

    def test_bad_contexts(self, rates):
        with pytest.raises(SimulationError):
            FcfsScheduler(rates, contexts=0)
