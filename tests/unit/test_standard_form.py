"""Tests for the model -> standard form compiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.model import Model, Sense
from repro.lp.standard_form import to_standard_form


class TestStandardForm:
    def test_nonnegative_rhs(self):
        m = Model()
        x = m.add_variable("x")
        m.add_constraint(x >= -2.0)  # rhs -2 -> row negated
        m.set_objective(x)
        form = to_standard_form(m)
        assert np.all(form.b >= 0.0)

    def test_slack_columns_added_for_inequalities(self):
        m = Model()
        x = m.add_variable("x")
        m.add_constraint(x <= 3.0)
        m.add_constraint(x >= 1.0)
        m.set_objective(x)
        form = to_standard_form(m)
        kinds = [kind for kind, _ in form.column_meaning]
        assert kinds.count("slack") == 2

    def test_equality_gets_no_slack(self):
        m = Model()
        x = m.add_variable("x")
        m.add_constraint(x == 3.0)
        m.set_objective(x)
        form = to_standard_form(m)
        kinds = [kind for kind, _ in form.column_meaning]
        assert "slack" not in kinds

    def test_free_variable_split(self):
        m = Model()
        m.add_variable("x", lower=None)
        form = to_standard_form(m)
        var_cols = [p for k, p in form.column_meaning if k == "var"]
        assert len(var_cols) == 2
        signs = sorted(payload[2] for payload in var_cols)
        assert signs == [-1.0, 1.0]

    def test_lower_bound_shift_recovery(self):
        m = Model(sense=Sense.MINIMIZE)
        m.add_variable("x", lower=5.0)
        form = to_standard_form(m)
        values = form.recover_values(np.zeros(form.n_cols))
        assert values["x"] == pytest.approx(5.0)

    def test_objective_sign_for_maximize(self):
        m = Model(sense=Sense.MAXIMIZE)
        x = m.add_variable("x")
        m.set_objective(2 * x)
        form = to_standard_form(m)
        # standard form minimizes, so the compiled coefficient is -2.
        assert form.c[0] == pytest.approx(-2.0)
        assert form.recover_objective(-6.0) == pytest.approx(6.0)

    def test_upper_bound_becomes_row(self):
        m = Model()
        m.add_variable("x", upper=7.0)
        form = to_standard_form(m)
        assert form.n_rows == 1
        assert form.b[0] == pytest.approx(7.0)

    def test_row_names_preserved(self):
        m = Model()
        x = m.add_variable("x")
        m.add_constraint(x == 1.0, name="pin")
        form = to_standard_form(m)
        assert "pin" in form.row_names
