"""Tests for SystemMetrics accounting."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.queueing.system import SystemMetrics


class TestSystemMetrics:
    def test_interval_accounting(self):
        m = SystemMetrics()
        m.observe_interval(2.0, ("a", "b"), jobs_in_system=3, work=1.5)
        m.observe_interval(1.0, (), jobs_in_system=0, work=0.0)
        assert m.measured_time == 3.0
        assert m.utilization == pytest.approx(4.0 / 3.0)
        assert m.empty_fraction == pytest.approx(1.0 / 3.0)
        assert m.throughput == pytest.approx(0.5)

    def test_coschedule_fractions(self):
        m = SystemMetrics()
        m.observe_interval(3.0, ("a",), 1, 1.0)
        m.observe_interval(1.0, ("b",), 1, 1.0)
        fractions = m.coschedule_fractions()
        assert fractions[("a",)] == pytest.approx(0.75)
        assert fractions[("b",)] == pytest.approx(0.25)

    def test_coschedule_key_canonicalized(self):
        m = SystemMetrics()
        m.observe_interval(1.0, ("b", "a"), 2, 0.0)
        assert ("a", "b") in m.time_by_coschedule

    def test_completions(self):
        m = SystemMetrics()
        m.observe_completion(2.0)
        m.observe_completion(4.0)
        assert m.completed == 2
        assert m.mean_turnaround == 3.0

    def test_zero_interval_ignored(self):
        m = SystemMetrics()
        m.observe_interval(0.0, ("a",), 1, 0.0)
        assert m.measured_time == 0.0
        assert m.time_by_coschedule == {}

    def test_errors(self):
        m = SystemMetrics()
        with pytest.raises(SimulationError):
            m.observe_interval(-1.0, (), 0, 0.0)
        with pytest.raises(SimulationError):
            m.observe_completion(-1.0)
        with pytest.raises(SimulationError):
            _ = m.mean_turnaround
        with pytest.raises(SimulationError):
            _ = m.utilization
        with pytest.raises(SimulationError):
            _ = m.coschedule_fractions()
