"""Tests for RateTable / TableRates (repro.microarch.rates)."""

from __future__ import annotations

import io

import pytest

from repro.errors import WorkloadError
from repro.microarch.benchmarks import roster_by_name
from repro.microarch.config import smt_machine
from repro.microarch.rates import RateTable, TableRates, canonical_coschedule


class TestCanonical:
    def test_sorts(self):
        assert canonical_coschedule(["b", "a"]) == ("a", "b")

    def test_already_canonical_tuple_returned_as_is(self):
        """The fast path: a sorted tuple skips the re-sort and comes
        back as the *same object* (memo keys stay interned)."""
        key = ("a", "b", "b", "c")
        assert canonical_coschedule(key) is key
        assert canonical_coschedule(()) == ()
        single = ("mcf",)
        assert canonical_coschedule(single) is single

    def test_unsorted_tuple_still_sorts(self):
        assert canonical_coschedule(("b", "a", "c")) == ("a", "b", "c")
        # equal-element runs are not mistaken for disorder
        assert canonical_coschedule(("a", "a", "b")) == ("a", "a", "b")

    def test_non_tuple_iterables_always_normalize(self):
        assert canonical_coschedule(iter(["c", "a"])) == ("a", "c")
        assert canonical_coschedule({"b": 1, "a": 2}) == ("a", "b")


class TestRateTable:
    def test_alone_wipc_is_one(self, smt_rates):
        assert smt_rates.wipcs(("hmmer",)) == pytest.approx((1.0,))

    def test_type_rates_sum_matches_it(self, smt_rates):
        cos = ("bzip2", "hmmer", "libquantum", "mcf")
        rates = smt_rates.type_rates(cos)
        assert sum(rates.values()) == pytest.approx(
            smt_rates.instantaneous_throughput(cos)
        )

    def test_type_rates_accumulate_multiplicity(self, smt_rates):
        cos = ("hmmer", "hmmer", "mcf", "mcf")
        rates = smt_rates.type_rates(cos)
        per_job = smt_rates.per_job_rate(cos, "hmmer")
        assert rates["hmmer"] == pytest.approx(2 * per_job)

    def test_per_job_rate_unknown_type(self, smt_rates):
        with pytest.raises(WorkloadError):
            smt_rates.per_job_rate(("hmmer", "mcf"), "bzip2")

    def test_wipc_at_most_one(self, smt_rates):
        """No job runs faster coscheduled than alone."""
        for wipc in smt_rates.wipcs(("bzip2", "hmmer", "libquantum", "mcf")):
            assert wipc <= 1.0 + 1e-6

    def test_result_cache_returns_same_object(self, smt_rates):
        a = smt_rates.result(("bzip2", "mcf"))
        b = smt_rates.result(("mcf", "bzip2"))
        assert a is b

    def test_returned_type_rates_are_copies(self, smt_rates):
        cos = ("bzip2", "mcf")
        first = smt_rates.type_rates(cos)
        first["bzip2"] = 999.0
        assert smt_rates.type_rates(cos)["bzip2"] != 999.0

    def test_precompute_counts(self):
        roster = roster_by_name("bzip2", "mcf")
        table = RateTable(smt_machine(), roster)
        count = table.precompute(sizes=[1, 2])
        # 2 singles + 3 pairs.
        assert count == 5

    def test_to_json_round_trip(self):
        roster = roster_by_name("bzip2", "mcf")
        table = RateTable(smt_machine(), roster)
        table.precompute(sizes=[2])
        buffer = io.StringIO()
        table.to_json(buffer)
        buffer.seek(0)
        frozen = TableRates.from_json(buffer)
        cos = ("bzip2", "mcf")
        assert frozen.type_rates(cos) == pytest.approx(table.type_rates(cos))

    def test_snapshot(self, smt_rates):
        cos = ("bzip2", "mcf")
        frozen = smt_rates.snapshot([cos])
        assert frozen.type_rates(cos) == pytest.approx(
            smt_rates.type_rates(cos)
        )
        with pytest.raises(WorkloadError):
            frozen.type_rates(("hmmer", "hmmer"))


class TestTableRates:
    def test_basic_lookup(self, synthetic_rates):
        assert synthetic_rates.type_rates(("A", "B")) == {"A": 0.9, "B": 0.5}

    def test_canonicalizes_queries(self, synthetic_rates):
        assert synthetic_rates.type_rates(("B", "A")) == {"A": 0.9, "B": 0.5}

    def test_missing_coschedule(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            synthetic_rates.type_rates(("A", "C"))

    def test_mismatched_types_rejected(self):
        with pytest.raises(WorkloadError):
            TableRates({("A", "B"): {"A": 1.0}})

    def test_negative_rates_rejected(self):
        with pytest.raises(WorkloadError):
            TableRates({("A",): {"A": -1.0}})

    def test_with_rates_replaces_one_entry(self, synthetic_rates):
        updated = synthetic_rates.with_rates(("A", "B"), {"A": 0.7, "B": 0.7})
        assert updated.type_rates(("A", "B"))["A"] == 0.7
        # original untouched
        assert synthetic_rates.type_rates(("A", "B"))["A"] == 0.9

    def test_with_rates_missing_entry(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            synthetic_rates.with_rates(("A", "C"), {"A": 1.0, "C": 1.0})

    def test_json_round_trip(self, synthetic_rates):
        buffer = io.StringIO()
        synthetic_rates.to_json(buffer)
        buffer.seek(0)
        loaded = TableRates.from_json(buffer)
        assert loaded.coschedules() == synthetic_rates.coschedules()
        for cos in loaded.coschedules():
            assert loaded.type_rates(cos) == synthetic_rates.type_rates(cos)

    def test_per_job_rate(self, synthetic_rates):
        assert synthetic_rates.per_job_rate(("A", "A"), "A") == pytest.approx(0.8)

    def test_instantaneous_throughput(self, synthetic_rates):
        assert synthetic_rates.instantaneous_throughput(("A", "B")) == pytest.approx(1.4)
