"""Tests for the coschedule simulator facade and core models."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.microarch.benchmarks import default_roster
from repro.microarch.config import quad_core_machine, smt_machine
from repro.microarch.simulator import simulate_coschedule

ROSTER = default_roster()
SMT = smt_machine()
QUAD = quad_core_machine()


class TestFacade:
    def test_canonical_ordering(self):
        a = simulate_coschedule(SMT, ROSTER, ("mcf", "hmmer"))
        b = simulate_coschedule(SMT, ROSTER, ("hmmer", "mcf"))
        assert a.job_names == b.job_names == ("hmmer", "mcf")
        assert a.ipcs == b.ipcs

    def test_deterministic(self):
        r1 = simulate_coschedule(SMT, ROSTER, ("bzip2", "mcf", "sjeng"))
        r2 = simulate_coschedule(SMT, ROSTER, ("bzip2", "mcf", "sjeng"))
        assert r1.ipcs == r2.ipcs

    def test_unknown_type_rejected(self):
        with pytest.raises(WorkloadError):
            simulate_coschedule(SMT, ROSTER, ("nonexistent",))

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            simulate_coschedule(SMT, ROSTER, ())

    def test_too_many_jobs_rejected(self):
        with pytest.raises(WorkloadError):
            simulate_coschedule(SMT, ROSTER, ("bzip2",) * 5)

    def test_ipc_of_accessor(self):
        result = simulate_coschedule(SMT, ROSTER, ("hmmer", "hmmer", "mcf"))
        assert len(result.ipc_of("hmmer")) == 2
        with pytest.raises(WorkloadError):
            result.ipc_of("bzip2")


class TestPhysicalInvariants:
    @pytest.mark.parametrize("machine", [SMT, QUAD], ids=["smt", "quad"])
    def test_all_rates_positive(self, machine):
        result = simulate_coschedule(
            machine, ROSTER, ("hmmer", "libquantum", "mcf", "xalancbmk")
        )
        assert all(ipc > 0.0 for ipc in result.ipcs)

    @pytest.mark.parametrize("machine", [SMT, QUAD], ids=["smt", "quad"])
    def test_coscheduled_never_faster_than_alone(self, machine):
        for name in ("hmmer", "mcf", "libquantum", "bzip2"):
            alone = simulate_coschedule(machine, ROSTER, (name,)).ipcs[0]
            co = simulate_coschedule(
                machine, ROSTER, (name, "mcf", "libquantum", "hmmer")
            )
            for job, ipc in zip(co.job_names, co.ipcs):
                if job == name:
                    assert ipc <= alone * (1.0 + 1e-6)

    def test_symmetric_jobs_get_symmetric_performance(self):
        result = simulate_coschedule(SMT, ROSTER, ("mcf",) * 4)
        assert max(result.ipcs) - min(result.ipcs) < 1e-7

    def test_smt_total_ipc_below_width(self):
        result = simulate_coschedule(
            SMT, ROSTER, ("calculix", "h264ref", "hmmer", "tonto")
        )
        assert result.total_ipc <= SMT.width + 1e-9

    def test_quad_per_job_ipc_below_width(self):
        result = simulate_coschedule(
            QUAD, ROSTER, ("calculix", "h264ref", "hmmer", "tonto")
        )
        assert all(ipc <= QUAD.width for ipc in result.ipcs)

    def test_cache_shares_sum_to_llc(self):
        for machine in (SMT, QUAD):
            result = simulate_coschedule(
                machine, ROSTER, ("bzip2", "mcf", "sjeng", "xalancbmk")
            )
            assert sum(result.cache_mb) == pytest.approx(
                machine.llc_mb, rel=1e-6
            )

    def test_bus_utilization_bounded(self):
        result = simulate_coschedule(SMT, ROSTER, ("libquantum",) * 4)
        assert 0.0 <= result.bus_utilization <= SMT.bus_max_utilization

    def test_memory_latency_at_least_uncontended(self):
        result = simulate_coschedule(QUAD, ROSTER, ("mcf", "libquantum"))
        assert result.memory_latency >= QUAD.mem_latency_cycles


class TestQualitativeBehaviour:
    def test_smt_compute_jobs_crushed_by_co_runners(self):
        """The paper's SMT reality: a high-IPC job loses most of its
        performance with three active co-runners (hmmer: ~2.5 alone vs
        ~0.31 coscheduled in their data)."""
        alone = simulate_coschedule(SMT, ROSTER, ("hmmer",)).ipcs[0]
        crowded = simulate_coschedule(
            SMT, ROSTER, ("calculix", "h264ref", "hmmer", "tonto")
        )
        hmmer_ipc = crowded.ipc_of("hmmer")[0]
        assert hmmer_ipc < 0.5 * alone

    def test_quad_compute_jobs_nearly_insensitive(self):
        """On the quad-core, a small-footprint compute job keeps most of
        its alone performance regardless of co-runners."""
        alone = simulate_coschedule(QUAD, ROSTER, ("hmmer",)).ipcs[0]
        crowded = simulate_coschedule(
            QUAD, ROSTER, ("hmmer", "sjeng", "calculix", "tonto")
        )
        assert crowded.ipc_of("hmmer")[0] > 0.7 * alone

    def test_smt_unfairness_memory_vs_compute(self):
        """SMT slowdowns are unequally distributed: relative to running
        alone, the memory-bound job retains more of its performance
        than the compute job in a mixed coschedule."""
        mix = ("hmmer", "hmmer", "mcf", "mcf")
        result = simulate_coschedule(SMT, ROSTER, mix)
        hmmer_alone = simulate_coschedule(SMT, ROSTER, ("hmmer",)).ipcs[0]
        mcf_alone = simulate_coschedule(SMT, ROSTER, ("mcf",)).ipcs[0]
        hmmer_retained = result.ipc_of("hmmer")[0] / hmmer_alone
        mcf_retained = result.ipc_of("mcf")[0] / mcf_alone
        assert mcf_retained > hmmer_retained

    def test_bandwidth_hogs_hurt_each_other(self):
        one = simulate_coschedule(QUAD, ROSTER, ("libquantum",)).ipcs[0]
        four = simulate_coschedule(QUAD, ROSTER, ("libquantum",) * 4)
        assert four.ipcs[0] < 0.75 * one

    def test_icount_vs_rr_changes_results(self):
        rr = smt_machine(fetch_policy=__import__(
            "repro.microarch.config", fromlist=["FetchPolicy"]
        ).FetchPolicy.ROUND_ROBIN)
        mix = ("hmmer", "mcf", "sjeng", "xalancbmk")
        a = simulate_coschedule(SMT, ROSTER, mix)
        b = simulate_coschedule(rr, ROSTER, mix)
        assert a.ipcs != b.ipcs
