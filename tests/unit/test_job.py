"""Tests for queueing Job objects."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.queueing.job import Job


class TestJob:
    def test_remaining_defaults_to_size(self):
        job = Job(job_id=0, job_type="a", size=2.0, arrival_time=1.0)
        assert job.remaining == 2.0
        assert not job.done

    def test_progress(self):
        job = Job(job_id=0, job_type="a", size=2.0, arrival_time=0.0)
        job.progress(1.5)
        assert job.remaining == pytest.approx(0.5)
        job.progress(10.0)  # clamped
        assert job.remaining == 0.0
        assert job.done

    def test_negative_progress_rejected(self):
        job = Job(job_id=0, job_type="a", size=1.0, arrival_time=0.0)
        with pytest.raises(SimulationError):
            job.progress(-0.5)

    def test_turnaround(self):
        job = Job(job_id=0, job_type="a", size=1.0, arrival_time=2.0)
        job.completion_time = 5.0
        assert job.turnaround == 3.0

    def test_turnaround_before_completion_rejected(self):
        job = Job(job_id=0, job_type="a", size=1.0, arrival_time=0.0)
        with pytest.raises(SimulationError):
            _ = job.turnaround

    def test_bad_size_rejected(self):
        with pytest.raises(SimulationError):
            Job(job_id=0, job_type="a", size=0.0, arrival_time=0.0)
