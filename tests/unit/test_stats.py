"""Tests for repro.util.stats."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import pearson, slope_through_origin, spread, summarize

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSummarize:
    def test_basic(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.count == 3

    def test_spread_is_paper_variability(self):
        # (max - min) / mean
        assert summarize([1.0, 2.0, 3.0]).spread == pytest.approx(1.0)

    def test_zero_mean_spread(self):
        assert summarize([-1.0, 1.0]).spread == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_bounds(self, values):
        stats = summarize(values)
        # One-ulp tolerance: summation rounding can push the mean of
        # identical values marginally outside [min, max].
        slack = 1e-9 * max(1.0, abs(stats.mean))
        assert stats.minimum - slack <= stats.mean <= stats.maximum + slack

    def test_spread_function_matches(self):
        values = [0.5, 1.5, 2.5]
        assert spread(values) == summarize(values).spread


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_zero_variance_returns_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            pearson([1], [2])

    @given(
        st.lists(
            st.tuples(finite_floats, finite_floats), min_size=2, max_size=40
        )
    )
    def test_bounded_by_one(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        assert -1.0 - 1e-9 <= pearson(xs, ys) <= 1.0 + 1e-9


class TestSlopeThroughOrigin:
    def test_exact_line(self):
        # y - 1 = 0.5 (x - 1)
        xs = [1.0, 1.2, 1.4]
        ys = [1.0, 1.1, 1.2]
        assert slope_through_origin(xs, ys) == pytest.approx(0.5)

    def test_degenerate_x_returns_zero(self):
        assert slope_through_origin([1.0, 1.0], [1.0, 2.0]) == 0.0

    def test_custom_origin(self):
        xs = [2.0, 3.0]
        ys = [4.0, 6.0]
        assert slope_through_origin(xs, ys, origin=(0.0, 0.0)) == pytest.approx(
            2.0
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            slope_through_origin([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            slope_through_origin([1.0], [1.0, 2.0])
