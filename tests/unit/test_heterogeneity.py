"""Tests for the Table-II heterogeneity analysis."""

from __future__ import annotations

import pytest

from repro.core.heterogeneity import heterogeneity_table
from repro.core.workload import Workload

AB = Workload.of("A", "B")


class TestHeterogeneityTable:
    def test_rows_cover_all_levels(self, synthetic_rates):
        table = heterogeneity_table(synthetic_rates, AB, contexts=2)
        assert [row.heterogeneity for row in table.rows] == [1, 2]

    def test_fractions_sum_to_one_per_scheduler(self, synthetic_rates):
        table = heterogeneity_table(synthetic_rates, AB, contexts=2)
        assert sum(r.fcfs_fraction for r in table.rows) == pytest.approx(1.0)
        assert sum(r.optimal_fraction for r in table.rows) == pytest.approx(1.0)
        assert sum(r.worst_fraction for r in table.rows) == pytest.approx(1.0)
        assert sum(r.draw_probability for r in table.rows) == pytest.approx(1.0)

    def test_row_accessor(self, synthetic_rates):
        table = heterogeneity_table(synthetic_rates, AB, contexts=2)
        assert table.row(1).heterogeneity == 1
        with pytest.raises(KeyError):
            table.row(5)

    def test_mean_instantaneous_tp(self, synthetic_rates):
        table = heterogeneity_table(synthetic_rates, AB, contexts=2)
        # Homogeneous group: AA (1.6) and BB (0.8) -> mean 1.2.
        assert table.row(1).mean_instantaneous_tp == pytest.approx(1.2)
        assert table.row(2).mean_instantaneous_tp == pytest.approx(1.4)

    def test_smt_paper_shape(self, smt_rates, mixed_workload):
        """On SMT: instantaneous TP rises with heterogeneity, the worst
        scheduler concentrates on homogeneous coschedules, and FCFS
        lands near the multinomial draw mix."""
        table = heterogeneity_table(smt_rates, mixed_workload)
        its = [row.mean_instantaneous_tp for row in table.rows]
        assert its[0] < its[-1]
        assert table.row(1).worst_fraction > 0.5
        assert table.row(4).worst_fraction == pytest.approx(0.0, abs=1e-9)
        for row in table.rows:
            assert row.fcfs_fraction == pytest.approx(
                row.draw_probability, abs=0.12
            )
