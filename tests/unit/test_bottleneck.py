"""Tests for the linear-bottleneck analysis (Section V.C.1b)."""

from __future__ import annotations

from itertools import combinations_with_replacement

import pytest

from repro.core.bottleneck import (
    bottleneck_throughput,
    fit_linear_bottleneck,
)
from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.microarch.rates import TableRates

AB = Workload.of("A", "B")


def exact_bottleneck_rates(R: dict[str, float], k: int = 2) -> TableRates:
    """Rates of an exact linear bottleneck with equal resource shares."""
    table = {}
    for cos in combinations_with_replacement(sorted(R), k):
        counts = {b: cos.count(b) for b in set(cos)}
        table[cos] = {b: counts[b] / k * R[b] for b in counts}
    return TableRates(table)


class TestExactBottleneck:
    def test_zero_error(self):
        rates = exact_bottleneck_rates({"A": 2.0, "B": 1.0})
        fit = fit_linear_bottleneck(rates, AB, contexts=2)
        assert fit.error == pytest.approx(0.0, abs=1e-12)
        assert fit.is_linear()

    def test_recovers_full_rates(self):
        rates = exact_bottleneck_rates({"A": 2.0, "B": 1.0})
        fit = fit_linear_bottleneck(rates, AB, contexts=2)
        assert fit.full_rates["A"] == pytest.approx(2.0, rel=1e-6)
        assert fit.full_rates["B"] == pytest.approx(1.0, rel=1e-6)

    def test_equation7_matches_lp(self):
        """For an exact bottleneck, Equation 7's throughput equals the
        LP optimum (scheduling cannot matter)."""
        rates = exact_bottleneck_rates({"A": 2.0, "B": 1.0})
        fit = fit_linear_bottleneck(rates, AB, contexts=2)
        lp = optimal_throughput(rates, AB, contexts=2)
        assert bottleneck_throughput(fit) == pytest.approx(
            lp.throughput, rel=1e-6
        )

    def test_three_types(self):
        R = {"A": 3.0, "B": 2.0, "C": 1.0}
        rates = exact_bottleneck_rates(R, k=3)
        workload = Workload.of("A", "B", "C")
        fit = fit_linear_bottleneck(rates, workload, contexts=3)
        assert fit.error == pytest.approx(0.0, abs=1e-12)
        expected = 3 / (1 / 3.0 + 1 / 2.0 + 1 / 1.0)
        assert bottleneck_throughput(fit) == pytest.approx(expected, rel=1e-6)


class TestImperfectFit:
    def test_nonzero_error_for_non_bottleneck(self, synthetic_rates):
        fit = fit_linear_bottleneck(synthetic_rates, AB, contexts=2)
        assert fit.error > 1e-4
        assert not fit.is_linear()

    def test_rms_error_consistent(self, synthetic_rates):
        fit = fit_linear_bottleneck(synthetic_rates, AB, contexts=2)
        assert fit.rms_error == pytest.approx(fit.error**0.5)

    def test_nonnegative_inverse_rates(self):
        """The non-negativity projection never reports negative R_b."""
        rates = TableRates(
            {
                ("A", "A"): {"A": 0.1},
                ("A", "B"): {"A": 0.05, "B": 3.0},
                ("B", "B"): {"B": 3.0},
            }
        )
        fit = fit_linear_bottleneck(rates, AB, contexts=2)
        for value in fit.full_rates.values():
            assert value > 0.0  # inf allowed, negative not

    def test_smt_compute_workload_near_bottleneck(self, smt_rates):
        """The paper: high-IPC SMT workloads sit near the dispatch-width
        linear bottleneck."""
        compute = Workload.of("calculix", "h264ref", "hmmer", "tonto")
        memory = Workload.of("libquantum", "mcf", "xalancbmk", "gcc.g23")
        compute_fit = fit_linear_bottleneck(smt_rates, compute)
        memory_fit = fit_linear_bottleneck(smt_rates, memory)
        assert compute_fit.error < memory_fit.error
