"""Tests for repro.microarch.params."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.microarch.benchmarks import default_roster
from repro.microarch.params import JobTypeParams


def make_params(**overrides) -> JobTypeParams:
    base = dict(
        name="test",
        category="compute",
        cpi_base=0.4,
        ilp_sens=0.3,
        w_need=96,
        br_mpki=3.0,
        cpi_short=0.1,
        mpki_inf=1.0,
        mpki_amp=5.0,
        c_half_mb=1.0,
        gamma=1.2,
        mlp=2.0,
    )
    base.update(overrides)
    return JobTypeParams(**base)


class TestValidation:
    def test_valid_params_accepted(self):
        make_params()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cpi_base", 0.0),
            ("cpi_base", -0.1),
            ("w_need", 0),
            ("c_half_mb", 0.0),
            ("gamma", 0.0),
            ("mlp", 0.5),
            ("ilp_sens", -0.1),
            ("br_mpki", -1.0),
            ("mpki_inf", -0.5),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            make_params(**{field: value})

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_params(name="")


class TestMissCurve:
    def test_infinite_cache_limit(self):
        job = make_params(mpki_inf=2.0, mpki_amp=10.0)
        assert job.llc_mpki(1e9) == pytest.approx(2.0, abs=1e-3)

    def test_zero_cache_maximum(self):
        job = make_params(mpki_inf=2.0, mpki_amp=10.0)
        assert job.llc_mpki(0.0) == pytest.approx(12.0)

    def test_half_point(self):
        job = make_params(mpki_inf=0.0, mpki_amp=10.0, c_half_mb=2.0, gamma=1.0)
        assert job.llc_mpki(2.0) == pytest.approx(5.0)

    def test_negative_cache_rejected(self):
        with pytest.raises(ValueError):
            make_params().llc_mpki(-1.0)

    @given(
        st.floats(min_value=0.0, max_value=64.0),
        st.floats(min_value=0.0, max_value=64.0),
    )
    def test_monotonically_decreasing(self, c1, c2):
        job = make_params()
        low, high = sorted((c1, c2))
        assert job.llc_mpki(low) >= job.llc_mpki(high) - 1e-12

    def test_all_roster_curves_monotone(self):
        sizes = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
        for job in default_roster().values():
            curve = [job.llc_mpki(c) for c in sizes]
            assert curve == sorted(curve, reverse=True)


class TestWindowScaling:
    def test_full_window(self):
        job = make_params(w_need=100)
        assert job.window_scaling(100.0) == 1.0
        assert job.window_scaling(500.0) == 1.0

    def test_partial_window(self):
        job = make_params(w_need=100)
        assert job.window_scaling(50.0) == pytest.approx(0.5)

    def test_zero_window(self):
        assert make_params().window_scaling(0.0) == 0.0


class TestRoster:
    def test_twelve_benchmarks(self):
        assert len(default_roster()) == 12

    def test_table1_names_present(self):
        roster = default_roster()
        for name in (
            "bzip2", "calculix", "gcc.cp-decl", "gcc.g23", "h264ref",
            "hmmer", "libquantum", "mcf", "perlbench", "sjeng", "tonto",
            "xalancbmk",
        ):
            assert name in roster

    def test_interference_coverage(self):
        """Roster spans low- to high-interference jobs (Table I intent)."""
        roster = default_roster()
        warm_mpki = [job.llc_mpki(4.0) for job in roster.values()]
        assert min(warm_mpki) < 1.0  # cache-friendly compute exists
        assert max(warm_mpki) > 20.0  # heavy memory job exists

    def test_memory_bound_flag(self):
        roster = default_roster()
        assert roster["mcf"].memory_bound
        assert roster["libquantum"].memory_bound
        assert not roster["hmmer"].memory_bound

    def test_frozen(self):
        job = make_params()
        with pytest.raises(dataclasses.FrozenInstanceError):
            job.cpi_base = 1.0  # type: ignore[misc]
