"""Tests for the M/M/K analytics (Figure 4)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.queueing.mmk import MMKQueue, turnaround_curve


class TestPaperExample:
    """The Section-VI worked example, to the paper's printed precision."""

    def test_base_case(self):
        queue = MMKQueue(arrival_rate=3.5, service_rate=1.0, servers=4)
        assert queue.mean_jobs_in_system == pytest.approx(8.7, abs=0.05)
        assert queue.mean_turnaround == pytest.approx(2.5, abs=0.05)

    def test_improved_case(self):
        queue = MMKQueue(arrival_rate=3.5, service_rate=1.03, servers=4)
        assert queue.mean_jobs_in_system == pytest.approx(7.3, abs=0.05)
        assert queue.mean_turnaround == pytest.approx(2.1, abs=0.05)

    def test_sixteen_percent_reduction(self):
        base = MMKQueue(arrival_rate=3.5, service_rate=1.0, servers=4)
        improved = MMKQueue(arrival_rate=3.5, service_rate=1.03, servers=4)
        reduction = 1.0 - improved.mean_turnaround / base.mean_turnaround
        assert reduction == pytest.approx(0.16, abs=0.01)


class TestMM1Reduction:
    """With one server the formulas must match M/M/1 closed forms."""

    def test_mm1(self):
        lam, mu = 0.6, 1.0
        queue = MMKQueue(arrival_rate=lam, service_rate=mu, servers=1)
        rho = lam / mu
        assert queue.erlang_c == pytest.approx(rho)
        assert queue.mean_jobs_in_system == pytest.approx(rho / (1 - rho))
        assert queue.mean_turnaround == pytest.approx(1 / (mu - lam))
        assert queue.empty_probability == pytest.approx(1 - rho)


class TestStability:
    def test_unstable_detected(self):
        queue = MMKQueue(arrival_rate=5.0, service_rate=1.0, servers=4)
        assert not queue.is_stable
        with pytest.raises(ConfigurationError):
            _ = queue.mean_turnaround

    def test_boundary_unstable(self):
        queue = MMKQueue(arrival_rate=4.0, service_rate=1.0, servers=4)
        assert not queue.is_stable

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            MMKQueue(arrival_rate=0.0, service_rate=1.0, servers=4)
        with pytest.raises(ConfigurationError):
            MMKQueue(arrival_rate=1.0, service_rate=0.0, servers=4)
        with pytest.raises(ConfigurationError):
            MMKQueue(arrival_rate=1.0, service_rate=1.0, servers=0)


class TestCurve:
    def test_monotone_increasing(self):
        rates = [0.5, 1.0, 2.0, 3.0, 3.5, 3.9]
        curve = turnaround_curve(1.0, 4, rates)
        assert curve == sorted(curve)

    def test_infinite_beyond_capacity(self):
        curve = turnaround_curve(1.0, 4, [3.9, 4.1])
        assert curve[0] != float("inf")
        assert curve[1] == float("inf")

    def test_low_load_approaches_service_time(self):
        curve = turnaround_curve(2.0, 4, [0.01])
        assert curve[0] == pytest.approx(0.5, rel=1e-3)

    def test_higher_service_rate_always_faster(self):
        rates = [1.0, 2.0, 3.0]
        base = turnaround_curve(1.0, 4, rates)
        better = turnaround_curve(1.03, 4, rates)
        assert all(b < a for a, b in zip(base, better))
