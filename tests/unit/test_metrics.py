"""Tests for the throughput-metric definitions."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    instantaneous_throughput,
    total_ipc,
    weighted_speedup,
)


class TestMetrics:
    def test_weighted_speedup_equals_it(self, synthetic_rates):
        cos = ("A", "B")
        assert weighted_speedup(synthetic_rates, cos) == pytest.approx(
            instantaneous_throughput(synthetic_rates, cos)
        )

    def test_it_is_rate_sum(self, synthetic_rates):
        assert instantaneous_throughput(
            synthetic_rates, ("A", "B")
        ) == pytest.approx(1.4)

    def test_total_ipc_on_rate_table(self, smt_rates):
        cos = ("bzip2", "mcf")
        assert total_ipc(smt_rates, cos) == pytest.approx(
            sum(smt_rates.ipcs(cos))
        )

    def test_alone_weighted_speedup_is_one(self, smt_rates):
        assert weighted_speedup(smt_rates, ("hmmer",)) == pytest.approx(1.0)

    def test_weighted_vs_raw_unit_qualitative_agreement(self, smt_rates):
        """The paper checked conclusions hold for both units of work:
        a heterogeneous coschedule beats the homogeneous hmmer one in
        WIPC terms (hmmer jobs fight for the same width) and beats the
        homogeneous mcf one in raw-IPC terms (mcf jobs are simply slow).
        """
        hetero = ("bzip2", "hmmer", "libquantum", "mcf")
        assert weighted_speedup(smt_rates, hetero) > weighted_speedup(
            smt_rates, ("hmmer",) * 4
        )
        assert total_ipc(smt_rates, hetero) > total_ipc(smt_rates, ("mcf",) * 4)
