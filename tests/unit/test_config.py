"""Tests for repro.microarch.config."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.microarch.config import (
    FetchPolicy,
    MachineConfig,
    RobPolicy,
    quad_core_machine,
    smt_machine,
)


class TestFactories:
    def test_smt_defaults(self):
        machine = smt_machine()
        assert machine.is_smt
        assert machine.contexts == 4
        assert machine.width == 4
        assert machine.fetch_policy is FetchPolicy.ICOUNT
        assert machine.rob_policy is RobPolicy.DYNAMIC

    def test_quad_defaults(self):
        machine = quad_core_machine()
        assert not machine.is_smt
        assert machine.contexts == 4

    def test_policy_variants(self):
        machine = smt_machine(
            fetch_policy=FetchPolicy.ROUND_ROBIN, rob_policy=RobPolicy.STATIC
        )
        assert machine.fetch_policy is FetchPolicy.ROUND_ROBIN
        assert machine.rob_policy is RobPolicy.STATIC

    def test_with_policies_renames(self):
        machine = smt_machine().with_policies(
            fetch_policy=FetchPolicy.ROUND_ROBIN
        )
        assert machine.fetch_policy is FetchPolicy.ROUND_ROBIN
        assert "round_robin" in machine.name

    def test_with_policies_noop(self):
        machine = smt_machine()
        assert machine.with_policies() == machine


class TestValidation:
    def base_kwargs(self) -> dict:
        return dict(
            name="m",
            kind="smt",
            contexts=4,
            width=4,
            rob_size=256,
            llc_mb=4.0,
            mem_latency_cycles=200.0,
            bus_service_cycles=20.0,
            branch_penalty_cycles=14.0,
        )

    def test_bad_kind(self):
        kwargs = self.base_kwargs() | {"kind": "gpu"}
        with pytest.raises(ConfigurationError):
            MachineConfig(**kwargs)

    @pytest.mark.parametrize(
        "field", ["contexts", "width", "rob_size", "llc_mb",
                  "mem_latency_cycles", "bus_service_cycles"]
    )
    def test_nonpositive_rejected(self, field):
        kwargs = self.base_kwargs() | {field: 0}
        with pytest.raises(ConfigurationError):
            MachineConfig(**kwargs)

    def test_bus_utilization_bounds(self):
        kwargs = self.base_kwargs() | {"bus_max_utilization": 1.0}
        with pytest.raises(ConfigurationError):
            MachineConfig(**kwargs)

    def test_cache_floor_bounds(self):
        kwargs = self.base_kwargs() | {"cache_share_floor": 0.3}
        with pytest.raises(ConfigurationError):
            MachineConfig(**kwargs)

    def test_negative_overheads_rejected(self):
        for field in ("smt_overhead", "smt_fragmentation", "icount_strength"):
            kwargs = self.base_kwargs() | {field: -0.1}
            with pytest.raises(ConfigurationError):
                MachineConfig(**kwargs)

    def test_frozen(self):
        machine = smt_machine()
        with pytest.raises(dataclasses.FrozenInstanceError):
            machine.width = 8  # type: ignore[misc]
