"""Tests for the Section-V.D fairness counterfactual."""

from __future__ import annotations

import pytest

from repro.core.fairness import equalize_heterogeneous_rates
from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.errors import WorkloadError
from repro.microarch.rates import TableRates

AB = Workload.of("A", "B")


class TestEqualize:
    def test_preserves_instantaneous_throughput(self, synthetic_rates):
        fair = equalize_heterogeneous_rates(synthetic_rates, AB, contexts=2)
        before = synthetic_rates.instantaneous_throughput(("A", "B"))
        after = fair.instantaneous_throughput(("A", "B"))
        assert after == pytest.approx(before, rel=1e-12)

    def test_full_blend_equalizes(self, synthetic_rates):
        fair = equalize_heterogeneous_rates(synthetic_rates, AB, contexts=2)
        rates = fair.type_rates(("A", "B"))
        assert rates["A"] == pytest.approx(rates["B"])

    def test_zero_blend_is_identity(self, synthetic_rates):
        same = equalize_heterogeneous_rates(
            synthetic_rates, AB, contexts=2, blend=0.0
        )
        assert same.type_rates(("A", "B")) == pytest.approx(
            synthetic_rates.type_rates(("A", "B"))
        )

    def test_partial_blend_between(self, synthetic_rates):
        half = equalize_heterogeneous_rates(
            synthetic_rates, AB, contexts=2, blend=0.5
        )
        rates = half.type_rates(("A", "B"))
        assert 0.5 < rates["A"] < 0.9
        assert 0.5 < rates["B"] < 0.7

    def test_other_coschedules_untouched(self, synthetic_rates):
        fair = equalize_heterogeneous_rates(synthetic_rates, AB, contexts=2)
        assert fair.type_rates(("A", "A")) == pytest.approx(
            synthetic_rates.type_rates(("A", "A"))
        )

    def test_requires_n_equal_k(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            equalize_heterogeneous_rates(synthetic_rates, AB, contexts=3)

    def test_blend_bounds(self, synthetic_rates):
        with pytest.raises(WorkloadError):
            equalize_heterogeneous_rates(
                synthetic_rates, AB, contexts=2, blend=1.5
            )


class TestPaperEffect:
    def test_optimal_improves_and_uses_hetero_coschedule(self):
        """After equalization the optimal scheduler can lean on the
        heterogeneous coschedule (the paper's Section-V.D result)."""
        # Unfair hetero coschedule: great total (1.8) but very skewed.
        rates = TableRates(
            {
                ("A", "A"): {"A": 1.1},
                ("A", "B"): {"A": 1.5, "B": 0.3},
                ("B", "B"): {"B": 1.0},
            }
        )
        before = optimal_throughput(rates, AB, contexts=2)
        fair = equalize_heterogeneous_rates(rates, AB, contexts=2)
        after = optimal_throughput(fair, AB, contexts=2)
        assert after.throughput > before.throughput
        assert after.fraction_of(("A", "B")) == pytest.approx(1.0, abs=1e-9)
