"""Tests for the rate-based discrete-event engine."""

from __future__ import annotations

import pytest

from repro.core.workload import Workload
from repro.errors import SimulationError
from repro.microarch.rates import TableRates
from repro.queueing.engine import run_system
from repro.queueing.job import Job
from repro.queueing.schedulers import FcfsScheduler

AB = Workload.of("A", "B")


@pytest.fixture()
def unit_rates() -> TableRates:
    """Every job progresses at rate 1 regardless of coschedule."""
    return TableRates(
        {
            ("A",): {"A": 1.0},
            ("B",): {"B": 1.0},
            ("A", "A"): {"A": 2.0},
            ("A", "B"): {"A": 1.0, "B": 1.0},
            ("B", "B"): {"B": 2.0},
        }
    )


def jobs_at(*specs) -> list[Job]:
    """specs: (type, arrival, size)."""
    return [
        Job(job_id=i, job_type=t, size=s, arrival_time=a)
        for i, (t, a, s) in enumerate(specs)
    ]


class TestEngineBasics:
    def test_single_job(self, unit_rates):
        metrics = run_system(
            unit_rates,
            FcfsScheduler(unit_rates, 2),
            jobs_at(("A", 0.0, 2.0)),
        )
        assert metrics.completed == 1
        assert metrics.mean_turnaround == pytest.approx(2.0)
        assert metrics.work_done == pytest.approx(2.0)

    def test_two_jobs_parallel(self, unit_rates):
        metrics = run_system(
            unit_rates,
            FcfsScheduler(unit_rates, 2),
            jobs_at(("A", 0.0, 1.0), ("B", 0.0, 2.0)),
        )
        assert metrics.completed == 2
        assert metrics.measured_time == pytest.approx(2.0)
        # Turnarounds: 1.0 and 2.0.
        assert metrics.mean_turnaround == pytest.approx(1.5)

    def test_queueing_delay(self, unit_rates):
        """Third job waits for a context on a 2-context machine."""
        metrics = run_system(
            unit_rates,
            FcfsScheduler(unit_rates, 2),
            jobs_at(("A", 0.0, 2.0), ("A", 0.0, 2.0), ("B", 0.0, 1.0)),
        )
        # B starts at t=2, finishes t=3: turnaround 3.
        assert metrics.completed == 3
        assert metrics.mean_turnaround == pytest.approx((2 + 2 + 3) / 3)

    def test_idle_gap_counts_as_empty(self, unit_rates):
        metrics = run_system(
            unit_rates,
            FcfsScheduler(unit_rates, 2),
            jobs_at(("A", 0.0, 1.0), ("A", 5.0, 1.0)),
        )
        assert metrics.empty_fraction == pytest.approx(4.0 / 6.0)
        assert metrics.utilization == pytest.approx(2.0 / 6.0)

    def test_work_conservation(self, unit_rates):
        sizes = [0.5, 1.5, 2.0, 0.7]
        metrics = run_system(
            unit_rates,
            FcfsScheduler(unit_rates, 2),
            jobs_at(*[("A", 0.0, s) for s in sizes]),
        )
        assert metrics.work_done == pytest.approx(sum(sizes))

    def test_warmup_excludes_early_observations(self, unit_rates):
        metrics = run_system(
            unit_rates,
            FcfsScheduler(unit_rates, 2),
            jobs_at(("A", 0.0, 1.0), ("A", 10.0, 1.0)),
            warmup_time=5.0,
        )
        assert metrics.completed == 1  # only the second job counts
        assert metrics.measured_time == pytest.approx(6.0)

    def test_horizon_stops_early(self, unit_rates):
        metrics = run_system(
            unit_rates,
            FcfsScheduler(unit_rates, 2),
            jobs_at(("A", 0.0, 100.0)),
            horizon=5.0,
        )
        assert metrics.completed == 0
        assert metrics.measured_time == pytest.approx(5.0)

    def test_keep_in_system_caps_admission(self, unit_rates):
        """With a backlog cap of 2, the metrics never see >2 jobs."""
        metrics = run_system(
            unit_rates,
            FcfsScheduler(unit_rates, 2),
            jobs_at(*[("A", 0.0, 1.0) for _ in range(6)]),
            keep_in_system=2,
        )
        assert metrics.completed == 6
        assert metrics.utilization <= 2.0 + 1e-9

    def test_stop_when_fewer_than(self, unit_rates):
        metrics = run_system(
            unit_rates,
            FcfsScheduler(unit_rates, 2),
            jobs_at(*[("A", 0.0, 1.0) for _ in range(5)]),
            stop_when_fewer_than=2,
        )
        # Stops before draining the final job alone.
        assert metrics.completed == 4

    def test_coschedule_times_recorded(self, unit_rates):
        metrics = run_system(
            unit_rates,
            FcfsScheduler(unit_rates, 2),
            jobs_at(("A", 0.0, 1.0), ("B", 0.0, 2.0)),
        )
        fractions = metrics.coschedule_fractions()
        assert fractions[("A", "B")] == pytest.approx(0.5)
        assert fractions[("B",)] == pytest.approx(0.5)

    def test_out_of_order_arrivals_rejected(self, unit_rates):
        stream = [
            Job(job_id=0, job_type="A", size=1.0, arrival_time=5.0),
            Job(job_id=1, job_type="A", size=1.0, arrival_time=1.0),
        ]
        with pytest.raises(SimulationError):
            run_system(unit_rates, FcfsScheduler(unit_rates, 2), stream)

    def test_zero_rate_rejected(self):
        rates = TableRates({("A",): {"A": 0.0}})
        with pytest.raises(SimulationError):
            run_system(
                rates,
                FcfsScheduler(rates, 1),
                jobs_at(("A", 0.0, 1.0)),
            )

    def test_event_budget_enforced(self, unit_rates):
        with pytest.raises(SimulationError):
            run_system(
                unit_rates,
                FcfsScheduler(unit_rates, 2),
                jobs_at(*[("A", 0.0, 1.0) for _ in range(10)]),
                max_events=2,
            )
