"""Tests for ROB partitioning and window shares."""

from __future__ import annotations

import pytest

from repro.microarch.benchmarks import default_roster
from repro.microarch.config import FetchPolicy, RobPolicy
from repro.microarch.rob import occupancy_demand, window_shares

ROSTER = default_roster()
HMMER = ROSTER["hmmer"]  # w_need 160, compute
MCF = ROSTER["mcf"]  # w_need 64, memory


class TestOccupancyDemand:
    def test_icount_caps_near_useful_window(self):
        demand = occupancy_demand(MCF, 0.9, 256, FetchPolicy.ICOUNT)
        assert demand <= MCF.w_need * 1.25 + 1e-9

    def test_round_robin_runs_away_during_stalls(self):
        stalled = occupancy_demand(MCF, 0.9, 256, FetchPolicy.ROUND_ROBIN)
        active = occupancy_demand(MCF, 0.0, 256, FetchPolicy.ROUND_ROBIN)
        assert stalled > 2 * active
        assert stalled <= 256.0

    def test_no_stall_equals_useful_window(self):
        for policy in FetchPolicy:
            demand = occupancy_demand(HMMER, 0.0, 256, policy)
            assert demand == pytest.approx(float(HMMER.w_need))

    def test_invalid_stall_rejected(self):
        with pytest.raises(ValueError):
            occupancy_demand(HMMER, 1.2, 256, FetchPolicy.ICOUNT)


class TestWindowShares:
    def test_static_partitions_evenly(self):
        jobs = [HMMER, MCF, MCF, HMMER]
        shares = window_shares(
            jobs, [0.1] * 4, 256, RobPolicy.STATIC, FetchPolicy.ICOUNT
        )
        assert shares == [64.0] * 4

    def test_single_thread_gets_whole_rob(self):
        shares = window_shares(
            [MCF], [0.9], 256, RobPolicy.DYNAMIC, FetchPolicy.ROUND_ROBIN
        )
        assert shares == [256.0]

    def test_dynamic_respects_rob_capacity(self):
        jobs = [MCF] * 4
        shares = window_shares(
            jobs, [0.95] * 4, 256, RobPolicy.DYNAMIC, FetchPolicy.ROUND_ROBIN
        )
        assert sum(shares) <= 256.0 + 1e-9

    def test_dynamic_with_icount_gives_compute_more(self):
        """Under ICOUNT+dynamic, the large-window compute thread gets a
        bigger window than the small-window memory thread."""
        jobs = [HMMER, MCF]
        shares = window_shares(
            jobs, [0.05, 0.9], 256, RobPolicy.DYNAMIC, FetchPolicy.ICOUNT
        )
        assert shares[0] > shares[1]

    def test_dynamic_with_rr_lets_memory_thread_hog(self):
        """Under RR+dynamic, a heavily stalled memory thread out-occupies
        the compute thread (the classic ROB-clog pathology)."""
        jobs = [HMMER, MCF]
        shares = window_shares(
            jobs, [0.05, 0.9], 256, RobPolicy.DYNAMIC, FetchPolicy.ROUND_ROBIN
        )
        assert shares[1] > shares[0]

    def test_empty(self):
        assert window_shares([], [], 256, RobPolicy.DYNAMIC, FetchPolicy.ICOUNT) == []

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            window_shares(
                [HMMER], [0.1, 0.2], 256, RobPolicy.STATIC, FetchPolicy.ICOUNT
            )
