"""Tests for Workload and Coschedule."""

from __future__ import annotations

import pytest

from repro.core.coschedule import Coschedule
from repro.core.workload import Workload, all_workloads
from repro.errors import WorkloadError
from repro.microarch.benchmarks import BENCHMARK_NAMES


class TestWorkload:
    def test_of_canonicalizes(self):
        assert Workload.of("mcf", "bzip2").types == ("bzip2", "mcf")

    def test_duplicates_rejected(self):
        with pytest.raises(WorkloadError):
            Workload.of("mcf", "mcf")

    def test_raw_constructor_requires_canonical(self):
        with pytest.raises(WorkloadError):
            Workload(types=("b", "a"))

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(types=())

    def test_coschedule_count_paper(self):
        workload = Workload.of("a", "b", "c", "d")
        assert len(workload.coschedules(4)) == 35

    def test_coschedules_are_canonical(self):
        workload = Workload.of("x", "y")
        for cos in workload.coschedules(3):
            assert cos == tuple(sorted(cos))

    def test_bad_contexts(self):
        with pytest.raises(WorkloadError):
            Workload.of("a").coschedules(0)

    def test_membership_and_iteration(self):
        workload = Workload.of("a", "b")
        assert "a" in workload
        assert list(workload) == ["a", "b"]

    def test_label(self):
        assert Workload.of("b", "a").label() == "a+b"


class TestAllWorkloads:
    def test_paper_count_495(self):
        assert len(all_workloads(BENCHMARK_NAMES, 4)) == 495

    def test_n8_count(self):
        assert len(all_workloads(BENCHMARK_NAMES, 8)) == 495  # C(12,8)

    def test_distinct(self):
        workloads = all_workloads(["a", "b", "c"], 2)
        assert len({w.types for w in workloads}) == 3

    def test_too_many_types_rejected(self):
        with pytest.raises(WorkloadError):
            all_workloads(["a", "b"], 3)

    def test_zero_types_rejected(self):
        with pytest.raises(WorkloadError):
            all_workloads(["a"], 0)


class TestCoschedule:
    def test_of_canonicalizes(self):
        assert Coschedule.of("b", "a").jobs == ("a", "b")

    def test_heterogeneity(self):
        assert Coschedule.of("a", "a", "a", "a").heterogeneity == 1
        assert Coschedule.of("a", "a", "b", "c").heterogeneity == 3
        assert Coschedule.of("a", "b", "c", "d").heterogeneity == 4

    def test_is_homogeneous(self):
        assert Coschedule.of("a", "a").is_homogeneous
        assert not Coschedule.of("a", "b").is_homogeneous

    def test_counts(self):
        counts = Coschedule.of("a", "b", "a").counts()
        assert counts["a"] == 2
        assert counts["b"] == 1
        assert Coschedule.of("a").count_of("z") == 0

    def test_label(self):
        assert Coschedule.of("b", "a", "a").label() == "2xa+1xb"

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            Coschedule(jobs=())

    def test_non_canonical_rejected(self):
        with pytest.raises(WorkloadError):
            Coschedule(jobs=("b", "a"))

    def test_from_iterable(self):
        assert Coschedule.from_iterable(iter(["b", "a"])).jobs == ("a", "b")
