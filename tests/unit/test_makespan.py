"""Tests for the small-set makespan experiment (Section II)."""

from __future__ import annotations

import pytest

from repro.core.workload import Workload
from repro.errors import WorkloadError
from repro.microarch.rates import TableRates
from repro.queueing.makespan import run_makespan_experiment
from repro.util.multiset import multisets

AB = Workload.of("A", "B")


@pytest.fixture()
def rates() -> TableRates:
    """Insensitive rates: per-job A = 1.0, B = 0.5 in any coschedule."""
    per_job = {"A": 1.0, "B": 0.5}
    table = {}
    for size in (1, 2):
        for cos in multisets(("A", "B"), size):
            table[cos] = {
                b: per_job[b] * cos.count(b) for b in set(cos)
            }
    return TableRates(table)


class TestMakespan:
    def test_all_jobs_complete(self, rates):
        result = run_makespan_experiment(
            rates, AB, "fcfs", n_jobs=10, contexts=2, seed=1
        )
        assert result.metrics.completed == 10
        assert result.makespan > 0.0

    def test_drain_time_bounds(self, rates):
        result = run_makespan_experiment(
            rates, AB, "fcfs", n_jobs=8, contexts=2, seed=2
        )
        assert 0.0 <= result.drain_time <= result.makespan
        assert 0.0 <= result.drain_fraction <= 1.0

    def test_drain_exists_for_tiny_sets(self, rates):
        """With jobs barely exceeding the contexts, the drain tail is a
        visible share of the makespan — the paper's Section-II point."""
        result = run_makespan_experiment(
            rates, AB, "fcfs", n_jobs=5, contexts=2, seed=3
        )
        assert result.drain_fraction > 0.0

    def test_ljf_shrinks_drain_vs_random_sizes(self, rates):
        """Long-job-first leaves short jobs for the drain, so its drain
        tail is never longer than FCFS's on the same job set."""
        fcfs = run_makespan_experiment(
            rates, AB, "fcfs", n_jobs=10, contexts=2, seed=4
        )
        ljf = run_makespan_experiment(
            rates, AB, "ljf", n_jobs=10, contexts=2, seed=4
        )
        assert ljf.drain_time <= fcfs.drain_time + 1e-9
        assert ljf.makespan <= fcfs.makespan + 1e-9

    def test_deterministic(self, rates):
        a = run_makespan_experiment(
            rates, AB, "ljf", n_jobs=12, contexts=2, seed=9
        )
        b = run_makespan_experiment(
            rates, AB, "ljf", n_jobs=12, contexts=2, seed=9
        )
        assert a.makespan == b.makespan

    def test_bad_inputs(self, rates):
        with pytest.raises(WorkloadError):
            run_makespan_experiment(
                rates, AB, "fcfs", n_jobs=0, contexts=2
            )
        with pytest.raises(WorkloadError):
            run_makespan_experiment(rates, AB, "fcfs", n_jobs=4)


class TestPaperObservation:
    def test_ljf_competitive_with_symbiosis_aware_on_small_sets(
        self, smt_rates, mixed_workload
    ):
        """Xu et al.'s finding (paper Section II): on small fixed job
        sets, symbiosis-unaware long-job-first is competitive with a
        symbiosis-aware scheduler because the drain tail dominates."""
        ljf_spans = []
        maxit_spans = []
        for seed in range(4):
            ljf_spans.append(
                run_makespan_experiment(
                    smt_rates, mixed_workload, "ljf", n_jobs=10, seed=seed
                ).makespan
            )
            maxit_spans.append(
                run_makespan_experiment(
                    smt_rates, mixed_workload, "maxit", n_jobs=10, seed=seed
                ).makespan
            )
        mean_ljf = sum(ljf_spans) / len(ljf_spans)
        mean_maxit = sum(maxit_spans) / len(maxit_spans)
        assert mean_ljf < mean_maxit * 1.10
