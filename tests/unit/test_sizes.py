"""Tests for the job-size distributions."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.errors import SimulationError
from repro.queueing.sizes import (
    BimodalSizes,
    BoundedParetoSizes,
    ExponentialSizes,
    FixedSizes,
    make_size_model,
)

ALL_MODELS = [
    ExponentialSizes(mean_size=2.0),
    FixedSizes(size=1.5),
    BoundedParetoSizes(alpha=1.5, lower=0.1, upper=50.0),
    BoundedParetoSizes(alpha=1.0, lower=0.2, upper=20.0),
    BimodalSizes(small_mean=0.5, large_mean=10.0, large_fraction=0.05),
]


class TestSampling:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: repr(m))
    def test_empirical_mean_matches_exact_mean(self, model):
        rng = random.Random(7)
        samples = [model.sample(rng) for _ in range(60_000)]
        assert statistics.mean(samples) == pytest.approx(
            model.mean, rel=0.1
        )

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: repr(m))
    def test_samples_positive_and_deterministic(self, model):
        a = [model.sample(random.Random(3)) for _ in range(50)]
        b = [model.sample(random.Random(3)) for _ in range(50)]
        assert a == b
        assert all(s > 0.0 for s in a)

    def test_bounded_pareto_respects_bounds(self):
        model = BoundedParetoSizes(alpha=1.5, lower=0.1, upper=50.0)
        rng = random.Random(1)
        samples = [model.sample(rng) for _ in range(20_000)]
        assert min(samples) >= model.lower
        assert max(samples) <= model.upper
        # Heavy tail: the top percentile carries far more than its
        # share of the work.
        samples.sort()
        top = sum(samples[-200:])
        assert top / sum(samples) > 0.05

    def test_fixed_is_constant(self):
        model = FixedSizes(size=2.5)
        rng = random.Random(0)
        assert {model.sample(rng) for _ in range(10)} == {2.5}

    def test_bimodal_mixes_both_modes(self):
        model = BimodalSizes(
            small_mean=0.5, large_mean=50.0, large_fraction=0.2
        )
        rng = random.Random(5)
        samples = [model.sample(rng) for _ in range(5_000)]
        large = sum(1 for s in samples if s > 5.0)
        assert 0.05 < large / len(samples) < 0.4


class TestSpecRoundTrip:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: repr(m))
    def test_spec_rebuilds_identical_model(self, model):
        rebuilt = make_size_model(model.spec())
        assert rebuilt == model
        rng_a, rng_b = random.Random(9), random.Random(9)
        assert [model.sample(rng_a) for _ in range(20)] == [
            rebuilt.sample(rng_b) for _ in range(20)
        ]

    def test_none_is_unit_exponential(self):
        model = make_size_model(None)
        assert model == ExponentialSizes(mean_size=1.0)

    def test_model_passes_through(self):
        model = FixedSizes(size=3.0)
        assert make_size_model(model) is model

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown size model"):
            make_size_model({"kind": "zipf"})

    def test_malformed_spec_keys_raise_simulation_error(self):
        """A typo'd key in a hand-edited spec stays inside the
        library's error contract instead of leaking a TypeError."""
        with pytest.raises(SimulationError, match="bad 'fixed'"):
            make_size_model({"kind": "fixed", "sise": 2.0})


class TestValidation:
    def test_exponential_needs_positive_mean(self):
        with pytest.raises(SimulationError):
            ExponentialSizes(mean_size=0.0)

    def test_fixed_needs_positive_size(self):
        with pytest.raises(SimulationError):
            FixedSizes(size=-1.0)

    def test_pareto_bounds_ordered(self):
        with pytest.raises(SimulationError):
            BoundedParetoSizes(alpha=1.5, lower=2.0, upper=1.0)
        with pytest.raises(SimulationError):
            BoundedParetoSizes(alpha=0.0, lower=0.1, upper=1.0)

    def test_bimodal_fraction_in_range(self):
        with pytest.raises(SimulationError):
            BimodalSizes(large_fraction=1.5)
        with pytest.raises(SimulationError):
            BimodalSizes(small_mean=0.0)
