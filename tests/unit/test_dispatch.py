"""Unit tests for the cluster dispatch policies."""

from __future__ import annotations

import pytest

from repro.core.workload import Workload
from repro.errors import WorkloadError
from repro.microarch.rates import TableRates
from repro.queueing.cluster import Machine
from repro.queueing.dispatch import (
    JoinShortestQueueDispatcher,
    RoundRobinDispatcher,
    SymbiosisAffinityDispatcher,
    make_dispatcher,
)
from repro.queueing.job import Job
from repro.queueing.schedulers import FcfsScheduler


AB = Workload.of("A", "B")

#: A and B are strongly symbiotic: mixed pairs run at full speed while
#: same-type pairs suffer heavy interference, so the LP's optimal
#: schedule spends all its time in ("A", "B").
SYMBIOTIC = TableRates(
    {
        ("A",): {"A": 1.0},
        ("B",): {"B": 1.0},
        ("A", "A"): {"A": 1.0},
        ("A", "B"): {"A": 1.0, "B": 1.0},
        ("B", "B"): {"B": 1.0},
    }
)


def machines_with(*queues: str) -> list[Machine]:
    """Machines whose queues hold jobs of the given type strings."""
    result = []
    job_id = 0
    for i, types in enumerate(queues):
        machine = Machine(
            machine_id=i, scheduler=FcfsScheduler(SYMBIOTIC, 2)
        )
        for t in types:
            machine.jobs.append(
                Job(job_id=job_id, job_type=t, size=1.0, arrival_time=0.0)
            )
            job_id += 1
        result.append(machine)
    return result


def job_of(job_type: str) -> Job:
    return Job(job_id=999, job_type=job_type, size=1.0, arrival_time=0.0)


class TestRoundRobin:
    def test_cycles_through_all_machines(self):
        dispatcher = RoundRobinDispatcher()
        machines = machines_with("", "", "")
        eligible = [0, 1, 2]
        picks = [
            dispatcher.route(job_of("A"), machines, eligible, 0.0)
            for _ in range(6)
        ]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_machines_without_room(self):
        dispatcher = RoundRobinDispatcher()
        machines = machines_with("", "", "")
        assert dispatcher.route(job_of("A"), machines, [1, 2], 0.0) == 1
        assert dispatcher.route(job_of("A"), machines, [0, 2], 0.0) == 2
        assert dispatcher.route(job_of("A"), machines, [0, 1], 0.0) == 0

    def test_custom_start(self):
        dispatcher = RoundRobinDispatcher(start=2)
        machines = machines_with("", "", "")
        assert dispatcher.route(job_of("A"), machines, [0, 1, 2], 0.0) == 2

    def test_negative_start_rejected(self):
        with pytest.raises(WorkloadError):
            RoundRobinDispatcher(start=-1)


class TestJoinShortestQueue:
    def test_picks_fewest_jobs(self):
        dispatcher = JoinShortestQueueDispatcher()
        machines = machines_with("AA", "A", "AAA")
        assert dispatcher.route(job_of("A"), machines, [0, 1, 2], 0.0) == 1

    def test_tie_breaks_to_lowest_index(self):
        dispatcher = JoinShortestQueueDispatcher()
        machines = machines_with("A", "A", "AA")
        assert dispatcher.route(job_of("A"), machines, [0, 1, 2], 0.0) == 0

    def test_respects_eligibility(self):
        dispatcher = JoinShortestQueueDispatcher()
        machines = machines_with("", "AA", "A")
        assert dispatcher.route(job_of("A"), machines, [1, 2], 0.0) == 2


class TestSymbiosisAffinity:
    def test_affinity_table_prefers_mixed_pairs(self):
        dispatcher = SymbiosisAffinityDispatcher(SYMBIOTIC, AB, contexts=2)
        # The optimal schedule co-runs A with B, never A with A.
        assert dispatcher.affinity[("A", "B")] == pytest.approx(1.0)
        assert ("A", "A") not in dispatcher.affinity

    def test_routes_by_type_toward_symbiotic_queue(self):
        dispatcher = SymbiosisAffinityDispatcher(SYMBIOTIC, AB, contexts=2)
        # Queues of equal length: one holds A jobs, one holds B jobs.
        machines = machines_with("A", "B")
        # A B job is symbiotic with the A queue, and vice versa.
        assert dispatcher.route(job_of("B"), machines, [0, 1], 0.0) == 0
        assert dispatcher.route(job_of("A"), machines, [0, 1], 0.0) == 1

    def test_load_still_rules_first_order(self):
        dispatcher = SymbiosisAffinityDispatcher(
            SYMBIOTIC, AB, contexts=2, slack=1
        )
        # The symbiotic queue is far longer than the empty machine, so
        # the shortlist excludes it and load balancing wins.
        machines = machines_with("AAAA", "")
        assert dispatcher.route(job_of("B"), machines, [0, 1], 0.0) == 1

    def test_slack_must_be_non_negative(self):
        with pytest.raises(WorkloadError):
            SymbiosisAffinityDispatcher(SYMBIOTIC, AB, contexts=2, slack=-1)


class TestFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("round_robin", RoundRobinDispatcher),
            ("rr", RoundRobinDispatcher),
            ("jsq", JoinShortestQueueDispatcher),
            ("join-shortest-queue", JoinShortestQueueDispatcher),
        ],
    )
    def test_simple_names(self, name, cls):
        assert isinstance(make_dispatcher(name), cls)

    def test_affinity_needs_rates_and_workload(self):
        with pytest.raises(WorkloadError, match="offline LP"):
            make_dispatcher("affinity")
        dispatcher = make_dispatcher(
            "affinity", rates=SYMBIOTIC, workload=AB, contexts=2
        )
        assert isinstance(dispatcher, SymbiosisAffinityDispatcher)

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError, match="unknown dispatcher"):
            make_dispatcher("teleport")
