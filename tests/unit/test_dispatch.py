"""Unit tests for the cluster dispatch policies."""

from __future__ import annotations

import pytest

from repro.core.workload import Workload
from repro.errors import WorkloadError
from repro.microarch.rates import TableRates
from repro.queueing.cluster import Machine
from repro.queueing.dispatch import (
    JoinShortestQueueDispatcher,
    RoundRobinDispatcher,
    SymbiosisAffinityDispatcher,
    make_dispatcher,
)
from repro.queueing.job import Job
from repro.queueing.schedulers import FcfsScheduler


AB = Workload.of("A", "B")

#: A and B are strongly symbiotic: mixed pairs run at full speed while
#: same-type pairs suffer heavy interference, so the LP's optimal
#: schedule spends all its time in ("A", "B").
SYMBIOTIC = TableRates(
    {
        ("A",): {"A": 1.0},
        ("B",): {"B": 1.0},
        ("A", "A"): {"A": 1.0},
        ("A", "B"): {"A": 1.0, "B": 1.0},
        ("B", "B"): {"B": 1.0},
    }
)


def machines_with(*queues: str) -> list[Machine]:
    """Machines whose queues hold jobs of the given type strings."""
    result = []
    job_id = 0
    for i, types in enumerate(queues):
        machine = Machine(
            machine_id=i, scheduler=FcfsScheduler(SYMBIOTIC, 2)
        )
        for t in types:
            machine.jobs.append(
                Job(job_id=job_id, job_type=t, size=1.0, arrival_time=0.0)
            )
            job_id += 1
        result.append(machine)
    return result


def job_of(job_type: str) -> Job:
    return Job(job_id=999, job_type=job_type, size=1.0, arrival_time=0.0)


class TestRoundRobin:
    def test_cycles_through_all_machines(self):
        dispatcher = RoundRobinDispatcher()
        machines = machines_with("", "", "")
        eligible = [0, 1, 2]
        picks = [
            dispatcher.route(job_of("A"), machines, eligible, 0.0)
            for _ in range(6)
        ]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_machines_without_room(self):
        dispatcher = RoundRobinDispatcher()
        machines = machines_with("", "", "")
        assert dispatcher.route(job_of("A"), machines, [1, 2], 0.0) == 1
        assert dispatcher.route(job_of("A"), machines, [0, 2], 0.0) == 2
        assert dispatcher.route(job_of("A"), machines, [0, 1], 0.0) == 0

    def test_custom_start(self):
        dispatcher = RoundRobinDispatcher(start=2)
        machines = machines_with("", "", "")
        assert dispatcher.route(job_of("A"), machines, [0, 1, 2], 0.0) == 2

    def test_negative_start_rejected(self):
        with pytest.raises(WorkloadError):
            RoundRobinDispatcher(start=-1)


class TestJoinShortestQueue:
    def test_picks_fewest_jobs(self):
        dispatcher = JoinShortestQueueDispatcher()
        machines = machines_with("AA", "A", "AAA")
        assert dispatcher.route(job_of("A"), machines, [0, 1, 2], 0.0) == 1

    def test_tie_breaks_to_lowest_index(self):
        dispatcher = JoinShortestQueueDispatcher()
        machines = machines_with("A", "A", "AA")
        assert dispatcher.route(job_of("A"), machines, [0, 1, 2], 0.0) == 0

    def test_respects_eligibility(self):
        dispatcher = JoinShortestQueueDispatcher()
        machines = machines_with("", "AA", "A")
        assert dispatcher.route(job_of("A"), machines, [1, 2], 0.0) == 2


class TestSymbiosisAffinity:
    def test_affinity_table_prefers_mixed_pairs(self):
        dispatcher = SymbiosisAffinityDispatcher(SYMBIOTIC, AB, contexts=2)
        # The optimal schedule co-runs A with B, never A with A.
        assert dispatcher.affinity[("A", "B")] == pytest.approx(1.0)
        assert ("A", "A") not in dispatcher.affinity

    def test_routes_by_type_toward_symbiotic_queue(self):
        dispatcher = SymbiosisAffinityDispatcher(SYMBIOTIC, AB, contexts=2)
        # Queues of equal length: one holds A jobs, one holds B jobs.
        machines = machines_with("A", "B")
        # A B job is symbiotic with the A queue, and vice versa.
        assert dispatcher.route(job_of("B"), machines, [0, 1], 0.0) == 0
        assert dispatcher.route(job_of("A"), machines, [0, 1], 0.0) == 1

    def test_load_still_rules_first_order(self):
        dispatcher = SymbiosisAffinityDispatcher(
            SYMBIOTIC, AB, contexts=2, slack=1
        )
        # The symbiotic queue is far longer than the empty machine, so
        # the shortlist excludes it and load balancing wins.
        machines = machines_with("AAAA", "")
        assert dispatcher.route(job_of("B"), machines, [0, 1], 0.0) == 1

    def test_slack_must_be_non_negative(self):
        with pytest.raises(WorkloadError):
            SymbiosisAffinityDispatcher(SYMBIOTIC, AB, contexts=2, slack=-1)


class TestEdgeCases:
    """Boundary behaviors of the dispatch layer: degenerate clusters,
    exact ties, and types the offline LP has never seen."""

    def test_empty_cluster_is_rejected(self):
        from repro.errors import SimulationError
        from repro.queueing.cluster import Cluster

        with pytest.raises(SimulationError, match="at least one machine"):
            Cluster(SYMBIOTIC, [], RoundRobinDispatcher())

    def test_round_robin_with_no_eligible_machine_raises(self):
        dispatcher = RoundRobinDispatcher()
        machines = machines_with("", "")
        with pytest.raises(WorkloadError, match="no eligible"):
            dispatcher.route(job_of("A"), machines, [], 0.0)

    @pytest.mark.parametrize(
        "build",
        [
            lambda: RoundRobinDispatcher(),
            lambda: JoinShortestQueueDispatcher(),
            lambda: SymbiosisAffinityDispatcher(SYMBIOTIC, AB, contexts=2),
        ],
        ids=["round_robin", "jsq", "affinity"],
    )
    def test_single_machine_cluster_always_routes_to_it(self, build):
        dispatcher = build()
        machines = machines_with("AB")
        for _ in range(5):
            assert dispatcher.route(job_of("A"), machines, [0], 0.0) == 0

    def test_jsq_all_equal_ties_are_deterministic(self):
        """Identical queues everywhere: JSQ must always pick the lowest
        index, on every call, for any machine count."""
        for m in (2, 3, 5):
            dispatcher = JoinShortestQueueDispatcher()
            machines = machines_with(*["AB"] * m)
            picks = {
                dispatcher.route(job_of("A"), machines,
                                 list(range(m)), 0.0)
                for _ in range(10)
            }
            assert picks == {0}

    def test_jsq_all_equal_ignores_eligibility_order(self):
        dispatcher = JoinShortestQueueDispatcher()
        machines = machines_with("A", "A", "A")
        assert dispatcher.route(job_of("A"), machines, [2, 0, 1], 0.0) == 0
        assert dispatcher.route(job_of("A"), machines, [2, 1], 0.0) == 1

    def test_affinity_routes_type_absent_from_lp_solution(self):
        """A job type the offline LP never saw has zero affinity with
        every queue; the dispatcher must fall back to
        shortest-queue-then-lowest-index instead of failing."""
        dispatcher = SymbiosisAffinityDispatcher(SYMBIOTIC, AB, contexts=2)
        machines = machines_with("A", "AB", "")
        assert ("Z", "A") not in dispatcher.affinity
        assert dispatcher.route(job_of("Z"), machines, [0, 1, 2], 0.0) == 2
        # Slack keeps the one-job queue in the shortlist; zero affinity
        # everywhere, so shorter-queue-then-lowest-index decides.
        machines = machines_with("A", "B")
        assert dispatcher.route(job_of("Z"), machines, [0, 1], 0.0) == 0

    def test_affinity_with_empty_queues_everywhere(self):
        dispatcher = SymbiosisAffinityDispatcher(SYMBIOTIC, AB, contexts=2)
        machines = machines_with("", "", "")
        assert dispatcher.route(job_of("A"), machines, [0, 1, 2], 0.0) == 0

    def test_single_machine_end_to_end_run(self):
        """A 1-machine cluster driven through each dispatcher completes
        every job (the M=1 degenerate case of the event loop)."""
        from repro.queueing.cluster import run_cluster
        from repro.queueing.job import Job

        jobs = [
            Job(job_id=i, job_type="AB"[i % 2], size=1.0,
                arrival_time=0.5 * i)
            for i in range(6)
        ]
        for name in ("round_robin", "jsq"):
            metrics = run_cluster(
                SYMBIOTIC,
                [FcfsScheduler(SYMBIOTIC, 2)],
                make_dispatcher(name),
                (Job(job_id=j.job_id, job_type=j.job_type, size=j.size,
                     arrival_time=j.arrival_time) for j in jobs),
            )
            assert metrics.completed == 6


class TestFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("round_robin", RoundRobinDispatcher),
            ("rr", RoundRobinDispatcher),
            ("jsq", JoinShortestQueueDispatcher),
            ("join-shortest-queue", JoinShortestQueueDispatcher),
        ],
    )
    def test_simple_names(self, name, cls):
        assert isinstance(make_dispatcher(name), cls)

    def test_affinity_needs_rates_and_workload(self):
        with pytest.raises(WorkloadError, match="offline LP"):
            make_dispatcher("affinity")
        dispatcher = make_dispatcher(
            "affinity", rates=SYMBIOTIC, workload=AB, contexts=2
        )
        assert isinstance(dispatcher, SymbiosisAffinityDispatcher)

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError, match="unknown dispatcher"):
            make_dispatcher("teleport")
