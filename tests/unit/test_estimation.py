"""Unit coverage for :mod:`repro.queueing.estimation`.

The configuration validation, the cold-start priors, the EMA/publish
mechanics, and — most importantly — the *hard-error* contract of
estimated runs: a configuration that could only ever silently fall
back to oracle rates (a scheduler probing a foreign source, a
rate-consuming dispatcher with no refresh hook) must be rejected at
run start, not papered over.
"""

from __future__ import annotations

import math

import pytest

from repro.core.workload import Workload
from repro.errors import EstimationError, SimulationError
from repro.queueing.cluster import Cluster
from repro.queueing.dispatch import Dispatcher, make_dispatcher
from repro.queueing.estimation import (
    EstimationConfig,
    OracleRateSource,
    ThroughputEstimator,
)
from repro.queueing.hotpath import synthetic_rates
from repro.queueing.scenarios import get_scenario
from repro.queueing.schedulers import make_scheduler

CONTEXTS = 2
N_MACHINES = 2


def build_rates():
    return synthetic_rates(n_types=3, contexts=CONTEXTS)


def build_jobs(names, n_jobs=20, seed=3):
    return list(
        get_scenario("baseline_poisson").build_jobs(
            names, mean_rate=2.0, seed=seed, n_jobs=n_jobs
        )
    )


def build_cluster(rates, names, dispatcher=None, scheduler_rates=None):
    workload = Workload.of(*names)
    probe = scheduler_rates if scheduler_rates is not None else rates
    return Cluster(
        rates,
        [
            make_scheduler("maxit", probe, CONTEXTS, workload=workload)
            for _ in range(N_MACHINES)
        ],
        dispatcher if dispatcher is not None else make_dispatcher("jsq"),
    )


class TestConfigValidation:
    def test_defaults_are_valid(self):
        EstimationConfig()

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5, float("nan")])
    def test_bad_alpha(self, alpha):
        with pytest.raises(EstimationError, match="alpha"):
            EstimationConfig(alpha=alpha)

    @pytest.mark.parametrize("noise", [-0.1, float("nan")])
    def test_bad_noise(self, noise):
        with pytest.raises(EstimationError, match="noise"):
            EstimationConfig(noise=noise)

    def test_bad_noise_model(self):
        with pytest.raises(EstimationError, match="noise model"):
            EstimationConfig(noise_model="heteroscedastic")

    def test_bad_prior(self):
        with pytest.raises(EstimationError, match="prior"):
            EstimationConfig(prior="psychic")

    def test_bad_reopt(self):
        with pytest.raises(EstimationError, match="reopt"):
            EstimationConfig(reopt_observations=-1)

    def test_bad_confidence_scale(self):
        with pytest.raises(EstimationError, match="confidence_scale"):
            EstimationConfig(confidence_scale=0.0)


class TestOracleRateSource:
    def test_passthrough_is_identical(self):
        rates, names = build_rates()
        oracle = OracleRateSource(rates)
        cos = (names[0], names[1])
        assert oracle.type_rates(cos) == rates.type_rates(cos)
        assert oracle.kind == "oracle"

    def test_delegates_unknown_attributes(self):
        rates, _ = build_rates()
        assert OracleRateSource(rates).coschedules() == rates.coschedules()


class TestEstimatorMechanics:
    def test_oracle_prior_serves_truth(self):
        rates, names = build_rates()
        est = ThroughputEstimator(rates)
        cos = (names[0], names[2])
        assert est.type_rates(cos) == rates.type_rates(cos)

    def test_prior_modes_are_ordered(self):
        """Optimistic >= single_run >= pessimistic for shared jobs."""
        rates, names = build_rates()
        cos = (names[0], names[1])
        totals = {}
        for prior in ("optimistic", "single_run", "pessimistic"):
            est = ThroughputEstimator(
                rates, EstimationConfig(prior=prior)
            )
            totals[prior] = sum(est.type_rates(cos).values())
        assert (
            totals["optimistic"]
            >= totals["single_run"]
            >= totals["pessimistic"]
        )

    def test_zero_and_negative_spans_are_ignored(self):
        rates, names = build_rates()
        est = ThroughputEstimator(rates)
        est.observe_interval((names[0],), 0.0)
        est.observe_interval((names[0],), -1.0)
        est.observe_interval((), 1.0)
        assert est.total_observations == 0

    def test_publish_exposes_pending_and_fires_listeners(self):
        rates, names = build_rates()
        est = ThroughputEstimator(
            rates,
            EstimationConfig(
                prior="pessimistic", noise=0.0, reopt_observations=0
            ),
        )
        cos = (names[0], names[1])
        before = dict(est.type_rates(cos))
        est.observe_interval(cos, 1.0)
        # Not published yet: policies still see the prior.
        assert est.type_rates(cos) == before
        fired = []
        est.add_listener(fired.append)
        est.publish()
        assert fired == [est]
        after = est.type_rates(cos)
        assert after != before
        est.remove_listener(fired.append)
        est.publish()
        assert len(fired) == 1

    def test_reopt_interval_auto_publishes(self):
        rates, names = build_rates()
        est = ThroughputEstimator(
            rates, EstimationConfig(reopt_observations=3)
        )
        cos = (names[0],)
        for _ in range(7):
            est.observe_interval(cos, 1.0)
        assert est.epoch == 2

    def test_confidence_saturates(self):
        rates, names = build_rates()
        est = ThroughputEstimator(
            rates, EstimationConfig(confidence_scale=2.0)
        )
        cos = (names[0],)
        assert est.confidence(cos) == 0.0
        est.observe_interval(cos, 1.0)
        assert est.confidence(cos) == pytest.approx(1.0 / 3.0)
        for _ in range(100):
            est.observe_interval(cos, 1.0)
        assert 0.9 < est.confidence(cos) < 1.0

    def test_stats_dict_shape(self):
        rates, names = build_rates()
        est = ThroughputEstimator(rates, EstimationConfig(noise=0.2))
        est.observe_interval((names[0],), 1.0)
        stats = est.stats_dict()
        assert stats["observations"] == 1
        assert stats["noise"] == 0.2
        assert stats["noise_model"] == "multiplicative"
        assert not math.isnan(stats["mean_relative_error"])

    def test_noise_streams_are_seed_deterministic(self):
        rates, names = build_rates()
        cos = (names[0], names[1])

        def run(seed):
            est = ThroughputEstimator(
                rates,
                EstimationConfig(
                    noise=0.3, prior="single_run", seed=seed
                ),
            )
            for _ in range(10):
                est.observe_interval(cos, 1.0)
            est.publish()
            return est.type_rates(cos)

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestHardErrors:
    """Estimated mode must refuse configurations that could only ever
    silently read oracle rates."""

    def test_invalid_rate_source_name(self):
        rates, names = build_rates()
        cluster = build_cluster(rates, names)
        with pytest.raises(SimulationError, match="rate_source"):
            cluster.run(build_jobs(names), rate_source="psychic")

    def test_foreign_scheduler_rates_raise(self):
        """A scheduler probing a source other than the cluster's own
        cannot be rebound to the estimates — hard error, not a silent
        oracle fallback."""
        rates, names = build_rates()
        other_rates, _ = build_rates()
        cluster = build_cluster(
            rates, names, scheduler_rates=other_rates
        )
        with pytest.raises(EstimationError, match="different source"):
            cluster.run(build_jobs(names), rate_source="estimated")
        # The same cluster still runs fine on oracle rates.
        cluster = build_cluster(
            rates, names, scheduler_rates=other_rates
        )
        cluster.run(build_jobs(names), rate_source="oracle")

    def test_rate_consuming_dispatcher_without_rebuild_raises(self):
        class FrozenTableDispatcher(Dispatcher):
            """Consumes rates at construction, never refreshes."""

            name = "frozen_table"
            uses_rates = True

            def route(self, job, machines, eligible, clock):
                return eligible[0]

        rates, names = build_rates()
        cluster = build_cluster(
            rates, names, dispatcher=FrozenTableDispatcher()
        )
        with pytest.raises(EstimationError, match="rebuild"):
            cluster.run(build_jobs(names), rate_source="estimated")

    def test_rate_consuming_dispatcher_with_rebuild_is_accepted(self):
        """The rebuild() hook is called at run start and at every
        publish round, with the policy-side memo."""
        calls = []

        class RefreshingDispatcher(Dispatcher):
            name = "refreshing"
            uses_rates = True

            def route(self, job, machines, eligible, clock):
                return eligible[0]

            def rebuild(self, rates):
                calls.append(rates)

        rates, names = build_rates()
        cluster = build_cluster(
            rates, names, dispatcher=RefreshingDispatcher()
        )
        cluster.run(
            build_jobs(names),
            rate_source="estimated",
            estimation=EstimationConfig(reopt_observations=4),
        )
        # >= 2: the run-start refresh plus the run-end restore; noisy
        # streams add one call per publish round in between.
        assert len(calls) >= 2
        # The final call restores the dispatcher to the true source.
        assert calls[-1] is cluster.rates

    def test_affinity_dispatcher_passes_the_gate(self):
        rates, names = build_rates()
        workload = Workload.of(*names)
        cluster = build_cluster(
            rates,
            names,
            dispatcher=make_dispatcher(
                "affinity",
                rates=rates,
                workload=workload,
                contexts=CONTEXTS,
            ),
        )
        metrics = cluster.run(
            build_jobs(names), rate_source="estimated"
        )
        assert metrics.completed > 0
        assert cluster.last_estimator_stats is not None


class TestRunIntegration:
    def test_estimator_stats_recorded_after_estimated_run(self):
        rates, names = build_rates()
        cluster = build_cluster(rates, names)
        cluster.run(
            build_jobs(names),
            rate_source="estimated",
            estimation=EstimationConfig(
                noise=0.25, prior="single_run", reopt_observations=8
            ),
        )
        stats = cluster.last_estimator_stats
        assert stats is not None
        assert stats["observations"] > 0
        assert stats["prior"] == "single_run"

    def test_oracle_run_records_no_estimator_stats(self):
        rates, names = build_rates()
        cluster = build_cluster(rates, names)
        cluster.run(build_jobs(names), rate_source="oracle")
        assert cluster.last_estimator_stats is None

    def test_observers_are_detached_after_the_run(self):
        """The rate observers and policy bindings are run-scoped: after
        close() the schedulers probe the true source again and a second
        oracle run is untouched by the first estimated one."""
        rates, names = build_rates()
        cluster = build_cluster(rates, names)
        oracle_metrics = cluster.run(build_jobs(names))

        cluster2 = build_cluster(rates, names)
        cluster2.run(
            build_jobs(names),
            rate_source="estimated",
            estimation=EstimationConfig(
                noise=0.4, prior="single_run", seed=9
            ),
        )
        for scheduler in cluster2.schedulers:
            assert scheduler.rates is cluster2.rates
        again = cluster2.run(build_jobs(names))
        from repro.experiments.registry import to_jsonable

        assert to_jsonable(again) == to_jsonable(oracle_metrics)
