"""Hypothesis properties of the ThroughputEstimator.

Three families of invariants, each one a guardrail the estimated-rate
mode leans on:

* **Convergence** — the EMA walks toward the true rate as observations
  accumulate: with any noise, the expected estimate contracts toward
  truth geometrically; with zero noise it is *exactly* truth after one
  observation, and the mean relative error is non-increasing in the
  observation count.
* **Order invariance (commutative statistics)** — the estimator's
  counting statistics (per-coschedule observation counts, the total,
  confidence) depend only on the multiset of observed coschedules,
  never on their order; zero-noise estimates are order-invariant too
  (every update lands exactly on truth).  The EMA *value* under noise
  is deliberately order-sensitive (recency weighting), so the property
  is stated for the commutative parts only.
* **Prior sanity** — no cold-start prior mode ever yields a negative
  or NaN rate, for any coschedule over any synthetic rate table.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.queueing.estimation import (
    PRIORS,
    EstimationConfig,
    ThroughputEstimator,
)
from repro.queueing.hotpath import synthetic_rates

MAX_EXAMPLES = 60


def make_estimator(
    n_types=4, contexts=3, **config
) -> tuple[ThroughputEstimator, tuple[str, ...]]:
    rates, names = synthetic_rates(n_types=n_types, contexts=contexts)
    return ThroughputEstimator(rates, EstimationConfig(**config)), names


def coschedules_from(names, draw_list):
    """Map drawn (size, indices) pairs onto concrete coschedules."""
    return [
        tuple(names[i % len(names)] for i in indices)
        for indices in draw_list
        if indices
    ]


observation_lists = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=3),
    min_size=1,
    max_size=25,
)


class TestConvergence:
    @given(
        st.integers(min_value=0, max_value=2**16),
        st.floats(min_value=0.05, max_value=0.5),
        st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_error_shrinks_with_observations(self, seed, noise, alpha):
        """More observations, smaller error (in expectation).

        The EMA error contracts by ``(1 - alpha)`` per zero-mean-noise
        observation, so after many observations of one coschedule the
        estimate must sit closer to truth than the deliberately wrong
        pessimistic prior did.  The noise is ergodic, not adversarial,
        so compare through a generous factor rather than pointwise.
        """
        est, names = make_estimator(
            noise=noise,
            noise_model="multiplicative",
            prior="pessimistic",
            reopt_observations=0,
            alpha=alpha,
            seed=seed,
        )
        cos = (names[0], names[1])
        truth = est.source.type_rates(cos)
        prior = dict(est.type_rates(cos))
        prior_error = sum(
            abs(prior[n] - truth[n]) for n in truth
        )
        for _ in range(400):
            est.observe_interval(cos, 1.0)
        est.publish()
        final = est.type_rates(cos)
        final_error = sum(abs(final[n] - truth[n]) for n in truth)
        # After 400 noisy updates the prior is forgotten entirely; the
        # residual is noise-driven, bounded well below the prior's
        # deliberate pessimism plus a noise allowance.
        allowance = 6.0 * noise * math.sqrt(alpha) * sum(truth.values())
        assert final_error <= prior_error + allowance
        assert final_error <= 0.5 * prior_error + allowance

    @given(
        st.integers(min_value=0, max_value=2**16),
        st.sampled_from(PRIORS),
        st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_zero_noise_is_exact_after_one_observation(
        self, seed, prior, n_obs
    ):
        """With no noise every observation IS the truth, and one EMA
        step from the warm oracle prior (or n steps from any prior)
        lands exactly on it — published error hits 0 for oracle priors
        and decreases monotonically for cold ones."""
        est, names = make_estimator(
            noise=0.0, prior=prior, reopt_observations=0, seed=seed
        )
        cos = (names[0], names[2])
        truth = est.source.type_rates(cos)
        errors = []
        for _ in range(n_obs):
            est.observe_interval(cos, 0.5)
            est.publish()
            entry = est.type_rates(cos)
            errors.append(sum(abs(entry[n] - truth[n]) for n in truth))
        if prior == "oracle":
            assert errors[0] == 0.0
        assert all(
            later <= earlier + 1e-12
            for earlier, later in zip(errors, errors[1:])
        )
        # Geometric contraction: after n halvings the cold-start gap
        # is down by 2^-n.
        assert errors[-1] <= errors[0] * 0.5 ** (len(errors) - 1) + 1e-9


class TestOrderInvariance:
    @given(
        observation_lists,
        st.randoms(use_true_random=False),
        st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_counts_and_confidence_are_order_invariant(
        self, draw_list, shuffler, noise
    ):
        """Counting statistics commute: any permutation of the same
        observation multiset yields identical per-coschedule counts,
        total, and confidence."""
        _, names = make_estimator()
        observations = coschedules_from(names, draw_list)
        shuffled = list(observations)
        shuffler.shuffle(shuffled)

        def feed(sequence):
            est, _ = make_estimator(
                noise=noise, prior="single_run", reopt_observations=0
            )
            for cos in sequence:
                est.observe_interval(cos, 1.0)
            return est

        a, b = feed(observations), feed(shuffled)
        keys = {tuple(sorted(c)) for c in observations}
        assert a.total_observations == b.total_observations
        for cos in keys:
            assert a.observations(cos) == b.observations(cos)
            assert a.confidence(cos) == b.confidence(cos)

    @given(observation_lists, st.randoms(use_true_random=False))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_zero_noise_estimates_are_order_invariant(
        self, draw_list, shuffler
    ):
        """At zero noise every update lands exactly on truth, so the
        published tables are identical under any observation order."""
        _, names = make_estimator()
        observations = coschedules_from(names, draw_list)
        shuffled = list(observations)
        shuffler.shuffle(shuffled)

        def feed(sequence):
            est, _ = make_estimator(
                noise=0.0, prior="optimistic", reopt_observations=0
            )
            for cos in sequence:
                est.observe_interval(cos, 1.0)
            est.publish()
            return est

        a, b = feed(observations), feed(shuffled)
        for cos in {tuple(sorted(c)) for c in observations}:
            assert a.type_rates(cos) == b.type_rates(cos)


class TestPriorSanity:
    @given(
        st.sampled_from(PRIORS),
        st.lists(
            st.integers(min_value=0, max_value=7), min_size=1, max_size=4
        ),
        st.integers(min_value=3, max_value=6),
        st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_priors_never_negative_or_nan(
        self, prior, indices, n_types, contexts
    ):
        """Every cold-start mode yields finite, non-negative rates for
        every type of every coschedule it is asked about."""
        est, names = make_estimator(
            n_types=n_types, contexts=contexts, prior=prior
        )
        # A coschedule never exceeds the machine's context count (the
        # rate table records nothing beyond it).
        cos = tuple(names[i % len(names)] for i in indices[:contexts])
        entry = est.type_rates(cos)
        assert set(entry) == set(cos)
        for rate in entry.values():
            assert not math.isnan(rate)
            assert math.isfinite(rate)
            assert rate >= 0.0
        # Confidence of a never-observed coschedule is 0 and stays in
        # [0, 1) afterwards.
        assert est.confidence(cos) == 0.0
        est.observe_interval(cos, 1.0)
        assert 0.0 < est.confidence(cos) < 1.0
