"""Property-based tests of the queueing engine.

Random job streams on a synthetic rate table must conserve work, keep
metrics inside physical bounds, and complete every job regardless of
scheduler.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.workload import Workload
from repro.microarch.rate_cache import CachedRateSource
from repro.microarch.rates import TableRates
from repro.queueing.engine import run_system
from repro.queueing.job import Job
from repro.queueing.schedulers import make_scheduler
from repro.util.multiset import multisets

AB = Workload.of("A", "B")


def unit_table() -> TableRates:
    """Mildly asymmetric rates over sizes 1..2 of two types."""
    table = {}
    per_job = {"A": 1.0, "B": 0.6}
    for size in (1, 2):
        for cos in multisets(("A", "B"), size):
            interference = 0.8 if len(set(cos)) == 1 and size == 2 else 1.0
            table[cos] = {
                b: per_job[b] * cos.count(b) * interference
                for b in set(cos)
            }
    return TableRates(table)


RATES = unit_table()

job_streams = st.lists(
    st.tuples(
        st.sampled_from(("A", "B")),
        st.floats(min_value=0.0, max_value=5.0),  # inter-arrival gap
        st.floats(min_value=0.05, max_value=3.0),  # size
    ),
    min_size=1,
    max_size=25,
)

scheduler_names = st.sampled_from(("fcfs", "maxit", "srpt", "maxtp"))


def build_jobs(stream) -> list[Job]:
    jobs = []
    clock = 0.0
    for i, (job_type, gap, size) in enumerate(stream):
        clock += gap
        jobs.append(
            Job(job_id=i, job_type=job_type, size=size, arrival_time=clock)
        )
    return jobs


class TestEngineProperties:
    @given(job_streams, scheduler_names)
    @settings(max_examples=50, deadline=None)
    def test_all_jobs_complete_and_work_conserved(self, stream, name):
        jobs = build_jobs(stream)
        total_work = sum(j.size for j in jobs)
        scheduler = make_scheduler(name, RATES, 2, workload=AB)
        metrics = run_system(RATES, scheduler, jobs)
        assert metrics.completed == len(jobs)
        assert metrics.work_done == pytest.approx(total_work, rel=1e-6)

    @given(job_streams, scheduler_names)
    @settings(max_examples=50, deadline=None)
    def test_metrics_bounds(self, stream, name):
        jobs = build_jobs(stream)
        scheduler = make_scheduler(name, RATES, 2, workload=AB)
        metrics = run_system(RATES, scheduler, jobs)
        assert 0.0 <= metrics.utilization <= 2.0 + 1e-9
        assert 0.0 <= metrics.empty_fraction <= 1.0 + 1e-9
        fractions = metrics.coschedule_fractions()
        assert sum(fractions.values()) <= 1.0 + 1e-9

    @given(job_streams)
    @settings(max_examples=50, deadline=None)
    def test_turnaround_at_least_ideal_service_time(self, stream):
        """No job can finish faster than its size divided by its best
        possible rate (1.0 for A, 0.6 for B)."""
        jobs = build_jobs(stream)
        best_rate = {"A": 1.0, "B": 0.6}
        sizes = {j.job_id: (j.job_type, j.size) for j in jobs}
        scheduler = make_scheduler("fcfs", RATES, 2)
        run_system(RATES, scheduler, jobs)
        for job in jobs:
            job_type, size = sizes[job.job_id]
            # The engine admits arrivals up to its event epsilon (1e-9)
            # early, so a job can legitimately start — and therefore
            # finish — that much sooner than its arrival stamp implies;
            # allow one admission epsilon plus ulp headroom.
            assert job.turnaround >= size / best_rate[job_type] - 3e-9

    @given(job_streams, scheduler_names)
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, stream, name):
        a = run_system(
            RATES,
            make_scheduler(name, RATES, 2, workload=AB),
            build_jobs(stream),
        )
        b = run_system(
            RATES,
            make_scheduler(name, RATES, 2, workload=AB),
            build_jobs(stream),
        )
        assert a.work_done == pytest.approx(b.work_done)
        assert a.measured_time == pytest.approx(b.measured_time)

    @given(job_streams, scheduler_names)
    @settings(max_examples=50, deadline=None)
    def test_cached_rates_metrics_identical(self, stream, name):
        """Wrapping the rate source in a CachedRateSource must be a
        pure speedup: bit-identical SystemMetrics, every lookup served
        through the cache."""
        uncached = run_system(
            RATES,
            make_scheduler(name, RATES, 2, workload=AB),
            build_jobs(stream),
        )
        cached_rates = CachedRateSource(RATES)
        cached = run_system(
            cached_rates,
            make_scheduler(name, cached_rates, 2, workload=AB),
            build_jobs(stream),
        )
        assert cached == uncached
        assert cached_rates.stats.lookups > 0
