"""Property-based tests of the microarchitectural model.

Random coschedules over the real roster must always satisfy the
physical invariants: positive rates, no speedup from co-running, cache
conservation, SMT width ceiling.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.microarch.benchmarks import BENCHMARK_NAMES, default_roster
from repro.microarch.config import quad_core_machine, smt_machine
from repro.microarch.simulator import simulate_coschedule

ROSTER = default_roster()
SMT = smt_machine()
QUAD = quad_core_machine()

coschedules = st.lists(
    st.sampled_from(BENCHMARK_NAMES), min_size=1, max_size=4
)


class TestSimulatorProperties:
    @given(coschedules)
    @settings(max_examples=40, deadline=None)
    def test_smt_invariants(self, names):
        result = simulate_coschedule(SMT, ROSTER, names)
        assert all(ipc > 0.0 for ipc in result.ipcs)
        assert result.total_ipc <= SMT.width + 1e-9
        assert sum(result.cache_mb) == pytest.approx(SMT.llc_mb, rel=1e-6)
        assert 0.0 <= result.bus_utilization <= SMT.bus_max_utilization
        assert result.memory_latency >= SMT.mem_latency_cycles - 1e-9

    @given(coschedules)
    @settings(max_examples=30, deadline=None)
    def test_quad_invariants(self, names):
        result = simulate_coschedule(QUAD, ROSTER, names)
        assert all(0.0 < ipc <= QUAD.width for ipc in result.ipcs)
        assert sum(result.cache_mb) == pytest.approx(QUAD.llc_mb, rel=1e-6)

    @given(coschedules)
    @settings(max_examples=25, deadline=None)
    def test_no_speedup_from_co_running(self, names):
        """Each job's IPC coscheduled never exceeds its IPC alone."""
        result = simulate_coschedule(SMT, ROSTER, names)
        for job, ipc in zip(result.job_names, result.ipcs):
            alone = simulate_coschedule(SMT, ROSTER, (job,)).ipcs[0]
            assert ipc <= alone * (1.0 + 1e-6)

    @given(st.sampled_from(BENCHMARK_NAMES), st.sampled_from(BENCHMARK_NAMES))
    @settings(max_examples=25, deadline=None)
    def test_adding_a_co_runner_never_helps(self, a, b):
        """Monotonicity: a pair is never faster for either member than
        running alone."""
        pair = simulate_coschedule(SMT, ROSTER, (a, b))
        alone_a = simulate_coschedule(SMT, ROSTER, (a,)).ipcs[0]
        ipc_a = pair.ipc_of(a)[0]
        assert ipc_a <= alone_a * (1.0 + 1e-6)

    @given(coschedules)
    @settings(max_examples=20, deadline=None)
    def test_order_invariance(self, names):
        shuffled = list(reversed(names))
        a = simulate_coschedule(SMT, ROSTER, names)
        b = simulate_coschedule(SMT, ROSTER, shuffled)
        assert a.ipcs == b.ipcs
