"""Property-based tests of the scenario arrival processes.

Every arrival process, for any seed and any in-range parameters, must
produce monotone non-decreasing timestamps, hit its configured
long-run mean rate, and survive a record → serialize → replay
round-trip bit-identically.  The MMPP degeneracy property (equal state
rates ⇒ a plain Poisson process) is checked distributionally.
"""

from __future__ import annotations

import json
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing.arrivals import (
    batch_arrivals,
    diurnal_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
)
from repro.queueing.trace import (
    TraceRecorder,
    jobs_from_trace,
    trace_arrivals,
)

TYPES = ("A", "B", "C")

seeds = st.integers(min_value=0, max_value=2**20)
rates = st.floats(min_value=0.5, max_value=4.0)


def build(kind, seed, rate, n_jobs):
    """One arrival stream of each kind at long-run mean rate ``rate``."""
    if kind == "poisson":
        return poisson_arrivals(
            TYPES, rate=rate, n_jobs=n_jobs,
            size_model={"kind": "exponential"}, seed=seed,
        )
    if kind == "mmpp":
        # Multipliers (3, 0.5) with dwells (4, 16): dwell-weighted mean
        # is (3*4 + 0.5*16) / 20 = 1.0, so the mean rate is `rate`.
        return mmpp_arrivals(
            TYPES,
            state_rates=(3.0 * rate, 0.5 * rate),
            mean_dwells=(4.0, 16.0),
            n_jobs=n_jobs,
            seed=seed,
        )
    if kind == "diurnal":
        return diurnal_arrivals(
            TYPES, base_rate=rate, amplitude=0.7, period=40.0,
            n_jobs=n_jobs, seed=seed,
        )
    if kind == "batch":
        return batch_arrivals(
            TYPES, batch_rate=rate / 4.0, mean_batch_size=4.0,
            n_jobs=n_jobs, seed=seed,
        )
    raise AssertionError(kind)


KINDS = ("poisson", "mmpp", "diurnal", "batch")
kinds = st.sampled_from(KINDS)


class TestArrivalProperties:
    @given(kinds, seeds, rates)
    @settings(max_examples=40, deadline=None)
    def test_times_monotone_ids_sequential_sizes_positive(
        self, kind, seed, rate
    ):
        jobs = list(build(kind, seed, rate, 300))
        assert len(jobs) == 300
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)
        assert all(t >= 0.0 for t in times)
        assert [j.job_id for j in jobs] == list(range(300))
        assert all(j.size > 0.0 for j in jobs)
        assert {j.job_type for j in jobs} <= set(TYPES)

    @given(kinds, seeds, rates)
    @settings(max_examples=12, deadline=None)
    def test_empirical_mean_rate_matches_configured(
        self, kind, seed, rate
    ):
        n_jobs = 8_000
        jobs = list(build(kind, seed, rate, n_jobs))
        measured = n_jobs / jobs[-1].arrival_time
        # MMPP/diurnal need many modulation cycles to average out; the
        # dwell/period choices above give dozens of cycles at n=8000.
        assert abs(measured / rate - 1.0) < 0.25

    @given(kinds, seeds, rates)
    @settings(max_examples=25, deadline=None)
    def test_record_serialize_replay_round_trip_bit_identical(
        self, kind, seed, rate
    ):
        recorder = TraceRecorder()
        original = [
            (j.job_id, j.job_type, j.size, j.arrival_time)
            for j in recorder.capture(build(kind, seed, rate, 120))
        ]
        # Through real JSON text and back, twice (replay → re-record).
        payload = json.loads(json.dumps(recorder.trace()))
        replayed = list(trace_arrivals(payload))
        second = TraceRecorder()
        list(second.capture(iter(replayed)))
        again = jobs_from_trace(json.loads(json.dumps(second.trace())))
        assert [
            (j.job_id, j.job_type, j.size, j.arrival_time)
            for j in again
        ] == original

    @given(seeds, rates)
    @settings(max_examples=8, deadline=None)
    def test_mmpp_equal_rates_degenerates_to_poisson(self, seed, rate):
        """With every state at the same rate the modulation is
        unobservable: inter-arrival gaps must look exponential(rate) —
        same mean AND coefficient of variation as the Poisson stream
        (burstiness would push the CV well above 1)."""
        n_jobs = 8_000
        degenerate = list(
            mmpp_arrivals(
                TYPES,
                state_rates=(rate, rate, rate),
                mean_dwells=(2.0, 5.0, 11.0),
                n_jobs=n_jobs,
                seed=seed,
            )
        )
        gaps = [
            b.arrival_time - a.arrival_time
            for a, b in zip(degenerate, degenerate[1:])
        ]
        mean = statistics.mean(gaps)
        cv = statistics.pstdev(gaps) / mean
        assert abs(mean * rate - 1.0) < 0.1  # exponential mean 1/rate
        assert abs(cv - 1.0) < 0.1  # exponential CV is exactly 1

        poisson = list(
            poisson_arrivals(
                TYPES, rate=rate, n_jobs=n_jobs,
                size_model={"kind": "exponential"}, seed=seed,
            )
        )
        poisson_gaps = [
            b.arrival_time - a.arrival_time
            for a, b in zip(poisson, poisson[1:])
        ]
        assert statistics.mean(gaps) == pytest.approx(
            statistics.mean(poisson_gaps), rel=0.1
        )
