"""Equivalence properties of the cluster event core.

Two pins hold the refactor honest:

1. **M=1 bit-identity** — ``run_system`` (now a thin wrapper over the
   heap-driven cluster core) must produce *bit-identical*
   ``SystemMetrics`` to the seed single-machine engine on random
   workloads and schedulers, including warmup/horizon/backlog knobs.
   The seed loop is inlined below as the reference implementation.
2. **Round-robin decomposition** — an M-machine cluster with
   round-robin dispatch and no admission caps must match M independent
   single-machine runs on the round-robin substreams (the dynamic side
   of the paper's Section III-D reduction).  Machines are lazily
   synced in the cluster, so per-machine floating point can differ in
   the last ulp; the comparison is exact on counts and tight-approx on
   time integrals.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.workload import Workload
from repro.errors import SimulationError
from repro.microarch.rates import TableRates
from repro.queueing.cluster import run_cluster
from repro.queueing.dispatch import RoundRobinDispatcher
from repro.queueing.engine import run_system
from repro.queueing.job import Job
from repro.queueing.schedulers import Scheduler, make_scheduler
from repro.queueing.system import SystemMetrics
from repro.util.multiset import multisets

AB = Workload.of("A", "B")

# ----------------------------------------------------------------------
# Reference: the seed single-machine engine, inlined verbatim.  The
# refactored run_system must reproduce its SystemMetrics bit for bit.
# ----------------------------------------------------------------------
_EPSILON = 1e-9


def _seed_per_job_type_rates(rates, coschedule):
    if not coschedule:
        return {}
    type_rates = rates.type_rates(coschedule)
    counts = Counter(coschedule)
    return {
        job_type: type_rates.get(job_type, 0.0) / count
        for job_type, count in counts.items()
    }


def _seed_run_system(
    rates,
    scheduler: Scheduler,
    arrivals,
    *,
    warmup_time: float = 0.0,
    horizon: float | None = None,
    stop_when_fewer_than: int | None = None,
    keep_in_system: int | None = None,
    max_events: int = 5_000_000,
) -> SystemMetrics:
    stream = iter(arrivals)
    pending = next(stream, None)
    jobs: list[Job] = []
    metrics = SystemMetrics()
    clock = 0.0
    last_arrival = -1.0
    rate_memo: dict[tuple[str, ...], dict[str, float]] = {}

    for _ in range(max_events):
        while (
            pending is not None
            and pending.arrival_time <= clock + _EPSILON
            and (keep_in_system is None or len(jobs) < keep_in_system)
        ):
            if pending.arrival_time < last_arrival - _EPSILON:
                raise SimulationError("arrivals out of order")
            last_arrival = pending.arrival_time
            jobs.append(pending)
            pending = next(stream, None)

        if stop_when_fewer_than is not None and pending is None:
            if len(jobs) < stop_when_fewer_than:
                break
        if not jobs and pending is None:
            break
        if horizon is not None and clock >= horizon:
            break

        running = scheduler.select(jobs, clock) if jobs else []
        coschedule = tuple(sorted(job.job_type for job in running))
        job_rates = rate_memo.get(coschedule)
        if job_rates is None:
            job_rates = _seed_per_job_type_rates(rates, coschedule)
            rate_memo[coschedule] = job_rates
        next_completion = float("inf")
        for job in running:
            rate = job_rates[job.job_type]
            next_completion = min(next_completion, job.remaining / rate)

        can_admit = keep_in_system is None or len(jobs) < keep_in_system
        next_arrival = (
            pending.arrival_time - clock
            if (pending is not None and can_admit)
            else float("inf")
        )
        dt = min(next_completion, next_arrival)
        if horizon is not None:
            dt = min(dt, horizon - clock)
        if dt == float("inf"):
            raise SimulationError("no progress possible: idle with no arrivals")
        dt = max(dt, 0.0)

        work = 0.0
        for job in running:
            step = job_rates[job.job_type] * dt
            job.progress(step)
            work += step

        measured_dt = min(clock + dt, float("inf")) - max(clock, warmup_time)
        if measured_dt > 0.0:
            fraction = measured_dt / dt if dt > 0.0 else 0.0
            metrics.observe_interval(
                measured_dt, coschedule, len(jobs), work * fraction
            )
        scheduler.observe(coschedule, dt)
        clock += dt

        finished = [job for job in running if job.done]
        for job in finished:
            job.completion_time = clock
            if clock >= warmup_time:
                metrics.observe_completion(job.turnaround)
        if finished:
            done_ids = {job.job_id for job in finished}
            jobs = [job for job in jobs if job.job_id not in done_ids]
    else:
        raise SimulationError(
            f"simulation exceeded {max_events} events without terminating"
        )

    return metrics


# ----------------------------------------------------------------------
# Shared synthetic rate table and job-stream strategy (mirrors
# test_engine_properties).
# ----------------------------------------------------------------------
def unit_table() -> TableRates:
    table = {}
    per_job = {"A": 1.0, "B": 0.6}
    for size in (1, 2):
        for cos in multisets(("A", "B"), size):
            interference = 0.8 if len(set(cos)) == 1 and size == 2 else 1.0
            table[cos] = {
                b: per_job[b] * cos.count(b) * interference
                for b in set(cos)
            }
    return TableRates(table)


RATES = unit_table()

job_streams = st.lists(
    st.tuples(
        st.sampled_from(("A", "B")),
        st.floats(min_value=0.0, max_value=5.0),  # inter-arrival gap
        st.floats(min_value=0.05, max_value=3.0),  # size
    ),
    min_size=1,
    max_size=25,
)

scheduler_names = st.sampled_from(("fcfs", "maxit", "srpt", "maxtp"))

run_knobs = st.sampled_from(
    (
        {},
        {"warmup_time": 3.0},
        {"horizon": 9.0},
        {"keep_in_system": 2, "stop_when_fewer_than": 2},
    )
)


def build_jobs(stream) -> list[Job]:
    jobs = []
    clock = 0.0
    for i, (job_type, gap, size) in enumerate(stream):
        clock += gap
        jobs.append(
            Job(job_id=i, job_type=job_type, size=size, arrival_time=clock)
        )
    return jobs


class TestSingleMachineBitIdentity:
    @given(job_streams, scheduler_names, run_knobs)
    @settings(max_examples=120, deadline=None)
    def test_metrics_bit_identical_to_seed_engine(
        self, stream, name, knobs
    ):
        """The refactored M=1 path is the seed engine, bit for bit."""
        seed_jobs = build_jobs(stream)
        seed_metrics = _seed_run_system(
            RATES,
            make_scheduler(name, RATES, 2, workload=AB),
            seed_jobs,
            **knobs,
        )
        new_jobs = build_jobs(stream)
        new_metrics = run_system(
            RATES,
            make_scheduler(name, RATES, 2, workload=AB),
            new_jobs,
            **knobs,
        )
        # Dataclass equality is field-exact: every float accumulator,
        # the completion counters, and the per-coschedule time map must
        # match without tolerance.
        assert new_metrics == seed_metrics
        assert [j.completion_time for j in new_jobs] == [
            j.completion_time for j in seed_jobs
        ]
        assert [j.remaining for j in new_jobs] == [
            j.remaining for j in seed_jobs
        ]


class TestRoundRobinDecomposition:
    @given(
        job_streams,
        scheduler_names,
        st.integers(min_value=2, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_cluster_matches_independent_machines(self, stream, name, m):
        """RR dispatch over M machines == M independent substream runs.

        Counts are exact; time integrals agree to floating-point noise
        (the cluster syncs machines lazily against a global clock).
        """
        jobs = build_jobs(stream)
        cluster = run_cluster(
            RATES,
            [make_scheduler(name, RATES, 2, workload=AB) for _ in range(m)],
            RoundRobinDispatcher(),
            jobs,
        )
        for machine in range(m):
            substream = [
                Job(
                    job_id=j.job_id,
                    job_type=j.job_type,
                    size=j.size,
                    arrival_time=j.arrival_time,
                )
                for i, j in enumerate(build_jobs(stream))
                if i % m == machine
            ]
            if not substream:
                assert cluster.per_machine[machine].completed == 0
                continue
            single = run_system(
                RATES,
                make_scheduler(name, RATES, 2, workload=AB),
                substream,
            )
            got = cluster.per_machine[machine]
            assert got.completed == single.completed
            assert got.turnaround_sum == pytest.approx(
                single.turnaround_sum, rel=1e-6, abs=1e-9
            )
            assert got.work_done == pytest.approx(
                single.work_done, rel=1e-6, abs=1e-9
            )
            assert got.busy_context_time == pytest.approx(
                single.busy_context_time, rel=1e-6, abs=1e-9
            )
            # The cluster machine keeps observing (idle) until the
            # whole cluster drains, so its window is at least as long.
            assert got.measured_time >= single.measured_time - 1e-9
            for coschedule, span in single.time_by_coschedule.items():
                assert got.time_by_coschedule[coschedule] == pytest.approx(
                    span, rel=1e-6, abs=1e-9
                )

    @given(job_streams, st.integers(min_value=2, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_cluster_conserves_work_and_completions(self, stream, m):
        jobs = build_jobs(stream)
        total_work = sum(j.size for j in jobs)
        metrics = run_cluster(
            RATES,
            [make_scheduler("fcfs", RATES, 2) for _ in range(m)],
            RoundRobinDispatcher(),
            jobs,
        )
        assert metrics.completed == len(jobs)
        assert metrics.work_done == pytest.approx(total_work, rel=1e-6)
