"""The interned-type fast path is bit-identical to the string path.

Two layers of pinning:

* **Engine layer** — ``run_cluster(..., fast_path=True)`` (int-coded
  coschedules, flat rate arrays, memoized probe candidate sets, the
  per-type queue index) must produce *bit-identical*
  ``ClusterMetrics`` to ``fast_path=False`` (the legacy PR-2 string
  path, kept in-tree) across random job streams, schedulers,
  dispatchers, cluster sizes, and run knobs — including the exact
  per-coschedule time splits, whose dict keys come out of the codec's
  decode boundary.

* **Scheduler layer** (the probing decisions themselves) — MAXIT,
  SRPT, and MAXTP must pick the *identical jobs in the identical
  order* whether they probe through a compiled
  :class:`~repro.queueing.ratememo.RunRateMemo` or the raw string
  table, across random rate tables and random queue states.  Order
  matters: the engine accumulates stepped work in running-set order,
  so a permuted pick would still drift the metrics.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.workload import Workload
from repro.experiments.registry import to_jsonable
from repro.microarch.rates import TableRates
from repro.queueing.cluster import run_cluster
from repro.queueing.job import Job
from repro.queueing.ratememo import RunRateMemo
from repro.queueing.schedulers import make_scheduler
from repro.queueing.dispatch import make_dispatcher
from repro.util.multiset import multisets

TYPES = ("A", "B", "C")
WORKLOAD = Workload.of(*TYPES)
CONTEXTS = 2


def build_table(per_job: dict[str, float], interference: float) -> TableRates:
    """A full 3-type/2-context table from per-job rates and a same-type
    interference factor (heterogeneous pairs stay at full speed)."""
    table = {}
    for size in (1, 2):
        for cos in multisets(TYPES, size):
            factor = (
                interference if size == 2 and len(set(cos)) == 1 else 1.0
            )
            table[cos] = {
                b: per_job[b] * cos.count(b) * factor for b in set(cos)
            }
    return TableRates(table)


rate_tables = st.builds(
    build_table,
    st.fixed_dictionaries(
        {
            t: st.floats(min_value=0.1, max_value=2.0, allow_nan=False)
            for t in TYPES
        }
    ),
    st.floats(min_value=0.3, max_value=1.0),
)

job_streams = st.lists(
    st.tuples(
        st.sampled_from(TYPES),
        st.floats(min_value=0.0, max_value=3.0),  # inter-arrival gap
        st.floats(min_value=0.05, max_value=3.0),  # size
    ),
    min_size=1,
    max_size=30,
)

scheduler_names = st.sampled_from(("fcfs", "maxit", "srpt", "maxtp", "ljf"))
dispatcher_names = st.sampled_from(("round_robin", "jsq", "affinity"))
n_machines = st.integers(min_value=1, max_value=3)

run_knobs = st.sampled_from(
    (
        {},
        {"warmup_time": 2.0},
        {"horizon": 8.0},
        {"keep_in_system": 2, "stop_when_fewer_than": 2},
    )
)


def build_jobs(stream) -> list[Job]:
    jobs = []
    clock = 0.0
    for i, (job_type, gap, size) in enumerate(stream):
        clock += gap
        jobs.append(
            Job(job_id=i, job_type=job_type, size=size, arrival_time=clock)
        )
    return jobs


def run_once(rates, stream, scheduler, dispatcher, machines, knobs, fast):
    return run_cluster(
        rates,
        [
            make_scheduler(scheduler, rates, CONTEXTS, workload=WORKLOAD)
            for _ in range(machines)
        ],
        make_dispatcher(
            dispatcher, rates=rates, workload=WORKLOAD, contexts=CONTEXTS
        ),
        build_jobs(stream),
        fast_path=fast,
        **knobs,
    )


class TestEngineEquivalence:
    @given(
        rate_tables,
        job_streams,
        scheduler_names,
        dispatcher_names,
        n_machines,
        run_knobs,
    )
    @settings(max_examples=120, deadline=None)
    def test_cluster_metrics_bit_identical(
        self, rates, stream, scheduler, dispatcher, machines, knobs
    ):
        fast = run_once(
            rates, stream, scheduler, dispatcher, machines, knobs, True
        )
        legacy = run_once(
            rates, stream, scheduler, dispatcher, machines, knobs, False
        )
        # to_jsonable serializes every field of every per-machine
        # SystemMetrics (including the per-coschedule time dicts);
        # == on the payload is exact float equality.
        assert to_jsonable(fast) == to_jsonable(legacy)


# ----------------------------------------------------------------------
# Scheduler-layer pick identity (random rate tables x queue states).
# ----------------------------------------------------------------------
queue_states = st.lists(
    st.tuples(
        st.sampled_from(TYPES),
        st.floats(min_value=0.0, max_value=10.0),  # arrival time
        st.floats(min_value=1e-6, max_value=4.0),  # remaining work
    ),
    min_size=1,
    max_size=10,
)

probing_schedulers = st.sampled_from(("maxit", "srpt", "maxtp"))


def queue_jobs(state) -> list[Job]:
    return [
        Job(
            job_id=i,
            job_type=job_type,
            size=max(remaining, 1e-6),
            arrival_time=arrival,
            remaining=remaining,
        )
        for i, (job_type, arrival, remaining) in enumerate(state)
    ]


class TestSchedulerPickEquivalence:
    @given(rate_tables, queue_states, probing_schedulers)
    @settings(max_examples=200, deadline=None)
    def test_coded_and_string_probing_pick_identical_jobs(
        self, rates, state, name
    ):
        string_scheduler = make_scheduler(
            name, rates, CONTEXTS, workload=WORKLOAD
        )
        coded_scheduler = make_scheduler(
            name, rates, CONTEXTS, workload=WORKLOAD
        )
        coded_scheduler.bind_rates(RunRateMemo(rates))

        string_pick = string_scheduler.select(queue_jobs(state), clock=0.0)
        coded_pick = coded_scheduler.select(queue_jobs(state), clock=0.0)
        assert [job.job_id for job in coded_pick] == [
            job.job_id for job in string_pick
        ]

    @given(rate_tables, queue_states, probing_schedulers)
    @settings(max_examples=50, deadline=None)
    def test_coded_probing_is_stable_across_repeats(
        self, rates, state, name
    ):
        """Probe memoization must not leak state between selects: the
        same queue probed twice yields the same pick."""
        scheduler = make_scheduler(name, rates, CONTEXTS, workload=WORKLOAD)
        scheduler.bind_rates(RunRateMemo(rates))
        jobs = queue_jobs(state)
        first = [job.job_id for job in scheduler.select(jobs, clock=0.0)]
        second = [job.job_id for job in scheduler.select(jobs, clock=0.0)]
        assert first == second
