"""Property-based tests of the core scheduling theory.

Random rate tables exercise the Section-IV LP, the FCFS Markov model,
and their relationships.  These are the library's deepest invariants:

* the LP bounds hold for *any* scheduler satisfying the equal-work
  constraint — in particular for FCFS;
* the optimal support never exceeds the number of job types;
* insensitive rates collapse the bounds to a single point.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fcfs import fcfs_throughput
from repro.core.optimal import optimal_throughput, worst_throughput
from repro.core.workload import Workload
from repro.microarch.rates import TableRates
from repro.util.multiset import multisets

TYPES = ("A", "B", "C")


@st.composite
def random_rates(draw, n_types=2, contexts=2):
    """A random positive rate table over all size-K coschedules."""
    types = TYPES[:n_types]
    rate = st.floats(
        min_value=0.05, max_value=2.0, allow_nan=False, allow_infinity=False
    )
    table = {}
    for cos in multisets(types, contexts):
        present = sorted(set(cos))
        table[cos] = {b: draw(rate) for b in present}
    return TableRates(table), Workload.of(*types)


class TestLpBounds:
    @given(random_rates())
    @settings(max_examples=60, deadline=None)
    def test_optimal_at_least_worst(self, case):
        rates, workload = case
        best = optimal_throughput(rates, workload, contexts=2)
        worst = worst_throughput(rates, workload, contexts=2)
        assert best.throughput >= worst.throughput - 1e-8

    @given(random_rates())
    @settings(max_examples=60, deadline=None)
    def test_fcfs_within_lp_bounds(self, case):
        """FCFS executes equal work per type in steady state, so its
        throughput is a feasible point of the Section-IV program."""
        rates, workload = case
        fcfs = fcfs_throughput(rates, workload, contexts=2)
        best = optimal_throughput(rates, workload, contexts=2)
        worst = worst_throughput(rates, workload, contexts=2)
        assert fcfs.throughput <= best.throughput + 1e-6
        assert fcfs.throughput >= worst.throughput - 1e-6

    @given(random_rates(n_types=3, contexts=3))
    @settings(max_examples=25, deadline=None)
    def test_three_type_bounds(self, case):
        rates, workload = case
        fcfs = fcfs_throughput(rates, workload, contexts=3)
        best = optimal_throughput(rates, workload, contexts=3)
        worst = worst_throughput(rates, workload, contexts=3)
        assert worst.throughput - 1e-6 <= fcfs.throughput <= best.throughput + 1e-6

    @given(random_rates())
    @settings(max_examples=60, deadline=None)
    def test_support_bound(self, case):
        """A vertex optimum uses at most N coschedules."""
        rates, workload = case
        best = optimal_throughput(rates, workload, contexts=2)
        assert best.support_size() <= workload.n_types

    @given(random_rates())
    @settings(max_examples=60, deadline=None)
    def test_equal_work_constraint_holds(self, case):
        rates, workload = case
        best = optimal_throughput(rates, workload, contexts=2)
        work = dict.fromkeys(workload.types, 0.0)
        for cos, fraction in best.fractions.items():
            for b, rate in rates.type_rates(cos).items():
                work[b] += fraction * rate
        values = list(work.values())
        assert max(values) - min(values) < 1e-6 * max(values)

    @given(random_rates())
    @settings(max_examples=40, deadline=None)
    def test_fractions_nonnegative_and_normalized(self, case):
        rates, workload = case
        for solve in (optimal_throughput, worst_throughput):
            schedule = solve(rates, workload, contexts=2)
            assert all(f >= -1e-12 for f in schedule.fractions.values())
            assert sum(schedule.fractions.values()) == pytest.approx(1.0)


class TestInsensitiveCollapse:
    @given(
        st.floats(min_value=0.1, max_value=2.0),
        st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_insensitive_rates_scheduler_independent(self, rate_a, rate_b):
        """When per-job rates are coschedule-independent, optimal =
        worst = FCFS (nothing to exploit)."""
        table = {}
        rates_by_type = {"A": rate_a, "B": rate_b}
        for cos in multisets(("A", "B"), 2):
            present = {}
            for b in set(cos):
                present[b] = rates_by_type[b] * cos.count(b)
            table[cos] = present
        rates = TableRates(table)
        workload = Workload.of("A", "B")
        best = optimal_throughput(rates, workload, contexts=2)
        worst = worst_throughput(rates, workload, contexts=2)
        fcfs = fcfs_throughput(rates, workload, contexts=2)
        assert best.throughput == pytest.approx(worst.throughput, rel=1e-7)
        assert fcfs.throughput == pytest.approx(best.throughput, rel=1e-6)
