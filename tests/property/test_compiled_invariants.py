"""Compiled-engine layer invariants: fusion and batching in isolation.

The differential harness (``test_differential_engines.py``) pins the
compiled engine as a whole against the other two engines; these
properties pin its two internal shortcuts **individually**, so a
differential failure localizes to a layer:

* **event fusion** — a fused advance (zero-span syncs skipped,
  same-multiset refills reusing the coschedule entry) must equal the
  N explicit single steps it replaced.  ``engine_options={"fuse":
  False}`` forces the unfused stepping; every metric float and every
  pick must survive the toggle.
* **machine batching** — machines flushed in the same dirty round
  share resolved scheduling decisions keyed by their (capped) count
  vectors.  ``engine_options={"batch": False}`` re-resolves every
  machine independently; batched and per-machine stepping must agree
  exactly.

Both toggles are debug knobs on :func:`repro.queueing.compiled.
run_compiled` that exist precisely for these tests.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.queueing.cluster import Cluster
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.hotpath import saturated_jobs, synthetic_rates
from repro.queueing.schedulers import make_scheduler
from repro.core.workload import Workload
from repro.experiments.registry import to_jsonable

from tests.property.test_differential_engines import configs


def run_compiled_config(config, engine_options):
    """``run_config`` but always the compiled engine, with knobs."""
    contexts = config["contexts"]
    rates, names = synthetic_rates(
        n_types=config["n_types"], contexts=contexts
    )
    workload = Workload.of(*names)
    from repro.queueing.scenarios import get_scenario

    jobs = list(
        get_scenario(config["scenario"]).build_jobs(
            names,
            mean_rate=config["mean_rate"],
            seed=config["seed"],
            n_jobs=config["n_jobs"],
        )
    )
    dispatcher_kw = {}
    if config["dispatcher"] == "affinity":
        dispatcher_kw = dict(
            rates=rates, workload=workload, contexts=contexts
        )
    cluster = Cluster(
        rates,
        [
            make_scheduler(
                config["scheduler"], rates, contexts, workload=workload
            )
            for _ in range(config["n_machines"])
        ],
        make_dispatcher(config["dispatcher"], **dispatcher_kw),
    )
    picks: list[tuple[int, tuple[int, ...]]] = []
    metrics = cluster.run(
        jobs,
        engine="compiled",
        engine_options=engine_options,
        pick_log=picks,
        **config["knobs"],
    )
    return to_jsonable(metrics), picks, cluster.last_engine_stats


class TestFusionInvariant:
    @given(configs)
    @settings(max_examples=60, deadline=None)
    def test_fused_advance_equals_single_steps(self, config):
        fused = run_compiled_config(config, {"fuse": True})
        unfused = run_compiled_config(config, {"fuse": False})
        assert fused[0] == unfused[0], f"fusion changed metrics on {config}"
        assert fused[1] == unfused[1], f"fusion changed picks on {config}"
        # The toggle is real: the unfused run performs no fusion.
        assert unfused[2]["fused_syncs"] == 0
        assert unfused[2]["fused_entries"] == 0


class TestBatchingInvariant:
    @given(configs)
    @settings(max_examples=60, deadline=None)
    def test_batched_flush_equals_per_machine_stepping(self, config):
        batched = run_compiled_config(config, {"batch": True})
        independent = run_compiled_config(config, {"batch": False})
        assert batched[0] == independent[0], (
            f"batching changed metrics on {config}"
        )
        assert batched[1] == independent[1], (
            f"batching changed picks on {config}"
        )


def test_shortcuts_actually_engage_on_saturated_workload():
    """The knobs must gate real work: a saturated multi-machine MAXIT
    run fuses syncs and refills, and resolves its initial flush as one
    batch round over all machines."""
    rates, names = synthetic_rates()
    workload = Workload.of(*names)
    cluster = Cluster(
        rates,
        [
            make_scheduler("maxit", rates, 4, workload=workload)
            for _ in range(3)
        ],
        make_dispatcher("round_robin"),
    )
    cluster.run(
        saturated_jobs(names, 400),
        stop_when_fewer_than=12,
        keep_in_system=10,
        engine="compiled",
    )
    stats = cluster.last_engine_stats
    assert stats["fused_syncs"] > 0
    assert stats["fused_entries"] > 0
    assert stats["batch_rounds"] >= 1
    assert stats["max_batch"] == 3
    assert stats["probe_hits"] > stats["probe_builds"]
