"""Merge algebra of the streaming metrics, and split/merge exactness.

Two layers of properties lock the scale-out reduction down:

1. **Algebra** — :meth:`SystemMetrics.merge` is associative and
   commutative with the fresh accumulator as its identity, on *exact*
   internal state (not rendered floats).  This is what lets any
   partition of windows — shards, parallel partials, checkpointed
   prefixes — reduce in any grouping to one bit-identical result.
2. **Split/merge bit-identity** — pausing a real cluster run at
   arbitrary hypothesis-chosen event boundaries, detaching the metrics
   window per segment, and merging the windows reproduces the
   monolithic run's :class:`ClusterMetrics` payload bit for bit,
   along with the full scheduler pick sequence, on every engine.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.core.workload import Workload
from repro.microarch.rates import TableRates
from repro.queueing.cluster import Cluster, ClusterMetrics
from repro.queueing.dispatch import JoinShortestQueueDispatcher
from repro.queueing.scenarios import get_scenario
from repro.queueing.schedulers import make_scheduler
from repro.queueing.system import SystemMetrics


# ----------------------------------------------------------------------
# Layer 1: the merge algebra on randomly observed accumulators.
# ----------------------------------------------------------------------

_TYPES = ("A", "B", "C")

_interval = st.tuples(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    st.lists(st.sampled_from(_TYPES), min_size=0, max_size=3),
    st.integers(min_value=0, max_value=6),
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False),
)
_completion = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def metrics_windows(draw, max_windows: int = 3) -> list[SystemMetrics]:
    """Up to ``max_windows`` independently observed accumulators."""
    windows = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_windows))):
        metrics = SystemMetrics(coschedule_cap=draw(
            st.integers(min_value=1, max_value=8)
        ))
        for dt, running, in_system, work in draw(
            st.lists(_interval, min_size=0, max_size=8)
        ):
            metrics.observe_interval(
                dt, tuple(running), max(in_system, len(running)), work
            )
        for turnaround in draw(
            st.lists(_completion, min_size=0, max_size=4)
        ):
            metrics.observe_completion(turnaround)
        windows.append(metrics)
    return windows


@settings(max_examples=120, deadline=None)
@given(metrics_windows(max_windows=1))
def test_merge_identity(windows):
    """A fresh accumulator is the two-sided identity, exactly."""
    (metrics,) = windows
    identity = SystemMetrics(coschedule_cap=metrics.coschedule_cap)
    assert metrics.merge(identity) == metrics
    assert identity.merge(metrics) == metrics


@settings(max_examples=120, deadline=None)
@given(metrics_windows(max_windows=2))
def test_merge_commutative(windows):
    if len(windows) < 2:
        return
    a, b = windows[0], windows[1]
    assert a.merge(b) == b.merge(a)


@settings(max_examples=120, deadline=None)
@given(metrics_windows(max_windows=3))
def test_merge_associative(windows):
    if len(windows) < 3:
        return
    a, b, c = windows[0], windows[1], windows[2]
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@settings(max_examples=100, deadline=None)
@given(metrics_windows(max_windows=3))
def test_any_grouping_renders_identically(windows):
    """Rendered floats (not just internals) agree across groupings,
    including the JSON payload the golden harness diffs."""
    left = windows[0]
    for w in windows[1:]:
        left = left.merge(w)
    right = windows[-1]
    for w in reversed(windows[:-1]):
        right = w.merge(right)
    assert left == right
    assert left.to_jsonable() == right.to_jsonable()


@settings(max_examples=80, deadline=None)
@given(metrics_windows(max_windows=2))
def test_merge_never_drops_coschedule_keys(windows):
    """Unioned splits: overflow only ever *adds*; keys present in
    either window survive the merge even past the smaller cap."""
    if len(windows) < 2:
        return
    a, b = windows[0], windows[1]
    merged = a.merge(b)
    keys = set(a.time_by_coschedule) | set(b.time_by_coschedule)
    assert set(merged.time_by_coschedule) == keys
    assert merged.overflow_intervals == (
        a.overflow_intervals + b.overflow_intervals
    )
    assert merged.coschedule_cap == max(a.coschedule_cap, b.coschedule_cap)


@settings(max_examples=80, deadline=None)
@given(metrics_windows(max_windows=1))
def test_state_roundtrip_is_exact(windows):
    (metrics,) = windows
    assert SystemMetrics.from_state(metrics.to_state()) == metrics


# ----------------------------------------------------------------------
# Layer 2: splitting a real run at arbitrary boundaries.
# ----------------------------------------------------------------------

# The golden harness's frozen table (tests/golden/): three types, two
# contexts, symbiosis-sensitive mixed rates.
GOLDEN_RATES = TableRates(
    {
        ("A",): {"A": 1.0},
        ("B",): {"B": 0.7},
        ("C",): {"C": 0.5},
        ("A", "A"): {"A": 1.7},
        ("A", "B"): {"A": 0.85, "B": 0.6},
        ("A", "C"): {"A": 0.9, "C": 0.45},
        ("B", "B"): {"B": 1.15},
        ("B", "C"): {"B": 0.6, "C": 0.42},
        ("C", "C"): {"C": 0.8},
    }
)
GOLDEN_WORKLOAD = Workload.of("A", "B", "C")


def _golden_run(engine, boundaries):
    """One bursty golden-config run, paused at ``boundaries`` (possibly
    none), returning (merged metrics, pick log)."""
    scenario = get_scenario("bursty_mmpp")
    stream = scenario.build_jobs(
        GOLDEN_WORKLOAD.types, mean_rate=1.9, seed=11, n_jobs=150
    )
    cluster = Cluster(
        GOLDEN_RATES,
        [
            make_scheduler(
                "maxtp", GOLDEN_RATES, 2, workload=GOLDEN_WORKLOAD
            )
            for _ in range(2)
        ],
        JoinShortestQueueDispatcher(),
    )
    picks: list = []
    handle = cluster.start(stream, engine=engine, pick_log=picks)
    windows = []
    try:
        for boundary in boundaries:
            if handle.advance(pause_at=boundary):
                break
            windows.append(handle.take_window())
        else:
            handle.advance()
        windows.append(handle.take_window())
    finally:
        handle.close()
    return ClusterMetrics.reduce(windows), picks


@settings(max_examples=8, deadline=None)
@given(
    engine=st.sampled_from(["fast", "compiled"]),
    cuts=st.lists(
        st.floats(min_value=0.1, max_value=120.0, allow_nan=False),
        min_size=1,
        max_size=6,
    ),
)
def test_split_anywhere_matches_monolithic(engine, cuts):
    """Pausing at arbitrary instants and merging the windows is
    bit-identical to never pausing: same rendered payload, same pick
    sequence."""
    mono, mono_picks = _golden_run(engine, [])
    split, split_picks = _golden_run(engine, sorted(cuts))
    assert split_picks == mono_picks
    assert [m.to_jsonable() for m in split.per_machine] == [
        m.to_jsonable() for m in mono.per_machine
    ]
    assert math.isclose(
        split.throughput, mono.throughput, rel_tol=0.0, abs_tol=0.0
    )
