"""Three-way differential fuzz harness: legacy vs fast vs compiled.

This is the equivalence contract that makes engine rewrites cheap to
attempt and hard to get wrong: a seeded fuzzer draws random cluster
configurations — scenario, dispatcher, scheduler, machine count,
contexts, horizon/warmup/backlog knobs, and the arrival stream's seed
— runs each through **all engine variants** (the legacy string path,
the interned-type fast path, and the count-vector compiled engine on
both scoring backends), and asserts

* **bit-identical ClusterMetrics** — every float of every per-machine
  metric, compared through ``to_jsonable`` (exact equality, including
  the per-coschedule time-split dict keys); and
* **identical scheduler pick sequences** — each engine logs every
  scheduling decision as ``(machine_id, picked job ids in order)``;
  the logs must match element for element.  Order matters: the engine
  accumulates stepped work in running-set order, so a permuted pick
  that happened to finish the same jobs would still drift the floats.

Hypothesis drives the generation, so a failing draw **shrinks to a
minimal reproducing configuration** (fewest jobs, smallest cluster,
simplest knobs) and replays deterministically from the printed
blob/seed.  Locally the harness runs ``REPRO_DIFF_FUZZ_EXAMPLES``
configs (default 200 — the PR-6 acceptance budget); CI's required
``differential-fuzz`` job bounds the budget to stay ~30s.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.workload import Workload
from repro.experiments.registry import to_jsonable
from repro.queueing.cluster import Cluster
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.estimation import EstimationConfig
from repro.queueing.faults import FaultConfig
from repro.queueing.hotpath import synthetic_rates
from repro.queueing.scenarios import get_scenario
from repro.queueing.schedulers import make_scheduler

MAX_EXAMPLES = int(os.environ.get("REPRO_DIFF_FUZZ_EXAMPLES", "200"))

#: engine variants under differential test: (label, engine, backend).
ENGINE_VARIANTS = (
    ("legacy", "legacy", None),
    ("fast", "fast", None),
    ("compiled-tuples", "compiled", "tuples"),
    ("compiled-numpy", "compiled", "numpy"),
)

SCENARIOS = (
    "baseline_poisson",
    "bursty_mmpp",
    "heavy_tail",
    "diurnal_cycle",
    "mice_elephants",
    "batch_storms",
    "skewed_types",
    "saturated_backlog",
)

#: Fault-axis presets (None = the historical fault-free loop).  Each
#: named preset exercises a different slice of the fault layer; the
#: absolute time constants sit well inside the fuzzed runs' durations
#: so failures actually fire on most draws.
FAULT_PRESETS: dict[str, dict] = {
    "crashy": dict(
        mtbf=5.0, mttr=1.5, retry_budget=2, backoff_base=0.3,
        crash_policy="restart",
    ),
    "flaky": dict(
        degraded_mtbf=4.0, degraded_duration=1.0, degraded_factor=0.5,
        degraded_dispatch="allow",
    ),
    "chaos": dict(
        mtbf=6.0, mttr=1.0, degraded_mtbf=8.0, degraded_duration=1.5,
        correlated_mtbf=20.0, blast_fraction=0.5, drain_grace=0.3,
        crash_policy="resume_fraction", resume_fraction=0.5,
        retry_budget=1, backoff_base=0.2, shed_after=4.0,
    ),
}


def fault_config_from(config) -> FaultConfig | None:
    """The draw's fault config (seeded off the arrival seed so the
    failure schedule varies across draws but not across engines)."""
    preset = config.get("faults")
    if preset is None:
        return None
    return FaultConfig(seed=config["seed"] + 1, **FAULT_PRESETS[preset])


configs = st.fixed_dictionaries(
    {
        "scenario": st.sampled_from(SCENARIOS),
        "scheduler": st.sampled_from(
            ("fcfs", "maxit", "srpt", "maxtp", "ljf", "random")
        ),
        "dispatcher": st.sampled_from(("round_robin", "jsq", "affinity")),
        "n_machines": st.integers(min_value=1, max_value=3),
        "contexts": st.integers(min_value=2, max_value=4),
        "n_types": st.integers(min_value=3, max_value=5),
        "n_jobs": st.integers(min_value=1, max_value=60),
        "mean_rate": st.floats(min_value=0.5, max_value=8.0),
        "seed": st.integers(min_value=0, max_value=2**16),
        # Rate-source axis: estimated mode (zero noise, warm oracle
        # prior, frequent re-optimization rounds) must stay
        # bit-identical across every engine — the estimation layer's
        # two-memo plumbing is part of the equivalence contract.
        "rate_source": st.sampled_from(("oracle", "estimated")),
        # Fault axis: failure/repair processes must not break the
        # three-way equivalence — every engine calls the shared
        # FaultRuntime at the same iteration points, so crashes,
        # outages, degraded episodes, retries, and shedding land on
        # the same bits everywhere.
        "faults": st.sampled_from((None, "crashy", "flaky", "chaos")),
        "knobs": st.sampled_from(
            (
                {},
                {"warmup_time": 2.0},
                {"horizon": 6.0},
                {"horizon": 25.0, "warmup_time": 1.0},
                {"keep_in_system": 3, "stop_when_fewer_than": 2},
                {"keep_in_system": 8, "stop_when_fewer_than": 4},
            )
        ),
    }
)


def run_config(config, engine, backend, rate_source=None, faults="axis"):
    """One full cluster run; returns (metrics payload, pick log,
    fault stats).

    ``rate_source`` overrides the config's axis (defaulting to
    "oracle" for configs without one).  Estimated runs use zero noise,
    the warm oracle prior, and a small re-optimization interval, so
    many re-optimization rounds fire even on short streams.
    ``faults`` overrides the config's fault axis: pass a FaultConfig,
    ``None`` to force the fault-free loop, or leave the default to
    follow the draw's own axis.
    """
    contexts = config["contexts"]
    rates, names = synthetic_rates(
        n_types=config["n_types"], contexts=contexts
    )
    workload = Workload.of(*names)
    jobs = list(
        get_scenario(config["scenario"]).build_jobs(
            names,
            mean_rate=config["mean_rate"],
            seed=config["seed"],
            n_jobs=config["n_jobs"],
        )
    )
    dispatcher_kw = {}
    if config["dispatcher"] == "affinity":
        dispatcher_kw = dict(
            rates=rates, workload=workload, contexts=contexts
        )
    cluster = Cluster(
        rates,
        [
            make_scheduler(
                config["scheduler"], rates, contexts, workload=workload
            )
            for _ in range(config["n_machines"])
        ],
        make_dispatcher(config["dispatcher"], **dispatcher_kw),
    )
    if rate_source is None:
        rate_source = config.get("rate_source", "oracle")
    estimation = (
        EstimationConfig(noise=0.0, prior="oracle", reopt_observations=8)
        if rate_source == "estimated"
        else None
    )
    if faults == "axis":
        faults = fault_config_from(config)
    picks: list[tuple[int, tuple[int, ...]]] = []
    metrics = cluster.run(
        jobs,
        engine=engine,
        backend=backend,
        pick_log=picks,
        rate_source=rate_source,
        estimation=estimation,
        faults=faults,
        **config["knobs"],
    )
    return to_jsonable(metrics), picks, cluster.last_fault_stats


class TestLargeClockStall:
    """Regression: the million-job stall past clock 2^14.

    Above ``clock = 2**14`` a double's ulp (3.6e-12) exceeds the
    ``remaining <= 1e-12`` done-threshold, so a completion whose
    absolute event time quantizes can leave a residual that re-fires
    with ``clock + dt == clock``.  The compiled engine's zero-span
    fusion used to swallow that positive exact span and spin forever
    (observed at ~950k jobs into a 64-machine run).  Shifting a small
    stream past the boundary reproduces it in milliseconds: with the
    fix, every engine finishes within a normal event budget and all
    stay bit-identical through the pathological completions.
    """

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_engines_finish_and_agree_past_two_pow_14(self, seed):
        def shifted_jobs():
            jobs = list(
                get_scenario("baseline_poisson").build_jobs(
                    ("A", "B", "C"), mean_rate=1.6, seed=seed, n_jobs=400
                )
            )
            for job in jobs:
                job.arrival_time += 16384.0
            return jobs

        rates, names = synthetic_rates(n_types=3, contexts=2)
        workload = Workload.of(*names)

        def run_engine(engine, backend):
            cluster = Cluster(
                rates,
                [
                    make_scheduler(
                        "maxtp", rates, 2, workload=workload
                    )
                    for _ in range(2)
                ],
                make_dispatcher("jsq"),
            )
            picks: list = []
            metrics = cluster.run(
                shifted_jobs(),
                engine=engine,
                backend=backend,
                pick_log=picks,
                max_events=12_000,
            )
            return to_jsonable(metrics), picks

        reference = run_engine(*ENGINE_VARIANTS[0][1:])
        for label, engine, backend in ENGINE_VARIANTS[1:]:
            assert run_engine(engine, backend) == reference, (
                f"{label} diverges past clock 2**14 (seed {seed})"
            )


class TestDifferentialEngines:
    @given(configs)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_engines_bit_identical(self, config):
        reference_label, engine, backend = ENGINE_VARIANTS[0]
        reference_metrics, reference_picks, reference_stats = run_config(
            config, engine, backend
        )
        for label, engine, backend in ENGINE_VARIANTS[1:]:
            metrics, picks, stats = run_config(config, engine, backend)
            assert metrics == reference_metrics, (
                f"{label} metrics diverge from {reference_label} "
                f"on {config}"
            )
            assert picks == reference_picks, (
                f"{label} pick sequence diverges from {reference_label} "
                f"on {config}"
            )
            assert stats == reference_stats, (
                f"{label} fault stats diverge from {reference_label} "
                f"on {config}"
            )


class TestZeroFaultIdentityFuzz:
    """A quiescent FaultConfig must not move a bit on any draw.

    The fault-aware loop branches everywhere — eligibility lists,
    wake computation, retry admission — so this class pins the
    structural claim that all of it is inert when no fault process is
    enabled: same metrics, same picks, on random configurations.
    """

    @given(configs)
    @settings(max_examples=max(25, MAX_EXAMPLES // 4), deadline=None)
    def test_inactive_config_matches_fault_free(self, config):
        inert = FaultConfig(seed=config["seed"] + 1)
        for label, engine, backend in (
            ENGINE_VARIANTS[1],   # fast
            ENGINE_VARIANTS[2],   # compiled-tuples
        ):
            bare_metrics, bare_picks, _ = run_config(
                config, engine, backend, faults=None
            )
            gated_metrics, gated_picks, stats = run_config(
                config, engine, backend, faults=inert
            )
            assert gated_metrics == bare_metrics, (
                f"{label}: an inactive FaultConfig changed the metrics "
                f"on {config}"
            )
            assert gated_picks == bare_picks, (
                f"{label}: an inactive FaultConfig changed the picks "
                f"on {config}"
            )
            assert stats["crashes"] == 0 and stats["availability"] == 1.0


class TestEstimatedOracleIdentity:
    """The zero-noise control: estimation must cost nothing.

    With ``noise=0`` and the warm oracle prior, every EMA update
    collapses to the true rate (``est + alpha*(true - est)`` is exact
    when ``est == true``), so a re-optimization round re-solves
    against the same numbers and every policy decision — pick
    sequence and ClusterMetrics alike — must be bit-identical to the
    oracle run, on every engine variant.  This pins the whole
    estimated-mode plumbing (observation wiring, epoch publishing,
    the policy-memo indirection) as a pure pass-through at zero
    noise.
    """

    POLICIES = (
        ("maxit", "round_robin"),
        ("srpt", "jsq"),
        ("maxit", "affinity"),
        ("maxtp", "round_robin"),
    )

    @pytest.mark.parametrize("scheduler,dispatcher", POLICIES)
    @pytest.mark.parametrize(
        "label,engine,backend", ENGINE_VARIANTS,
        ids=[v[0] for v in ENGINE_VARIANTS],
    )
    def test_estimated_matches_oracle(
        self, scheduler, dispatcher, label, engine, backend
    ):
        config = {
            "scenario": "skewed_types",
            "scheduler": scheduler,
            "dispatcher": dispatcher,
            "n_machines": 2,
            "contexts": 3,
            "n_types": 4,
            "n_jobs": 48,
            "mean_rate": 3.0,
            "seed": 1234,
            "knobs": {},
        }
        oracle = run_config(config, engine, backend, rate_source="oracle")
        estimated = run_config(
            config, engine, backend, rate_source="estimated"
        )
        assert estimated == oracle, (
            f"zero-noise estimated {scheduler}/{dispatcher} diverges "
            f"from oracle on {label}"
        )
