"""Property-based tests of the LP expression algebra.

The modeling layer's arithmetic must behave like real linear algebra:
evaluation is linear, addition commutes/associates, scalar
multiplication distributes.  Random expressions over a fixed variable
pool exercise this.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.lp.model import LinearExpr, Model

NAMES = ("x", "y", "z")

scalars = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
assignments = st.fixed_dictionaries({name: scalars for name in NAMES})


def fresh_variables():
    model = Model()
    return {name: model.add_variable(name) for name in NAMES}


@st.composite
def expressions(draw):
    """A random affine expression over the shared variable pool."""
    variables = fresh_variables()
    coefficients = {
        variables[name]: draw(scalars)
        for name in draw(
            st.lists(st.sampled_from(NAMES), unique=True, max_size=3)
        )
    }
    return LinearExpr(coefficients, draw(scalars))


class TestExpressionAlgebra:
    @given(expressions(), expressions(), assignments)
    def test_addition_is_pointwise(self, a, b, values):
        combined = a + b
        assert combined.evaluate(values) == pytest.approx(
            a.evaluate(values) + b.evaluate(values), rel=1e-9, abs=1e-9
        )

    @given(expressions(), expressions(), assignments)
    def test_subtraction_is_pointwise(self, a, b, values):
        combined = a - b
        assert combined.evaluate(values) == pytest.approx(
            a.evaluate(values) - b.evaluate(values), rel=1e-9, abs=1e-9
        )

    @given(expressions(), scalars, assignments)
    def test_scalar_multiplication(self, a, k, values):
        scaled = k * a
        assert scaled.evaluate(values) == pytest.approx(
            k * a.evaluate(values), rel=1e-9, abs=1e-6
        )

    @given(expressions(), assignments)
    def test_negation(self, a, values):
        assert (-a).evaluate(values) == pytest.approx(
            -a.evaluate(values), rel=1e-9, abs=1e-9
        )

    @given(expressions(), expressions(), assignments)
    def test_addition_commutes(self, a, b, values):
        assert (a + b).evaluate(values) == pytest.approx(
            (b + a).evaluate(values), rel=1e-9, abs=1e-9
        )

    @given(expressions(), scalars, assignments)
    def test_constant_shift(self, a, c, values):
        assert (a + c).evaluate(values) == pytest.approx(
            a.evaluate(values) + c, rel=1e-9, abs=1e-9
        )

    @given(expressions())
    def test_copy_is_independent(self, a):
        duplicate = a.copy()
        duplicate.constant += 1.0
        assert duplicate.constant != a.constant

    @given(expressions(), assignments)
    def test_zero_scale_collapses(self, a, values):
        assert (0.0 * a).evaluate(values) == pytest.approx(0.0, abs=1e-12)
