"""Shared fixtures.

Rate tables are session-scoped: coschedule simulations are cached inside
each table, so the cost of simulating a multiset is paid once per test
session no matter how many tests touch it.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden-trace expectations under "
        "tests/golden/ instead of checking against them",
    )

from repro.core.workload import Workload
from repro.microarch.config import quad_core_machine, smt_machine
from repro.microarch.rates import RateTable, TableRates

FOUR_TYPES = ("bzip2", "hmmer", "libquantum", "mcf")


@pytest.fixture(scope="session")
def smt_rates() -> RateTable:
    """Rate table for the default SMT machine (lazy, cached)."""
    return RateTable(smt_machine())


@pytest.fixture(scope="session")
def quad_rates() -> RateTable:
    """Rate table for the default quad-core machine (lazy, cached)."""
    return RateTable(quad_core_machine())


@pytest.fixture(scope="session")
def mixed_workload() -> Workload:
    """A diverse 4-type workload: two compute-ish, two memory-ish."""
    return Workload.of(*FOUR_TYPES)


@pytest.fixture(scope="session")
def compute_workload() -> Workload:
    """A compute-heavy workload (near the SMT linear bottleneck)."""
    return Workload.of("calculix", "h264ref", "hmmer", "tonto")


@pytest.fixture()
def synthetic_rates() -> TableRates:
    """A tiny hand-built rate table: 2 types, 2 contexts.

    Type A is fast (rate 1.0 alone-normalized), type B slow; the mixed
    coschedule is the best one.  Used by LP/FCFS unit tests where the
    exact optimum is computable by hand.
    """
    return TableRates(
        {
            ("A", "A"): {"A": 1.6},
            ("A", "B"): {"A": 0.9, "B": 0.5},
            ("B", "B"): {"B": 0.8},
        }
    )


@pytest.fixture()
def insensitive_rates() -> TableRates:
    """Rates where every job is fully insensitive to its co-runners.

    Per-job rates: A = 0.8, B = 0.4, regardless of coschedule.  Any
    scheduler achieves the same average throughput on this table.
    """
    return TableRates(
        {
            ("A", "A"): {"A": 1.6},
            ("A", "B"): {"A": 0.8, "B": 0.4},
            ("B", "B"): {"B": 0.8},
        }
    )
