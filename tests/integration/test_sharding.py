"""Sharded execution and checkpoint/restore, end to end.

The contract under test: shard boundaries and checkpoints choose only
where a run *pauses* — never what it computes.  A sharded run, a
checkpointed-then-killed-then-resumed run (in a fresh process), and the
plain monolithic run must all produce bit-identical
:class:`ClusterMetrics` and identical scheduler pick sequences, on
every engine.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.workload import Workload
from repro.errors import SimulationError
from repro.experiments.registry import to_jsonable
from repro.microarch.rates import TableRates
from repro.queueing.checkpoint import CHECKPOINT_FORMAT, load
from repro.queueing.cluster import Cluster
from repro.queueing.dispatch import JoinShortestQueueDispatcher
from repro.queueing.scenarios import get_scenario
from repro.queueing.schedulers import make_scheduler
from repro.queueing.sharding import (
    CHECKPOINT_NAME,
    parallel_map,
    plan_boundaries,
    run_sharded,
)

RATES = TableRates(
    {
        ("A",): {"A": 1.0},
        ("B",): {"B": 0.7},
        ("C",): {"C": 0.5},
        ("A", "A"): {"A": 1.7},
        ("A", "B"): {"A": 0.85, "B": 0.6},
        ("A", "C"): {"A": 0.9, "C": 0.45},
        ("B", "B"): {"B": 1.15},
        ("B", "C"): {"B": 0.6, "C": 0.42},
        ("C", "C"): {"C": 0.8},
    }
)
WORKLOAD = Workload.of("A", "B", "C")
N_JOBS = 250
MEAN_RATE = 1.8
SEED = 23


def build_cluster() -> Cluster:
    return Cluster(
        RATES,
        [
            make_scheduler("maxtp", RATES, 2, workload=WORKLOAD)
            for _ in range(2)
        ],
        JoinShortestQueueDispatcher(),
    )


def build_stream():
    return get_scenario("bursty_mmpp").build_jobs(
        WORKLOAD.types, mean_rate=MEAN_RATE, seed=SEED, n_jobs=N_JOBS
    )


def payload_of(metrics) -> list:
    # registry.to_jsonable flattens the tuple coschedule keys, so the
    # payload survives json.dumps in the subprocess drivers unchanged.
    return [to_jsonable(m.to_jsonable()) for m in metrics.per_machine]


class TestShardedEqualsMonolithic:
    @pytest.mark.parametrize("engine", ["legacy", "fast", "compiled"])
    @pytest.mark.parametrize("n_shards", [2, 7])
    def test_bit_identical_metrics_and_picks(self, engine, n_shards):
        mono_picks: list = []
        mono = build_cluster().run(
            build_stream(), engine=engine, pick_log=mono_picks
        )
        sharded_picks: list = []
        sharded = run_sharded(
            build_cluster(),
            build_stream,
            boundaries=plan_boundaries(n_shards, N_JOBS / MEAN_RATE),
            engine=engine,
            pick_log=sharded_picks,
        )
        assert sharded.resumed_from_shard is None
        assert sharded_picks == mono_picks
        assert payload_of(sharded.metrics) == payload_of(mono)

    def test_completed_checkpoint_is_removed(self, tmp_path):
        out = run_sharded(
            build_cluster(),
            build_stream,
            boundaries=plan_boundaries(4, N_JOBS / MEAN_RATE),
            checkpoint_dir=tmp_path,
            engine="fast",
        )
        assert out.shards_run == 4
        assert not (tmp_path / CHECKPOINT_NAME).exists()


# Driver executed in fresh subprocesses: "mono" runs the plain cluster,
# "sharded" runs the checkpointing sharded path (killed mid-run by
# REPRO_SHARD_DIE_AFTER on the first attempt, resumed by the second).
_DRIVER = """
import json, sys
sys.path.insert(0, {src!r})
from test_sharding_helpers import *

mode, engine = sys.argv[1], sys.argv[2]
if mode == "mono":
    metrics = build_cluster().run(build_stream(), engine=engine)
    resumed = None
else:
    out = run_sharded(
        build_cluster(),
        build_stream,
        boundaries=plan_boundaries(5, N_JOBS / MEAN_RATE),
        checkpoint_dir=sys.argv[3],
        engine=engine,
    )
    metrics, resumed = out.metrics, out.resumed_from_shard
print(json.dumps({{"resumed": resumed, "metrics": payload_of(metrics)}}))
"""


def _run_driver(tmp_path: Path, *args: str, die_after: str | None = None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parents[2] / "src"
    ) + os.pathsep + str(tmp_path)
    env.pop("REPRO_SHARD_DIE_AFTER", None)
    if die_after is not None:
        env["REPRO_SHARD_DIE_AFTER"] = die_after
    return subprocess.run(
        [sys.executable, str(tmp_path / "driver.py"), *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.fixture()
def driver_dir(tmp_path: Path) -> Path:
    """Materialize the driver plus this module's builders as scripts."""
    helpers = (
        "import sys\n"
        f"sys.path.insert(0, {str(Path(__file__).parent)!r})\n"
        "from test_sharding import (\n"
        "    N_JOBS, MEAN_RATE, build_cluster, build_stream, payload_of,\n"
        ")\n"
        "from repro.queueing.sharding import plan_boundaries, run_sharded\n"
    )
    (tmp_path / "test_sharding_helpers.py").write_text(helpers)
    (tmp_path / "driver.py").write_text(
        _DRIVER.format(
            src=str(Path(__file__).resolve().parents[2] / "src")
        )
    )
    return tmp_path


class TestKillAndResume:
    @pytest.mark.parametrize("engine", ["fast", "compiled"])
    def test_killed_run_resumes_bit_identically(self, driver_dir, engine):
        """Hard-kill after shard 1's checkpoint (fresh process), resume
        in another fresh process: metrics match the monolithic run bit
        for bit and the checkpoint is consumed."""
        ckpt = driver_dir / "ckpt"
        ckpt.mkdir()

        mono = _run_driver(driver_dir, "mono", engine)
        assert mono.returncode == 0, mono.stderr

        killed = _run_driver(
            driver_dir, "sharded", engine, str(ckpt), die_after="1"
        )
        assert killed.returncode == 42, killed.stderr
        checkpoint = ckpt / CHECKPOINT_NAME
        assert checkpoint.exists()
        assert load(checkpoint)["format"] == CHECKPOINT_FORMAT

        resumed = _run_driver(driver_dir, "sharded", engine, str(ckpt))
        assert resumed.returncode == 0, resumed.stderr
        mono_out = json.loads(mono.stdout)
        resumed_out = json.loads(resumed.stdout)
        assert resumed_out["resumed"] == 1
        assert resumed_out["metrics"] == mono_out["metrics"]
        assert not checkpoint.exists()


class TestCheckpointValidation:
    def test_unknown_format_is_rejected(self, tmp_path):
        path = tmp_path / CHECKPOINT_NAME
        path.write_text(json.dumps({"format": "repro-checkpoint-v999"}))
        with pytest.raises(SimulationError, match="unsupported checkpoint"):
            load(path)

    def test_boundary_plan_mismatch(self, tmp_path):
        from repro.queueing.checkpoint import capture, save

        boundaries = plan_boundaries(5, N_JOBS / MEAN_RATE)
        handle = build_cluster().start(build_stream(), engine="fast")
        assert not handle.advance(pause_at=boundaries[0])
        save(
            tmp_path / CHECKPOINT_NAME,
            capture(
                handle,
                extra={
                    "shard": 0,
                    "boundaries": boundaries,
                    "accumulated": handle.take_window().to_state(),
                },
            ),
        )
        handle.close()
        with pytest.raises(SimulationError, match="different shard"):
            run_sharded(
                build_cluster(),
                build_stream,
                boundaries=plan_boundaries(3, N_JOBS / MEAN_RATE),
                checkpoint_dir=tmp_path,
                engine="fast",
            )

    def test_capture_requires_a_paused_run(self):
        from repro.queueing.checkpoint import capture

        handle = build_cluster().start(build_stream(), engine="fast")
        with pytest.raises(SimulationError, match="paused run"):
            capture(handle)
        handle.close()

    def test_restore_rejects_the_wrong_stream(self, tmp_path):
        from repro.queueing.checkpoint import capture, restore

        handle = build_cluster().start(build_stream(), engine="fast")
        assert not handle.advance(pause_at=20.0)
        payload = capture(handle)
        handle.close()
        wrong = get_scenario("bursty_mmpp").build_jobs(
            WORKLOAD.types, mean_rate=MEAN_RATE, seed=SEED + 1, n_jobs=N_JOBS
        )
        with pytest.raises(SimulationError, match="stream"):
            restore(build_cluster(), wrong, payload)


class TestPlanBoundaries:
    def test_even_spacing(self):
        assert plan_boundaries(4, 100.0) == [25.0, 50.0, 75.0]

    def test_single_shard_has_no_boundaries(self):
        assert plan_boundaries(1, 100.0) == []

    def test_rejects_bad_inputs(self):
        with pytest.raises(SimulationError):
            plan_boundaries(0, 100.0)
        with pytest.raises(SimulationError):
            plan_boundaries(3, 0.0)

    def test_run_sharded_rejects_unsorted_boundaries(self):
        with pytest.raises(SimulationError, match="non-decreasing"):
            run_sharded(
                build_cluster(),
                build_stream,
                boundaries=[50.0, 10.0],
                engine="fast",
            )


class TestParallelMap:
    def test_serial_fallback_preserves_order(self):
        assert parallel_map(abs, [-3, 2, -1], jobs=1) == [3, 2, 1]

    def test_process_pool_preserves_order(self):
        assert parallel_map(abs, [-3, 2, -1, -7], jobs=2) == [3, 2, 1, 7]
