"""Integration: the cluster experiment validates Section III-D end to end."""

from __future__ import annotations

import pytest

from repro.core.workload import Workload
from repro.experiments import cluster_exp, registry
from repro.experiments.cluster_exp import (
    balanced_saturated_jobs,
    compute_cluster,
)
from repro.microarch.rates import TableRates
from repro.util.multiset import multisets


def symbiotic_table() -> TableRates:
    """Two types, two contexts; mixing A with B is the fast coschedule."""
    table = {}
    per_job = {"A": 1.0, "B": 0.6}
    for size in (1, 2):
        for cos in multisets(("A", "B"), size):
            interference = 0.7 if len(set(cos)) == 1 and size == 2 else 1.0
            table[cos] = {
                b: per_job[b] * cos.count(b) * interference
                for b in set(cos)
            }
    return TableRates(table)


class TestBalancedJobs:
    def test_equal_work_per_type(self):
        jobs = balanced_saturated_jobs(("A", "B"), 12, seed=3)
        assert len(jobs) == 12
        assert sum(1 for j in jobs if j.job_type == "A") == 6
        assert all(j.size == 1.0 and j.arrival_time == 0.0 for j in jobs)

    def test_requires_divisible_count(self):
        with pytest.raises(ValueError, match="divisible"):
            balanced_saturated_jobs(("A", "B"), 7)


class TestComputeCluster:
    def test_reduction_holds_on_synthetic_rates(self):
        rates = symbiotic_table()
        comparisons = compute_cluster(
            rates,
            [Workload.of("A", "B")],
            n_machines=3,
            scheduler="maxtp",
            jobs_per_machine=200,
            backlog_per_machine=8,
            contexts=2,
        )
        (comparison,) = comparisons
        # The analytic reduction: joint LP == M x single-machine LP.
        assert comparison.joint_lp_throughput == pytest.approx(
            comparison.reduced_lp_throughput, rel=1e-7
        )
        # The dynamic reduction: the simulated cluster matches both the
        # independent machines and the LP optimum.
        assert comparison.within_tolerance
        assert comparison.cluster_vs_independent == pytest.approx(
            1.0, abs=comparison.tolerance
        )
        assert comparison.cluster_vs_joint_lp == pytest.approx(
            1.0, abs=comparison.tolerance
        )

    def test_render_reports_verdict(self):
        rates = symbiotic_table()
        comparisons = compute_cluster(
            rates,
            [Workload.of("A", "B")],
            n_machines=2,
            jobs_per_machine=100,
            backlog_per_machine=6,
            contexts=2,
        )
        text = cluster_exp.render(comparisons)
        assert "joint LP" in text
        assert "Section III-D reduction, dynamically" in text

    def test_render_handles_empty(self):
        assert "no workloads" in cluster_exp.render([])


class TestRegistryWiring:
    def test_registered(self):
        experiment = registry.get("cluster_exp")
        assert experiment.kind == "analysis"
        assert "III-D" in experiment.title

    def test_registry_run_on_shared_context(self, context):
        """The registered run() works on the session context (tiny
        quick-mode sizing keeps this cheap)."""
        options = registry.RunOptions(max_workloads=1, seed=0, quick=True)
        comparisons = registry.get("cluster_exp").run(context, options)
        assert len(comparisons) == 1
        assert comparisons[0].n_machines == 3
        text = cluster_exp.render(comparisons)
        assert "1/1" in text
