"""Every driver's render() must produce the paper-style report text."""

from __future__ import annotations

import pytest

from repro.experiments import (
    fairness_cf,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    makespan_exp,
    ntypes,
    table1,
    table2,
    units_exp,
)
from repro.experiments.common import sample_workloads


@pytest.fixture(scope="module")
def tiny(context):
    """A 6-workload slice of the session context."""
    workloads = sample_workloads(context.workloads, 6, seed=23)
    return context, workloads


class TestRenders:
    def test_table1(self, tiny):
        context, _ = tiny
        text = table1.render(table1.compute_table1(context))
        assert "benchmark" in text and "mcf" in text

    def test_figure1_has_table_and_bars(self, tiny):
        context, workloads = tiny
        bars, _ = figure1.compute_figure1(
            context.smt_rates, workloads, config="smt"
        )
        text = figure1.render([bars])
        assert "average TP" in text
        assert "#" in text  # bar chart present

    def test_figure2_has_scatter(self, tiny):
        context, workloads = tiny
        series = figure2.compute_figure2(
            context.smt_rates, workloads, config="smt"
        )
        text = figure2.render([series])
        assert "slope" in text
        assert "FCFS vs worst" in text  # scatter axis caption
        assert "o" in text

    def test_figure3(self, tiny):
        context, workloads = tiny
        series = figure3.compute_figure3(
            context.smt_rates, workloads, config="smt"
        )
        text = figure3.render([series])
        assert "corr" in text

    def test_table2(self, tiny):
        context, workloads = tiny
        rows = table2.compute_table2(
            context.smt_rates, workloads, config="smt"
        )
        text = table2.render(rows)
        assert "heterogeneity" in text
        assert "frac optimal" in text

    def test_figure4(self):
        text = figure4.render(
            figure4.compute_example(), figure4.compute_curves(n_points=9)
        )
        assert "16% turnaround reduction" in text

    def test_figure5(self, tiny):
        context, workloads = tiny
        cells = figure5.compute_figure5(
            context.smt_rates,
            workloads[:2],
            loads=(0.8,),
            n_jobs=1_500,
        )
        text = figure5.render(cells)
        assert "turnaround" in text and "maxtp" in text

    def test_figure6(self, tiny):
        context, workloads = tiny
        points = figure6.compute_figure6(
            context.smt_rates, workloads[:2], n_jobs=1_200
        )
        text = figure6.render(points)
        assert "LP max" in text and "means vs FCFS" in text

    def test_ntypes(self, tiny):
        context, _ = tiny
        points = ntypes.compute_ntypes(
            context.smt_rates, n_values=(2, 4), max_workloads_per_n=5
        )
        text = ntypes.render(points)
        assert "mean optimal gain" in text

    def test_fairness(self, tiny):
        context, workloads = tiny
        outcomes = fairness_cf.compute_fairness_cf(
            context.smt_rates, workloads[:3]
        )
        text = fairness_cf.render(outcomes)
        assert "hetero-coschedule time" in text

    def test_makespan(self, tiny):
        context, workloads = tiny
        cells = makespan_exp.compute_makespan(
            context.smt_rates, workloads[:2], set_sizes=(8,), seeds=(0,)
        )
        text = makespan_exp.render(cells)
        assert "drain fraction" in text

    def test_units(self, tiny):
        context, workloads = tiny
        comparisons = units_exp.compute_units(
            context.smt_rates, workloads[:2]
        )
        text = units_exp.render(comparisons)
        assert "unit-independent" in text or "weighted" in text
