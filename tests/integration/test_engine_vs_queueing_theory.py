"""Engine-vs-theory validation: the DES must reproduce M/M/K results.

With coschedule-independent unit rates, exponential job sizes, and
Poisson arrivals, our discrete-event system *is* an M/M/K queue, so the
measured mean turnaround, utilization, and empty fraction must match
the Erlang formulas.  This pins the engine's clock arithmetic, queue
handling, and metric accounting to closed-form ground truth.
"""

from __future__ import annotations

import pytest

from repro.core.workload import Workload
from repro.microarch.rates import TableRates
from repro.queueing.arrivals import poisson_arrivals
from repro.queueing.engine import run_system
from repro.queueing.mmk import MMKQueue
from repro.queueing.schedulers import FcfsScheduler
from repro.util.multiset import multisets

K = 4
TYPES = ("A", "B")


def unit_rate_table() -> TableRates:
    """Every job always progresses at rate 1 (service rate mu = 1)."""
    table = {}
    for size in range(1, K + 1):
        for cos in multisets(TYPES, size):
            table[cos] = {b: float(cos.count(b)) for b in set(cos)}
    return TableRates(table)


@pytest.mark.parametrize("load", [0.5, 0.875])
def test_engine_matches_erlang(load):
    rates = unit_rate_table()
    arrival_rate = load * K
    workload = Workload.of(*TYPES)
    arrivals = poisson_arrivals(
        workload.types,
        rate=arrival_rate,
        n_jobs=60_000,
        mean_size=1.0,
        seed=123,
    )
    warmup = 2_000 / arrival_rate
    metrics = run_system(
        rates, FcfsScheduler(rates, K), arrivals, warmup_time=warmup
    )
    theory = MMKQueue(arrival_rate=arrival_rate, service_rate=1.0, servers=K)

    assert metrics.mean_turnaround == pytest.approx(
        theory.mean_turnaround, rel=0.06
    )
    assert metrics.utilization == pytest.approx(
        theory.offered_load, rel=0.03
    )
    assert metrics.empty_fraction == pytest.approx(
        theory.empty_probability, abs=0.02
    )
