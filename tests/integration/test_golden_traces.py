"""Golden-trace regression harness for the cluster simulator.

``tests/golden/`` commits, for every (scenario, dispatcher) pair, a
small JSON workload trace plus the exact
:class:`~repro.queueing.cluster.ClusterMetrics` the engine produced on
it.  Two locks per pair:

* **generator lock** — rebuilding the scenario's stream from its
  pinned seed must reproduce the committed trace bit for bit (any
  drift in the arrival processes, size laws, or RNG stream derivation
  fails here);
* **engine lock** — running the *committed* trace through the cluster
  simulator must reproduce the committed metrics (any drift in the
  event loop, schedulers, or dispatch policies fails here, with a
  per-field diff naming exactly what moved).  The lock is parametrized
  over engines: every committed trace replays through both the fast
  path and the count-vector compiled engine (``engine="compiled"``)
  against the *same* expectation file — bit-identity across engines is
  part of the contract, not a separate suite.

Two extra goldens (``hotpath_saturated_{maxit,srpt}.json``) pin the
saturated hotpath benchmark workloads at reduced size on their own
frozen synthetic rate table, so the perf-trajectory workloads have
regression coverage independent of wall-clock gates.

The runs use a frozen synthetic rate table defined below, NOT the
microarch model — the harness pins the queueing/dispatch stack in
isolation, so evolving the simulator that *feeds* it rates never
churns these files.

Refreshing after an intentional engine change::

    python -m pytest tests/integration/test_golden_traces.py \
        --update-golden -q

then commit the rewritten ``tests/golden/*.json`` and explain the
drift in the PR description.  The ``--update-golden`` run still
executes every pair (regenerate + simulate), so a crash-level
regression cannot silently produce fresh goldens.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.experiments.registry import to_jsonable
from repro.microarch.rates import TableRates
from repro.queueing.cluster import Cluster, ClusterMetrics, run_cluster
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.faults import FaultConfig
from repro.queueing.hotpath import saturated_jobs, synthetic_rates
from repro.queueing.job import Job
from repro.queueing.scenarios import get_scenario, scenario_names
from repro.queueing.schedulers import make_scheduler
from repro.queueing.trace import jobs_from_trace, trace_from_jobs

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

#: Frozen 3-type / 2-context rate table with real symbiosis structure:
#: mixed pairs beat same-type pairs, and C is the slow memory-bound
#: type.  Changing these values invalidates every golden file — don't.
GOLDEN_RATES = TableRates(
    {
        ("A",): {"A": 1.0},
        ("B",): {"B": 0.9},
        ("C",): {"C": 0.6},
        ("A", "A"): {"A": 1.5},
        ("B", "B"): {"B": 1.2},
        ("C", "C"): {"C": 0.7},
        ("A", "B"): {"A": 0.95, "B": 0.85},
        ("A", "C"): {"A": 0.9, "C": 0.55},
        ("B", "C"): {"B": 0.8, "C": 0.5},
    }
)
GOLDEN_WORKLOAD = Workload.of("A", "B", "C")
GOLDEN_CONTEXTS = 2
GOLDEN_MACHINES = 2
GOLDEN_JOBS = 60
GOLDEN_SEED = 0
DISPATCHERS = ("round_robin", "jsq", "affinity")
#: Relative tolerance for the engine lock: loose enough for libm noise
#: across platforms, tight enough that a single mis-stepped event (one
#: job, one interval) is far outside it.
REL_TOL = 1e-9

PAIRS = [
    (scenario, dispatcher)
    for scenario in scenario_names()
    for dispatcher in DISPATCHERS
]
#: Engines the committed expectations are replayed through — every
#: golden passes unchanged on both (bit-identity across engines).
ENGINES = ("fast", "compiled")


def golden_path(scenario: str, dispatcher: str) -> Path:
    return GOLDEN_DIR / f"{scenario}__{dispatcher}.json"


def golden_mean_rate(scenario_name: str) -> float:
    """Offered rate on the frozen table (recomputed only on update)."""
    scenario = get_scenario(scenario_name)
    if scenario.saturated:
        return 0.0
    capacity = GOLDEN_MACHINES * optimal_throughput(
        GOLDEN_RATES, GOLDEN_WORKLOAD, contexts=GOLDEN_CONTEXTS
    ).throughput
    return scenario.load * capacity / scenario.mean_size


def build_golden_stream(scenario_name: str, mean_rate: float) -> list[Job]:
    return list(
        get_scenario(scenario_name).build_jobs(
            GOLDEN_WORKLOAD.types,
            mean_rate=mean_rate,
            seed=GOLDEN_SEED,
            n_jobs=GOLDEN_JOBS,
        )
    )


def run_golden_trace(
    jobs: list[Job],
    scenario_name: str,
    dispatcher: str,
    engine: str | None = None,
) -> ClusterMetrics:
    """The frozen run configuration every golden file was made with."""
    scenario = get_scenario(scenario_name)
    schedulers = [
        make_scheduler(
            "maxtp", GOLDEN_RATES, GOLDEN_CONTEXTS,
            workload=GOLDEN_WORKLOAD,
        )
        for _ in range(GOLDEN_MACHINES)
    ]
    return run_cluster(
        GOLDEN_RATES,
        schedulers,
        make_dispatcher(
            dispatcher,
            rates=GOLDEN_RATES,
            workload=GOLDEN_WORKLOAD,
            contexts=GOLDEN_CONTEXTS,
        ),
        jobs,
        stop_when_fewer_than=(
            GOLDEN_MACHINES * GOLDEN_CONTEXTS
            if scenario.saturated
            else None
        ),
        keep_in_system=(
            scenario.backlog_per_machine if scenario.saturated else None
        ),
        engine=engine,
    )


def diff_payload(
    expected: object, actual: object, path: str = ""
) -> list[str]:
    """Human-readable recursive diff of two JSON-able payloads."""
    lines: list[str] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            where = f"{path}.{key}" if path else str(key)
            if key not in expected:
                lines.append(f"  {where}: unexpected new entry {actual[key]!r}")
            elif key not in actual:
                lines.append(f"  {where}: missing (expected {expected[key]!r})")
            else:
                lines.extend(diff_payload(expected[key], actual[key], where))
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            lines.append(
                f"  {path}: length {len(actual)} != expected {len(expected)}"
            )
        for i, (e, a) in enumerate(zip(expected, actual)):
            lines.extend(diff_payload(e, a, f"{path}[{i}]"))
    elif isinstance(expected, float) and isinstance(actual, (int, float)):
        scale = max(abs(expected), abs(actual), 1e-300)
        if abs(expected - actual) / scale > REL_TOL:
            lines.append(
                f"  {path}: {actual!r} != expected {expected!r} "
                f"(rel err {abs(expected - actual) / scale:.3e})"
            )
    elif expected != actual:
        lines.append(f"  {path}: {actual!r} != expected {expected!r}")
    return lines


def regenerate(scenario: str, dispatcher: str) -> dict[str, object]:
    mean_rate = golden_mean_rate(scenario)
    jobs = build_golden_stream(scenario, mean_rate)
    trace = trace_from_jobs(
        jobs,
        metadata={
            "scenario": scenario,
            "seed": GOLDEN_SEED,
            "mean_rate": mean_rate,
        },
    )
    # Replay from the serialized trace (not the generator's jobs) so
    # the committed expectation is exactly what verification will run.
    metrics = run_golden_trace(
        jobs_from_trace(json.loads(json.dumps(trace))),
        scenario,
        dispatcher,
    )
    return {
        "scenario": scenario,
        "dispatcher": dispatcher,
        "n_machines": GOLDEN_MACHINES,
        "contexts": GOLDEN_CONTEXTS,
        "seed": GOLDEN_SEED,
        "mean_rate": mean_rate,
        "trace": trace,
        "expected": to_jsonable(metrics),
    }


@pytest.fixture(scope="module")
def update_golden(request) -> bool:
    return bool(request.config.getoption("--update-golden"))


class TestGoldenTraces:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "scenario, dispatcher", PAIRS, ids=[f"{s}-{d}" for s, d in PAIRS]
    )
    def test_pair(self, scenario, dispatcher, engine, update_golden):
        path = golden_path(scenario, dispatcher)
        if update_golden:
            if engine != ENGINES[0]:
                # The expectation file is engine-independent (written
                # once, by the first engine's variant); the other
                # engines verify agreement before the fresh goldens
                # are committed, with no file-ordering dependency.
                mean_rate = golden_mean_rate(scenario)
                reference = run_golden_trace(
                    build_golden_stream(scenario, mean_rate),
                    scenario,
                    dispatcher,
                )
                metrics = run_golden_trace(
                    build_golden_stream(scenario, mean_rate),
                    scenario,
                    dispatcher,
                    engine=engine,
                )
                assert to_jsonable(metrics) == to_jsonable(reference)
                return
            payload = regenerate(scenario, dispatcher)
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w") as fp:
                json.dump(payload, fp, indent=2, sort_keys=True)
                fp.write("\n")
            return
        if not path.exists():
            pytest.fail(
                f"missing golden file {path.name}; run "
                "`python -m pytest tests/integration/test_golden_traces.py "
                "--update-golden` and commit the result"
            )
        golden = json.loads(path.read_text())

        if engine == ENGINES[0]:
            # Generator lock: the scenario must rebuild the committed
            # trace bit for bit from its pinned seed and rate (checked
            # once — the stream does not depend on the engine).
            rebuilt = trace_from_jobs(
                build_golden_stream(scenario, float(golden["mean_rate"])),
                metadata=golden["trace"]["metadata"],
            )
            drift = diff_payload(golden["trace"], rebuilt)
            if drift:
                pytest.fail(
                    f"[{path.name}] arrival-process drift — the generator "
                    "no longer reproduces the committed trace:\n"
                    + "\n".join(drift[:20])
                    + "\n(run --update-golden only if this drift is "
                    "intentional)"
                )

        # Engine lock: the committed trace must reproduce the
        # committed metrics through the cluster simulator, whichever
        # engine advances it.
        metrics = run_golden_trace(
            jobs_from_trace(golden["trace"]), scenario, dispatcher,
            engine=engine,
        )
        drift = diff_payload(golden["expected"], to_jsonable(metrics))
        if drift:
            pytest.fail(
                f"[{path.name}] engine drift — the {engine} engine "
                "no longer reproduces the committed metrics:\n"
                + "\n".join(drift[:20])
                + "\n(run --update-golden only if this drift is "
                "intentional)"
            )


# ----------------------------------------------------------------------
# Estimated-rate goldens: noisy-estimator runs pinned bit for bit.
# ----------------------------------------------------------------------
#: Three (scenario, dispatcher, noise, noise-seed) cells run with
#: ``rate_source="estimated"``: a realistic cold start (single_run
#: prior), nonzero observation noise from the pinned noise seed, and
#: frequent re-optimization rounds.  They freeze the *whole* estimated
#: stack — observation wiring, the noise RNG stream, EMA updates,
#: epoch publishing, and the re-optimization refresh of schedulers and
#: (for the affinity cell) the dispatcher's LP tables.  Like every
#: other golden, each replays through both engines against one
#: expectation file.
ESTIMATED_CELLS = (
    ("baseline_poisson", "round_robin", 0.3, 11),
    ("skewed_types", "jsq", 0.15, 23),
    ("heavy_tail", "affinity", 0.4, 37),
)
ESTIMATED_REOPT = 16


def estimated_golden_path(scenario: str, dispatcher: str) -> Path:
    return GOLDEN_DIR / f"estimated__{scenario}__{dispatcher}.json"


def run_estimated_golden(
    jobs: list[Job],
    scenario_name: str,
    dispatcher: str,
    noise: float,
    noise_seed: int,
    engine: str | None = None,
) -> ClusterMetrics:
    """The frozen estimated-rate configuration of a golden cell."""
    from repro.queueing.estimation import EstimationConfig

    scenario = get_scenario(scenario_name)
    schedulers = [
        make_scheduler(
            "maxtp", GOLDEN_RATES, GOLDEN_CONTEXTS,
            workload=GOLDEN_WORKLOAD,
        )
        for _ in range(GOLDEN_MACHINES)
    ]
    return run_cluster(
        GOLDEN_RATES,
        schedulers,
        make_dispatcher(
            dispatcher,
            rates=GOLDEN_RATES,
            workload=GOLDEN_WORKLOAD,
            contexts=GOLDEN_CONTEXTS,
        ),
        jobs,
        stop_when_fewer_than=(
            GOLDEN_MACHINES * GOLDEN_CONTEXTS
            if scenario.saturated
            else None
        ),
        keep_in_system=(
            scenario.backlog_per_machine if scenario.saturated else None
        ),
        engine=engine,
        rate_source="estimated",
        estimation=EstimationConfig(
            noise=noise,
            prior="single_run",
            reopt_observations=ESTIMATED_REOPT,
            seed=noise_seed,
        ),
    )


class TestEstimatedGoldens:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "scenario, dispatcher, noise, noise_seed",
        ESTIMATED_CELLS,
        ids=[f"{s}-{d}" for s, d, _, _ in ESTIMATED_CELLS],
    )
    def test_estimated_cell(
        self, scenario, dispatcher, noise, noise_seed, engine, update_golden
    ):
        path = estimated_golden_path(scenario, dispatcher)
        if update_golden:
            if engine != ENGINES[0]:
                mean_rate = golden_mean_rate(scenario)
                reference = run_estimated_golden(
                    build_golden_stream(scenario, mean_rate),
                    scenario, dispatcher, noise, noise_seed,
                )
                metrics = run_estimated_golden(
                    build_golden_stream(scenario, mean_rate),
                    scenario, dispatcher, noise, noise_seed,
                    engine=engine,
                )
                assert to_jsonable(metrics) == to_jsonable(reference)
                return
            mean_rate = golden_mean_rate(scenario)
            jobs = build_golden_stream(scenario, mean_rate)
            trace = trace_from_jobs(
                jobs,
                metadata={
                    "scenario": scenario,
                    "seed": GOLDEN_SEED,
                    "mean_rate": mean_rate,
                    "rate_source": "estimated",
                },
            )
            metrics = run_estimated_golden(
                jobs_from_trace(json.loads(json.dumps(trace))),
                scenario, dispatcher, noise, noise_seed,
            )
            payload = {
                "scenario": scenario,
                "dispatcher": dispatcher,
                "n_machines": GOLDEN_MACHINES,
                "contexts": GOLDEN_CONTEXTS,
                "seed": GOLDEN_SEED,
                "mean_rate": mean_rate,
                "noise": noise,
                "noise_seed": noise_seed,
                "prior": "single_run",
                "reopt_observations": ESTIMATED_REOPT,
                "trace": trace,
                "expected": to_jsonable(metrics),
            }
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w") as fp:
                json.dump(payload, fp, indent=2, sort_keys=True)
                fp.write("\n")
            return
        if not path.exists():
            pytest.fail(
                f"missing golden file {path.name}; run "
                "`python -m pytest tests/integration/test_golden_traces.py "
                "--update-golden` and commit the result"
            )
        golden = json.loads(path.read_text())

        if engine == ENGINES[0]:
            # Generator lock (same stream contract as the oracle pairs).
            rebuilt = trace_from_jobs(
                build_golden_stream(scenario, float(golden["mean_rate"])),
                metadata=golden["trace"]["metadata"],
            )
            drift = diff_payload(golden["trace"], rebuilt)
            if drift:
                pytest.fail(
                    f"[{path.name}] arrival-process drift — the generator "
                    "no longer reproduces the committed trace:\n"
                    + "\n".join(drift[:20])
                    + "\n(run --update-golden only if this drift is "
                    "intentional)"
                )

        # Engine lock over the full estimated stack.
        metrics = run_estimated_golden(
            jobs_from_trace(golden["trace"]),
            scenario,
            dispatcher,
            float(golden["noise"]),
            int(golden["noise_seed"]),
            engine=engine,
        )
        drift = diff_payload(golden["expected"], to_jsonable(metrics))
        if drift:
            pytest.fail(
                f"[{path.name}] estimated-stack drift — the {engine} "
                "engine no longer reproduces the committed metrics:\n"
                + "\n".join(drift[:20])
                + "\n(run --update-golden only if this drift is "
                "intentional)"
            )


# ----------------------------------------------------------------------
# Faulty-scenario goldens: chaos runs pinned bit for bit.
# ----------------------------------------------------------------------
#: Three (scenario, dispatcher, fault-flavour) cells run with an
#: *active* :class:`FaultConfig` on the fault stream's own pinned
#: seed.  Each flavour exercises a different slice of the fault layer
#: on golden timescales (runs last ~9-31 time units, see
#: ``golden_mean_rate``):
#:
#: * ``crashes``  — hard failures + restart-from-zero + retry/backoff;
#: * ``degraded`` — slowdown episodes only (no crashes), with
#:   degradation-aware dispatch steering;
#: * ``chaos``    — everything at once: crashes, degradation,
#:   correlated outages with drain grace, resume-fraction progress
#:   loss, and the shed valve.
#:
#: The goldens pin *both* the metrics and ``last_fault_stats``, so any
#: drift in the fault event stream (draw order, lifecycle transitions,
#: retry accounting) fails with a per-field diff.  Replayed through
#: both engines against one expectation file, like every other golden.
FAULT_FLAVOURS = {
    "crashes": FaultConfig(
        seed=101, mtbf=8.0, mttr=1.5,
        retry_budget=3, backoff_base=0.3, crash_policy="restart",
    ),
    "degraded": FaultConfig(
        seed=211, degraded_mtbf=6.0, degraded_duration=2.0,
        degraded_factor=0.5, degraded_dispatch="avoid",
    ),
    "chaos": FaultConfig(
        seed=307, mtbf=5.0, mttr=1.0,
        degraded_mtbf=6.0, degraded_duration=1.5, degraded_factor=0.5,
        correlated_mtbf=15.0, blast_fraction=0.5, drain_grace=0.3,
        crash_policy="resume_fraction", resume_fraction=0.5,
        retry_budget=2, backoff_base=0.2, shed_after=6.0,
    ),
}
FAULTY_CELLS = (
    ("baseline_poisson", "round_robin", "crashes"),
    ("skewed_types", "jsq", "degraded"),
    ("heavy_tail", "affinity", "chaos"),
)


def faulty_golden_path(scenario: str, dispatcher: str) -> Path:
    return GOLDEN_DIR / f"faulty__{scenario}__{dispatcher}.json"


def run_faulty_golden(
    jobs: list[Job],
    scenario_name: str,
    dispatcher: str,
    faults: FaultConfig | None,
    engine: str | None = None,
) -> tuple[ClusterMetrics, dict | None]:
    """The frozen faulty configuration of a golden cell.

    Returns ``(metrics, last_fault_stats)`` — the stats are part of
    the pinned expectation, not just the metrics.
    """
    scenario = get_scenario(scenario_name)
    cluster = Cluster(
        GOLDEN_RATES,
        [
            make_scheduler(
                "maxtp", GOLDEN_RATES, GOLDEN_CONTEXTS,
                workload=GOLDEN_WORKLOAD,
            )
            for _ in range(GOLDEN_MACHINES)
        ],
        make_dispatcher(
            dispatcher,
            rates=GOLDEN_RATES,
            workload=GOLDEN_WORKLOAD,
            contexts=GOLDEN_CONTEXTS,
        ),
    )
    metrics = cluster.run(
        jobs,
        stop_when_fewer_than=(
            GOLDEN_MACHINES * GOLDEN_CONTEXTS
            if scenario.saturated
            else None
        ),
        keep_in_system=(
            scenario.backlog_per_machine if scenario.saturated else None
        ),
        engine=engine,
        faults=faults,
    )
    return metrics, cluster.last_fault_stats


class TestFaultyGoldens:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "scenario, dispatcher, flavour",
        FAULTY_CELLS,
        ids=[f"{s}-{d}-{f}" for s, d, f in FAULTY_CELLS],
    )
    def test_faulty_cell(
        self, scenario, dispatcher, flavour, engine, update_golden
    ):
        faults = FAULT_FLAVOURS[flavour]
        path = faulty_golden_path(scenario, dispatcher)
        if update_golden:
            if engine != ENGINES[0]:
                mean_rate = golden_mean_rate(scenario)
                ref_metrics, ref_stats = run_faulty_golden(
                    build_golden_stream(scenario, mean_rate),
                    scenario, dispatcher, faults,
                )
                metrics, stats = run_faulty_golden(
                    build_golden_stream(scenario, mean_rate),
                    scenario, dispatcher, faults,
                    engine=engine,
                )
                assert to_jsonable(metrics) == to_jsonable(ref_metrics)
                assert stats == ref_stats
                return
            mean_rate = golden_mean_rate(scenario)
            jobs = build_golden_stream(scenario, mean_rate)
            trace = trace_from_jobs(
                jobs,
                metadata={
                    "scenario": scenario,
                    "seed": GOLDEN_SEED,
                    "mean_rate": mean_rate,
                    "faults": flavour,
                },
            )
            metrics, stats = run_faulty_golden(
                jobs_from_trace(json.loads(json.dumps(trace))),
                scenario, dispatcher, faults,
            )
            # A quiescent golden would pin nothing — the flavours must
            # actually fire on golden timescales.
            assert stats is not None
            if flavour in ("crashes", "chaos"):
                assert stats["crashes"] > 0, f"{flavour}: no crashes fired"
            if flavour in ("degraded", "chaos"):
                assert stats["degrade_episodes"] > 0, (
                    f"{flavour}: no degradation episodes fired"
                )
            payload = {
                "scenario": scenario,
                "dispatcher": dispatcher,
                "flavour": flavour,
                "n_machines": GOLDEN_MACHINES,
                "contexts": GOLDEN_CONTEXTS,
                "seed": GOLDEN_SEED,
                "mean_rate": mean_rate,
                "faults": faults.to_jsonable(),
                "trace": trace,
                "expected": to_jsonable(metrics),
                "fault_stats": stats,
            }
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w") as fp:
                json.dump(payload, fp, indent=2, sort_keys=True)
                fp.write("\n")
            return
        if not path.exists():
            pytest.fail(
                f"missing golden file {path.name}; run "
                "`python -m pytest tests/integration/test_golden_traces.py "
                "--update-golden` and commit the result"
            )
        golden = json.loads(path.read_text())

        if engine == ENGINES[0]:
            # Generator lock (same stream contract as the oracle pairs).
            rebuilt = trace_from_jobs(
                build_golden_stream(scenario, float(golden["mean_rate"])),
                metadata=golden["trace"]["metadata"],
            )
            drift = diff_payload(golden["trace"], rebuilt)
            if drift:
                pytest.fail(
                    f"[{path.name}] arrival-process drift — the generator "
                    "no longer reproduces the committed trace:\n"
                    + "\n".join(drift[:20])
                    + "\n(run --update-golden only if this drift is "
                    "intentional)"
                )

        # Engine lock over the fault layer: metrics AND fault stats.
        metrics, stats = run_faulty_golden(
            jobs_from_trace(golden["trace"]),
            scenario,
            dispatcher,
            FaultConfig.from_jsonable(golden["faults"]),
            engine=engine,
        )
        drift = diff_payload(golden["expected"], to_jsonable(metrics))
        drift += diff_payload(
            golden["fault_stats"], stats, path="fault_stats"
        )
        if drift:
            pytest.fail(
                f"[{path.name}] fault-layer drift — the {engine} engine "
                "no longer reproduces the committed chaos run:\n"
                + "\n".join(drift[:20])
                + "\n(run --update-golden only if this drift is "
                "intentional)"
            )


# ----------------------------------------------------------------------
# Hotpath saturated-workload goldens (perf-trajectory coverage).
# ----------------------------------------------------------------------
#: Reduced-size frozen replica of ``hotpath.saturated_cluster``: same
#: synthetic rate table (5 types, 4 contexts, seed 7), same backlog
#: cap and stop rule, fewer jobs — enough events to pin the probing
#: stack, small enough to stay a unit-speed test.
HOTPATH_GOLDEN_SCHEDULERS = ("maxit", "srpt")
HOTPATH_GOLDEN_JOBS = 300
HOTPATH_GOLDEN_MACHINES = 3
HOTPATH_GOLDEN_CONTEXTS = 4
HOTPATH_GOLDEN_BACKLOG = 10
HOTPATH_GOLDEN_SEED = 0


def hotpath_golden_path(scheduler: str) -> Path:
    return GOLDEN_DIR / f"hotpath_saturated_{scheduler}.json"


def build_hotpath_stream() -> list[Job]:
    _, names = synthetic_rates(contexts=HOTPATH_GOLDEN_CONTEXTS)
    return saturated_jobs(
        names, HOTPATH_GOLDEN_JOBS, seed=HOTPATH_GOLDEN_SEED
    )


def run_hotpath_golden(
    jobs: list[Job],
    scheduler: str,
    engine: str | None = None,
    faults: FaultConfig | None = None,
) -> ClusterMetrics:
    rates, names = synthetic_rates(contexts=HOTPATH_GOLDEN_CONTEXTS)
    workload = Workload.of(*names)
    return run_cluster(
        rates,
        [
            make_scheduler(
                scheduler, rates, HOTPATH_GOLDEN_CONTEXTS,
                workload=workload,
            )
            for _ in range(HOTPATH_GOLDEN_MACHINES)
        ],
        make_dispatcher("round_robin"),
        jobs,
        stop_when_fewer_than=(
            HOTPATH_GOLDEN_MACHINES * HOTPATH_GOLDEN_CONTEXTS
        ),
        keep_in_system=HOTPATH_GOLDEN_BACKLOG,
        engine=engine,
        faults=faults,
    )


class TestHotpathGoldens:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("scheduler", HOTPATH_GOLDEN_SCHEDULERS)
    def test_hotpath_workload(self, scheduler, engine, update_golden):
        path = hotpath_golden_path(scheduler)
        if update_golden:
            if engine != ENGINES[0]:
                reference = run_hotpath_golden(
                    build_hotpath_stream(), scheduler
                )
                metrics = run_hotpath_golden(
                    build_hotpath_stream(), scheduler, engine=engine
                )
                assert to_jsonable(metrics) == to_jsonable(reference)
                return
            jobs = build_hotpath_stream()
            trace = trace_from_jobs(
                jobs,
                metadata={
                    "workload": f"hotpath_saturated_{scheduler}",
                    "seed": HOTPATH_GOLDEN_SEED,
                },
            )
            metrics = run_hotpath_golden(
                jobs_from_trace(json.loads(json.dumps(trace))), scheduler
            )
            payload = {
                "scheduler": scheduler,
                "n_machines": HOTPATH_GOLDEN_MACHINES,
                "contexts": HOTPATH_GOLDEN_CONTEXTS,
                "backlog": HOTPATH_GOLDEN_BACKLOG,
                "seed": HOTPATH_GOLDEN_SEED,
                "trace": trace,
                "expected": to_jsonable(metrics),
            }
            path.parent.mkdir(parents=True, exist_ok=True)
            with path.open("w") as fp:
                json.dump(payload, fp, indent=2, sort_keys=True)
                fp.write("\n")
            return
        if not path.exists():
            pytest.fail(
                f"missing golden file {path.name}; run "
                "`python -m pytest tests/integration/test_golden_traces.py "
                "--update-golden` and commit the result"
            )
        golden = json.loads(path.read_text())

        if engine == ENGINES[0]:
            rebuilt = trace_from_jobs(
                build_hotpath_stream(),
                metadata=golden["trace"]["metadata"],
            )
            drift = diff_payload(golden["trace"], rebuilt)
            if drift:
                pytest.fail(
                    f"[{path.name}] workload drift — the hotpath "
                    "generator no longer reproduces the committed "
                    "trace:\n" + "\n".join(drift[:20])
                )

        metrics = run_hotpath_golden(
            jobs_from_trace(golden["trace"]), scheduler, engine=engine
        )
        drift = diff_payload(golden["expected"], to_jsonable(metrics))
        if drift:
            pytest.fail(
                f"[{path.name}] engine drift — the {engine} engine no "
                "longer reproduces the committed metrics:\n"
                + "\n".join(drift[:20])
                + "\n(run --update-golden only if this drift is "
                "intentional)"
            )


class TestZeroFaultIdentity:
    """A declared-but-quiescent ``FaultConfig`` must be a perfect
    no-op: running any committed golden trace with
    ``FaultConfig(seed=...)`` (all fault processes disabled) must
    reproduce the plain ``faults=None`` run *bit for bit* — not within
    tolerance.  This is the contract that lets the fault layer ship
    inside the engines without invalidating a single golden."""

    @pytest.mark.parametrize(
        "scenario, dispatcher", PAIRS, ids=[f"{s}-{d}" for s, d in PAIRS]
    )
    def test_pair_zero_fault_identity(self, scenario, dispatcher):
        path = golden_path(scenario, dispatcher)
        if not path.exists():
            pytest.skip("golden files not generated yet")
        golden = json.loads(path.read_text())
        plain = run_golden_trace(
            jobs_from_trace(golden["trace"]), scenario, dispatcher
        )
        gated, stats = run_faulty_golden(
            jobs_from_trace(golden["trace"]),
            scenario,
            dispatcher,
            FaultConfig(seed=12345),
        )
        assert to_jsonable(gated) == to_jsonable(plain)
        assert stats is not None
        assert stats["crashes"] == 0
        assert stats["availability"] == 1.0

    @pytest.mark.parametrize("scheduler", HOTPATH_GOLDEN_SCHEDULERS)
    def test_hotpath_zero_fault_identity(self, scheduler):
        path = hotpath_golden_path(scheduler)
        if not path.exists():
            pytest.skip("golden files not generated yet")
        golden = json.loads(path.read_text())
        plain = run_hotpath_golden(
            jobs_from_trace(golden["trace"]), scheduler
        )
        gated = run_hotpath_golden(
            jobs_from_trace(golden["trace"]), scheduler,
            faults=FaultConfig(seed=12345),
        )
        assert to_jsonable(gated) == to_jsonable(plain)


class TestHarnessSensitivity:
    """The harness must actually catch drift: a single perturbed event
    produces a non-empty, readable diff."""

    def test_one_job_perturbation_is_detected(self):
        path = golden_path("baseline_poisson", "round_robin")
        if not path.exists():
            pytest.skip("golden files not generated yet")
        golden = json.loads(path.read_text())
        records = golden["trace"]["jobs"]
        records[len(records) // 2]["size"] += 1e-3  # one event, barely
        jobs = jobs_from_trace(golden["trace"])
        metrics = run_golden_trace(jobs, "baseline_poisson", "round_robin")
        drift = diff_payload(golden["expected"], to_jsonable(metrics))
        assert drift, "a perturbed job must move the metrics"
        assert any("work_done" in line or "turnaround" in line
                   for line in drift)

    def test_diff_is_readable(self):
        lines = diff_payload(
            {"a": 1.0, "b": {"c": [2.0]}},
            {"a": 1.0, "b": {"c": [2.5]}},
        )
        assert lines == [
            "  b.c[0]: 2.5 != expected 2.0 (rel err 2.000e-01)"
        ]

    def test_diff_tolerates_float_noise(self):
        assert not diff_payload({"x": 1.0}, {"x": 1.0 + 1e-12})
