"""Section-VII shape: the policy study's headline orderings."""

from __future__ import annotations

import pytest

from repro.core.workload import Workload
from repro.experiments.section7 import compute_section7


@pytest.fixture(scope="module")
def summary():
    workloads = [
        Workload.of("bzip2", "hmmer", "libquantum", "mcf"),
        Workload.of("calculix", "mcf", "sjeng", "xalancbmk"),
        Workload.of("gcc.g23", "h264ref", "perlbench", "tonto"),
        Workload.of("hmmer", "libquantum", "mcf", "xalancbmk"),
        Workload.of("bzip2", "calculix", "gcc.cp-decl", "sjeng"),
    ]
    return compute_section7(workloads)


class TestSection7Shape:
    def test_icount_dynamic_wins_under_both_metrics(self, summary):
        """Paper: ICOUNT+dynamic outperforms RR+static by 1.7% (FCFS)
        and 1.5% (optimal metric)."""
        assert summary.best_over_baseline_fcfs > 0.0
        assert summary.best_over_baseline_optimal > 0.0

    def test_gains_are_single_digit_percent(self, summary):
        assert summary.best_over_baseline_fcfs < 0.10
        assert summary.best_over_baseline_optimal < 0.10

    def test_scheduling_gain_comparable_to_policy_gain(self, summary):
        """Paper: intelligent scheduling on the baseline (+3.3%) is
        worth at least as much as the policy upgrade (+1.7%)."""
        assert summary.scheduling_gain_on_baseline > 0.0

    def test_flip_fraction_is_a_minority(self, summary):
        """Paper: ~10% of workloads flip their preferred policy."""
        assert 0.0 <= summary.flip_fraction <= 0.5

    def test_mean_ordering_metric_stable(self, summary):
        """The winning policy is the same under both metrics."""
        study = summary.study
        best_fcfs = max(study.results, key=lambda r: r.mean_fcfs).label
        best_opt = max(study.results, key=lambda r: r.mean_optimal).label
        assert best_fcfs == best_opt == "icount+dynamic"
