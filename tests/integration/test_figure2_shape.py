"""Figure-2 shape: FCFS bridges most of the worst-to-best gap."""

from __future__ import annotations

import pytest

from repro.experiments.figure2 import compute_figure2


@pytest.fixture(scope="module")
def series(context):
    return {
        "smt": compute_figure2(
            context.smt_rates, context.workloads, config="smt"
        ),
        "quad": compute_figure2(
            context.quad_rates, context.workloads, config="quad"
        ),
    }


class TestFigure2Shape:
    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_points_inside_feasible_wedge(self, series, config):
        """worst <= FCFS <= optimal for every workload."""
        for p in series[config].points:
            assert 1.0 - 1e-6 <= p.fcfs_vs_worst <= p.optimal_vs_worst + 1e-6

    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_slope_below_one(self, series, config):
        assert 0.2 < series[config].slope < 1.0

    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_fcfs_bridges_majority_of_gap(self, series, config):
        """Paper: 76% (SMT) and 63% (quad)."""
        assert series[config].mean_bridged_fraction > 0.5

    def test_smt_slope_exceeds_quad_slope(self, series):
        """Paper: 0.73 vs 0.56."""
        assert series["smt"].slope > series["quad"].slope
