"""Shapes of the extension experiments: makespan and unit-of-work."""

from __future__ import annotations

import pytest

from repro.experiments.common import sample_workloads
from repro.experiments.makespan_exp import compute_makespan
from repro.experiments.units_exp import compute_units


class TestMakespanShape:
    @pytest.fixture(scope="class")
    def cells(self, context):
        workloads = sample_workloads(context.workloads, 5, seed=17)
        return compute_makespan(
            context.smt_rates,
            workloads,
            set_sizes=(8, 16),
            seeds=(0, 1, 2),
        )

    def test_drain_dominates_small_sets(self, cells):
        """The paper's Section-II point: small-set makespans include a
        substantial idle-context drain."""
        by_key = {(c.scheduler, c.n_jobs): c for c in cells}
        assert by_key[("fcfs", 8)].mean_drain_fraction > 0.10
        assert (
            by_key[("fcfs", 8)].mean_drain_fraction
            > by_key[("fcfs", 16)].mean_drain_fraction
        )

    def test_ljf_competitive_with_symbiosis_aware(self, cells):
        """Xu et al.'s observation: symbiosis-unaware LJF keeps up with
        MAXIT on small fixed job sets."""
        by_key = {(c.scheduler, c.n_jobs): c for c in cells}
        for n_jobs in (8, 16):
            assert (
                by_key[("ljf", n_jobs)].makespan_vs_fcfs
                < by_key[("maxit", n_jobs)].makespan_vs_fcfs + 0.05
            )

    def test_srpt_bad_for_makespan(self, cells):
        """SRPT optimizes turnaround by delaying long jobs — the wrong
        move for makespan (it lengthens the drain)."""
        by_key = {(c.scheduler, c.n_jobs): c for c in cells}
        assert (
            by_key[("srpt", 8)].mean_drain_fraction
            >= by_key[("ljf", 8)].mean_drain_fraction
        )


class TestUnitsShape:
    def test_conclusions_unit_independent(self, context):
        workloads = sample_workloads(context.workloads, 8, seed=19)
        comparisons = compute_units(context.smt_rates, workloads)
        for c in comparisons:
            assert 0.0 <= c.weighted_gain < 0.20
            assert 0.0 <= c.instruction_gain < 0.20
