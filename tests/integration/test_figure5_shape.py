"""Figure-5 shape: scheduler behaviour in the latency experiment."""

from __future__ import annotations

import pytest

from repro.experiments.common import sample_workloads
from repro.experiments.figure5 import compute_figure5


@pytest.fixture(scope="module")
def cells(context):
    workloads = sample_workloads(context.workloads, 6, seed=3)
    results = compute_figure5(
        context.smt_rates,
        workloads,
        loads=(0.8, 0.95),
        n_jobs=4_000,
        seed=1,
    )
    return {(c.scheduler, c.load): c for c in results}


class TestFigure5Shape:
    def test_srpt_wins_turnaround_at_moderate_load(self, cells):
        """Paper: SRPT has the lowest turnaround at loads 0.8/0.9."""
        srpt = cells[("srpt", 0.8)]
        for other in ("fcfs", "maxit", "maxtp"):
            assert srpt.mean_turnaround <= cells[(other, 0.8)].mean_turnaround

    def test_symbiosis_schedulers_beat_fcfs_at_high_load(self, cells):
        """Paper: at 0.95 load MAXTP cuts turnaround by ~23%."""
        assert cells[("maxtp", 0.95)].turnaround_vs_fcfs < 0.95
        assert cells[("srpt", 0.95)].turnaround_vs_fcfs < 1.0

    def test_maxtp_has_lowest_utilization_at_high_load(self, cells):
        """The paper's honest indicator of a throughput improvement."""
        maxtp = cells[("maxtp", 0.95)]
        for other in ("fcfs", "maxit", "srpt"):
            assert maxtp.utilization <= cells[(other, 0.95)].utilization + 1e-9

    def test_maxtp_has_highest_empty_fraction_at_high_load(self, cells):
        maxtp = cells[("maxtp", 0.95)]
        for other in ("fcfs", "maxit"):
            assert (
                maxtp.empty_fraction >= cells[(other, 0.95)].empty_fraction - 1e-9
            )

    def test_turnaround_grows_with_load(self, cells):
        for name in ("fcfs", "maxit", "srpt", "maxtp"):
            assert (
                cells[(name, 0.95)].mean_turnaround
                > cells[(name, 0.8)].mean_turnaround
            )

    def test_utilization_bounded_by_contexts(self, cells):
        for cell in cells.values():
            assert 0.0 < cell.utilization <= 4.0
