"""Every example script must run end to end."""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_examples_present():
    """The repo ships the quickstart plus at least two scenarios."""
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
