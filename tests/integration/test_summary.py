"""The summary artifact must report sane headline numbers."""

from __future__ import annotations

from repro.experiments.summary import compute_summary, render


class TestSummary:
    def test_headline_shape(self, context):
        numbers = compute_summary(context)
        by_config = {n.config: n for n in numbers}
        assert set(by_config) == {"smt", "quad"}
        for n in numbers:
            # The abstract's ordering: optimal gain << variability.
            assert 0.0 <= n.optimal_gain < 0.3 * n.it_spread
            assert n.worst_loss <= 0.0
            assert 0.0 < n.slope < 1.0
            assert 0.4 < n.bridged <= 1.0

    def test_render_mentions_paper(self, context):
        text = render(compute_summary(context))
        assert "paper" in text
        assert "optimal vs FCFS" in text
        assert "Figure-2 slope" in text
