"""Integration fixtures: a shared context over a small workload sample.

Integration tests verify the *shape* of every paper artifact on a
deterministic subsample of workloads — big enough for the orderings to
be stable, small enough to keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext, default_context


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Context with a 40-workload deterministic sample."""
    return default_context(max_workloads=40, seed=7)
