"""Figure-1 shape: the paper's headline variability ordering."""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import compute_figure1


@pytest.fixture(scope="module")
def bars(context):
    smt, _ = compute_figure1(
        context.smt_rates, context.workloads, config="smt"
    )
    quad, _ = compute_figure1(
        context.quad_rates, context.workloads, config="quad"
    )
    return {"smt": smt, "quad": quad}


class TestFigure1Shape:
    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_average_tp_least_variable(self, bars, config):
        """The core claim: average-throughput variability is far below
        per-job and instantaneous-throughput variability."""
        b = bars[config]
        assert b.tp_spread < 0.5 * b.it_spread
        assert b.tp_spread < 0.5 * b.job_spread

    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_scheduler_ordering(self, bars, config):
        """optimal >= FCFS >= worst on average and in the extremes."""
        b = bars[config]
        assert b.tp_avg_best >= -1e-9
        assert b.tp_avg_worst <= 1e-9
        assert b.tp_extreme_best >= b.tp_avg_best
        assert b.tp_extreme_worst <= b.tp_avg_worst

    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_optimal_gain_is_small(self, bars, config):
        """The surprise of the paper: a few percent, not tens."""
        assert bars[config].tp_avg_best < 0.10

    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_job_and_it_variability_are_substantial(self, bars, config):
        b = bars[config]
        assert b.job_spread > 0.15
        assert b.it_spread > 0.25

    def test_worst_loses_more_than_optimal_gains_on_smt(self, bars):
        """Paper: -9% worst vs +3% optimal on the SMT machine."""
        b = bars["smt"]
        assert abs(b.tp_avg_worst) > b.tp_avg_best

    def test_quad_optimal_gain_at_least_smt(self, bars):
        """Paper: 6% (quad) vs 3% (SMT)."""
        assert bars["quad"].tp_avg_best >= bars["smt"].tp_avg_best
