"""Table-II shape: who runs which coschedules."""

from __future__ import annotations

import pytest

from repro.experiments.table2 import compute_table2


@pytest.fixture(scope="module")
def tables(context):
    return {
        "smt": compute_table2(
            context.smt_rates, context.workloads, config="smt"
        ),
        "quad": compute_table2(
            context.quad_rates, context.workloads, config="quad"
        ),
    }


class TestTable2Shape:
    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_four_heterogeneity_levels(self, tables, config):
        assert [r.heterogeneity for r in tables[config]] == [1, 2, 3, 4]

    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_fractions_sum_to_one(self, tables, config):
        rows = tables[config]
        for field in ("fcfs_fraction", "optimal_fraction", "worst_fraction",
                      "draw_probability"):
            assert sum(getattr(r, field) for r in rows) == pytest.approx(1.0)

    def test_smt_throughput_rises_with_heterogeneity(self, tables):
        """Paper Table II(a): 1.74 / 1.83 / 1.91 / 1.97."""
        its = [r.mean_instantaneous_tp for r in tables["smt"]]
        assert its[0] < its[1] < its[3]

    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_worst_hides_in_homogeneous_coschedules(self, tables, config):
        rows = {r.heterogeneity: r for r in tables[config]}
        assert rows[1].worst_fraction > 0.5
        assert rows[4].worst_fraction < 0.05
        assert rows[1].worst_fraction > rows[1].fcfs_fraction * 5

    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_fcfs_tracks_multinomial_draw(self, tables, config):
        """Paper: FCFS fractions sit near 2/33/56/9 with a small shift
        from slow jobs lingering."""
        for r in tables[config]:
            assert r.fcfs_fraction == pytest.approx(
                r.draw_probability, abs=0.10
            )

    def test_optimal_prefers_heterogeneity_more_on_quad(self, tables):
        """Paper: optimal reaches het-4 72% on quad vs 11% on SMT; our
        substrate shows the same direction."""
        smt4 = {r.heterogeneity: r for r in tables["smt"]}[4]
        quad4 = {r.heterogeneity: r for r in tables["quad"]}[4]
        assert quad4.optimal_fraction > smt4.optimal_fraction
