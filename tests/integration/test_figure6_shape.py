"""Figure-6 shape: achieved saturation throughput per scheduler."""

from __future__ import annotations

import pytest

from repro.experiments.common import sample_workloads
from repro.experiments.figure6 import compute_figure6


@pytest.fixture(scope="module")
def points(context):
    workloads = sample_workloads(context.workloads, 8, seed=5)
    return compute_figure6(
        context.smt_rates, workloads, n_jobs=2_500, seed=2
    )


class TestFigure6Shape:
    def test_maxtp_tracks_lp_maximum(self, points):
        """Paper: MAXTP's throughput almost exactly matches the LP."""
        for p in points:
            assert p.maxtp_relative == pytest.approx(
                p.lp_maximum_relative, abs=0.06
            )

    def test_maxtp_beats_fcfs_when_headroom_exists(self, points):
        mean_maxtp = sum(p.maxtp_relative for p in points) / len(points)
        assert mean_maxtp > 1.0

    def test_srpt_matches_fcfs(self, points):
        """Paper: SRPT has the same maximum throughput as FCFS."""
        mean_srpt = sum(p.srpt_relative for p in points) / len(points)
        assert mean_srpt == pytest.approx(1.0, abs=0.05)

    def test_all_within_lp_bounds(self, points):
        for p in points:
            for rel in (p.maxit_relative, p.srpt_relative, p.maxtp_relative):
                assert rel <= p.lp_maximum_relative + 0.03
                assert rel >= p.lp_minimum_relative - 0.03

    def test_fcfs_simulation_matches_analytic_model(self, points):
        """The DES FCFS throughput agrees with the TPCalc-style chain."""
        for p in points:
            assert p.fcfs_analytic_relative == pytest.approx(1.0, abs=0.05)

    def test_sorted_by_headroom(self, points):
        headroom = [p.lp_maximum_relative for p in points]
        assert headroom == sorted(headroom)
