"""Tests for the experiments CLI."""

from __future__ import annotations

from repro.experiments.runner import ARTIFACTS, main


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available artifacts" in capsys.readouterr().out

    def test_unknown_artifact(self, capsys):
        assert main(["bogus"]) == 2

    def test_figure4_runs(self, capsys):
        """figure4 is pure analytics — cheap enough to run end to end."""
        assert main(["figure4"]) == 0
        out = capsys.readouterr().out
        assert "M/M/4 example" in out
        assert "16%" in out

    def test_table1_runs(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "libquantum" in out
        assert "mcf" in out

    def test_fairness_quick_run(self, capsys):
        assert main(["fairness", "--max-workloads", "4"]) == 0
        out = capsys.readouterr().out
        assert "hetero-coschedule time" in out
