"""Tests for the registry-driven experiments CLI."""

from __future__ import annotations

import json

from repro.experiments import registry
from repro.experiments.registry import RunOptions
from repro.experiments.runner import main


class TestRegistry:
    def test_all_experiments_registered(self):
        names = registry.names()
        assert len(names) == 19
        for expected in ("table1", "figure1", "figure5", "section7",
                         "fairness", "cluster_exp", "scenario_sweep",
                         "policy_tournament", "fault_sweep", "summary"):
            assert expected in names

    def test_get_returns_metadata(self):
        experiment = registry.get("figure1")
        assert experiment.kind == "figure"
        assert "Fig. 1" in experiment.title

    def test_seed_for_is_deterministic_and_distinct(self):
        options = RunOptions(seed=7)
        assert options.seed_for("figure5") == options.seed_for("figure5")
        assert options.seed_for("figure5") != options.seed_for("figure6")
        assert options.seed_for("figure5") != RunOptions(seed=8).seed_for(
            "figure5"
        )

    def test_workloads_cap(self):
        assert RunOptions().workloads(24) == 24
        assert RunOptions(max_workloads=8).workloads(24) == 8
        assert RunOptions(max_workloads=30, quick=True).workloads(24) == 24

    def test_to_jsonable_handles_nesting(self):
        from dataclasses import dataclass

        @dataclass
        class Inner:
            value: float

        @dataclass
        class Outer:
            name: str
            inner: Inner
            table: dict

        payload = registry.to_jsonable(
            Outer("x", Inner(1.5), {("a", "b"): 2.0})
        )
        assert payload == {
            "name": "x",
            "inner": {"value": 1.5},
            "table": {"a|b": 2.0},
        }
        json.dumps(payload)  # must be serializable


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in registry.names():
            assert name in out
        assert "[figure]" in out and "[table]" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["bogus", "--no-cache"]) == 2

    def test_bad_jobs(self, capsys):
        assert main(["figure4", "--jobs", "0", "--no-cache"]) == 2

    def test_figure4_runs(self, capsys):
        """figure4 is pure analytics — cheap enough to run end to end."""
        assert main(["figure4", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "M/M/4 example" in out
        assert "16%" in out
        assert "rate cache:" in out

    def test_table1_runs(self, capsys):
        assert main(["table1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "libquantum" in out
        assert "mcf" in out

    def test_fairness_quick_run(self, capsys):
        assert main(["fairness", "--max-workloads", "4", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "hetero-coschedule time" in out

    def test_cache_round_trip_second_run_all_hits(self, tmp_path, capsys):
        """The persisted cache makes the second run simulator-free."""
        cache = tmp_path / "rates.json"
        args = ["fairness", "--max-workloads", "3", "--cache", str(cache)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert cache.exists()
        assert "misses" in first and "saved" in first

        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 misses" in second
        assert "100.0% hit rate" in second

    def test_results_dir_emits_structured_json(self, tmp_path, capsys):
        results = tmp_path / "results"
        cache = tmp_path / "rates.json"
        assert main([
            "figure4", "table1",
            "--cache", str(cache),
            "--results-dir", str(results),
        ]) == 0
        files = sorted(p.name for p in results.glob("*.json"))
        assert files == ["figure4.json", "table1.json"]
        payload = json.loads((results / "table1.json").read_text())
        assert payload["name"] == "table1"
        assert payload["kind"] == "table"
        assert "cache_stats" in payload
        assert isinstance(payload["rows"], list) and payload["rows"]

    def test_parallel_jobs_share_cache(self, tmp_path, capsys):
        """--jobs fans out to worker processes that merge into one
        persisted cache file."""
        cache = tmp_path / "rates.json"
        assert main([
            "fairness", "units",
            "--max-workloads", "2",
            "--jobs", "2",
            "--cache", str(cache),
        ]) == 0
        out = capsys.readouterr().out
        assert "==== fairness" in out and "==== units" in out
        assert cache.exists()
        sections = json.loads(cache.read_text())["sections"]
        assert "smt4" in sections and sections["smt4"]

        # A sequential rerun is served entirely from the merged cache.
        assert main([
            "fairness", "--max-workloads", "2", "--cache", str(cache),
        ]) == 0
        assert "0 misses" in capsys.readouterr().out

    def test_module_entry_point(self):
        """python -m repro.experiments resolves to this CLI."""
        import repro.experiments.__main__ as entry

        assert entry.main is main
