"""Figure-3 shape: bottleneck error correlates with TP variability."""

from __future__ import annotations

import pytest

from repro.experiments.figure3 import compute_figure3


@pytest.fixture(scope="module")
def series(context):
    return {
        "smt": compute_figure3(
            context.smt_rates, context.workloads, config="smt"
        ),
        "quad": compute_figure3(
            context.quad_rates, context.workloads, config="quad"
        ),
    }


class TestFigure3Shape:
    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_positive_correlation(self, series, config):
        """Workloads near a linear bottleneck have little headroom."""
        assert series[config].correlation > 0.3

    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_near_bottleneck_implies_low_variability(self, series, config):
        """Every low-error workload must have a small optimal/worst gap;
        the converse need not hold (the per-type rate-spread effect)."""
        for p in series[config].points:
            if p.bottleneck_error < 1e-4:
                assert p.optimal_vs_worst < 1.10

    @pytest.mark.parametrize("config", ["smt", "quad"])
    def test_errors_nonnegative(self, series, config):
        assert all(p.bottleneck_error >= 0.0 for p in series[config].points)

    def test_off_trend_points_have_large_rate_spread(self, series):
        """The paper's color story: workloads with large bottleneck
        error but small TP variability show a big per-type performance
        spread."""
        points = series["smt"].points
        errors = sorted(p.bottleneck_error for p in points)
        median_error = errors[len(errors) // 2]
        off_trend = [
            p
            for p in points
            if p.bottleneck_error > median_error and p.optimal_vs_worst < 1.08
        ]
        if off_trend:  # sample-dependent; check when present
            spreads = [p.rate_spread for p in points]
            mean_spread = sum(spreads) / len(spreads)
            off_mean = sum(p.rate_spread for p in off_trend) / len(off_trend)
            assert off_mean > 0.8 * mean_spread
