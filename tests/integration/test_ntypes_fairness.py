"""Section V.B (N-sweep) and Section V.D (fairness counterfactual) shapes."""

from __future__ import annotations

import pytest

from repro.experiments.common import sample_workloads
from repro.experiments.fairness_cf import compute_fairness_cf
from repro.experiments.ntypes import compute_ntypes


class TestNTypesShape:
    @pytest.fixture(scope="class")
    def points(self, context):
        return compute_ntypes(
            context.smt_rates,
            n_values=(2, 4, 8),
            max_workloads_per_n=25,
            seed=11,
        )

    def test_gains_stay_small_for_all_n(self, points):
        """Paper: N=8 raises the SMT optimal gain only to ~4.5%."""
        for p in points:
            assert 0.0 <= p.mean_gain < 0.12

    def test_no_explosive_growth_with_n(self, points):
        by_n = {p.n_types: p.mean_gain for p in points}
        assert by_n[8] < 3 * max(by_n[4], 0.01)


class TestFairnessShape:
    @pytest.fixture(scope="class")
    def outcomes(self, context):
        workloads = sample_workloads(context.workloads, 10, seed=13)
        return compute_fairness_cf(context.smt_rates, workloads)

    def test_optimal_never_hurt_by_equalization(self, outcomes):
        for o in outcomes:
            assert o.optimal_change >= -1e-9

    def test_optimal_improves_on_average(self, outcomes):
        mean = sum(o.optimal_change for o in outcomes) / len(outcomes)
        assert mean > 0.01

    def test_fcfs_and_worst_barely_move(self, outcomes):
        """Paper: 'the average throughput of the FCFS and worst
        schedulers remains unchanged'."""
        for o in outcomes:
            assert abs(o.fcfs_change) < 0.05
            assert o.worst_change < 0.02

    def test_hetero_coschedule_dominates_after_transform(self, outcomes):
        """Paper: the optimal scheduler then selects the heterogeneous
        coschedule for most of the time."""
        mean_after = sum(o.hetero_fraction_after for o in outcomes) / len(
            outcomes
        )
        assert mean_after > 0.6

    def test_hetero_fraction_increases(self, outcomes):
        for o in outcomes:
            assert (
                o.hetero_fraction_after >= o.hetero_fraction_before - 1e-9
            )
