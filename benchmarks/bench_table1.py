"""Benchmark: regenerate Table I (benchmark roster + alone IPCs)."""

from __future__ import annotations

from repro.experiments.table1 import compute_table1


def bench(context):
    rows = compute_table1(context)
    assert len(rows) == 12
    return rows


def test_table1(benchmark, context):
    rows = benchmark.pedantic(
        bench, args=(context,), rounds=3, iterations=1
    )
    names = {r.name for r in rows}
    assert "mcf" in names and "hmmer" in names
