"""Benchmark: regenerate Table II (fractions by heterogeneity)."""

from __future__ import annotations

from repro.experiments.table2 import compute_table2


def bench(context):
    return (
        compute_table2(context.smt_rates, context.workloads, config="smt"),
        compute_table2(context.quad_rates, context.workloads, config="quad"),
    )


def test_table2(benchmark, context):
    smt, quad = benchmark.pedantic(
        bench, args=(context,), rounds=2, iterations=1
    )
    smt_rows = {r.heterogeneity: r for r in smt}
    assert smt_rows[1].worst_fraction > 0.5
    assert sum(r.optimal_fraction for r in smt) > 0.99
    assert len(quad) == 4
