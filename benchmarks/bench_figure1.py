"""Benchmark: regenerate Figure 1 (three-level variability bars)."""

from __future__ import annotations

from repro.experiments.figure1 import compute_figure1


def bench(context):
    smt, _ = compute_figure1(
        context.smt_rates, context.workloads, config="smt"
    )
    quad, _ = compute_figure1(
        context.quad_rates, context.workloads, config="quad"
    )
    return smt, quad


def test_figure1(benchmark, context):
    smt, quad = benchmark.pedantic(
        bench, args=(context,), rounds=2, iterations=1
    )
    # Headline shape: average-TP variability is the smallest bar.
    for bars in (smt, quad):
        assert bars.tp_spread < bars.it_spread
        assert bars.tp_spread < bars.job_spread
