"""Benchmark: regenerate the Section-VII policy study.

This is the only artifact that needs fresh rate tables (one per policy
pair), so the bench includes the simulation sweep, exactly like the
paper's four-configuration experiment.
"""

from __future__ import annotations

from repro.core.workload import Workload
from repro.experiments.section7 import compute_section7

WORKLOADS = [
    Workload.of("bzip2", "hmmer", "libquantum", "mcf"),
    Workload.of("calculix", "mcf", "sjeng", "xalancbmk"),
    Workload.of("gcc.g23", "h264ref", "perlbench", "tonto"),
]


def bench():
    return compute_section7(WORKLOADS)


def test_section7(benchmark):
    summary = benchmark.pedantic(bench, rounds=1, iterations=1)
    assert summary.best_over_baseline_fcfs > 0.0
    assert summary.best_over_baseline_optimal > 0.0
