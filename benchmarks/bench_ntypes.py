"""Benchmark: regenerate the Section-V.B N-sweep."""

from __future__ import annotations

from repro.experiments.ntypes import compute_ntypes


def bench(context):
    return compute_ntypes(
        context.smt_rates,
        n_values=(2, 4, 8),
        max_workloads_per_n=12,
        seed=0,
    )


def test_ntypes(benchmark, context):
    points = benchmark.pedantic(bench, args=(context,), rounds=1, iterations=1)
    assert [p.n_types for p in points] == [2, 4, 8]
    for p in points:
        assert 0.0 <= p.mean_gain < 0.15
