"""Benchmark: the multi-machine cluster simulator (Section III-D, dynamic).

Times the heap-driven cluster event core end to end: joint LP solve,
an M-machine saturated cluster run (round-robin dispatch over MAXTP
machines), and the M independent single-machine reference runs.  The
assertions pin the reduction: the cluster lands within tolerance of
both the independent machines and the joint LP optimum.
"""

from __future__ import annotations

from repro.experiments.cluster_exp import compute_cluster
from repro.experiments.common import sample_workloads


def bench(context):
    workloads = sample_workloads(context.workloads, 2, seed=3)
    return compute_cluster(
        context.smt_rates,
        workloads,
        n_machines=3,
        jobs_per_machine=240,
        seed=0,
    )


def test_cluster(benchmark, context):
    comparisons = benchmark.pedantic(
        bench, args=(context,), rounds=1, iterations=1
    )
    assert len(comparisons) == 2
    for comparison in comparisons:
        # The analytic reduction (joint LP == M x single-machine LP) ...
        assert abs(
            comparison.joint_lp_throughput
            - comparison.reduced_lp_throughput
        ) <= 1e-6 * comparison.joint_lp_throughput
        # ... and its dynamic counterpart.
        assert comparison.within_tolerance
