"""Benchmark: regenerate Figure 2 (FCFS-vs-optimal scatter + slope)."""

from __future__ import annotations

from repro.experiments.figure2 import compute_figure2


def bench(context):
    return (
        compute_figure2(context.smt_rates, context.workloads, config="smt"),
        compute_figure2(context.quad_rates, context.workloads, config="quad"),
    )


def test_figure2(benchmark, context):
    smt, quad = benchmark.pedantic(
        bench, args=(context,), rounds=2, iterations=1
    )
    assert 0.0 < smt.slope < 1.0
    assert 0.0 < quad.slope < 1.0
    assert smt.mean_bridged_fraction > 0.5
