"""Benchmark: regenerate Figure 3 (linear-bottleneck scatter)."""

from __future__ import annotations

from repro.experiments.figure3 import compute_figure3


def bench(context):
    return (
        compute_figure3(context.smt_rates, context.workloads, config="smt"),
        compute_figure3(context.quad_rates, context.workloads, config="quad"),
    )


def test_figure3(benchmark, context):
    smt, quad = benchmark.pedantic(
        bench, args=(context,), rounds=2, iterations=1
    )
    assert smt.correlation > 0.0
    assert quad.correlation > 0.0
