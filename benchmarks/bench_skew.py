"""Benchmark: the workload-skew sweep (Section III-D remark)."""

from __future__ import annotations

from repro.experiments.common import sample_workloads
from repro.experiments.skew_exp import compute_skew


def bench(context):
    workloads = sample_workloads(context.workloads, 8, seed=21)
    return compute_skew(
        context.smt_rates, workloads, skews=(1.0, 4.0, 16.0)
    )


def test_skew(benchmark, context):
    points = benchmark.pedantic(bench, args=(context,), rounds=2, iterations=1)
    by_skew = {p.skew: p for p in points}
    # Heavy skew strangles the symbiotic headroom.
    assert by_skew[16.0].mean_gain < by_skew[1.0].mean_gain + 0.005
    assert by_skew[16.0].mean_gain < 0.02
