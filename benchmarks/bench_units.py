"""Benchmark: the unit-of-work comparison (Section III-B)."""

from __future__ import annotations

from repro.experiments.common import sample_workloads
from repro.experiments.units_exp import compute_units


def bench(context):
    workloads = sample_workloads(context.workloads, 8, seed=4)
    return compute_units(context.smt_rates, workloads)


def test_units(benchmark, context):
    comparisons = benchmark.pedantic(
        bench, args=(context,), rounds=2, iterations=1
    )
    for c in comparisons:
        assert 0.0 <= c.weighted_gain < 0.25
        assert 0.0 <= c.instruction_gain < 0.25
