"""Benchmark: regenerate Figure 5 (latency experiment grid).

The discrete-event grid is the most expensive artifact, so the bench
runs a reduced but structurally complete version: all four schedulers
at two loads over a handful of workloads.
"""

from __future__ import annotations

from repro.experiments.common import sample_workloads
from repro.experiments.figure5 import compute_figure5


def bench(context):
    workloads = sample_workloads(context.workloads, 3, seed=1)
    return compute_figure5(
        context.smt_rates,
        workloads,
        loads=(0.8, 0.95),
        n_jobs=2_500,
        seed=0,
    )


def test_figure5(benchmark, context):
    cells = benchmark.pedantic(bench, args=(context,), rounds=1, iterations=1)
    by_key = {(c.scheduler, c.load): c for c in cells}
    assert by_key[("srpt", 0.8)].mean_turnaround <= by_key[
        ("fcfs", 0.8)
    ].mean_turnaround
    assert by_key[("maxtp", 0.95)].turnaround_vs_fcfs < 1.0
