"""Benchmark: regenerate Figure 6 (saturation throughput series)."""

from __future__ import annotations

import pytest

from repro.experiments.common import sample_workloads
from repro.experiments.figure6 import compute_figure6


def bench(context):
    workloads = sample_workloads(context.workloads, 4, seed=2)
    return compute_figure6(
        context.smt_rates, workloads, n_jobs=2_000, seed=0
    )


def test_figure6(benchmark, context):
    points = benchmark.pedantic(bench, args=(context,), rounds=1, iterations=1)
    for p in points:
        assert p.maxtp_relative == pytest.approx(
            p.lp_maximum_relative, abs=0.07
        )
        assert p.srpt_relative == pytest.approx(1.0, abs=0.06)
