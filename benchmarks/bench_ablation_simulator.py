"""Ablation: coschedule-simulation cost (the Sniper-sweep stand-in).

Times the contention fixed point for fresh (uncached) rate tables —
the full 1,365-combination sweep cost is this number scaled up — and
the incremental cost of the cached path the analyses actually hit.
"""

from __future__ import annotations

from repro.microarch.benchmarks import default_roster
from repro.microarch.config import smt_machine
from repro.microarch.rates import RateTable
from repro.microarch.simulator import simulate_coschedule
from repro.util.multiset import multisets

ROSTER = default_roster()
TYPES = ("bzip2", "hmmer", "libquantum", "mcf")


def fresh_sweep():
    machine = smt_machine()
    results = [
        simulate_coschedule(machine, ROSTER, combo)
        for combo in multisets(TYPES, 4)
    ]
    return results


def cached_lookups(rates: RateTable):
    total = 0.0
    for combo in multisets(TYPES, 4):
        total += rates.instantaneous_throughput(combo)
    return total


def test_fixed_point_sweep(benchmark):
    results = benchmark.pedantic(fresh_sweep, rounds=2, iterations=1)
    assert len(results) == 35


def test_cached_rate_lookups(benchmark):
    rates = RateTable(smt_machine())
    cached_lookups(rates)  # warm
    total = benchmark(cached_lookups, rates)
    assert total > 0.0
