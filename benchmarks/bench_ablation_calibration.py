"""Ablation: the SMT calibration knobs DESIGN.md calls out.

Sweeps the front-end fragmentation factor — the single most influential
calibration constant — and records how the headline quantities react:
more fragmentation means more SMT interference (higher per-coschedule
variability) but *not* proportionally more scheduling headroom, which
is the paper's core finding restated as a model property.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.variability import workload_variability
from repro.core.workload import Workload
from repro.microarch.config import smt_machine
from repro.microarch.rates import RateTable

WORKLOADS = [
    Workload.of("bzip2", "hmmer", "libquantum", "mcf"),
    Workload.of("calculix", "mcf", "sjeng", "xalancbmk"),
    Workload.of("gcc.g23", "h264ref", "perlbench", "tonto"),
]


def sweep(fragmentations=(0.06, 0.12, 0.24)):
    outcomes = []
    for frag in fragmentations:
        machine = replace(
            smt_machine(), smt_fragmentation=frag, name=f"smt[f={frag}]"
        )
        rates = RateTable(machine)
        reports = [workload_variability(rates, w) for w in WORKLOADS]
        n = len(reports)
        outcomes.append(
            {
                "fragmentation": frag,
                "it_spread": sum(r.inst_tp_spread for r in reports) / n,
                "optimal_gain": sum(r.avg_tp_best for r in reports) / n,
            }
        )
    return outcomes


def test_fragmentation_sweep(benchmark):
    outcomes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    spreads = [o["it_spread"] for o in outcomes]
    # More fragmentation -> more per-coschedule variability...
    assert spreads == sorted(spreads)
    # ...yet the scheduling headroom stays a small fraction of it.
    for o in outcomes:
        assert o["optimal_gain"] < 0.5 * o["it_spread"]
