"""Benchmark: regenerate the Section-V.D fairness counterfactual."""

from __future__ import annotations

from repro.experiments.common import sample_workloads
from repro.experiments.fairness_cf import compute_fairness_cf


def bench(context):
    workloads = sample_workloads(context.workloads, 10, seed=3)
    return compute_fairness_cf(context.smt_rates, workloads)


def test_fairness(benchmark, context):
    outcomes = benchmark.pedantic(bench, args=(context,), rounds=2, iterations=1)
    mean_gain = sum(o.optimal_change for o in outcomes) / len(outcomes)
    assert mean_gain >= 0.0
    mean_after = sum(o.hetero_fraction_after for o in outcomes) / len(outcomes)
    assert mean_after > 0.5
