#!/usr/bin/env python
"""Scale-out benchmark: wall clock AND peak memory vs job count.

The streaming-metrics tentpole claims a cluster run's memory footprint
is bounded by the jobs *in* the system, never by the jobs it has
completed — so a 10x longer run must cost 10x the time but ~0x extra
memory.  This benchmark measures that directly: a 64-machine cluster
under Poisson traffic at 100k (default), 1M (``--full``), and 10M
(``REPRO_BENCH_10M=1``) jobs, reporting

* ``wall_s`` — monolithic compiled-engine run;
* ``sharded_s`` — the same run split into time-slice shards via
  :func:`repro.queueing.sharding.run_sharded` (the pause/merge
  overhead the CI gate bounds as a *ratio* of ``wall_s``);
* ``tracemalloc_peak_mb`` — peak Python-heap allocation;
* ``peak_rss_mb`` — the process high-water mark (``ru_maxrss``).

Every measurement runs in its own fresh interpreter: RSS high-water
marks can't leak between cases, and tracemalloc's slowdown never
touches the timing runs.  Results land in ``BENCH_CORE.json`` trajectory
point 2 and are gated by ``tools/compare_bench.py --scale``.

Usage::

    python benchmarks/bench_scale.py --json results/bench_scale.json
    python benchmarks/bench_scale.py --full          # adds the 1M case
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

N_MACHINES = 64
CONTEXTS = 2
SEED = 13
#: Offered load: mean job arrival rate per machine.  Calibrated well
#: inside the stable region so the in-system population — and with it
#: the memory ceiling — stays O(machines), independent of run length.
RATE_PER_MACHINE = 0.9
DEFAULT_SHARDS = 8


def _build():
    from repro.queueing.cluster import Cluster
    from repro.queueing.dispatch import RoundRobinDispatcher
    from repro.queueing.hotpath import synthetic_rates
    from repro.queueing.schedulers import make_scheduler

    rates, types = synthetic_rates(n_types=5, contexts=CONTEXTS, seed=7)
    cluster = Cluster(
        rates,
        [
            make_scheduler("maxit", rates, CONTEXTS)
            for _ in range(N_MACHINES)
        ],
        RoundRobinDispatcher(),
    )
    return cluster, types


def _stream(types, n_jobs: int):
    from repro.queueing.arrivals import poisson_arrivals

    return poisson_arrivals(
        types,
        rate=RATE_PER_MACHINE * N_MACHINES,
        n_jobs=n_jobs,
        seed=SEED,
    )


def _max_events(n_jobs: int) -> int:
    return 4 * n_jobs + 10_000


def _worker_time(n_jobs: int, shards: int) -> dict:
    cluster, types = _build()
    start = time.perf_counter()
    metrics = cluster.run(
        _stream(types, n_jobs),
        engine="compiled",
        max_events=_max_events(n_jobs),
    )
    wall_s = time.perf_counter() - start

    from repro.queueing.sharding import plan_boundaries, run_sharded

    cluster, types = _build()
    duration = n_jobs / (RATE_PER_MACHINE * N_MACHINES)
    start = time.perf_counter()
    sharded = run_sharded(
        cluster,
        lambda: _stream(types, n_jobs),
        boundaries=plan_boundaries(shards, duration),
        engine="compiled",
        max_events=_max_events(n_jobs),
    )
    sharded_s = time.perf_counter() - start
    if [m.to_jsonable() for m in sharded.metrics.per_machine] != [
        m.to_jsonable() for m in metrics.per_machine
    ]:
        raise SystemExit("sharded metrics diverged from monolithic run")
    return {
        "wall_s": round(wall_s, 4),
        "sharded_s": round(sharded_s, 4),
        "shards": shards,
        "completed": metrics.completed,
        "jobs_per_s": round(metrics.completed / wall_s, 1),
    }


def _worker_mem(n_jobs: int) -> dict:
    import resource
    import tracemalloc

    cluster, types = _build()
    tracemalloc.start()
    metrics = cluster.run(
        _stream(types, n_jobs),
        engine="compiled",
        max_events=_max_events(n_jobs),
    )
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "tracemalloc_peak_mb": round(peak / 1e6, 2),
        "peak_rss_mb": round(rss_kb / 1024, 1),
        "completed": metrics.completed,
    }


def _spawn(worker: str, n_jobs: int, shards: int) -> dict:
    """One measurement in a fresh interpreter; JSON on stdout."""
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--worker",
            worker,
            "--n-jobs",
            str(n_jobs),
            "--shards",
            str(shards),
        ],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"{worker} worker failed for n_jobs={n_jobs}:\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--json", type=Path, default=None, metavar="FILE",
        help="write the measurement payload as JSON",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="add the 1M-job case (about a minute)",
    )
    parser.add_argument(
        "--shards", type=int, default=DEFAULT_SHARDS,
        help="shard count for the sharded_s measurement",
    )
    parser.add_argument("--worker", choices=["time", "mem"], default=None)
    parser.add_argument("--n-jobs", type=int, default=None)
    args = parser.parse_args(argv)

    if args.worker is not None:
        result = (
            _worker_time(args.n_jobs, args.shards)
            if args.worker == "time"
            else _worker_mem(args.n_jobs)
        )
        json.dump(result, sys.stdout)
        return 0

    counts = [100_000]
    if args.full:
        counts.append(1_000_000)
    if os.environ.get("REPRO_BENCH_10M"):
        counts.append(10_000_000)

    cases = []
    for n_jobs in counts:
        timing = _spawn("time", n_jobs, args.shards)
        memory = _spawn("mem", n_jobs, args.shards)
        case = {"n_jobs": n_jobs, **timing, **{
            k: v for k, v in memory.items() if k != "completed"
        }}
        cases.append(case)
        print(
            f"{n_jobs:>10,} jobs  wall {case['wall_s']:8.2f}s  "
            f"sharded {case['sharded_s']:8.2f}s "
            f"(x{case['sharded_s'] / case['wall_s']:.2f})  "
            f"heap peak {case['tracemalloc_peak_mb']:7.1f} MB  "
            f"rss peak {case['peak_rss_mb']:7.1f} MB  "
            f"({case['jobs_per_s']:,.0f} jobs/s)"
        )

    if len(cases) > 1:
        growth = (
            cases[-1]["tracemalloc_peak_mb"] / cases[0]["tracemalloc_peak_mb"]
        )
        jobs_growth = cases[-1]["n_jobs"] / cases[0]["n_jobs"]
        print(
            f"memory flatness: {jobs_growth:.0f}x the jobs cost "
            f"{growth:.2f}x the peak heap"
        )

    payload = {
        "config": {
            "n_machines": N_MACHINES,
            "contexts": CONTEXTS,
            "rate_per_machine": RATE_PER_MACHINE,
            "engine": "compiled",
            "scheduler": "maxit",
            "dispatcher": "round_robin",
            "seed": SEED,
        },
        "cases": cases,
    }
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
