"""Benchmark: the event-core hot paths (perf points 0 and 1).

Times the fixed synthetic-rate workloads of
:mod:`repro.queueing.hotpath` — the saturated MAXIT/SRPT probing
clusters (narrow and wide) and the bursty MAXTP + affinity scenario
run — on the interned-type fast path (point 0) and the count-vector
compiled engine (point 1), and checks them against the committed
``BENCH_CORE.json`` perf trajectory with a generous tolerance (CI
hardware varies; only a wholesale regression fails).  A correctness
assertion pins the fast path to the legacy string path on the MAXIT
workload: identical completions, work, and turnarounds (the exhaustive
three-engine pin is ``tests/property/test_differential_engines.py``).

Refreshing the baseline after an intentional perf-relevant change::

    python tools/profile_hotpaths.py --json BENCH_CORE.json

Run with ``-s`` (or check the benchmark JSON) to see the run-memo
hit/miss stats each workload printed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.registry import to_jsonable
from repro.queueing.hotpath import HOTPATH_WORKLOADS, saturated_cluster

#: CI machines differ; a committed baseline only bounds a fresh
#: measurement up to this factor.  Override with REPRO_PERF_TOLERANCE
#: (set it to 0 to skip the timing gate, e.g. on very slow hardware —
#: the completion-count and memo-efficacy assertions still run).
BASELINE_TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "2.0"))

BASELINE_PATH = Path(__file__).resolve().parents[1] / "BENCH_CORE.json"


def committed_baseline() -> dict[str, dict]:
    """The committed trajectory's most recent per-workload numbers."""
    if not BASELINE_PATH.exists():
        return {}
    payload = json.loads(BASELINE_PATH.read_text())
    trajectory = payload.get("trajectory", [])
    return trajectory[-1].get("benchmarks", {}) if trajectory else {}


@pytest.mark.parametrize("workload", sorted(HOTPATH_WORKLOADS))
def test_hotpath_legacy(benchmark, workload):
    """The legacy string path, timed on *this* machine.

    Not a gate by itself: it calibrates the absolute comparison in
    ``tools/compare_bench.py`` (a slow CI runner is slow on both
    paths, so the committed budget is scaled by the observed
    legacy-path ratio) and feeds the fresh machine-local speedup
    check.
    """
    runner = HOTPATH_WORKLOADS[workload]
    metrics, _ = benchmark.pedantic(
        runner, kwargs={"fast_path": False}, rounds=2, iterations=1
    )
    baseline = committed_baseline().get(workload)
    if baseline:
        assert metrics.completed == baseline["completed"]


@pytest.mark.parametrize("workload", sorted(HOTPATH_WORKLOADS))
def test_hotpath(benchmark, workload):
    runner = HOTPATH_WORKLOADS[workload]
    metrics, stats = benchmark.pedantic(runner, rounds=3, iterations=1)

    # Cache efficacy is part of the contract: a steady-state run must
    # overwhelmingly hit the memo (surface the numbers either way).
    assert stats is not None
    print(f"\n[{workload}] memo stats: {stats}")
    assert stats["hits"] > stats["misses"], stats
    benchmark.extra_info["memo_stats"] = stats
    benchmark.extra_info["completed"] = metrics.completed

    baseline = committed_baseline().get(workload)
    if baseline:
        # Completions are hardware-independent: they must match the
        # committed baseline exactly (same workload, same engine).
        assert metrics.completed == baseline["completed"]
        if not BASELINE_TOLERANCE:
            return
        measured = benchmark.stats.stats.min
        budget = baseline["fast_s"] * BASELINE_TOLERANCE
        assert measured <= budget, (
            f"{workload}: {measured:.3f}s exceeds {budget:.3f}s "
            f"({BASELINE_TOLERANCE}x the committed {baseline['fast_s']:.3f}s "
            "baseline) — the hot path regressed; see BENCH_CORE.json"
        )


@pytest.mark.parametrize("workload", sorted(HOTPATH_WORKLOADS))
def test_hotpath_compiled(benchmark, workload):
    """The count-vector compiled engine (perf point 1).

    Surfaces the engine's own counters (fusion, batching, probe
    vectorization) in the benchmark JSON, and gates the timing against
    the committed ``compiled_s`` baseline.
    """
    runner = HOTPATH_WORKLOADS[workload]
    metrics, stats = benchmark.pedantic(
        runner, kwargs={"engine": "compiled"}, rounds=3, iterations=1
    )

    assert stats is not None
    engine_stats = stats.get("engine")
    assert engine_stats is not None, "compiled run reported no engine stats"
    print(f"\n[{workload}] engine stats: {engine_stats}")
    benchmark.extra_info["memo_stats"] = {
        k: v for k, v in stats.items() if k != "engine"
    }
    benchmark.extra_info["engine_stats"] = engine_stats
    benchmark.extra_info["completed"] = metrics.completed

    baseline = committed_baseline().get(workload)
    if baseline:
        assert metrics.completed == baseline["completed"]
        if not BASELINE_TOLERANCE or not baseline.get("compiled_s"):
            return
        measured = benchmark.stats.stats.min
        budget = baseline["compiled_s"] * BASELINE_TOLERANCE
        assert measured <= budget, (
            f"{workload}: {measured:.3f}s exceeds {budget:.3f}s "
            f"({BASELINE_TOLERANCE}x the committed "
            f"{baseline['compiled_s']:.3f}s baseline) — the compiled "
            "engine regressed; see BENCH_CORE.json"
        )


def test_fast_path_matches_legacy_path():
    """Spot-check (the exhaustive pin is the equivalence property
    test): both paths produce identical ClusterMetrics on the
    saturated MAXIT workload at a reduced size."""
    fast, _ = saturated_cluster("maxit", n_jobs=600, fast_path=True)
    legacy, _ = saturated_cluster("maxit", n_jobs=600, fast_path=False)
    assert to_jsonable(fast) == to_jsonable(legacy)
