"""Benchmark: the scenario sweep (nonstationary workloads x dispatch).

Times the full scenario registry — bursty MMPP, diurnal, batch storms,
heavy-tailed/bimodal sizes, skewed types, saturation, trace replay —
against all three dispatchers on the cluster simulator.  The
assertions are the sweep's structural invariants: every cell ran to
completion, fairness is a valid balance ratio, and the saturated
scenario keeps the cluster busier than the baseline's offered load.
"""

from __future__ import annotations

from repro.experiments.common import sample_workloads
from repro.experiments.scenario_sweep import (
    DISPATCHERS,
    compute_scenario_sweep,
)
from repro.queueing.scenarios import all_scenarios


def bench(context):
    workload = sample_workloads(context.workloads, 1, seed=11)[0]
    return compute_scenario_sweep(
        context.smt_rates, workload, n_jobs=600, seed=0
    )


def test_scenarios(benchmark, context):
    outcomes = benchmark.pedantic(
        bench, args=(context,), rounds=1, iterations=1
    )
    assert len(outcomes) == len(all_scenarios()) * len(DISPATCHERS)
    by_scenario = {}
    for outcome in outcomes:
        assert outcome.completed > 0, outcome
        assert 0.0 <= outcome.fairness <= 1.0, outcome
        assert outcome.throughput > 0.0, outcome
        by_scenario.setdefault(outcome.scenario, []).append(outcome)
    # Saturation packs the machines harder than the 70%-load baseline.
    saturated = max(
        o.utilization for o in by_scenario["saturated_backlog"]
    )
    baseline = max(
        o.utilization for o in by_scenario["baseline_poisson"]
    )
    assert saturated > baseline
