"""Benchmark fixtures.

Each ``bench_*`` module regenerates one paper artifact.  The rate
tables are shared and pre-warmed at session scope so the benchmarks
time the *analysis* (LP solves, Markov chains, discrete-event runs) on
top of a fixed simulated dataset — the same separation the paper has
between its one-off Sniper sweep and its scheduling analyses.

Workload samples are deterministic; pass ``--benchmark-only`` to run
these without the unit suite.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentContext, default_context

N_WORKLOADS = 20


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """Shared context with pre-warmed rate caches."""
    ctx = default_context(max_workloads=N_WORKLOADS, seed=42)
    for workload in ctx.workloads:
        for rates in (ctx.smt_rates, ctx.quad_rates):
            for coschedule in workload.coschedules(4):
                rates.type_rates(coschedule)
    return ctx
