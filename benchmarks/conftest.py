"""Benchmark fixtures.

Each ``bench_*`` module regenerates one paper artifact.  The rate
tables are shared, wrapped in a persisted
:class:`~repro.microarch.rate_cache.CachedRateSource`, and pre-warmed
at session scope so the benchmarks time the *analysis* (LP solves,
Markov chains, discrete-event runs) on top of a fixed simulated
dataset — the same separation the paper has between its one-off Sniper
sweep and its scheduling analyses.

The cache file (default ``benchmarks/.rate_cache.json``; override with
``REPRO_RATE_CACHE``, or set it to ``-`` to disable persistence) is the
same format the experiment runner writes, so ``python -m
repro.experiments all`` warms the benchmarks and vice versa.  Cache
statistics are printed when the session ends.

Workload samples are deterministic; pass ``--benchmark-only`` to run
these without the unit suite.  Benchmarks can also assert against
structured runner output: point ``REPRO_RESULTS_DIR`` at a directory
produced by ``python -m repro.experiments all --results-dir ...`` and
use the ``runner_results`` fixture.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator

import pytest

from repro.experiments.common import ExperimentContext, default_context

N_WORKLOADS = 20

_DEFAULT_CACHE = Path(__file__).resolve().parent / ".rate_cache.json"


def _cache_path() -> Path | None:
    value = os.environ.get("REPRO_RATE_CACHE")
    if value == "-":
        return None
    return Path(value) if value else _DEFAULT_CACHE


@pytest.fixture(scope="session")
def context() -> Iterator[ExperimentContext]:
    """Shared context with pre-warmed, persisted rate caches."""
    path = _cache_path()
    ctx = default_context(max_workloads=N_WORKLOADS, seed=42, cache_path=path)
    for workload in ctx.workloads:
        for rates in (ctx.smt_rates, ctx.quad_rates):
            for coschedule in workload.coschedules(4):
                rates.type_rates(coschedule)
    yield ctx
    saved = ctx.save_cache()
    stats = ctx.cache_stats()
    if saved is not None:
        print(f"\n{stats.render()}; {saved} entries persisted to {path}")


@pytest.fixture(scope="session")
def runner_results() -> dict[str, dict]:
    """Structured JSON results emitted by the experiment runner.

    Skips unless ``REPRO_RESULTS_DIR`` points at a directory written by
    ``python -m repro.experiments ... --results-dir DIR``.
    """
    root = os.environ.get("REPRO_RESULTS_DIR")
    if not root:
        pytest.skip("REPRO_RESULTS_DIR not set")
    results = {
        path.stem: json.loads(path.read_text())
        for path in sorted(Path(root).glob("*.json"))
    }
    if not results:
        pytest.skip(f"no runner results under {root}")
    return results
