"""Benchmark: the estimation layer (oracle vs. estimated rate runs).

Times a reduced policy tournament — oracle vs. estimated
MAXIT/SRPT/affinity on paired arrival streams — and, separately, one
matched (oracle, estimated) run pair so the estimation layer's
overhead is visible as a same-machine ratio.  The assertions pin the
layer's contracts: every zero-noise cell is exactly degradation-free
(the bit-identity control), noisy runs actually observe and
re-optimize, and the estimated-mode overhead stays within a generous
bound (the observation feed plus periodic re-solves must not dominate
the event core).
"""

from __future__ import annotations

import time

from repro.core.workload import Workload
from repro.experiments.common import sample_workloads
from repro.experiments.policy_tournament import POLICIES, compute_tournament
from repro.queueing.cluster import Cluster
from repro.queueing.dispatch import make_dispatcher
from repro.queueing.estimation import EstimationConfig
from repro.queueing.hotpath import synthetic_rates
from repro.queueing.scenarios import get_scenario
from repro.queueing.schedulers import make_scheduler

#: Estimated-mode wall time over oracle wall time, same machine, same
#: stream.  Generous: only a wholesale regression (e.g. re-solving the
#: LP per event instead of per round) should trip it.
MAX_ESTIMATION_OVERHEAD = 5.0


def bench(context):
    workload = sample_workloads(context.workloads, 1, seed=5)[0]
    return compute_tournament(
        context.smt_rates,
        workload,
        scenarios=[
            get_scenario("baseline_poisson"),
            get_scenario("saturated_backlog"),
        ],
        noise_levels=(0.0, 0.4),
        warmup_fracs=(0.0,),
        n_seeds=1,
        n_jobs=160,
        seed=0,
    )


def test_tournament(benchmark, context):
    result = benchmark.pedantic(
        bench, args=(context,), rounds=1, iterations=1
    )
    cells = result["cells"]
    assert len(cells) == 2 * len(POLICIES) * 2  # scenarios x policies x noise
    for cell in cells:
        if cell.noise == 0.0:
            # The control: zero noise + warm prior is bit-identical.
            assert cell.tp_degradation == 0.0, cell
            assert cell.est_completed == cell.oracle_completed, cell
        else:
            stats = cell.estimator
            assert stats is not None and stats["observations"] > 0, cell
    assert result["summary"], "summary rows must aggregate the cells"


def _run_pair():
    """One matched (oracle, estimated) run; returns their wall times."""
    rates, names = synthetic_rates(n_types=4, contexts=3)
    workload = Workload.of(*names)

    def run(rate_source, estimation):
        jobs = list(
            get_scenario("saturated_backlog").build_jobs(
                names, mean_rate=0.0, seed=9, n_jobs=400
            )
        )
        cluster = Cluster(
            rates,
            [
                make_scheduler("maxit", rates, 3, workload=workload)
                for _ in range(2)
            ],
            make_dispatcher("jsq"),
        )
        start = time.perf_counter()
        metrics = cluster.run(
            jobs,
            stop_when_fewer_than=6,
            keep_in_system=10,
            rate_source=rate_source,
            estimation=estimation,
        )
        return time.perf_counter() - start, metrics

    oracle_s, oracle_metrics = run("oracle", None)
    estimated_s, est_metrics = run(
        "estimated",
        EstimationConfig(
            noise=0.3, prior="single_run", reopt_observations=32, seed=2
        ),
    )
    # The saturated stop rule leaves the trailing backlog in-system.
    assert oracle_metrics.completed >= 350
    assert est_metrics.completed >= 350
    return oracle_s, estimated_s


def test_estimation_overhead(benchmark):
    oracle_s, estimated_s = benchmark.pedantic(
        _run_pair, rounds=1, iterations=1
    )
    overhead = estimated_s / oracle_s
    assert overhead <= MAX_ESTIMATION_OVERHEAD, (
        f"estimated-mode run took {overhead:.2f}x the oracle run "
        f"(bound {MAX_ESTIMATION_OVERHEAD}x) — the observation feed or "
        "re-optimization rounds have regressed"
    )
