"""Benchmark: regenerate Figure 4 (M/M/4 turnaround curves + example)."""

from __future__ import annotations

import pytest

from repro.experiments.figure4 import compute_curves, compute_example


def bench():
    example = compute_example()
    curves = compute_curves(n_points=50)
    return example, curves


def test_figure4(benchmark):
    example, curves = benchmark.pedantic(bench, rounds=5, iterations=1)
    assert example.base_jobs_in_system == pytest.approx(8.7, abs=0.05)
    assert example.turnaround_reduction == pytest.approx(0.16, abs=0.01)
    assert len(curves) == 50
