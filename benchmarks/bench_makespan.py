"""Benchmark: the small-set makespan comparison (Section II)."""

from __future__ import annotations

from repro.experiments.common import sample_workloads
from repro.experiments.makespan_exp import compute_makespan


def bench(context):
    workloads = sample_workloads(context.workloads, 4, seed=6)
    return compute_makespan(
        context.smt_rates, workloads, set_sizes=(8, 16), seeds=(0, 1)
    )


def test_makespan(benchmark, context):
    cells = benchmark.pedantic(bench, args=(context,), rounds=2, iterations=1)
    by_key = {(c.scheduler, c.n_jobs): c for c in cells}
    # LJF is competitive with the symbiosis-aware MAXIT on small sets.
    assert by_key[("ljf", 16)].makespan_vs_fcfs < 1.05
    # Drain time is a visible share of the makespan.
    assert by_key[("fcfs", 8)].mean_drain_fraction > 0.05
