"""Ablation: FCFS throughput — analytic Markov chain vs discrete-event.

The TPCalc-style chain is the default because it is exact under
exponential sizes and orders of magnitude faster; this bench pins that
trade-off down and checks the two stay in agreement.
"""

from __future__ import annotations

import pytest

from repro.core.fcfs import fcfs_throughput, simulate_fcfs_throughput


def analytic(context):
    return [
        fcfs_throughput(context.smt_rates, w).throughput
        for w in context.workloads[:8]
    ]


def simulated(context):
    return [
        simulate_fcfs_throughput(
            context.smt_rates, w, n_jobs=4_000, seed=1
        ).throughput
        for w in context.workloads[:8]
    ]


def test_fcfs_markov_chain(benchmark, context):
    values = benchmark.pedantic(
        analytic, args=(context,), rounds=3, iterations=1
    )
    assert all(v > 0 for v in values)


def test_fcfs_discrete_event(benchmark, context):
    des = benchmark.pedantic(
        simulated, args=(context,), rounds=1, iterations=1
    )
    chain = analytic(context)
    for a, b in zip(des, chain):
        assert a == pytest.approx(b, rel=0.05)
