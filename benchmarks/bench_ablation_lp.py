"""Ablation: LP backend cost (from-scratch simplex vs scipy HiGHS).

DESIGN.md calls out the simplex implementation as a deliberately
self-contained substrate; this bench quantifies what that choice costs
on real Section-IV programs relative to the industrial solver.
"""

from __future__ import annotations

import pytest

from repro.core.optimal import optimal_throughput


def solve_all(context, backend):
    return [
        optimal_throughput(
            context.smt_rates, workload, backend=backend
        ).throughput
        for workload in context.workloads
    ]


def test_simplex_backend(benchmark, context):
    values = benchmark.pedantic(
        solve_all, args=(context, "simplex"), rounds=2, iterations=1
    )
    assert len(values) == len(context.workloads)


def test_scipy_backend(benchmark, context):
    pytest.importorskip("scipy")
    values = benchmark.pedantic(
        solve_all, args=(context, "scipy"), rounds=2, iterations=1
    )
    assert len(values) == len(context.workloads)
