"""Terminal-friendly plots for the experiment drivers.

The library has no plotting dependency, so the figure drivers render
their series as monospace scatter plots and bar charts.  These are
deliberately simple: fixed-size character grids, linear axes, one
glyph per series.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["scatter", "hbar"]


def _axis_bounds(values: Sequence[float]) -> tuple[float, float]:
    lo, hi = min(values), max(values)
    if math.isclose(lo, hi):
        pad = abs(lo) * 0.1 or 1.0
        return lo - pad, hi + pad
    return lo, hi


def scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    *,
    width: int = 64,
    height: int = 18,
    marker: str = "o",
    x_label: str = "x",
    y_label: str = "y",
    extra: Mapping[str, tuple[Sequence[float], Sequence[float]]] | None = None,
) -> str:
    """Render an ASCII scatter plot.

    Args:
        xs, ys: the primary series.
        width, height: plot-area size in characters.
        marker: glyph for the primary series.
        x_label, y_label: axis captions.
        extra: optional named series ``{glyph: (xs, ys)}`` drawn over
            the same axes (later series overwrite earlier glyphs).

    Returns:
        A multi-line string.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if not xs:
        raise ValueError("cannot plot an empty series")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")

    all_x = list(xs)
    all_y = list(ys)
    series: list[tuple[str, Sequence[float], Sequence[float]]] = [
        (marker, xs, ys)
    ]
    for glyph, (sx, sy) in (extra or {}).items():
        if len(sx) != len(sy):
            raise ValueError(f"length mismatch in series {glyph!r}")
        series.append((glyph, sx, sy))
        all_x.extend(sx)
        all_y.extend(sy)

    x_lo, x_hi = _axis_bounds(all_x)
    y_lo, y_hi = _axis_bounds(all_y)
    grid = [[" "] * width for _ in range(height)]

    for glyph, sx, sy in series:
        for x, y in zip(sx, sy):
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph[0]

    lines = [f"{y_hi:10.3g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + "|" + "".join(row))
    lines.append(f"{y_lo:10.3g} +" + "".join(grid[-1]))
    lines.append(
        " " * 11 + f"{x_lo:<10.3g}" + x_label.center(width - 20)
        + f"{x_hi:>10.3g}"
    )
    return f"{y_label}\n" + "\n".join(lines)


def hbar(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 48,
    fill: str = "#",
    zero: float = 0.0,
) -> str:
    """Render a horizontal bar chart (supports negative bars).

    Args:
        labels: one label per bar.
        values: bar lengths (relative to ``zero``).
        width: total character width of the bar area.
        fill: bar glyph.
        zero: the baseline value.

    Returns:
        A multi-line string, one bar per line, with the numeric value
        appended.
    """
    if len(labels) != len(values):
        raise ValueError(f"length mismatch: {len(labels)} vs {len(values)}")
    if not labels:
        raise ValueError("cannot plot an empty chart")
    label_width = max(len(label) for label in labels)
    magnitude = max(abs(v - zero) for v in values) or 1.0
    half = max(1, width // 2)

    lines = []
    for label, value in zip(labels, values):
        length = round(abs(value - zero) / magnitude * half)
        if value >= zero:
            bar = " " * half + fill * length
        else:
            bar = " " * (half - length) + fill * length
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(2 * half)}| {value:+.3g}"
        )
    return "\n".join(lines)
