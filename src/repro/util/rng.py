"""Deterministic random-number handling.

Every stochastic component in the library (arrival processes, job sizes,
workload sampling) takes an explicit seed or an already-constructed
generator, so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import random

__all__ = ["make_rng"]


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a ``random.Random`` from a seed, generator, or None.

    Passing an existing generator returns it unchanged (so composite
    experiments can share one stream); passing ``None`` creates an
    unseeded generator, which callers should only do in exploratory code.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)
