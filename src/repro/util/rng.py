"""Deterministic random-number handling.

Every stochastic component in the library (arrival processes, job sizes,
workload sampling) takes an explicit seed or an already-constructed
generator, so experiments are reproducible bit-for-bit.

Components that draw for several *purposes* (inter-arrival times, job
types, job sizes) derive one independent child stream per purpose via
:func:`derive_rng`, so adding or swapping one distribution never
reorders the draws of another — the arrival times of a scenario are
identical whatever its size distribution.
"""

from __future__ import annotations

import random

__all__ = ["make_rng", "derive_rng"]


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a ``random.Random`` from a seed, generator, or None.

    Passing an existing generator returns it unchanged (so composite
    experiments can share one stream); passing ``None`` creates an
    unseeded generator, which callers should only do in exploratory code.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def derive_rng(seed: int | random.Random | None, stream: str) -> random.Random:
    """Derive an independent, named child stream from a base seed.

    The child is seeded from ``(seed, stream)`` via the string-seeding
    path of ``random.Random`` (SHA-512 based, stable across processes
    and Python versions), so distinct stream names give decorrelated
    generators and the same (seed, name) pair always gives the same
    stream.  Passing an existing generator consumes one 64-bit draw
    from it to seed the child — deterministic for a seeded parent, and
    successive derivations from one parent stay distinct.  ``None``
    mirrors :func:`make_rng`: an OS-entropy child, fresh every call.
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return random.Random(f"{seed.getrandbits(64)}:{stream}")
    return random.Random(f"{seed!r}:{stream}")
