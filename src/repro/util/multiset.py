"""Multiset combinatorics for coschedule enumeration.

A *coschedule* in the paper is an unordered combination-with-repetition of
job types filling the K hardware contexts: for a workload of N = 4 job
types on K = 4 contexts there are C(N+K-1, K) = 35 coschedules (the paper
enumerates AAAA, AAAB, ..., DDDD).  We represent a multiset canonically as
a sorted tuple of its elements.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations_with_replacement
from math import comb, factorial
from typing import Hashable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T", bound=Hashable)

__all__ = [
    "multisets",
    "multiset_count",
    "multiset_counter",
    "multiset_draw_probability",
    "distinct_count",
    "replace_one",
    "sub_multisets",
]


def multisets(items: Sequence[T], size: int) -> Iterator[tuple[T, ...]]:
    """Yield all multisets of ``size`` elements drawn from ``items``.

    Elements are yielded as canonically ordered tuples (the order of
    ``items`` defines the canonical order).  ``items`` must not contain
    duplicates.

    >>> list(multisets("AB", 2))
    [('A', 'A'), ('A', 'B'), ('B', 'B')]
    """
    if size < 0:
        raise ValueError(f"multiset size must be >= 0, got {size}")
    if len(set(items)) != len(items):
        raise ValueError("items must be distinct to enumerate multisets")
    return combinations_with_replacement(tuple(items), size)


def multiset_count(n_items: int, size: int) -> int:
    """Number of multisets of ``size`` elements from ``n_items`` items.

    >>> multiset_count(4, 4)
    35
    >>> multiset_count(12, 4)
    1365
    """
    if n_items < 0 or size < 0:
        raise ValueError("n_items and size must be non-negative")
    if n_items == 0:
        return 1 if size == 0 else 0
    return comb(n_items + size - 1, size)


def multiset_counter(ms: Iterable[T]) -> Counter:
    """Return a Counter of element multiplicities for a multiset."""
    return Counter(ms)


def distinct_count(ms: Iterable[T]) -> int:
    """Number of distinct elements: the paper's *coschedule heterogeneity*.

    >>> distinct_count(("A", "A", "B", "C"))
    3
    """
    return len(set(ms))


def multiset_draw_probability(ms: Sequence[T], n_types: int) -> float:
    """Probability of drawing multiset ``ms`` with uniform i.i.d. draws.

    This is the multinomial probability the paper quotes for the FCFS
    scheduler's "theoretical" coschedule mix (2% / 33% / 56% / 9% for
    heterogeneity 1..4 with N = K = 4).

    >>> round(multiset_draw_probability(("A",) * 4, 4) * 64, 6)
    0.25
    """
    if n_types <= 0:
        raise ValueError("n_types must be positive")
    k = len(ms)
    counts = Counter(ms)
    if len(counts) > n_types:
        raise ValueError("multiset has more distinct elements than n_types")
    permutations = factorial(k)
    for c in counts.values():
        permutations //= factorial(c)
    return permutations / n_types**k


def replace_one(ms: tuple[T, ...], old: T, new: T) -> tuple[T, ...]:
    """Return a new canonical multiset with one ``old`` replaced by ``new``.

    Used by the FCFS Markov chain: a finished job of type ``old`` leaves
    and a freshly drawn job of type ``new`` takes its context.
    """
    items = list(ms)
    try:
        items.remove(old)
    except ValueError:
        raise ValueError(f"{old!r} not present in multiset {ms!r}") from None
    items.append(new)
    items.sort()
    return tuple(items)


def sub_multisets(ms: tuple[T, ...], size: int) -> Iterator[tuple[T, ...]]:
    """Yield the distinct sub-multisets of ``ms`` with exactly ``size`` elements.

    Used by schedulers that must pick which jobs to run when the system
    holds more jobs than contexts.

    >>> sorted(set(sub_multisets(("A", "A", "B"), 2)))
    [('A', 'A'), ('A', 'B')]
    """
    if size > len(ms):
        return iter(())
    counts = Counter(ms)
    keys = sorted(counts)

    def rec(idx: int, remaining: int) -> Iterator[tuple[T, ...]]:
        if remaining == 0:
            yield ()
            return
        if idx == len(keys):
            return
        key = keys[idx]
        max_take = min(counts[key], remaining)
        for take in range(max_take + 1):
            for rest in rec(idx + 1, remaining - take):
                yield (key,) * take + rest

    return rec(0, size)
