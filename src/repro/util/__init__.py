"""Shared utilities: multiset combinatorics, fixed points, statistics."""

from repro.util.multiset import (
    multisets,
    multiset_count,
    multiset_counter,
    multiset_draw_probability,
    distinct_count,
    replace_one,
    sub_multisets,
)
from repro.util.fixedpoint import FixedPointResult, solve_fixed_point
from repro.util.stats import (
    pearson,
    slope_through_origin,
    spread,
    summarize,
    SummaryStats,
)
from repro.util.rng import make_rng
from repro.util.asciiplot import hbar, scatter

__all__ = [
    "hbar",
    "scatter",
    "multisets",
    "multiset_count",
    "multiset_counter",
    "multiset_draw_probability",
    "distinct_count",
    "replace_one",
    "sub_multisets",
    "FixedPointResult",
    "solve_fixed_point",
    "pearson",
    "slope_through_origin",
    "spread",
    "summarize",
    "SummaryStats",
    "make_rng",
]
