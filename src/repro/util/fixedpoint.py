"""Damped fixed-point iteration driver.

The microarchitectural contention models (shared cache shares, memory-bus
utilization, SMT width shares) are coupled non-linear equations solved as
a fixed point ``x = f(x)``.  This module provides a single, well-tested
driver with under-relaxation so every model converges the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ConvergenceError

__all__ = ["FixedPointResult", "solve_fixed_point"]


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a fixed-point solve.

    Attributes:
        value: the converged state vector.
        iterations: number of iterations performed.
        residual: final max-norm difference between successive iterates.
    """

    value: tuple[float, ...]
    iterations: int
    residual: float


def solve_fixed_point(
    func: Callable[[Sequence[float]], Sequence[float]],
    start: Sequence[float],
    *,
    damping: float = 0.5,
    tolerance: float = 1e-9,
    max_iterations: int = 500,
) -> FixedPointResult:
    """Solve ``x = func(x)`` by damped (under-relaxed) iteration.

    The update is ``x <- (1 - damping) * x + damping * func(x)``; the
    relative max-norm of the raw update is used as the convergence
    criterion, so the result is insensitive to the damping factor.

    Args:
        func: the fixed-point map; must return a sequence of the same
            length as its input.
        start: initial iterate.
        damping: fraction of the new iterate blended in each step,
            in (0, 1].
        tolerance: relative max-norm convergence threshold.
        max_iterations: iteration budget before ConvergenceError.

    Raises:
        ConvergenceError: if the iteration does not converge.
        ValueError: if damping is outside (0, 1] or start is empty.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    x = [float(v) for v in start]
    if not x:
        raise ValueError("start vector must be non-empty")

    residual = float("inf")
    for iteration in range(1, max_iterations + 1):
        fx = [float(v) for v in func(x)]
        if len(fx) != len(x):
            raise ValueError(
                f"fixed-point map changed dimension: {len(x)} -> {len(fx)}"
            )
        residual = max(
            abs(new - old) / max(1.0, abs(old)) for new, old in zip(fx, x)
        )
        x = [
            (1.0 - damping) * old + damping * new for new, old in zip(fx, x)
        ]
        if residual <= tolerance:
            return FixedPointResult(
                value=tuple(x), iterations=iteration, residual=residual
            )
    raise ConvergenceError(
        f"fixed point did not converge in {max_iterations} iterations "
        f"(residual {residual:.3e}, tolerance {tolerance:.3e})"
    )
