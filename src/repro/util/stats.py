"""Small statistics helpers used throughout the analysis modules.

The paper's headline numbers are all simple summary statistics: the
*variability* (max minus min divided by average) of per-job IPC and
throughput, the slope of the FCFS-vs-optimal scatter (Figure 2), and the
correlation between the linear-bottleneck error and throughput
variability (Figure 3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "SummaryStats",
    "summarize",
    "spread",
    "pearson",
    "slope_through_origin",
]


@dataclass(frozen=True)
class SummaryStats:
    """Mean / min / max / count summary of a sample."""

    mean: float
    minimum: float
    maximum: float
    count: int

    @property
    def spread(self) -> float:
        """(max - min) / mean — the paper's *variability* measure."""
        if self.mean == 0.0:
            return 0.0
        return (self.maximum - self.minimum) / self.mean


def summarize(values: Sequence[float]) -> SummaryStats:
    """Summarize a non-empty sample of floats."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    total = float(sum(values))
    return SummaryStats(
        mean=total / len(values),
        minimum=float(min(values)),
        maximum=float(max(values)),
        count=len(values),
    )


def spread(values: Sequence[float]) -> float:
    """The paper's variability: (max - min) / mean of the sample."""
    return summarize(values).spread


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length samples.

    Returns 0.0 when either sample has zero variance (a conservative
    convention that keeps downstream shape checks simple).
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("need at least two points for a correlation")
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx == 0.0 or syy == 0.0:
        return 0.0
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    # sqrt(sxx) * sqrt(syy), not sqrt(sxx * syy): the product of two
    # tiny-but-nonzero variances can underflow to 0.0 and divide by
    # zero.  The split form stays finite whenever both factors do; the
    # residual guard covers subnormal variances whose roots still
    # multiply to zero.
    denom = math.sqrt(sxx) * math.sqrt(syy)
    if denom == 0.0:
        return 0.0
    # Clamp: catastrophic cancellation on near-degenerate samples
    # (spreads at the float-epsilon scale) can push the ratio a hair
    # past the mathematical bound of |r| <= 1.
    return max(-1.0, min(1.0, sxy / denom))


def slope_through_origin(
    xs: Sequence[float], ys: Sequence[float], *, origin: tuple[float, float] = (1.0, 1.0)
) -> float:
    """Least-squares slope of a line forced through ``origin``.

    Figure 2 of the paper fits a line through (1, 1): a workload with no
    scheduling headroom (optimal == worst) necessarily has FCFS == worst
    as well, so the fitted trend is anchored there.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    if not xs:
        raise ValueError("need at least one point to fit a slope")
    ox, oy = origin
    num = sum((x - ox) * (y - oy) for x, y in zip(xs, ys))
    den = sum((x - ox) ** 2 for x in xs)
    if den == 0.0:
        return 0.0
    return num / den
