"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc. still
propagate as usual).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "ConvergenceError",
    "InfeasibleError",
    "UnboundedError",
    "SolverError",
    "SimulationError",
    "EngineStallError",
    "CheckpointError",
    "WorkloadError",
    "EstimationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid machine, benchmark, or experiment configuration."""


class ModelError(ReproError):
    """A performance-model invariant was violated (e.g. negative rate)."""


class ConvergenceError(ModelError):
    """A fixed-point iteration failed to converge within its budget."""


class SolverError(ReproError):
    """Base class for linear-programming solver failures."""


class InfeasibleError(SolverError):
    """The linear program has no feasible point."""


class UnboundedError(SolverError):
    """The linear program is unbounded in the optimization direction."""


class SimulationError(ReproError):
    """A discrete-event simulation entered an inconsistent state."""


class EngineStallError(SimulationError):
    """The event loop processed many consecutive events without the
    clock advancing (a livelock).  Raised with machine/clock
    diagnostics instead of spinning until ``max_events``."""


class CheckpointError(SimulationError):
    """A checkpoint file could not be read back: truncated, not JSON,
    missing required sections, or written by a different format
    version.  The message names the file and the expected format."""


class WorkloadError(ReproError):
    """An invalid workload specification (unknown types, bad counts...)."""


class EstimationError(ReproError):
    """An invalid estimated-rate configuration (e.g. a dispatcher that
    consumes rates but never refreshes them from observations)."""
