"""Linear-programming substrate.

The paper solves its optimal-throughput formulation with the GNU Linear
Programming Kit.  This package provides an equivalent, self-contained
stack:

* :mod:`repro.lp.model` — a small modeling layer (variables, linear
  expressions, constraints, objective) so the Section-IV formulation in
  :mod:`repro.core.optimal` reads like the paper's math.
* :mod:`repro.lp.simplex` — a dense two-phase primal simplex solver with
  Bland's anti-cycling rule, the default backend.
* :mod:`repro.lp.scipy_backend` — an optional backend delegating to
  ``scipy.optimize.linprog`` (HiGHS), used in tests to cross-validate the
  simplex implementation.
"""

from repro.lp.model import Constraint, LinearExpr, Model, Sense, Variable
from repro.lp.solution import LPSolution, SolveStatus
from repro.lp.simplex import solve_standard_form
from repro.lp.standard_form import StandardForm

__all__ = [
    "Constraint",
    "LinearExpr",
    "Model",
    "Sense",
    "Variable",
    "LPSolution",
    "SolveStatus",
    "solve_standard_form",
    "StandardForm",
]
