"""A small LP modeling layer.

Lets the Section-IV throughput program be written the way the paper
states it::

    model = Model("optimal_throughput", sense=Sense.MAXIMIZE)
    x = {s: model.add_variable(f"x[{s}]") for s in coschedules}
    model.add_constraint(sum(x.values()) == 1, name="time_budget")
    ...
    solution = model.solve()

Variables are non-negative by default (matching the paper's time
fractions); free variables and upper bounds are supported for generality
and are exercised by the test suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import ConfigurationError
from repro.lp.solution import LPSolution

__all__ = ["Sense", "Variable", "LinearExpr", "Constraint", "Model"]


class Sense(enum.Enum):
    """Optimization direction."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


class _Relation(enum.Enum):
    """Constraint relation operators."""

    EQ = "=="
    LE = "<="
    GE = ">="


@dataclass(frozen=True)
class Variable:
    """A decision variable.

    Create via :meth:`Model.add_variable`; arithmetic on variables builds
    :class:`LinearExpr` objects.

    Identity semantics: because ``==`` is overloaded to build
    constraints, hashing is by object identity — two variables are the
    same dict key only if they are the same object.  (A value-based
    hash would make coefficient dicts call the overloaded ``__eq__`` on
    collisions, which builds a constraint instead of answering
    equality.)
    """

    name: str
    lower: float | None
    upper: float | None
    index: int

    def __hash__(self) -> int:
        return id(self)

    def _expr(self) -> "LinearExpr":
        return LinearExpr({self: 1.0}, 0.0)

    def __add__(self, other):
        return self._expr() + other

    def __radd__(self, other):
        return self._expr() + other

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-1.0) * self._expr() + other

    def __mul__(self, coefficient: float) -> "LinearExpr":
        return self._expr() * coefficient

    def __rmul__(self, coefficient: float) -> "LinearExpr":
        return self._expr() * coefficient

    def __neg__(self) -> "LinearExpr":
        return self._expr() * -1.0

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return self._expr() == other

    def __le__(self, other) -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other) -> "Constraint":
        return self._expr() >= other


class LinearExpr:
    """An affine expression: sum of coefficient * variable plus constant."""

    __slots__ = ("coefficients", "constant")

    def __init__(
        self,
        coefficients: Mapping[Variable, float] | None = None,
        constant: float = 0.0,
    ) -> None:
        self.coefficients: dict[Variable, float] = dict(coefficients or {})
        self.constant = float(constant)

    @staticmethod
    def _coerce(value) -> "LinearExpr":
        if isinstance(value, LinearExpr):
            return value
        if isinstance(value, Variable):
            return value._expr()
        if isinstance(value, (int, float)):
            return LinearExpr({}, float(value))
        raise TypeError(f"cannot use {type(value).__name__} in a linear expression")

    def copy(self) -> "LinearExpr":
        """Return an independent copy of this expression."""
        return LinearExpr(dict(self.coefficients), self.constant)

    def __add__(self, other) -> "LinearExpr":
        other = self._coerce(other)
        result = self.copy()
        for var, coef in other.coefficients.items():
            result.coefficients[var] = result.coefficients.get(var, 0.0) + coef
        result.constant += other.constant
        return result

    def __radd__(self, other) -> "LinearExpr":
        return self.__add__(other)

    def __sub__(self, other) -> "LinearExpr":
        return self.__add__(self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinearExpr":
        return (self * -1.0).__add__(other)

    def __mul__(self, coefficient: float) -> "LinearExpr":
        if not isinstance(coefficient, (int, float)):
            raise TypeError("LP expressions only support scalar multiplication")
        return LinearExpr(
            {v: c * coefficient for v, c in self.coefficients.items()},
            self.constant * coefficient,
        )

    def __rmul__(self, coefficient: float) -> "LinearExpr":
        return self.__mul__(coefficient)

    def __neg__(self) -> "LinearExpr":
        return self * -1.0

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - self._coerce(other), _Relation.EQ)

    def __le__(self, other) -> "Constraint":
        return Constraint(self - self._coerce(other), _Relation.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - self._coerce(other), _Relation.GE)

    def __hash__(self) -> int:  # consistency with overridden __eq__
        return id(self)

    def evaluate(self, values: Mapping[str, float]) -> float:
        """Evaluate with a variable-name -> value assignment."""
        total = self.constant
        for var, coef in self.coefficients.items():
            total += coef * values.get(var.name, 0.0)
        return total

    def __repr__(self) -> str:
        terms = " + ".join(
            f"{coef:g}*{var.name}" for var, coef in self.coefficients.items()
        )
        return f"LinearExpr({terms or '0'} + {self.constant:g})"


@dataclass
class Constraint:
    """A linear constraint ``expr (==|<=|>=) 0`` with an optional name."""

    expr: LinearExpr
    relation: _Relation
    name: str = ""

    @property
    def rhs(self) -> float:
        """Right-hand side after moving the constant over: expr' rel rhs."""
        return -self.expr.constant

    def violation(self, values: Mapping[str, float]) -> float:
        """Non-negative violation magnitude under an assignment."""
        lhs = self.expr.evaluate(values)
        if self.relation is _Relation.EQ:
            return abs(lhs)
        if self.relation is _Relation.LE:
            return max(0.0, lhs)
        return max(0.0, -lhs)


class Model:
    """A linear program under construction.

    Args:
        name: label used in error messages.
        sense: optimization direction (default MINIMIZE).
    """

    def __init__(self, name: str = "lp", sense: Sense = Sense.MINIMIZE) -> None:
        self.name = name
        self.sense = sense
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinearExpr = LinearExpr()
        self._names: set[str] = set()

    def add_variable(
        self,
        name: str,
        *,
        lower: float | None = 0.0,
        upper: float | None = None,
    ) -> Variable:
        """Add a decision variable (non-negative by default)."""
        if name in self._names:
            raise ConfigurationError(f"duplicate variable name {name!r}")
        if lower is not None and upper is not None and lower > upper:
            raise ConfigurationError(
                f"variable {name!r} has lower {lower} > upper {upper}"
            )
        var = Variable(name=name, lower=lower, upper=upper, index=len(self.variables))
        self.variables.append(var)
        self._names.add(name)
        return var

    def add_constraint(self, constraint: Constraint, *, name: str = "") -> Constraint:
        """Register a constraint built with ==, <= or >=."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a Constraint (use ==, <= or >= on "
                "linear expressions); got "
                f"{type(constraint).__name__}"
            )
        constraint.name = name or f"c{len(self.constraints)}"
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr, *, sense: Sense | None = None) -> None:
        """Set the objective expression (and optionally the sense)."""
        self.objective = LinearExpr._coerce(expr)
        if sense is not None:
            self.sense = sense

    def solve(self, *, backend: str = "simplex") -> LPSolution:
        """Solve and return an :class:`LPSolution`.

        Args:
            backend: ``"simplex"`` (default, self-contained) or
                ``"scipy"`` (requires scipy; used for cross-checks).
        """
        if backend == "simplex":
            from repro.lp.simplex import solve_model

            return solve_model(self)
        if backend == "scipy":
            from repro.lp.scipy_backend import solve_model_scipy

            return solve_model_scipy(self)
        raise ConfigurationError(f"unknown LP backend {backend!r}")

    def check_feasible(
        self, values: Mapping[str, float], *, tolerance: float = 1e-7
    ) -> bool:
        """True if an assignment satisfies all constraints and bounds."""
        for constraint in self.constraints:
            if constraint.violation(values) > tolerance:
                return False
        for var in self.variables:
            value = values.get(var.name, 0.0)
            if var.lower is not None and value < var.lower - tolerance:
                return False
            if var.upper is not None and value > var.upper + tolerance:
                return False
        return True

    def variable_names(self) -> Iterable[str]:
        """Names of all registered variables, in creation order."""
        return [v.name for v in self.variables]
