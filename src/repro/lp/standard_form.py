"""Conversion of a :class:`repro.lp.model.Model` to standard form.

Standard form here means::

    minimize    c' x
    subject to  A x = b,   x >= 0,   b >= 0

Transformations applied:

* maximize -> minimize by negating the objective (the original-sense
  objective is restored when reporting solutions);
* finite lower bounds are shifted out (``x = y + lower``);
* free variables are split into a difference of two non-negatives;
* finite upper bounds become explicit ``<=`` rows;
* inequality rows gain slack/surplus columns;
* rows with negative right-hand sides are negated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lp.model import Model, Sense, _Relation

__all__ = ["StandardForm", "to_standard_form"]


@dataclass
class StandardForm:
    """A model compiled to ``min c'x, Ax = b, x >= 0`` with recovery maps.

    Attributes:
        c: objective coefficients over standard-form columns.
        A: dense constraint matrix (rows x columns).
        b: non-negative right-hand side.
        objective_constant: constant added back to the objective.
        objective_sign: +1 if the original model minimized, -1 if it
            maximized (applied when reporting the original objective).
        column_meaning: per column, a tuple ``(kind, payload)`` where
            kind is ``"var"`` (payload: (name, shift, sign)) or
            ``"slack"`` (payload: constraint name).
        row_names: original constraint name per row ("" for bound rows),
            used to report duals.
        row_signs: +1/-1 multiplier applied to each row (for dual
            recovery).
    """

    c: np.ndarray
    A: np.ndarray
    b: np.ndarray
    objective_constant: float
    objective_sign: float
    column_meaning: list[tuple[str, tuple]]
    row_names: list[str]
    row_signs: list[float]

    @property
    def n_rows(self) -> int:
        """Number of equality rows."""
        return self.A.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of standard-form columns."""
        return self.A.shape[1]

    def recover_values(self, x: np.ndarray) -> dict[str, float]:
        """Map a standard-form point back to original variable values."""
        values: dict[str, float] = {}
        for j, (kind, payload) in enumerate(self.column_meaning):
            if kind != "var":
                continue
            name, shift, sign = payload
            values[name] = values.get(name, shift) + sign * float(x[j])
        return values

    def recover_objective(self, standard_objective: float) -> float:
        """Map the standard-form objective back to the original sense."""
        return self.objective_sign * (standard_objective + self.objective_constant)

    def recover_duals(self, y: np.ndarray) -> dict[str, float]:
        """Map standard-form duals back to named original constraints.

        Duals of bound rows (upper-bound expansions) are dropped.  For a
        maximization model the sign convention follows the original
        sense, so a positive dual on a binding ``<=`` row means the
        objective would improve if the row were relaxed.
        """
        duals: dict[str, float] = {}
        for i, name in enumerate(self.row_names):
            if not name:
                continue
            duals[name] = self.objective_sign * self.row_signs[i] * float(y[i])
        return duals


def to_standard_form(model: Model) -> StandardForm:
    """Compile ``model`` into a :class:`StandardForm`."""
    column_meaning: list[tuple[str, tuple]] = []
    objective_constant = 0.0

    # Column layout for each original variable.
    var_columns: dict[str, list[tuple[int, float, float]]] = {}
    for var in model.variables:
        columns: list[tuple[int, float, float]] = []
        if var.lower is not None:
            # x = y + lower, y >= 0
            j = len(column_meaning)
            column_meaning.append(("var", (var.name, var.lower, 1.0)))
            columns.append((j, var.lower, 1.0))
        else:
            # free: x = y+ - y-
            j_pos = len(column_meaning)
            column_meaning.append(("var", (var.name, 0.0, 1.0)))
            j_neg = len(column_meaning)
            column_meaning.append(("var", (var.name, 0.0, -1.0)))
            columns.append((j_pos, 0.0, 1.0))
            columns.append((j_neg, 0.0, -1.0))
        var_columns[var.name] = columns

    rows: list[dict[int, float]] = []
    rhs: list[float] = []
    relations: list[_Relation] = []
    row_names: list[str] = []

    def add_row(
        coefficients: dict[int, float],
        relation: _Relation,
        value: float,
        name: str,
    ) -> None:
        rows.append(coefficients)
        relations.append(relation)
        rhs.append(value)
        row_names.append(name)

    # Original constraints.
    for constraint in model.constraints:
        coefficients: dict[int, float] = {}
        value = constraint.rhs
        for var, coef in constraint.expr.coefficients.items():
            for j, shift, sign in var_columns[var.name]:
                coefficients[j] = coefficients.get(j, 0.0) + coef * sign
                value -= coef * shift
        add_row(coefficients, constraint.relation, value, constraint.name)

    # Upper bounds become rows (lower bounds were shifted into columns).
    for var in model.variables:
        if var.upper is None:
            continue
        coefficients = {}
        value = var.upper
        for j, shift, sign in var_columns[var.name]:
            coefficients[j] = coefficients.get(j, 0.0) + sign
            value -= shift
        add_row(coefficients, _Relation.LE, value, "")

    # Objective over columns.
    sign = 1.0 if model.sense is Sense.MINIMIZE else -1.0
    c_entries: dict[int, float] = {}
    objective_constant += model.objective.constant
    for var, coef in model.objective.coefficients.items():
        for j, shift, s in var_columns[var.name]:
            c_entries[j] = c_entries.get(j, 0.0) + coef * s
            objective_constant += coef * shift if s > 0 else 0.0

    # Slack columns for inequalities.
    n_structural = len(column_meaning)
    slack_of_row: dict[int, int] = {}
    for i, relation in enumerate(relations):
        if relation is _Relation.EQ:
            continue
        j = len(column_meaning)
        column_meaning.append(("slack", (row_names[i] or f"bound{i}",)))
        slack_of_row[i] = j

    n_cols = len(column_meaning)
    n_rows = len(rows)
    A = np.zeros((n_rows, n_cols))
    b = np.zeros(n_rows)
    c = np.zeros(n_cols)
    row_signs = [1.0] * n_rows

    for j, coef in c_entries.items():
        c[j] = sign * coef

    for i, coefficients in enumerate(rows):
        for j, coef in coefficients.items():
            A[i, j] = coef
        b[i] = rhs[i]
        if relations[i] is _Relation.LE:
            A[i, slack_of_row[i]] = 1.0
        elif relations[i] is _Relation.GE:
            A[i, slack_of_row[i]] = -1.0
        if b[i] < 0:
            A[i, :] *= -1.0
            b[i] *= -1.0
            row_signs[i] = -1.0

    # Column objective constant handling for minimize-standardization:
    # we folded the original-sense constant into objective_constant; the
    # standard form minimizes sign*objective, so scale the constant too.
    return StandardForm(
        c=c,
        A=A,
        b=b,
        objective_constant=sign * objective_constant,
        objective_sign=sign,
        column_meaning=column_meaning,
        row_names=row_names,
        row_signs=row_signs,
    )
