"""Dense two-phase primal simplex solver.

This is the default backend for :meth:`repro.lp.model.Model.solve` and
the self-contained replacement for the paper's use of glpk.  It is a
textbook tableau implementation with:

* Phase 1 with artificial variables (detects infeasibility, drives
  artificials out of the basis, drops redundant rows);
* Dantzig pricing with an automatic switch to Bland's rule after a pivot
  budget, guaranteeing termination on degenerate problems;
* dual recovery by solving ``B' y = c_B`` at the optimum.

The Section-IV throughput LPs are small (tens to hundreds of columns,
number of rows = number of job types), so a dense tableau is the right
tool: simple, auditable, and fast enough to solve thousands of instances
per second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SolverError
from repro.lp.model import Model
from repro.lp.solution import LPSolution, SolveStatus
from repro.lp.standard_form import StandardForm, to_standard_form

__all__ = ["StandardFormResult", "solve_standard_form", "solve_model"]

_TOLERANCE = 1e-9
_BLAND_SWITCH = 2000
_MAX_PIVOTS = 100_000


@dataclass(frozen=True)
class StandardFormResult:
    """Raw result of a standard-form solve.

    Attributes:
        status: OPTIMAL / INFEASIBLE / UNBOUNDED.
        x: primal point over standard-form columns (zeros otherwise).
        objective: standard-form (minimization) objective value.
        y: duals over original standard-form rows (zeros for redundant
            rows dropped during phase 1).
        basis: basic column indices at the optimum.
        iterations: total simplex pivots across both phases.
    """

    status: SolveStatus
    x: np.ndarray
    objective: float
    y: np.ndarray
    basis: tuple[int, ...]
    iterations: int


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot of ``tableau`` on (row, col), in place."""
    pivot_value = tableau[row, col]
    tableau[row, :] /= pivot_value
    for i in range(tableau.shape[0]):
        if i != row and tableau[i, col] != 0.0:
            tableau[i, :] -= tableau[i, col] * tableau[row, :]


def _choose_entering(
    reduced: np.ndarray, allowed: np.ndarray, *, bland: bool
) -> int | None:
    """Pick the entering column, or None if optimal."""
    candidates = np.flatnonzero(allowed & (reduced < -_TOLERANCE))
    if candidates.size == 0:
        return None
    if bland:
        return int(candidates[0])
    return int(candidates[np.argmin(reduced[candidates])])


def _choose_leaving(
    tableau: np.ndarray, basis: list[int], col: int
) -> int | None:
    """Ratio test: pick the leaving row, or None if unbounded."""
    column = tableau[:, col]
    rhs = tableau[:, -1]
    rows = np.flatnonzero(column > _TOLERANCE)
    if rows.size == 0:
        return None
    ratios = rhs[rows] / column[rows]
    best = ratios.min()
    # Bland-compatible tie break: smallest basis variable index.
    tied = rows[np.flatnonzero(ratios <= best + _TOLERANCE)]
    return int(min(tied, key=lambda i: basis[i]))


def _run_simplex(
    tableau: np.ndarray,
    basis: list[int],
    cost: np.ndarray,
    allowed: np.ndarray,
    start_iterations: int,
) -> tuple[str, int]:
    """Iterate to optimality for ``cost``; returns (status, iterations)."""
    iterations = start_iterations
    while True:
        if iterations > _MAX_PIVOTS:
            raise SolverError(
                f"simplex exceeded {_MAX_PIVOTS} pivots; problem is "
                "numerically pathological"
            )
        c_basis = cost[basis]
        reduced = cost - c_basis @ tableau[:, :-1]
        entering = _choose_entering(
            reduced, allowed, bland=iterations > _BLAND_SWITCH
        )
        if entering is None:
            return "optimal", iterations
        leaving = _choose_leaving(tableau, basis, entering)
        if leaving is None:
            return "unbounded", iterations
        _pivot(tableau, leaving, entering)
        basis[leaving] = entering
        iterations += 1


def solve_standard_form(
    c: np.ndarray, A: np.ndarray, b: np.ndarray
) -> StandardFormResult:
    """Solve ``min c'x s.t. Ax = b, x >= 0`` (with ``b >= 0``).

    Raises:
        SolverError: on dimension mismatch, negative rhs, or pivot-budget
            exhaustion.
    """
    A = np.asarray(A, dtype=float)
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    if A.ndim != 2:
        raise SolverError("A must be a 2-D matrix")
    n_rows, n_cols = A.shape
    if b.shape != (n_rows,) or c.shape != (n_cols,):
        raise SolverError(
            f"dimension mismatch: A is {A.shape}, b is {b.shape}, c is {c.shape}"
        )
    if np.any(b < -_TOLERANCE):
        raise SolverError("standard form requires b >= 0")

    original_A = A.copy()
    original_rows = list(range(n_rows))

    # Tableau: [A | artificial I | b]
    tableau = np.hstack([A, np.eye(n_rows), b.reshape(-1, 1)])
    basis = [n_cols + i for i in range(n_rows)]
    total_cols = n_cols + n_rows

    # ---- Phase 1: minimize sum of artificials.
    phase1_cost = np.zeros(total_cols)
    phase1_cost[n_cols:] = 1.0
    allowed = np.ones(total_cols, dtype=bool)
    status, iterations = _run_simplex(tableau, basis, phase1_cost, allowed, 0)
    if status == "unbounded":  # cannot happen with bounded-below phase-1
        raise SolverError("phase 1 reported unbounded; internal error")
    artificial_value = sum(
        tableau[i, -1] for i, j in enumerate(basis) if j >= n_cols
    )
    if artificial_value > 1e-7:
        return StandardFormResult(
            status=SolveStatus.INFEASIBLE,
            x=np.zeros(n_cols),
            objective=float("nan"),
            y=np.zeros(n_rows),
            basis=tuple(basis),
            iterations=iterations,
        )

    # Drive remaining artificials out of the basis; drop redundant rows.
    keep_rows: list[int] = []
    for i in range(len(basis)):
        if basis[i] < n_cols:
            keep_rows.append(i)
            continue
        pivot_col = next(
            (
                j
                for j in range(n_cols)
                if abs(tableau[i, j]) > _TOLERANCE and j not in basis
            ),
            None,
        )
        if pivot_col is None:
            continue  # redundant row: drop below
        _pivot(tableau, i, pivot_col)
        basis[i] = pivot_col
        keep_rows.append(i)
    if len(keep_rows) != len(basis):
        tableau = tableau[keep_rows, :]
        basis = [basis[i] for i in keep_rows]
        original_rows = [original_rows[i] for i in keep_rows]

    # ---- Phase 2: original objective; artificials barred from entering.
    phase2_cost = np.concatenate([c, np.zeros(n_rows)])
    allowed = np.ones(total_cols, dtype=bool)
    allowed[n_cols:] = False
    status, iterations = _run_simplex(
        tableau, basis, phase2_cost, allowed, iterations
    )
    if status == "unbounded":
        return StandardFormResult(
            status=SolveStatus.UNBOUNDED,
            x=np.zeros(n_cols),
            objective=float("-inf"),
            y=np.zeros(n_rows),
            basis=tuple(basis),
            iterations=iterations,
        )

    x = np.zeros(n_cols)
    for i, j in enumerate(basis):
        if j < n_cols:
            x[j] = tableau[i, -1]
    objective = float(c @ x)

    # Duals: solve B' y = c_B over the surviving rows.
    y = np.zeros(n_rows)
    rows_idx = np.array(original_rows, dtype=int)
    basis_cols = [j for j in basis if j < n_cols]
    if len(basis_cols) == len(original_rows):
        B = original_A[np.ix_(rows_idx, basis_cols)]
        c_b = c[basis_cols]
        try:
            y_small = np.linalg.solve(B.T, c_b)
            y[rows_idx] = y_small
        except np.linalg.LinAlgError:
            pass  # degenerate basis: report zero duals rather than fail

    return StandardFormResult(
        status=SolveStatus.OPTIMAL,
        x=x,
        objective=objective,
        y=y,
        basis=tuple(basis),
        iterations=iterations,
    )


def solve_model(model: Model) -> LPSolution:
    """Compile ``model`` to standard form, solve it, map the result back."""
    form: StandardForm = to_standard_form(model)
    result = solve_standard_form(form.c, form.A, form.b)
    if result.status is not SolveStatus.OPTIMAL:
        return LPSolution(status=result.status, iterations=result.iterations)
    return LPSolution(
        status=SolveStatus.OPTIMAL,
        objective=form.recover_objective(result.objective),
        values=form.recover_values(result.x),
        duals=form.recover_duals(result.y),
        iterations=result.iterations,
    )
