"""Solution objects returned by the LP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import InfeasibleError, UnboundedError

__all__ = ["SolveStatus", "LPSolution"]


class SolveStatus(enum.Enum):
    """Terminal status of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPSolution:
    """Result of solving a :class:`repro.lp.model.Model`.

    Attributes:
        status: terminal solver status.
        objective: objective value in the model's original sense
            (meaningful only when status is OPTIMAL).
        values: variable name -> optimal value.
        duals: constraint name -> dual value (simplex backend only;
            empty when unavailable).
        iterations: simplex pivots (or backend-reported iterations).
    """

    status: SolveStatus
    objective: float = 0.0
    values: dict[str, float] = field(default_factory=dict)
    duals: dict[str, float] = field(default_factory=dict)
    iterations: int = 0

    @property
    def is_optimal(self) -> bool:
        """True when the solver proved optimality."""
        return self.status is SolveStatus.OPTIMAL

    def require_optimal(self, *, context: str = "LP") -> "LPSolution":
        """Return self, raising a typed error on non-optimal status.

        Raises:
            InfeasibleError: the program has no feasible point.
            UnboundedError: the objective is unbounded.
        """
        if self.status is SolveStatus.INFEASIBLE:
            raise InfeasibleError(f"{context}: no feasible point")
        if self.status is SolveStatus.UNBOUNDED:
            raise UnboundedError(f"{context}: objective is unbounded")
        return self

    def value(self, name: str) -> float:
        """Optimal value of variable ``name`` (0.0 if absent/nonbasic)."""
        return self.values.get(name, 0.0)

    def support(self, *, tolerance: float = 1e-9) -> dict[str, float]:
        """Variables with value above ``tolerance``.

        For the Section-IV program the support is the set of coschedules
        the optimal scheduler actually uses; LP theory bounds its size by
        the number of equality constraints (= number of job types).
        """
        return {k: v for k, v in self.values.items() if v > tolerance}
