"""Optional scipy backend for LP solves.

Delegates to ``scipy.optimize.linprog`` (HiGHS).  The library itself
never requires scipy — this backend exists so the test suite can
cross-validate the from-scratch simplex (:mod:`repro.lp.simplex`)
against an independent implementation, mirroring how the paper's
results could be cross-checked against glpk.
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.lp.model import Model
from repro.lp.solution import LPSolution, SolveStatus
from repro.lp.standard_form import to_standard_form

__all__ = ["solve_model_scipy"]


def solve_model_scipy(model: Model) -> LPSolution:
    """Solve a model via ``scipy.optimize.linprog`` on its standard form."""
    try:
        from scipy.optimize import linprog
    except ImportError as exc:  # pragma: no cover - environment dependent
        raise SolverError(
            "the 'scipy' LP backend requires scipy to be installed"
        ) from exc

    form = to_standard_form(model)
    result = linprog(
        c=form.c,
        A_eq=form.A,
        b_eq=form.b,
        bounds=[(0.0, None)] * form.n_cols,
        method="highs",
    )
    if result.status == 2:
        return LPSolution(status=SolveStatus.INFEASIBLE)
    if result.status == 3:
        return LPSolution(status=SolveStatus.UNBOUNDED)
    if not result.success:
        raise SolverError(f"scipy linprog failed: {result.message}")

    duals: dict[str, float] = {}
    marginals = getattr(getattr(result, "eqlin", None), "marginals", None)
    if marginals is not None:
        for i, name in enumerate(form.row_names):
            if name:
                # scipy reports duals of the minimization; map to the
                # original sense the same way the simplex backend does.
                duals[name] = (
                    -form.objective_sign * form.row_signs[i] * float(marginals[i])
                )
    return LPSolution(
        status=SolveStatus.OPTIMAL,
        objective=form.recover_objective(float(result.fun)),
        values=form.recover_values(result.x),
        duals=duals,
        iterations=int(getattr(result, "nit", 0)),
    )
