"""repro — reproduction of "Revisiting Symbiotic Job Scheduling" (ISPASS 2015).

The package is organized in four layers (see DESIGN.md):

* :mod:`repro.lp` — from-scratch linear-programming stack (the paper used
  glpk).
* :mod:`repro.microarch` — mechanistic SMT / multicore performance model
  producing per-coschedule execution rates (the paper used Sniper +
  SPEC CPU2006).
* :mod:`repro.core` — the paper's contribution: optimal/worst throughput
  LP, FCFS throughput model, variability / bottleneck / heterogeneity /
  fairness analyses, and the Section-VII policy-study metric.
* :mod:`repro.queueing` — discrete-event latency and maximum-throughput
  experiments with the FCFS / MAXIT / SRPT / MAXTP schedulers.

Quick start::

    from repro import (
        smt_machine, RateTable, Workload, optimal_throughput, fcfs_throughput,
    )

    machine = smt_machine()
    rates = RateTable.for_machine(machine)
    workload = Workload.of("bzip2", "mcf", "hmmer", "libquantum")
    best = optimal_throughput(rates, workload)
    fcfs = fcfs_throughput(rates, workload)
    print(best.throughput / fcfs.throughput)
"""

from repro._version import __version__

__all__ = ["__version__"]

# Re-export the public API; these imports are cheap (no simulation
# happens at import time).
from repro.microarch import (  # noqa: E402
    JobTypeParams,
    MachineConfig,
    FetchPolicy,
    RobPolicy,
    default_roster,
    quad_core_machine,
    smt_machine,
    simulate_coschedule,
)
from repro.microarch.rates import RateTable  # noqa: E402
from repro.microarch.rate_cache import CachedRateSource, RateCacheStore  # noqa: E402
from repro.core import (  # noqa: E402
    Coschedule,
    Workload,
    OptimalSchedule,
    optimal_throughput,
    worst_throughput,
    fcfs_throughput,
)

__all__ += [
    "JobTypeParams",
    "MachineConfig",
    "FetchPolicy",
    "RobPolicy",
    "default_roster",
    "quad_core_machine",
    "smt_machine",
    "simulate_coschedule",
    "RateTable",
    "CachedRateSource",
    "RateCacheStore",
    "Coschedule",
    "Workload",
    "OptimalSchedule",
    "optimal_throughput",
    "worst_throughput",
    "fcfs_throughput",
]
