"""The Section-V.D fairness counterfactual.

To show that SMT's *unfair* interference (some jobs slowed far more
than others) is what pins the optimal scheduler near FCFS, the paper
artificially redistributes performance inside the single
fully-heterogeneous coschedule: slower jobs get a higher rate and
faster jobs a lower one, **keeping the coschedule's instantaneous
throughput unchanged**.  After the transform the optimal scheduler can
run the heterogeneous coschedule nearly all the time (every type now
progresses at the same rate, so the equal-work constraint is easy), and
optimal throughput rises substantially while FCFS and the worst
scheduler barely move.

:func:`equalize_heterogeneous_rates` implements the transform as a
blend: ``rate_b' = (1 - blend) * rate_b + blend * it(s)/N`` on the
heterogeneity-N coschedule, returning a frozen
:class:`~repro.microarch.rates.TableRates` copy of the workload's rate
table with only that entry edited.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.core.workload import Workload
from repro.microarch.rates import RateSource, TableRates

__all__ = ["equalize_heterogeneous_rates"]


def equalize_heterogeneous_rates(
    rates: RateSource,
    workload: Workload,
    *,
    contexts: int | None = None,
    blend: float = 1.0,
) -> TableRates:
    """Equalize per-type rates in the fully heterogeneous coschedule.

    Args:
        rates: the original rate source.
        workload: must have exactly as many types as there are contexts
            (so a single coschedule contains every type once, as in the
            paper's N = K = 4 setup).
        contexts: number of contexts K; inferred when possible.
        blend: 0 leaves rates unchanged, 1 makes every type's rate
            exactly ``it(s)/N``.

    Returns:
        A frozen rate table covering the workload's coschedules, with
        the heterogeneity-N entry transformed.
    """
    if not 0.0 <= blend <= 1.0:
        raise WorkloadError(f"blend must be in [0, 1], got {blend}")
    machine = getattr(rates, "machine", None)
    k = contexts if contexts is not None else (machine.contexts if machine else None)
    if k is None:
        raise ValueError("pass contexts=K for rate sources without a machine")
    if workload.n_types != k:
        raise WorkloadError(
            f"the fairness counterfactual needs N == K (one fully "
            f"heterogeneous coschedule); got N={workload.n_types}, K={k}"
        )

    coschedules = workload.coschedules(k)
    table = {s: dict(rates.type_rates(s)) for s in coschedules}

    hetero = tuple(workload.types)  # each type exactly once
    original = table[hetero]
    fair_share = sum(original.values()) / workload.n_types
    table[hetero] = {
        b: (1.0 - blend) * rate + blend * fair_share
        for b, rate in original.items()
    }
    return TableRates(table)
