"""Units of work: weighted instructions vs raw instructions (Section III-B).

The paper's headline results use the *weighted instruction* (WIPC); it
states that "we checked that our qualitative conclusions also hold for
the instruction as unit of work".  This module makes that check a
first-class operation: :func:`instruction_rate_view` re-expresses a
rate table in raw instructions per cycle, so every analysis in
:mod:`repro.core` can be re-run under the alternative unit.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import WorkloadError
from repro.microarch.rates import RateTable, TableRates
from repro.util.multiset import multisets

__all__ = ["instruction_rate_view", "compare_units"]


def instruction_rate_view(
    rates: RateTable,
    types: Sequence[str],
    *,
    sizes: Sequence[int] | None = None,
) -> TableRates:
    """Freeze a rate table in raw-IPC units over the given types.

    The returned table's ``type_rates`` are total IPC per type instead
    of total WIPC — i.e. every job's reference rate is 1 instruction
    per cycle rather than its alone-IPC.

    Args:
        rates: a simulating rate table (needed for raw IPCs).
        types: the job types to cover.
        sizes: coschedule sizes to include (default: 1..K).
    """
    if not types:
        raise WorkloadError("need at least one job type")
    k = rates.machine.contexts
    size_list = list(sizes) if sizes is not None else list(range(1, k + 1))
    table: dict[tuple[str, ...], dict[str, float]] = {}
    for size in size_list:
        for coschedule in multisets(sorted(types), size):
            result = rates.result(coschedule)
            totals: dict[str, float] = {}
            for job, ipc in zip(result.job_names, result.ipcs):
                totals[job] = totals.get(job, 0.0) + ipc
            table[coschedule] = totals
    return TableRates(table)


def compare_units(
    rates: RateTable,
    workload,
    *,
    backend: str = "simplex",
) -> dict[str, dict[str, float]]:
    """Optimal/FCFS/worst throughput under both units of work.

    Returns ``{"weighted": {...}, "instruction": {...}}`` with keys
    ``optimal``, ``fcfs``, ``worst`` and ``gain`` (optimal/FCFS - 1).
    The paper's qualitative claim is that ``gain`` is small under both.
    """
    from repro.core.fcfs import fcfs_throughput
    from repro.core.optimal import optimal_throughput, worst_throughput

    k = rates.machine.contexts
    views = {
        "weighted": rates,
        "instruction": instruction_rate_view(rates, workload.types),
    }
    out: dict[str, dict[str, float]] = {}
    for unit, view in views.items():
        best = optimal_throughput(view, workload, contexts=k, backend=backend)
        base = fcfs_throughput(view, workload, contexts=k)
        worst = worst_throughput(view, workload, contexts=k, backend=backend)
        out[unit] = {
            "optimal": best.throughput,
            "fcfs": base.throughput,
            "worst": worst.throughput,
            "gain": best.throughput / base.throughput - 1.0,
        }
    return out
