"""Coschedule helpers.

Internally coschedules are plain canonical tuples (sorted job names);
:class:`Coschedule` is a thin value object for user-facing code that
adds the derived quantities the paper talks about: *heterogeneity* (the
number of distinct job types, Table II) and type multiplicities.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import WorkloadError
from repro.util.multiset import distinct_count

__all__ = ["Coschedule"]


@dataclass(frozen=True)
class Coschedule:
    """A multiset of job types co-running on the K contexts."""

    jobs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise WorkloadError("a coschedule needs at least one job")
        if list(self.jobs) != sorted(self.jobs):
            raise WorkloadError(
                f"coschedule jobs must be sorted, got {self.jobs}; "
                "use Coschedule.of(...) to canonicalize"
            )

    @classmethod
    def of(cls, *names: str) -> "Coschedule":
        """Build a coschedule from names in any order."""
        return cls(jobs=tuple(sorted(names)))

    @classmethod
    def from_iterable(cls, names: Iterable[str]) -> "Coschedule":
        """Build a coschedule from an iterable of names."""
        return cls(jobs=tuple(sorted(names)))

    @property
    def size(self) -> int:
        """Number of jobs (occupied contexts)."""
        return len(self.jobs)

    @property
    def heterogeneity(self) -> int:
        """Number of distinct job types — Table II's grouping key."""
        return distinct_count(self.jobs)

    @property
    def is_homogeneous(self) -> bool:
        """True if all jobs are of one type."""
        return self.heterogeneity == 1

    def counts(self) -> Counter:
        """Multiplicity of each job type."""
        return Counter(self.jobs)

    def count_of(self, name: str) -> int:
        """Multiplicity of one job type (0 if absent)."""
        return Counter(self.jobs)[name]

    def as_tuple(self) -> tuple[str, ...]:
        """The canonical tuple used by the rest of the library."""
        return self.jobs

    def label(self) -> str:
        """Compact label, e.g. ``2xbzip2+1xmcf+1xhmmer``."""
        counts = self.counts()
        return "+".join(f"{counts[name]}x{name}" for name in sorted(counts))


def as_canonical(coschedule: "Coschedule | Sequence[str]") -> tuple[str, ...]:
    """Accept either a Coschedule or a name sequence; return the tuple."""
    if isinstance(coschedule, Coschedule):
        return coschedule.jobs
    return tuple(sorted(coschedule))
