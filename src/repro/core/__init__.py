"""The paper's contribution: optimal-throughput analysis of symbiotic scheduling.

* :mod:`repro.core.workload` / :mod:`repro.core.coschedule` — the
  Section-III definitions (N job types, K contexts, coschedules as
  multisets).
* :mod:`repro.core.optimal` — the Section-IV linear program: the
  maximum (and minimum) long-term throughput of any scheduler on a
  fixed workload.
* :mod:`repro.core.fcfs` — the symbiosis-unaware FCFS baseline
  (TPCalc-style Markov model + validation simulation).
* :mod:`repro.core.variability`, :mod:`repro.core.bottleneck`,
  :mod:`repro.core.sensitivity`, :mod:`repro.core.heterogeneity`,
  :mod:`repro.core.fairness` — the Section-V analyses.
* :mod:`repro.core.policy_study` — the Section-VII microarchitecture
  study using optimal throughput as a metric.
"""

from repro.core.workload import Workload, all_workloads
from repro.core.coschedule import Coschedule
from repro.core.optimal import (
    OptimalSchedule,
    optimal_throughput,
    worst_throughput,
)
from repro.core.fcfs import FcfsResult, fcfs_throughput, simulate_fcfs_throughput
from repro.core.metrics import weighted_speedup
from repro.core.multimachine import (
    MultiMachineSchedule,
    joint_optimal_throughput,
    reduced_optimal_throughput,
    verify_reduction,
)
from repro.core.units import compare_units, instruction_rate_view

__all__ = [
    "Workload",
    "all_workloads",
    "Coschedule",
    "OptimalSchedule",
    "optimal_throughput",
    "worst_throughput",
    "FcfsResult",
    "fcfs_throughput",
    "simulate_fcfs_throughput",
    "weighted_speedup",
    "MultiMachineSchedule",
    "joint_optimal_throughput",
    "reduced_optimal_throughput",
    "verify_reduction",
    "compare_units",
    "instruction_rate_view",
]
