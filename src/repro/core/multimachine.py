"""Multi-machine symbiotic scheduling (Section III-D).

The paper notes that, under its workload assumptions, "symbiotic
scheduling for multiple identical machines can be reduced to the
problem of symbiotic scheduling for a single machine": split the
workload evenly so every machine sees a statistically identical
workload and solve each machine locally.

This module provides both sides of that claim:

* :func:`joint_optimal_throughput` — the explicit joint LP over
  per-machine coschedule time fractions with a *global* equal-work
  constraint (machines may specialize);
* :func:`reduced_optimal_throughput` — M times the single-machine
  optimum.

Their equality (verified by the test suite, and exposed via
:func:`verify_reduction`) is the formal content of the paper's remark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.optimal import OptimalSchedule, optimal_throughput
from repro.core.workload import Workload
from repro.errors import SolverError, WorkloadError
from repro.lp.model import LinearExpr, Model, Sense
from repro.microarch.rates import RateSource, infer_contexts

__all__ = [
    "MultiMachineSchedule",
    "joint_optimal_throughput",
    "reduced_optimal_throughput",
    "verify_reduction",
]


@dataclass(frozen=True)
class MultiMachineSchedule:
    """An optimal schedule for M identical machines.

    Attributes:
        workload: the shared workload.
        n_machines: number of identical machines M.
        throughput: total (all-machines) long-term throughput.
        per_machine_fractions: per machine, the coschedule time
            fractions (support only).
    """

    workload: Workload
    n_machines: int
    throughput: float
    per_machine_fractions: tuple[dict[tuple[str, ...], float], ...]

    @property
    def per_machine_throughput(self) -> float:
        """Average throughput per machine."""
        return self.throughput / self.n_machines


def joint_optimal_throughput(
    rates: RateSource,
    workload: Workload,
    n_machines: int,
    *,
    contexts: int | None = None,
    backend: str = "simplex",
) -> MultiMachineSchedule:
    """Solve the explicit joint LP over M identical machines.

    Variables ``x[m, s]`` give machine m's time fraction in coschedule
    s; each machine's fractions sum to 1 and the equal-work constraints
    are *global* (a machine may run only fast types as long as another
    compensates).  The theorem says this freedom buys nothing.
    """
    if n_machines <= 0:
        raise WorkloadError(f"n_machines must be positive, got {n_machines}")
    k = infer_contexts(rates, contexts)
    coschedules = workload.coschedules(k)
    type_rates = {s: rates.type_rates(s) for s in coschedules}

    model = Model(
        name=f"joint[{n_machines}x{workload.label()}]", sense=Sense.MAXIMIZE
    )
    x = {
        (m, s): model.add_variable(f"x[{m},{','.join(s)}]")
        for m in range(n_machines)
        for s in coschedules
    }
    for m in range(n_machines):
        model.add_constraint(
            LinearExpr({x[m, s]: 1.0 for s in coschedules}) == 1.0,
            name=f"time_budget[{m}]",
        )
    reference = workload.types[0]
    for b in workload.types[1:]:
        balance = LinearExpr(
            {
                x[m, s]: type_rates[s].get(b, 0.0)
                - type_rates[s].get(reference, 0.0)
                for m in range(n_machines)
                for s in coschedules
            }
        )
        model.add_constraint(balance == 0.0, name=f"equal_work[{b}]")
    model.set_objective(
        LinearExpr(
            {
                x[m, s]: sum(type_rates[s].values())
                for m in range(n_machines)
                for s in coschedules
            }
        )
    )

    solution = model.solve(backend=backend)
    if not solution.is_optimal:
        raise SolverError(
            f"joint multi-machine LP terminated {solution.status.value}"
        )
    fractions = []
    for m in range(n_machines):
        machine_fractions = {
            s: solution.value(x[m, s].name)
            for s in coschedules
            if solution.value(x[m, s].name) > 1e-12
        }
        fractions.append(machine_fractions)
    return MultiMachineSchedule(
        workload=workload,
        n_machines=n_machines,
        throughput=solution.objective,
        per_machine_fractions=tuple(fractions),
    )


def reduced_optimal_throughput(
    rates: RateSource,
    workload: Workload,
    n_machines: int,
    *,
    contexts: int | None = None,
    backend: str = "simplex",
) -> MultiMachineSchedule:
    """The paper's reduction: every machine runs the 1-machine optimum."""
    if n_machines <= 0:
        raise WorkloadError(f"n_machines must be positive, got {n_machines}")
    single: OptimalSchedule = optimal_throughput(
        rates, workload, contexts=contexts, backend=backend
    )
    return MultiMachineSchedule(
        workload=workload,
        n_machines=n_machines,
        throughput=n_machines * single.throughput,
        per_machine_fractions=tuple(
            dict(single.fractions) for _ in range(n_machines)
        ),
    )


def verify_reduction(
    rates: RateSource,
    workload: Workload,
    n_machines: int,
    *,
    contexts: int | None = None,
    tolerance: float = 1e-7,
) -> bool:
    """Check that the joint LP gains nothing over the reduction."""
    joint = joint_optimal_throughput(
        rates, workload, n_machines, contexts=contexts
    )
    reduced = reduced_optimal_throughput(
        rates, workload, n_machines, contexts=contexts
    )
    scale = max(abs(reduced.throughput), 1.0)
    return abs(joint.throughput - reduced.throughput) <= tolerance * scale
