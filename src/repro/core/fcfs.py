"""FCFS average throughput: the symbiosis-unaware baseline.

The paper compares its optimal scheduler against a first-come
first-served scheduler that "knows nothing about the workload": jobs are
drawn uniformly from the N types, and whenever a job finishes the next
queued job takes its context, regardless of symbiosis.  The paper
computes this baseline with TPCalc (Eyerman, Michaud, Rogiest, TACO
2014).  We provide the same quantity two ways:

* :func:`fcfs_throughput` — an analytic continuous-time Markov chain
  over coschedule multisets.  In state ``s`` each type-b job completes
  at rate ``r_b(s) / count_b(s)`` (exponential job sizes with unit mean
  work) and is replaced by a uniformly drawn type.  The stationary
  distribution gives per-coschedule time fractions — including the
  Table-II effect that slow jobs linger, shifting the mix away from the
  multinomial draw probabilities — and the average throughput.
* :func:`simulate_fcfs_throughput` — a discrete-event simulation with
  *fixed-size* (equal-work) jobs, used to validate the exponential-size
  analytic model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ModelError, WorkloadError
from repro.core.workload import Workload
from repro.microarch.rates import RateSource, infer_contexts
from repro.util.multiset import multisets, replace_one
from repro.util.rng import make_rng

__all__ = ["FcfsResult", "fcfs_throughput", "simulate_fcfs_throughput"]


@dataclass(frozen=True)
class FcfsResult:
    """FCFS throughput and the coschedule mix that produces it.

    Attributes:
        workload: the analyzed workload.
        throughput: long-term average throughput (WIPC).
        fractions: long-run fraction of time spent in each coschedule.
    """

    workload: Workload
    throughput: float
    fractions: dict[tuple[str, ...], float]

    def fraction_of(self, coschedule) -> float:
        """Time fraction of a coschedule (0.0 if never visited)."""
        return self.fractions.get(tuple(sorted(coschedule)), 0.0)


def _draw_probabilities(
    workload: Workload, type_weights: Mapping[str, float] | None
) -> dict[str, float]:
    """Normalized per-type draw probabilities (uniform by default)."""
    if type_weights is None:
        share = 1.0 / workload.n_types
        return {b: share for b in workload.types}
    missing = [b for b in workload.types if b not in type_weights]
    if missing:
        raise WorkloadError(f"type_weights missing entries for {missing}")
    values = {b: float(type_weights[b]) for b in workload.types}
    if any(v <= 0.0 for v in values.values()):
        raise WorkloadError("type_weights must be positive")
    total = sum(values.values())
    return {b: v / total for b, v in values.items()}


def fcfs_throughput(
    rates: RateSource,
    workload: Workload,
    *,
    contexts: int | None = None,
    type_weights: Mapping[str, float] | None = None,
) -> FcfsResult:
    """Analytic FCFS average throughput (TPCalc-style Markov model).

    Args:
        rates: per-coschedule execution rates.
        workload: the N job types.
        contexts: number of contexts K (inferred from ``rates.machine``
            when omitted).
        type_weights: per-type job-arrival shares; omitted = the
            paper's equiprobable types.

    Raises:
        ModelError: if some coschedule has a type with zero rate (the
            chain would stall there).
    """
    k = infer_contexts(rates, contexts)
    draw = _draw_probabilities(workload, type_weights)
    states = list(multisets(workload.types, k))
    index = {s: i for i, s in enumerate(states)}
    n_states = len(states)

    generator = np.zeros((n_states, n_states))
    throughputs = np.zeros(n_states)

    for s, i in index.items():
        type_rates = rates.type_rates(s)
        throughputs[i] = sum(type_rates.values())
        counts = Counter(s)
        for b, count in counts.items():
            total_rate = type_rates.get(b, 0.0)
            if total_rate <= 0.0:
                raise ModelError(
                    f"type {b!r} has zero rate in coschedule {s}; the FCFS "
                    "chain cannot leave this state"
                )
            # Each of the `count` type-b jobs completes at rate
            # total_rate / count; any completion is a type-b departure,
            # so type-b departures occur at `total_rate` overall, and
            # the replacement type is drawn from the arrival mix.
            for c in workload.types:
                if c == b:
                    continue  # self-loop: no state change
                target = index[replace_one(s, b, c)]
                generator[i, target] += total_rate * draw[c]

    # Diagonal: rows of a generator sum to zero.
    np.fill_diagonal(generator, 0.0)
    np.fill_diagonal(generator, -generator.sum(axis=1))

    # Stationary distribution: pi Q = 0, sum(pi) = 1.
    system = np.vstack([generator.T, np.ones(n_states)])
    target = np.zeros(n_states + 1)
    target[-1] = 1.0
    pi, *_ = np.linalg.lstsq(system, target, rcond=None)
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0.0:
        raise ModelError("FCFS chain produced a degenerate distribution")
    pi /= total

    fractions = {
        s: float(pi[i]) for s, i in index.items() if pi[i] > 1e-12
    }
    return FcfsResult(
        workload=workload,
        throughput=float(pi @ throughputs),
        fractions=fractions,
    )


def simulate_fcfs_throughput(
    rates: RateSource,
    workload: Workload,
    *,
    contexts: int | None = None,
    n_jobs: int = 20_000,
    job_size: float = 1.0,
    seed: int = 0,
) -> FcfsResult:
    """Discrete-event FCFS throughput with fixed-size jobs.

    A long queue of ``n_jobs`` jobs with uniformly random types is
    executed on the K contexts: whenever a job completes, the next
    queued job takes its slot (the maximum-throughput experiment of
    Section III-A).  All jobs carry ``job_size`` units of work, matching
    the paper's equal-work assumption; the analytic model assumes
    exponential sizes instead, and the two agree closely.

    The measurement stops when the arrival queue empties, so the system
    is fully loaded for the entire measured interval (no drain tail with
    idle contexts — this is a *maximum throughput* experiment).
    """
    k = infer_contexts(rates, contexts)
    if n_jobs < k:
        raise WorkloadError(f"need at least {k} jobs, got {n_jobs}")
    if job_size <= 0.0:
        raise WorkloadError(f"job_size must be positive, got {job_size}")
    rng = make_rng(seed)

    arrivals = [rng.choice(workload.types) for _ in range(n_jobs)]
    running: list[dict] = [
        {"type": arrivals[i], "remaining": job_size} for i in range(k)
    ]
    next_arrival = k

    clock = 0.0
    work_done = 0.0
    time_in: dict[tuple[str, ...], float] = {}

    while next_arrival < n_jobs:
        coschedule = tuple(sorted(job["type"] for job in running))
        type_rates = rates.type_rates(coschedule)
        counts = Counter(coschedule)
        per_job_rate = {
            b: type_rates.get(b, 0.0) / counts[b] for b in counts
        }
        finish_times = [
            job["remaining"] / per_job_rate[job["type"]]
            if per_job_rate[job["type"]] > 0.0
            else float("inf")
            for job in running
        ]
        dt = min(finish_times)
        if dt == float("inf"):
            raise ModelError(
                f"coschedule {coschedule} makes no progress; zero rates"
            )
        winner = finish_times.index(dt)

        clock += dt
        time_in[coschedule] = time_in.get(coschedule, 0.0) + dt
        for job in running:
            progressed = per_job_rate[job["type"]] * dt
            job["remaining"] -= progressed
            work_done += progressed
        running[winner] = {
            "type": arrivals[next_arrival],
            "remaining": job_size,
        }
        next_arrival += 1

    fractions = {s: t / clock for s, t in time_in.items()}
    return FcfsResult(
        workload=workload,
        throughput=work_done / clock,
        fractions=fractions,
    )
