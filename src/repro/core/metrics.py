"""Throughput-metric definitions (Section III-B).

The paper's unit of work is the **weighted instruction**: a job's
execution rate in weighted instructions per cycle (WIPC) is its IPC
divided by its IPC when running alone on the reference machine.  Jobs
with equal weighted-instruction counts take equal time alone, so "equal
work per type" is well defined across heterogeneous types.  WIPC summed
over the jobs of a coschedule is exactly the classic *weighted speedup*
metric, and the per-coschedule total is the paper's instantaneous
throughput ``it(s)`` (Equation 1).
"""

from __future__ import annotations

from typing import Sequence

from repro.microarch.rates import RateSource, RateTable

__all__ = [
    "weighted_speedup",
    "instantaneous_throughput",
    "total_ipc",
]


def instantaneous_throughput(
    rates: RateSource, coschedule: Sequence[str]
) -> float:
    """``it(s)``: total WIPC of a coschedule (Equation 1)."""
    return sum(rates.type_rates(coschedule).values())


def weighted_speedup(rates: RateSource, coschedule: Sequence[str]) -> float:
    """Weighted speedup of a coschedule — identical to ``it(s)``.

    The paper notes WIPC "is equivalent to the commonly used weighted
    speedup metric"; this alias exists so analysis code can use the
    name the related work uses.
    """
    return instantaneous_throughput(rates, coschedule)


def total_ipc(rates: RateTable, coschedule: Sequence[str]) -> float:
    """Raw-instruction instantaneous throughput (sum of per-job IPCs).

    Only available on a full :class:`~repro.microarch.rates.RateTable`
    (frozen WIPC tables no longer know the per-job reference IPCs).
    The paper reports weighted-instruction results but "checked that the
    qualitative conclusions also hold for the instruction as unit of
    work"; tests use this to do the same check.
    """
    return sum(rates.ipcs(coschedule))
