"""The Section-IV linear program: optimal (and worst) throughput.

Let ``x_s`` be the fraction of time a scheduler spends executing
coschedule ``s``.  The long-term average throughput is
``sum_s x_s * it(s)`` (Equation 2), maximized subject to (Equations 3-5):

* ``x_s >= 0``,
* ``sum_s x_s = 1``,
* equal work per type: for every type b (vs. the first type),
  ``sum_s x_s * r_b(s) = sum_s x_s * r_1(s)``.

Maximizing gives the theoretically best scheduler; minimizing gives the
deliberately worst one, and together they bound what *any* scheduler can
achieve on the workload.  A vertex optimum uses at most N coschedules
(the number of equality constraints), a property the paper points out
and our tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import SolverError, WorkloadError
from repro.core.workload import Workload
from repro.lp.model import LinearExpr, Model, Sense
from repro.microarch.rates import RateSource, infer_contexts

__all__ = ["OptimalSchedule", "optimal_throughput", "worst_throughput"]


@dataclass(frozen=True)
class OptimalSchedule:
    """The LP's answer for one workload.

    Attributes:
        workload: the analyzed workload.
        throughput: the optimal (or worst) long-term average throughput
            in weighted instructions per cycle.
        fractions: time fraction per coschedule, support only (fractions
            below 1e-12 are dropped).
        sense: "max" or "min".
        duals: dual values of the LP constraints — ``time_budget`` is
            the marginal value of a unit of time (equal to the optimal
            per-coschedule "adjusted throughput"), and
            ``equal_work[b]`` prices the equal-work constraint of type
            b (how much throughput a unit of allowed work imbalance
            toward type b would buy).  Complementary slackness ties
            these to the support: every used coschedule s satisfies
            ``it(s) = y_time + sum_b y_b (r_b(s) - r_1(s))``.
        per_type_rate: the common long-term execution rate every job
            type sustains under the schedule (throughput / N).
    """

    workload: Workload
    throughput: float
    fractions: dict[tuple[str, ...], float]
    sense: str
    duals: dict[str, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.duals is None:
            object.__setattr__(self, "duals", {})

    @property
    def per_type_rate(self) -> float:
        """Average per-type execution rate (equal by construction)."""
        return self.throughput / self.workload.n_types

    def support_size(self) -> int:
        """Number of coschedules with non-zero time fraction."""
        return len(self.fractions)

    def fraction_of(self, coschedule: Sequence[str]) -> float:
        """Time fraction of a coschedule (0.0 if unused)."""
        return self.fractions.get(tuple(sorted(coschedule)), 0.0)


def _normalize_weights(
    workload: Workload, type_weights: Mapping[str, float] | None
) -> dict[str, float]:
    """Per-type work shares, normalized to sum to 1 (uniform default)."""
    if type_weights is None:
        share = 1.0 / workload.n_types
        return {b: share for b in workload.types}
    missing = [b for b in workload.types if b not in type_weights]
    if missing:
        raise WorkloadError(f"type_weights missing entries for {missing}")
    values = {b: float(type_weights[b]) for b in workload.types}
    if any(v <= 0.0 for v in values.values()):
        raise WorkloadError("type_weights must be positive")
    total = sum(values.values())
    return {b: v / total for b, v in values.items()}


def _solve(
    rates: RateSource,
    workload: Workload,
    contexts: int | None,
    sense: Sense,
    backend: str,
    type_weights: Mapping[str, float] | None = None,
) -> OptimalSchedule:
    k = infer_contexts(rates, contexts)
    coschedules = workload.coschedules(k)
    type_rates = {s: rates.type_rates(s) for s in coschedules}
    weights = _normalize_weights(workload, type_weights)

    model = Model(
        name=f"{'max' if sense is Sense.MAXIMIZE else 'min'}_tp[{workload.label()}]",
        sense=sense,
    )
    x = {s: model.add_variable(f"x[{','.join(s)}]") for s in coschedules}

    total_time = LinearExpr({x[s]: 1.0 for s in coschedules})
    model.add_constraint(total_time == 1.0, name="time_budget")

    # Work proportionality (Equation 5, generalized): each type's share
    # of the executed work matches its weight — work_b / w_b equals
    # work_ref / w_ref, written with a w_ref/w_b scale so the uniform
    # case reduces to the paper's equal-work constraint verbatim.
    reference = workload.types[0]
    for b in workload.types[1:]:
        scale = weights[reference] / weights[b]
        balance = LinearExpr(
            {
                x[s]: type_rates[s].get(b, 0.0) * scale
                - type_rates[s].get(reference, 0.0)
                for s in coschedules
            }
        )
        model.add_constraint(balance == 0.0, name=f"equal_work[{b}]")

    objective = LinearExpr(
        {x[s]: sum(type_rates[s].values()) for s in coschedules}
    )
    model.set_objective(objective)

    solution = model.solve(backend=backend)
    if not solution.is_optimal:
        raise SolverError(
            f"throughput LP for {workload.label()} terminated "
            f"{solution.status.value}; the equal-work constraints should "
            "always be satisfiable with positive rates"
        )

    fractions: dict[tuple[str, ...], float] = {}
    for s in coschedules:
        value = solution.value(x[s].name)
        if value > 1e-12:
            fractions[s] = value

    return OptimalSchedule(
        workload=workload,
        throughput=solution.objective,
        fractions=fractions,
        sense="max" if sense is Sense.MAXIMIZE else "min",
        duals=dict(solution.duals),
    )


def optimal_throughput(
    rates: RateSource,
    workload: Workload,
    *,
    contexts: int | None = None,
    backend: str = "simplex",
    type_weights: Mapping[str, float] | None = None,
) -> OptimalSchedule:
    """Maximum long-term throughput of any scheduler on the workload.

    Args:
        rates: per-coschedule execution rates (a
            :class:`repro.microarch.rates.RateTable` or compatible).
        workload: the N job types.
        contexts: number of hardware contexts K; inferred from
            ``rates.machine`` when omitted.
        backend: LP backend ("simplex" or "scipy").
        type_weights: per-type work shares (normalized internally);
            omitted = the paper's equal-work assumption.  The paper
            notes that skewed weights "would dominate the execution,
            thereby limiting the possibilities to exploit symbiosis" —
            pass a skew here to quantify that remark.
    """
    return _solve(
        rates, workload, contexts, Sense.MAXIMIZE, backend, type_weights
    )


def worst_throughput(
    rates: RateSource,
    workload: Workload,
    *,
    contexts: int | None = None,
    backend: str = "simplex",
    type_weights: Mapping[str, float] | None = None,
) -> OptimalSchedule:
    """Minimum long-term throughput: the deliberately worst scheduler.

    Together with :func:`optimal_throughput` this bounds the throughput
    of *any* scheduling policy on the workload (Section IV).
    """
    return _solve(
        rates, workload, contexts, Sense.MINIMIZE, backend, type_weights
    )
