"""Table-II analysis: where does each scheduler spend its time?

The paper groups coschedules by *heterogeneity* (number of distinct job
types) and reports, per group, the average instantaneous throughput and
the fraction of time the FCFS, optimal, and worst schedulers spend in
that group.  The pattern explains the headline result: heterogeneous
coschedules have the best instantaneous throughput; the worst scheduler
hides in homogeneous ones; FCFS lands near the multinomial draw mix; the
optimal scheduler shifts toward heterogeneity as far as the equal-work
constraint lets it (much farther on the quad-core than on SMT).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fcfs import fcfs_throughput
from repro.core.optimal import optimal_throughput, worst_throughput
from repro.core.workload import Workload
from repro.microarch.rates import RateSource
from repro.util.multiset import distinct_count, multiset_draw_probability

__all__ = ["HeterogeneityRow", "HeterogeneityTable", "heterogeneity_table"]


@dataclass(frozen=True)
class HeterogeneityRow:
    """One Table-II row: coschedules with a given number of distinct types.

    Attributes:
        heterogeneity: number of distinct job types in the group.
        mean_instantaneous_tp: unweighted mean it(s) over the group.
        fcfs_fraction: time fraction the FCFS scheduler spends here.
        optimal_fraction: same for the optimal scheduler.
        worst_fraction: same for the worst scheduler.
        draw_probability: multinomial probability of drawing such a
            coschedule with uniform i.i.d. type draws (the paper's
            "theoretical values" for FCFS: 2/33/56/9 % at N=K=4).
    """

    heterogeneity: int
    mean_instantaneous_tp: float
    fcfs_fraction: float
    optimal_fraction: float
    worst_fraction: float
    draw_probability: float


@dataclass(frozen=True)
class HeterogeneityTable:
    """Table II for one workload."""

    workload: Workload
    rows: tuple[HeterogeneityRow, ...]

    def row(self, heterogeneity: int) -> HeterogeneityRow:
        """The row for a given heterogeneity level."""
        for row in self.rows:
            if row.heterogeneity == heterogeneity:
                return row
        raise KeyError(f"no heterogeneity-{heterogeneity} coschedules")


def heterogeneity_table(
    rates: RateSource,
    workload: Workload,
    *,
    contexts: int | None = None,
    backend: str = "simplex",
) -> HeterogeneityTable:
    """Compute Table II (per-heterogeneity fractions) for one workload."""
    machine = getattr(rates, "machine", None)
    k = contexts if contexts is not None else (machine.contexts if machine else None)
    if k is None:
        raise ValueError("pass contexts=K for rate sources without a machine")

    coschedules = workload.coschedules(k)
    fcfs = fcfs_throughput(rates, workload, contexts=k)
    best = optimal_throughput(rates, workload, contexts=k, backend=backend)
    worst = worst_throughput(rates, workload, contexts=k, backend=backend)

    groups: dict[int, list[tuple[str, ...]]] = {}
    for s in coschedules:
        groups.setdefault(distinct_count(s), []).append(s)

    rows = []
    for heterogeneity in sorted(groups):
        members = groups[heterogeneity]
        mean_it = sum(
            sum(rates.type_rates(s).values()) for s in members
        ) / len(members)
        rows.append(
            HeterogeneityRow(
                heterogeneity=heterogeneity,
                mean_instantaneous_tp=mean_it,
                fcfs_fraction=sum(fcfs.fraction_of(s) for s in members),
                optimal_fraction=sum(best.fraction_of(s) for s in members),
                worst_fraction=sum(worst.fraction_of(s) for s in members),
                draw_probability=sum(
                    multiset_draw_probability(s, workload.n_types)
                    for s in members
                ),
            )
        )
    return HeterogeneityTable(workload=workload, rows=tuple(rows))
