"""Workloads: the Section-III-D workload model.

A *workload* is a combination of N distinct job types.  The workload
contains an unlimited number of jobs of each type, the types are
equiprobable, and every type contributes the same total amount of work
(the paper's equal-work assumption, which Equation 5 enforces in the
LP).  For the default evaluation, N = 4 types are chosen out of the 12
roster benchmarks, giving C(12, 4) = 495 workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from repro.errors import WorkloadError
from repro.util.multiset import multisets

__all__ = ["Workload", "all_workloads"]


@dataclass(frozen=True)
class Workload:
    """An unordered set of N distinct job types.

    Attributes:
        types: the job-type names, canonically sorted and distinct.
    """

    types: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.types:
            raise WorkloadError("a workload needs at least one job type")
        if list(self.types) != sorted(set(self.types)):
            raise WorkloadError(
                f"workload types must be sorted and distinct, got {self.types}; "
                "use Workload.of(...) to canonicalize"
            )

    @classmethod
    def of(cls, *names: str) -> "Workload":
        """Build a workload from job-type names in any order.

        >>> Workload.of("mcf", "bzip2").types
        ('bzip2', 'mcf')
        """
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate job types in workload: {names}")
        return cls(types=tuple(sorted(names)))

    @property
    def n_types(self) -> int:
        """Number of distinct job types N."""
        return len(self.types)

    def coschedules(self, contexts: int) -> list[tuple[str, ...]]:
        """All coschedules: multisets of ``contexts`` jobs over the types.

        For N = 4 types and K = 4 contexts this yields the paper's 35
        combinations (AAAA, AAAB, ..., DDDD).
        """
        if contexts <= 0:
            raise WorkloadError(f"contexts must be positive, got {contexts}")
        return list(multisets(self.types, contexts))

    def label(self) -> str:
        """Human-readable label for reports."""
        return "+".join(self.types)

    def __contains__(self, name: object) -> bool:
        return name in self.types

    def __iter__(self):
        return iter(self.types)


def all_workloads(
    available_types: Sequence[str] | Iterable[str], n_types: int
) -> list[Workload]:
    """Every workload of ``n_types`` distinct types from a pool.

    With the 12-benchmark roster and ``n_types=4`` this returns the 495
    workloads of the paper's default evaluation.
    """
    pool = sorted(set(available_types))
    if n_types <= 0:
        raise WorkloadError(f"n_types must be positive, got {n_types}")
    if n_types > len(pool):
        raise WorkloadError(
            f"cannot choose {n_types} distinct types from {len(pool)} available"
        )
    return [Workload(types=combo) for combo in combinations(pool, n_types)]
