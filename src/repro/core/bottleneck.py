"""Linear-bottleneck analysis (Section V.C.1b).

A *linear bottleneck* is a fully utilized shared resource that every
job's execution rate is proportional to its share of: ``r_b(s) =
f_b(s) * R_b`` with ``sum_b f_b(s) = 1``.  Then for every coschedule

    sum_b  r_b(s) / R_b  =  1,

and the average throughput is scheduler-independent:
``AT = N / sum_b (1 / R_b)`` (Equation 7).

Real machines are never exactly linear, so the paper fits the best
``R_b`` in the least-squares sense and uses the residual as a distance
from the ideal: small error => scheduling cannot matter much.  Figure 3
plots throughput variability against this error.

The fit is linear in ``z_b = 1 / R_b``: minimize ``||M z - 1||^2`` with
``M[s, b] = r_b(s)``, solved with a NumPy least-squares call plus a
non-negativity projection (a negative ``z_b`` has no physical meaning).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.workload import Workload
from repro.microarch.rates import RateSource

__all__ = ["BottleneckFit", "fit_linear_bottleneck", "bottleneck_throughput"]


@dataclass(frozen=True)
class BottleneckFit:
    """Least-squares linear-bottleneck fit for one workload.

    Attributes:
        workload: the analyzed workload.
        full_rates: fitted ``R_b`` (execution rate of type b with the
            whole bottleneck resource), per type; ``inf`` when the
            fitted inverse rate is zero.
        error: the paper's epsilon^2 — mean squared residual of
            ``sum_b r_b(s)/R_b - 1`` over coschedules.
    """

    workload: Workload
    full_rates: dict[str, float]
    error: float

    @property
    def rms_error(self) -> float:
        """Root-mean-square residual (epsilon)."""
        return float(np.sqrt(self.error))

    def is_linear(self, *, tolerance: float = 1e-3) -> bool:
        """True when the workload is (numerically) an exact bottleneck."""
        return self.error <= tolerance


def _nonnegative_lstsq(M: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Least squares with a non-negativity constraint on the solution.

    Active-set elimination: solve unconstrained; clamp negative
    coordinates to zero and re-solve over the remaining columns until
    all coordinates are non-negative.  For the small, well-conditioned
    systems here this converges in a handful of rounds.
    """
    n = M.shape[1]
    active = list(range(n))
    z = np.zeros(n)
    for _ in range(n + 1):
        if not active:
            break
        sub = M[:, active]
        z_sub, *_ = np.linalg.lstsq(sub, target, rcond=None)
        negatives = [active[i] for i, v in enumerate(z_sub) if v < 0.0]
        if not negatives:
            for i, column in enumerate(active):
                z[column] = z_sub[i]
            break
        active = [column for column in active if column not in negatives]
    return z


def fit_linear_bottleneck(
    rates: RateSource,
    workload: Workload,
    *,
    contexts: int | None = None,
) -> BottleneckFit:
    """Fit the best linear-bottleneck explanation of a workload's rates."""
    machine = getattr(rates, "machine", None)
    k = contexts if contexts is not None else (machine.contexts if machine else None)
    if k is None:
        raise ValueError("pass contexts=K for rate sources without a machine")

    coschedules = workload.coschedules(k)
    types = workload.types
    M = np.zeros((len(coschedules), len(types)))
    for i, s in enumerate(coschedules):
        type_rates = rates.type_rates(s)
        for j, b in enumerate(types):
            M[i, j] = type_rates.get(b, 0.0)

    target = np.ones(len(coschedules))
    z = _nonnegative_lstsq(M, target)
    residual = M @ z - target
    error = float(np.mean(residual**2))

    full_rates = {
        b: (1.0 / z[j] if z[j] > 0.0 else float("inf"))
        for j, b in enumerate(types)
    }
    return BottleneckFit(workload=workload, full_rates=full_rates, error=error)


def bottleneck_throughput(fit: BottleneckFit) -> float:
    """Equation 7: the scheduler-independent throughput of an exact bottleneck.

    ``AT = N / sum_b (1 / R_b)``.  Only meaningful when ``fit.error`` is
    small; infinite fitted rates contribute zero to the denominator.
    """
    inverse_sum = sum(
        0.0 if rate == float("inf") else 1.0 / rate
        for rate in fit.full_rates.values()
    )
    if inverse_sum <= 0.0:
        return float("inf")
    return fit.workload.n_types / inverse_sum
