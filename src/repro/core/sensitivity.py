"""Job-(in)sensitivity analysis (Section V.C.1a).

A job is *insensitive* when its performance barely depends on which
jobs co-run with it.  If every job in a workload is insensitive there is
nothing for a symbiotic scheduler to exploit.  The paper reports that
about a quarter of its workloads have low job sensitivity and that
those workloads indeed show low average-throughput variability — but
also that sensitivity alone cannot explain the small optimal-vs-FCFS
gap (average job sensitivity is about three times the average
throughput variability).

Additionally, Section V.C.2 identifies the *spread in per-type mean
performance* (fast types vs slow types) as the force that shrinks the
scheduler's feasible region, which Figure 3 encodes as the point color.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.variability import job_wipc_stats
from repro.core.workload import Workload
from repro.microarch.rates import RateSource

__all__ = ["SensitivityReport", "workload_sensitivity", "per_type_rate_spread"]


@dataclass(frozen=True)
class SensitivityReport:
    """Per-workload job-sensitivity summary.

    Attributes:
        workload: the analyzed workload.
        per_type: per-type variability ((max-min)/mean of the per-job
            rate across coschedules).
        mean_sensitivity: average of ``per_type`` over the types.
    """

    workload: Workload
    per_type: dict[str, float]
    mean_sensitivity: float

    def is_insensitive(self, *, threshold: float = 0.10) -> bool:
        """True when the mean sensitivity is below ``threshold``."""
        return self.mean_sensitivity < threshold


def workload_sensitivity(
    rates: RateSource,
    workload: Workload,
    *,
    contexts: int | None = None,
) -> SensitivityReport:
    """Compute per-type and mean job sensitivity for a workload."""
    machine = getattr(rates, "machine", None)
    k = contexts if contexts is not None else (machine.contexts if machine else None)
    if k is None:
        raise ValueError("pass contexts=K for rate sources without a machine")

    variations = job_wipc_stats(rates, workload, k)
    per_type = {b: v.spread for b, v in variations.items()}
    return SensitivityReport(
        workload=workload,
        per_type=per_type,
        mean_sensitivity=sum(per_type.values()) / len(per_type),
    )


def per_type_rate_spread(
    rates: RateSource,
    workload: Workload,
    *,
    contexts: int | None = None,
) -> float:
    """Spread of per-type *mean* WIPC across the workload's types.

    This is Figure 3's color axis: ``(max_b - min_b)`` of the mean
    per-job WIPC of each type (taken over all coschedules containing
    the type).  A large spread means slow types dominate execution time
    and the scheduler has little freedom (Section V.C.2).
    """
    machine = getattr(rates, "machine", None)
    k = contexts if contexts is not None else (machine.contexts if machine else None)
    if k is None:
        raise ValueError("pass contexts=K for rate sources without a machine")

    variations = job_wipc_stats(rates, workload, k)
    means = [v.stats.mean for v in variations.values()]
    return max(means) - min(means)
