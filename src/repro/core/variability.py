"""Figure-1 metrics: three levels of variability.

For one workload the paper contrasts:

1. **Per-job IPC variability** — how much one job's performance swings
   across the coschedules of the workload (relative to its mean).
   Relative swings are identical in IPC and WIPC units (WIPC is IPC
   scaled by a per-type constant), so this module computes them from
   per-job WIPC and they remain valid for frozen rate tables.
2. **Instantaneous-throughput variability** — how much ``it(s)`` swings
   across coschedules.
3. **Average-throughput variability** — how much the long-term average
   throughput differs between the optimal, FCFS, and worst schedulers.

The paper's headline observation is the ordering 1, 2 >> 3, and within
3 that optimal-vs-FCFS is small (a few percent).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.fcfs import fcfs_throughput
from repro.core.optimal import optimal_throughput, worst_throughput
from repro.core.workload import Workload
from repro.microarch.rates import RateSource
from repro.util.stats import SummaryStats, summarize

__all__ = [
    "JobVariation",
    "WorkloadVariability",
    "job_wipc_stats",
    "workload_variability",
]


@dataclass(frozen=True)
class JobVariation:
    """One job type's performance swing across coschedules.

    ``relative_max``/``relative_min`` are the Figure-1 bar heights:
    (max - mean)/mean and (min - mean)/mean of the per-job rate over all
    coschedules containing the type.
    """

    job_type: str
    stats: SummaryStats

    @property
    def relative_max(self) -> float:
        """Best-case swing above the mean (positive)."""
        return self.stats.maximum / self.stats.mean - 1.0

    @property
    def relative_min(self) -> float:
        """Worst-case swing below the mean (negative)."""
        return self.stats.minimum / self.stats.mean - 1.0

    @property
    def spread(self) -> float:
        """(max - min) / mean — the paper's variability measure."""
        return self.stats.spread


def job_wipc_stats(
    rates: RateSource, workload: Workload, contexts: int
) -> dict[str, JobVariation]:
    """Per-job rate statistics across the workload's coschedules.

    For each type b, collects the per-job WIPC of b in every coschedule
    that contains at least one b job (coschedules weighted equally, as
    in the paper's Figure 1).
    """
    samples: dict[str, list[float]] = {b: [] for b in workload.types}
    for s in workload.coschedules(contexts):
        counts = Counter(s)
        type_rates = rates.type_rates(s)
        for b, count in counts.items():
            samples[b].append(type_rates[b] / count)
    return {
        b: JobVariation(job_type=b, stats=summarize(values))
        for b, values in samples.items()
    }


@dataclass(frozen=True)
class WorkloadVariability:
    """All three Figure-1 variability levels for one workload.

    The ``avg_tp_*`` fields are relative to the FCFS scheduler (the
    figure's zero line for the third bar):

    * ``avg_tp_best``  = optimal/FCFS - 1  (>= 0 up to LP tolerance),
    * ``avg_tp_worst`` = worst/FCFS - 1    (<= 0).
    """

    workload: Workload
    job_variations: dict[str, JobVariation]
    inst_tp_stats: SummaryStats
    fcfs_tp: float
    optimal_tp: float
    worst_tp: float

    @property
    def job_relative_max(self) -> float:
        """Mean over types of the best-case per-job swing."""
        values = [v.relative_max for v in self.job_variations.values()]
        return sum(values) / len(values)

    @property
    def job_relative_min(self) -> float:
        """Mean over types of the worst-case per-job swing."""
        values = [v.relative_min for v in self.job_variations.values()]
        return sum(values) / len(values)

    @property
    def job_spread(self) -> float:
        """Mean per-job variability ((max-min)/mean) over types."""
        values = [v.spread for v in self.job_variations.values()]
        return sum(values) / len(values)

    @property
    def inst_tp_relative_max(self) -> float:
        """Best coschedule's it(s) relative to the mean."""
        return self.inst_tp_stats.maximum / self.inst_tp_stats.mean - 1.0

    @property
    def inst_tp_relative_min(self) -> float:
        """Worst coschedule's it(s) relative to the mean."""
        return self.inst_tp_stats.minimum / self.inst_tp_stats.mean - 1.0

    @property
    def inst_tp_spread(self) -> float:
        """Instantaneous-throughput variability."""
        return self.inst_tp_stats.spread

    @property
    def avg_tp_best(self) -> float:
        """Optimal scheduler's gain over FCFS."""
        return self.optimal_tp / self.fcfs_tp - 1.0

    @property
    def avg_tp_worst(self) -> float:
        """Worst scheduler's loss versus FCFS (negative)."""
        return self.worst_tp / self.fcfs_tp - 1.0

    @property
    def avg_tp_spread(self) -> float:
        """(optimal - worst) / FCFS — average-throughput variability."""
        return (self.optimal_tp - self.worst_tp) / self.fcfs_tp

    @property
    def optimal_vs_worst(self) -> float:
        """Optimal / worst throughput ratio (Figure 2's x-axis)."""
        return self.optimal_tp / self.worst_tp

    @property
    def fcfs_vs_worst(self) -> float:
        """FCFS / worst throughput ratio (Figure 2's y-axis)."""
        return self.fcfs_tp / self.worst_tp

    @property
    def bridged_fraction(self) -> float:
        """Share of the worst->optimal gap that FCFS already bridges."""
        gap = self.optimal_tp - self.worst_tp
        if gap <= 0.0:
            return 1.0
        return (self.fcfs_tp - self.worst_tp) / gap


def workload_variability(
    rates: RateSource,
    workload: Workload,
    *,
    contexts: int | None = None,
    backend: str = "simplex",
) -> WorkloadVariability:
    """Compute all Figure-1 quantities for one workload."""
    machine = getattr(rates, "machine", None)
    k = contexts if contexts is not None else (machine.contexts if machine else None)
    if k is None:
        raise ValueError("pass contexts=K for rate sources without a machine")

    inst_tp = [
        sum(rates.type_rates(s).values()) for s in workload.coschedules(k)
    ]
    return WorkloadVariability(
        workload=workload,
        job_variations=job_wipc_stats(rates, workload, k),
        inst_tp_stats=summarize(inst_tp),
        fcfs_tp=fcfs_throughput(rates, workload, contexts=k).throughput,
        optimal_tp=optimal_throughput(
            rates, workload, contexts=k, backend=backend
        ).throughput,
        worst_tp=worst_throughput(
            rates, workload, contexts=k, backend=backend
        ).throughput,
    )
