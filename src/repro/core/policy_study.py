"""Section VII: optimal throughput as a microarchitecture-study metric.

The paper compares four SMT resource-management policies — {round-robin,
ICOUNT} fetch x {static, dynamic} ROB partitioning — under two
throughput metrics: the standard FCFS average throughput and the
optimal-scheduler throughput of Section IV.  The point is that a
microarchitecture study can account for intelligent scheduling without
implementing a scheduler: just recompute the LP bound on the proposed
design's per-coschedule rates.

:func:`run_policy_study` reproduces the experiment: for each policy
pair it builds a rate table for the corresponding SMT machine, computes
FCFS and optimal throughput for every workload, and reports averages
plus the fraction of workloads whose best policy flips when switching
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.fcfs import fcfs_throughput
from repro.core.optimal import optimal_throughput
from repro.core.workload import Workload
from repro.microarch.config import FetchPolicy, RobPolicy, smt_machine
from repro.microarch.params import JobTypeParams
from repro.microarch.rates import RateTable

__all__ = ["PolicyResult", "PolicyStudy", "run_policy_study", "ALL_POLICIES"]

ALL_POLICIES: tuple[tuple[FetchPolicy, RobPolicy], ...] = (
    (FetchPolicy.ROUND_ROBIN, RobPolicy.STATIC),
    (FetchPolicy.ROUND_ROBIN, RobPolicy.DYNAMIC),
    (FetchPolicy.ICOUNT, RobPolicy.STATIC),
    (FetchPolicy.ICOUNT, RobPolicy.DYNAMIC),
)


def policy_label(fetch: FetchPolicy, rob: RobPolicy) -> str:
    """Short label, e.g. ``icount+dynamic``."""
    return f"{fetch.value}+{rob.value}"


@dataclass(frozen=True)
class PolicyResult:
    """Average throughputs of one fetch/ROB policy pair.

    ``fcfs_tp``/``optimal_tp`` map workload labels to throughput.
    """

    fetch: FetchPolicy
    rob: RobPolicy
    fcfs_tp: dict[str, float]
    optimal_tp: dict[str, float]

    @property
    def label(self) -> str:
        """Short policy label."""
        return policy_label(self.fetch, self.rob)

    @property
    def mean_fcfs(self) -> float:
        """Mean FCFS throughput over workloads."""
        return sum(self.fcfs_tp.values()) / len(self.fcfs_tp)

    @property
    def mean_optimal(self) -> float:
        """Mean optimal throughput over workloads."""
        return sum(self.optimal_tp.values()) / len(self.optimal_tp)


@dataclass(frozen=True)
class PolicyStudy:
    """Full Section-VII comparison across the four policy pairs."""

    results: tuple[PolicyResult, ...]
    workload_labels: tuple[str, ...]

    def result(self, fetch: FetchPolicy, rob: RobPolicy) -> PolicyResult:
        """The result for one policy pair."""
        for result in self.results:
            if result.fetch is fetch and result.rob is rob:
                return result
        raise KeyError(policy_label(fetch, rob))

    def best_policy(self, workload_label: str, *, metric: str) -> str:
        """Best policy label for a workload under 'fcfs' or 'optimal'."""
        if metric == "fcfs":
            return max(
                self.results, key=lambda r: r.fcfs_tp[workload_label]
            ).label
        if metric == "optimal":
            return max(
                self.results, key=lambda r: r.optimal_tp[workload_label]
            ).label
        raise ValueError(f"metric must be 'fcfs' or 'optimal', got {metric!r}")

    def flip_fraction(self) -> float:
        """Fraction of workloads whose best policy changes with the metric.

        The paper reports about 10% of workloads select a different
        optimal policy under the optimal-scheduler metric than under
        FCFS.
        """
        flips = sum(
            1
            for label in self.workload_labels
            if self.best_policy(label, metric="fcfs")
            != self.best_policy(label, metric="optimal")
        )
        return flips / len(self.workload_labels)

    def mean_gain_over(
        self,
        baseline: tuple[FetchPolicy, RobPolicy],
        candidate: tuple[FetchPolicy, RobPolicy],
        *,
        metric: str,
    ) -> float:
        """Mean relative throughput gain of candidate over baseline."""
        base = self.result(*baseline)
        cand = self.result(*candidate)
        base_tp = base.fcfs_tp if metric == "fcfs" else base.optimal_tp
        cand_tp = cand.fcfs_tp if metric == "fcfs" else cand.optimal_tp
        gains = [
            cand_tp[label] / base_tp[label] - 1.0
            for label in self.workload_labels
        ]
        return sum(gains) / len(gains)


def run_policy_study(
    workloads: Sequence[Workload],
    *,
    roster: Mapping[str, JobTypeParams] | None = None,
    policies: Sequence[tuple[FetchPolicy, RobPolicy]] = ALL_POLICIES,
    backend: str = "simplex",
) -> PolicyStudy:
    """Run the Section-VII policy comparison over the given workloads."""
    results = []
    labels = tuple(w.label() for w in workloads)
    for fetch, rob in policies:
        machine = smt_machine(fetch_policy=fetch, rob_policy=rob)
        rates = RateTable(machine, roster)
        fcfs_tp: dict[str, float] = {}
        optimal_tp: dict[str, float] = {}
        for workload in workloads:
            label = workload.label()
            fcfs_tp[label] = fcfs_throughput(rates, workload).throughput
            optimal_tp[label] = optimal_throughput(
                rates, workload, backend=backend
            ).throughput
        results.append(
            PolicyResult(
                fetch=fetch, rob=rob, fcfs_tp=fcfs_tp, optimal_tp=optimal_tp
            )
        )
    return PolicyStudy(results=tuple(results), workload_labels=labels)
