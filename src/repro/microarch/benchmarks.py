"""The 12-entry synthetic benchmark roster (Table I stand-in).

The paper selected 12 SPEC CPU2006 benchmarks that "approximately
uniformly cover the space of low- to high-interference benchmarks"
(Table I).  This module defines synthetic job types with the same names
and the published qualitative character of each benchmark:

* ``hmmer``, ``h264ref``, ``calculix`` — high-IPC compute jobs with
  modest cache footprints (mildly sensitive on the multicore,
  width-hungry on SMT: they form the paper's *linear bottleneck*
  workloads);
* ``mcf``, ``xalancbmk`` — cache-sensitive memory-bound jobs with low
  MLP and small useful windows (pointer chasing);
* ``libquantum`` — a streaming bandwidth hog whose misses barely react
  to cache capacity;
* ``gcc`` (two inputs) — large-footprint integer codes of intermediate
  intensity;
* ``bzip2``, ``perlbench``, ``sjeng``, ``tonto`` — balanced / branchy
  mid-range jobs.

Parameter values are calibrated so that alone-IPCs span roughly 0.2–3.0
on the 4-wide reference core, matching the wide per-job performance
differences the paper leans on in Section V.C.2.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.microarch.params import JobTypeParams

__all__ = ["default_roster", "roster_by_name", "BENCHMARK_NAMES"]


_ROSTER: tuple[JobTypeParams, ...] = (
    JobTypeParams(
        name="bzip2",
        category="balanced",
        cpi_base=0.42,
        ilp_sens=0.30,
        w_need=96,
        br_mpki=4.0,
        cpi_short=0.08,
        mpki_inf=1.2,
        mpki_amp=6.0,
        c_half_mb=1.0,
        gamma=1.2,
        mlp=2.5,
    ),
    JobTypeParams(
        name="calculix",
        category="compute",
        cpi_base=0.30,
        ilp_sens=0.50,
        w_need=160,
        br_mpki=0.8,
        cpi_short=0.10,
        mpki_inf=0.3,
        mpki_amp=2.5,
        c_half_mb=1.2,
        gamma=1.5,
        mlp=2.0,
    ),
    JobTypeParams(
        name="gcc.cp-decl",
        category="balanced",
        cpi_base=0.45,
        ilp_sens=0.35,
        w_need=112,
        br_mpki=5.5,
        cpi_short=0.12,
        mpki_inf=1.0,
        mpki_amp=9.0,
        c_half_mb=2.0,
        gamma=1.0,
        mlp=3.0,
    ),
    JobTypeParams(
        name="gcc.g23",
        category="balanced",
        cpi_base=0.48,
        ilp_sens=0.35,
        w_need=112,
        br_mpki=6.0,
        cpi_short=0.12,
        mpki_inf=1.5,
        mpki_amp=15.0,
        c_half_mb=2.5,
        gamma=1.0,
        mlp=3.0,
    ),
    JobTypeParams(
        name="h264ref",
        category="compute",
        cpi_base=0.28,
        ilp_sens=0.60,
        w_need=192,
        br_mpki=2.5,
        cpi_short=0.06,
        mpki_inf=0.4,
        mpki_amp=3.0,
        c_half_mb=1.0,
        gamma=1.5,
        mlp=2.0,
    ),
    JobTypeParams(
        name="hmmer",
        category="compute",
        cpi_base=0.26,
        ilp_sens=0.55,
        w_need=160,
        br_mpki=1.2,
        cpi_short=0.04,
        mpki_inf=0.1,
        mpki_amp=1.5,
        c_half_mb=0.8,
        gamma=1.5,
        mlp=1.5,
    ),
    JobTypeParams(
        name="libquantum",
        category="memory",
        cpi_base=0.40,
        ilp_sens=0.20,
        w_need=64,
        br_mpki=0.3,
        cpi_short=0.05,
        mpki_inf=28.0,
        mpki_amp=2.0,
        c_half_mb=1.0,
        gamma=1.0,
        mlp=6.0,
    ),
    JobTypeParams(
        name="mcf",
        category="memory",
        cpi_base=0.55,
        ilp_sens=0.25,
        w_need=40,
        br_mpki=7.0,
        cpi_short=0.15,
        mpki_inf=12.0,
        mpki_amp=32.0,
        c_half_mb=3.0,
        gamma=0.8,
        mlp=1.6,
    ),
    JobTypeParams(
        name="perlbench",
        category="branch",
        cpi_base=0.38,
        ilp_sens=0.40,
        w_need=128,
        br_mpki=5.0,
        cpi_short=0.10,
        mpki_inf=0.8,
        mpki_amp=4.0,
        c_half_mb=1.2,
        gamma=1.2,
        mlp=2.0,
    ),
    JobTypeParams(
        name="sjeng",
        category="branch",
        cpi_base=0.40,
        ilp_sens=0.30,
        w_need=96,
        br_mpki=9.0,
        cpi_short=0.08,
        mpki_inf=0.5,
        mpki_amp=2.5,
        c_half_mb=0.8,
        gamma=1.2,
        mlp=1.8,
    ),
    JobTypeParams(
        name="tonto",
        category="compute",
        cpi_base=0.33,
        ilp_sens=0.45,
        w_need=144,
        br_mpki=1.5,
        cpi_short=0.09,
        mpki_inf=0.6,
        mpki_amp=4.0,
        c_half_mb=1.2,
        gamma=1.3,
        mlp=2.2,
    ),
    JobTypeParams(
        name="xalancbmk",
        category="memory",
        cpi_base=0.46,
        ilp_sens=0.30,
        w_need=56,
        br_mpki=6.5,
        cpi_short=0.12,
        mpki_inf=3.0,
        mpki_amp=24.0,
        c_half_mb=2.0,
        gamma=1.1,
        mlp=2.2,
    ),
)

BENCHMARK_NAMES: tuple[str, ...] = tuple(job.name for job in _ROSTER)


def default_roster() -> dict[str, JobTypeParams]:
    """The 12 synthetic job types, keyed by name, in Table-I order."""
    return {job.name: job for job in _ROSTER}


def roster_by_name(*names: str) -> dict[str, JobTypeParams]:
    """A sub-roster restricted to ``names``.

    Raises:
        WorkloadError: if any name is not in the default roster.
    """
    roster = default_roster()
    unknown = [name for name in names if name not in roster]
    if unknown:
        raise WorkloadError(
            f"unknown job types {unknown!r}; available: {sorted(roster)}"
        )
    return {name: roster[name] for name in names}
