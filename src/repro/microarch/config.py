"""Machine configurations: the paper's two evaluation platforms.

* :func:`smt_machine` — a 4-way SMT, 4-wide out-of-order core.  All
  resources are shared: dispatch width, ROB, LLC, memory bus.  The fetch
  policy (ICOUNT or round-robin) and ROB partitioning (static or
  dynamic) are configurable, which Section VII of the paper exploits.
* :func:`quad_core_machine` — four private 4-wide cores sharing only the
  LLC and the memory bus.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = [
    "FetchPolicy",
    "RobPolicy",
    "MachineConfig",
    "smt_machine",
    "quad_core_machine",
]


class FetchPolicy(enum.Enum):
    """SMT fetch policy (Tullsen et al., ISCA 1996)."""

    ICOUNT = "icount"
    ROUND_ROBIN = "round_robin"


class RobPolicy(enum.Enum):
    """SMT ROB partitioning (Raasch & Reinhardt, PACT 2003)."""

    STATIC = "static"
    DYNAMIC = "dynamic"


@dataclass(frozen=True)
class MachineConfig:
    """A fully symmetric SMT core or multicore.

    Attributes:
        name: label used in reports.
        kind: ``"smt"`` (one core, ``contexts`` hardware threads) or
            ``"multicore"`` (``contexts`` private cores).
        contexts: number of hardware contexts K.
        width: dispatch width per core (instructions/cycle).
        rob_size: reorder-buffer entries per core.
        llc_mb: shared last-level cache capacity in MB.
        mem_latency_cycles: uncontended memory access latency.
        bus_service_cycles: bus occupancy per LLC miss (sets the
            bandwidth roof; see :mod:`repro.microarch.membus`).
        branch_penalty_cycles: front-end refill penalty per mispredict.
        fetch_policy: SMT fetch policy (ignored for multicore).
        rob_policy: SMT ROB partitioning (ignored for multicore).
        icount_strength: how aggressively ICOUNT deprioritizes threads
            that spend time stalled on memory.
        rr_slot_waste: fraction of a stalled thread's fetch-slot share
            that round-robin fetch wastes (ICOUNT's advantage scales
            with this).
        smt_overhead: per-co-runner execution-bandwidth inflation from
            sharing private structures (L1/L2 conflicts, issue
            contention): t_exec multiplier is 1 + smt_overhead*(n-1).
        smt_fragmentation: front-end fragmentation when several threads
            are simultaneously active: the usable dispatch width scales
            by 1 / (1 + smt_fragmentation * (E[active threads] - 1)).
            This is what keeps a 4-thread SMT core's aggregate IPC well
            below its nominal width, as observed on real SMT machines.
        bus_max_utilization: clamp on modeled bus utilization (keeps the
            queueing delay finite).
        cache_share_floor: minimum fraction of the LLC any co-running
            job retains (a job is never fully evicted).
    """

    name: str
    kind: str
    contexts: int
    width: int
    rob_size: int
    llc_mb: float
    mem_latency_cycles: float
    bus_service_cycles: float
    branch_penalty_cycles: float
    fetch_policy: FetchPolicy = FetchPolicy.ICOUNT
    rob_policy: RobPolicy = RobPolicy.DYNAMIC
    icount_strength: float = 6.0
    rr_slot_waste: float = 0.22
    smt_overhead: float = 0.02
    smt_fragmentation: float = 0.12
    bus_max_utilization: float = 0.95
    cache_share_floor: float = 0.03

    def __post_init__(self) -> None:
        if self.kind not in ("smt", "multicore"):
            raise ConfigurationError(
                f"kind must be 'smt' or 'multicore', got {self.kind!r}"
            )
        positive = [
            ("contexts", self.contexts),
            ("width", self.width),
            ("rob_size", self.rob_size),
            ("llc_mb", self.llc_mb),
            ("mem_latency_cycles", self.mem_latency_cycles),
            ("bus_service_cycles", self.bus_service_cycles),
            ("branch_penalty_cycles", self.branch_penalty_cycles),
        ]
        for label, value in positive:
            if value <= 0:
                raise ConfigurationError(f"{label} must be positive, got {value}")
        if not 0.0 < self.bus_max_utilization < 1.0:
            raise ConfigurationError("bus_max_utilization must be in (0, 1)")
        if not 0.0 <= self.cache_share_floor < 1.0 / self.contexts:
            raise ConfigurationError(
                "cache_share_floor must be in [0, 1/contexts)"
            )
        if self.smt_overhead < 0.0:
            raise ConfigurationError("smt_overhead must be >= 0")
        if not 0.0 <= self.rr_slot_waste <= 1.0:
            raise ConfigurationError("rr_slot_waste must be in [0, 1]")
        if self.smt_fragmentation < 0.0:
            raise ConfigurationError("smt_fragmentation must be >= 0")
        if self.icount_strength < 0.0:
            raise ConfigurationError("icount_strength must be >= 0")

    @property
    def is_smt(self) -> bool:
        """True for the SMT configuration."""
        return self.kind == "smt"

    def with_policies(
        self,
        *,
        fetch_policy: FetchPolicy | None = None,
        rob_policy: RobPolicy | None = None,
    ) -> "MachineConfig":
        """A copy with different SMT fetch/ROB policies (Section VII)."""
        updated = self
        parts = []
        if fetch_policy is not None:
            updated = replace(updated, fetch_policy=fetch_policy)
            parts.append(fetch_policy.value)
        if rob_policy is not None:
            updated = replace(updated, rob_policy=rob_policy)
            parts.append(rob_policy.value)
        if parts:
            updated = replace(updated, name=f"{self.name}[{'+'.join(parts)}]")
        return updated


def smt_machine(
    *,
    fetch_policy: FetchPolicy = FetchPolicy.ICOUNT,
    rob_policy: RobPolicy = RobPolicy.DYNAMIC,
    contexts: int = 4,
) -> MachineConfig:
    """The paper's first platform: a 4-way SMT, 4-wide OOO core.

    Defaults to ICOUNT fetch with dynamic ROB sharing, which the paper
    uses "unless mentioned otherwise".
    """
    return MachineConfig(
        name="smt4",
        kind="smt",
        contexts=contexts,
        width=4,
        rob_size=256,
        llc_mb=4.0,
        mem_latency_cycles=230.0,
        bus_service_cycles=24.0,
        branch_penalty_cycles=14.0,
        fetch_policy=fetch_policy,
        rob_policy=rob_policy,
    )


def quad_core_machine(*, contexts: int = 4) -> MachineConfig:
    """The paper's second platform: four 4-wide cores, shared LLC + bus."""
    return MachineConfig(
        name="quad",
        kind="multicore",
        contexts=contexts,
        width=4,
        rob_size=256,
        llc_mb=2.0,
        mem_latency_cycles=230.0,
        bus_service_cycles=44.0,
        branch_penalty_cycles=14.0,
        cache_share_floor=0.02,
    )
