"""SMT fetch-policy modeling.

The fetch policy decides which thread's instructions enter the pipeline
each cycle.  In the mean-field core model each thread sees a dispatch
share of ``eta * W / (1 + sum of rival weights)``; the fetch policy
determines how much of a *rival* each co-runner is:

* **Round-robin** hands fetch slots to every thread in turn, including
  memory-stalled ones whose instructions just pile up — so every
  co-runner has full rival weight 1 and slots given to stalled threads
  are effectively wasted.
* **ICOUNT** (Tullsen et al., ISCA 1996) prioritizes threads with few
  in-flight instructions.  A memory-stalled thread holds its window's
  worth of in-flight instructions and is skipped, so it only competes
  for slots while it is actually active: its rival weight is (close to)
  its active fraction.  This is why ICOUNT lifts aggregate throughput —
  compute threads reclaim the slots stalled threads cannot use.
"""

from __future__ import annotations

from typing import Sequence

from repro.microarch.config import FetchPolicy

__all__ = ["rival_weights", "water_fill"]


def rival_weights(
    policy: FetchPolicy,
    activities: Sequence[float],
    *,
    strength: float = 2.5,
    rr_slot_waste: float = 0.5,
) -> list[float]:
    """How strongly each thread competes for dispatch slots.

    A thread's rival weight interpolates between its active fraction
    (an ideal policy that never wastes a slot on a stalled thread) and
    1 (a naive policy that always hands the thread its turn):

        c_j = a_j + waste * (1 - a_j)

    * ICOUNT: ``waste = 1 / (1 + strength)`` — nearly slot-exact for a
      strong ICOUNT.
    * Round-robin: ``waste = rr_slot_waste`` — stalled threads keep
      consuming a share of slots until their front-end queues fill.

    Args:
        policy: the SMT fetch policy.
        activities: per-thread fraction of time *not* stalled on memory
            (in [0, 1]).
        strength: ICOUNT selectivity (0 degenerates to waste = 1).
        rr_slot_waste: fraction of a stalled thread's slot share that
            round-robin fetch actually wastes.

    Returns:
        Per-thread rival weights in [0, 1].
    """
    for a in activities:
        if not -1e-9 <= a <= 1.0 + 1e-9:
            raise ValueError(f"activity out of [0, 1]: {a}")
    if not 0.0 <= rr_slot_waste <= 1.0:
        raise ValueError(f"rr_slot_waste out of [0, 1]: {rr_slot_waste}")
    if policy is FetchPolicy.ROUND_ROBIN:
        waste = rr_slot_waste
    else:
        waste = 1.0 / (1.0 + strength)
    return [
        min(1.0, max(0.0, a) + waste * (1.0 - max(0.0, a)))
        for a in activities
    ]


def water_fill(
    demands: Sequence[float],
    weights: Sequence[float],
    capacity: float,
) -> list[float]:
    """Allocate ``capacity`` among demands with weighted fair sharing.

    Threads demanding less than their weighted share get their demand;
    the leftover is re-split among the rest by weight (classic
    water-filling).  The result never exceeds a thread's demand and the
    total never exceeds ``capacity``.

    Used for dispatch-width sharing: demands are the IPCs each thread
    could sustain without the width constraint; the allocation is the
    IPC it actually achieves.  When total demand exceeds the width, the
    sum of allocations equals the width — the *linear bottleneck* of
    Section V.C.1b emerges exactly here.
    """
    n = len(demands)
    if len(weights) != n:
        raise ValueError(f"length mismatch: {n} demands vs {len(weights)} weights")
    if capacity < 0.0:
        raise ValueError("capacity must be non-negative")
    if any(d < 0.0 for d in demands):
        raise ValueError("demands must be non-negative")
    if any(w < 0.0 for w in weights):
        raise ValueError("weights must be non-negative")

    allocation = [0.0] * n
    active = [i for i in range(n) if demands[i] > 0.0]
    remaining = float(capacity)

    # Threads with zero weight only receive capacity left over after all
    # positively weighted threads are satisfied; treat them as epsilon
    # weight to keep the loop uniform.
    epsilon = 1e-12
    effective = [max(w, epsilon) for w in weights]

    while active and remaining > 1e-15:
        weight_sum = sum(effective[i] for i in active)
        satisfied = [
            i
            for i in active
            if demands[i] - allocation[i]
            <= remaining * effective[i] / weight_sum + 1e-15
        ]
        if satisfied:
            for i in satisfied:
                grant = demands[i] - allocation[i]
                allocation[i] = demands[i]
                remaining -= grant
                active.remove(i)
        else:
            for i in active:
                allocation[i] += remaining * effective[i] / weight_sum
            remaining = 0.0
    return allocation
