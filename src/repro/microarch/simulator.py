"""Coschedule simulation facade.

:func:`simulate_coschedule` is the package's analogue of "run this job
combination under Sniper and report per-job performance": it solves the
machine-appropriate contention fixed point and returns per-job IPCs plus
diagnostics.  Results are deterministic functions of (machine, roster,
multiset of job names); the multiset is canonicalized by sorting, so
callers may pass names in any order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ConvergenceError, WorkloadError
from repro.microarch.config import MachineConfig
from repro.microarch.multicore import evaluate_multicore, multicore_iteration
from repro.microarch.params import JobTypeParams
from repro.microarch.smt_core import evaluate_smt, smt_iteration
from repro.util.fixedpoint import solve_fixed_point

# Under-relaxation ladder: most coschedules converge fast at 0.4; heavily
# bus-saturated ones (e.g. four streaming jobs) sit where the queueing
# delay's derivative is large and need smaller steps to avoid limit
# cycles.
_DAMPING_LADDER: tuple[float, ...] = (0.4, 0.12, 0.04)

__all__ = ["SimulationResult", "simulate_coschedule"]


@dataclass(frozen=True)
class SimulationResult:
    """Steady-state performance of one coschedule.

    All per-job tuples are aligned with ``job_names``, which is the
    canonical (sorted) form of the requested multiset.

    Attributes:
        machine_name: the simulated machine configuration.
        job_names: canonical job-name multiset.
        ipcs: per-job instructions per cycle.
        mpkis: per-job LLC misses per kilo-instruction at steady state.
        cache_mb: per-job LLC capacity allocations.
        windows: per-job instruction-window sizes (SMT; full ROB on the
            multicore).
        memory_latency: effective memory latency including bus queueing.
        bus_utilization: modeled memory-bus utilization in [0, 1).
        iterations: fixed-point iterations to convergence.
    """

    machine_name: str
    job_names: tuple[str, ...]
    ipcs: tuple[float, ...]
    mpkis: tuple[float, ...]
    cache_mb: tuple[float, ...]
    windows: tuple[float, ...]
    memory_latency: float
    bus_utilization: float
    iterations: int

    @property
    def total_ipc(self) -> float:
        """Sum of per-job IPCs (raw-instruction instantaneous throughput)."""
        return sum(self.ipcs)

    def ipc_of(self, name: str) -> tuple[float, ...]:
        """IPCs of every job of type ``name`` in this coschedule."""
        values = tuple(
            ipc for job, ipc in zip(self.job_names, self.ipcs) if job == name
        )
        if not values:
            raise WorkloadError(f"{name!r} is not part of this coschedule")
        return values


def simulate_coschedule(
    machine: MachineConfig,
    roster: Mapping[str, JobTypeParams],
    names: Sequence[str],
) -> SimulationResult:
    """Simulate a multiset of jobs co-running on ``machine``.

    Args:
        machine: SMT or multicore configuration.
        roster: job-type definitions keyed by name.
        names: job-type names filling 1..K contexts (a multiset; order
            is irrelevant).

    Raises:
        WorkloadError: on unknown names or bad multiset sizes.
        ConvergenceError: if the contention fixed point diverges (should
            not happen for physical parameter values).
    """
    if not names:
        raise WorkloadError("a coschedule needs at least one job")
    if len(names) > machine.contexts:
        raise WorkloadError(
            f"{len(names)} jobs exceed the machine's {machine.contexts} contexts"
        )
    unknown = sorted(set(names) - set(roster))
    if unknown:
        raise WorkloadError(
            f"unknown job types {unknown!r}; roster has {sorted(roster)}"
        )

    canonical = tuple(sorted(names))
    jobs = [roster[name] for name in canonical]
    n = len(jobs)

    iterate = (
        smt_iteration(machine, jobs)
        if machine.is_smt
        else multicore_iteration(machine, jobs)
    )
    start = [1.0] * n + [machine.llc_mb / n] * n
    fixed_point = None
    last_error: ConvergenceError | None = None
    for damping in _DAMPING_LADDER:
        try:
            fixed_point = solve_fixed_point(
                iterate,
                start,
                damping=damping,
                tolerance=1e-10,
                max_iterations=5000,
            )
            break
        except ConvergenceError as error:
            last_error = error
    if fixed_point is None:
        raise ConvergenceError(
            f"coschedule {canonical} on {machine.name} did not converge at "
            f"any damping in {_DAMPING_LADDER}: {last_error}"
        )
    ipcs = fixed_point.value[:n]
    shares = fixed_point.value[n:]

    if machine.is_smt:
        evaluation = evaluate_smt(machine, jobs, ipcs, shares)
        windows = evaluation.windows
    else:
        evaluation = evaluate_multicore(machine, jobs, ipcs, shares)
        windows = (float(machine.rob_size),) * n

    return SimulationResult(
        machine_name=machine.name,
        job_names=canonical,
        ipcs=tuple(evaluation.next_ipcs),
        mpkis=evaluation.mpkis,
        cache_mb=tuple(evaluation.next_shares),
        windows=windows,
        memory_latency=evaluation.memory_latency,
        bus_utilization=evaluation.bus_utilization,
        iterations=fixed_point.iterations,
    )
