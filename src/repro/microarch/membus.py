"""Memory-bus contention model.

All LLC misses of all contexts are serviced by one memory bus.  Each
miss occupies the bus for a fixed service time (``bus_service_cycles``),
so the bus is an M/D/1-style server: at utilization ``U`` the expected
queueing delay per miss is ``S * U / (2 * (1 - U))``, which is added to
the uncontended memory latency.

This is the mechanism behind two of the paper's observations: streaming
jobs (libquantum-like) degrade everyone's memory latency, and memory
bandwidth is a candidate *linear bottleneck* (Section V.C.1b) — when the
bus saturates, each job's rate becomes proportional to its share of bus
slots.
"""

from __future__ import annotations

__all__ = ["bus_utilization", "bus_queueing_delay"]


def bus_utilization(
    miss_rate_per_cycle: float,
    service_cycles: float,
    *,
    max_utilization: float = 0.95,
) -> float:
    """Bus utilization for a total miss rate, clamped below 1.

    Args:
        miss_rate_per_cycle: sum over jobs of IPC x MPKI / 1000.
        service_cycles: bus occupancy per miss.
        max_utilization: clamp keeping the queueing delay finite; the
            fixed point self-limits below this in practice because a
            slower memory system lowers IPCs and hence the miss rate.
    """
    if miss_rate_per_cycle < 0.0:
        raise ValueError("miss rate must be non-negative")
    if service_cycles <= 0.0:
        raise ValueError("service time must be positive")
    return min(miss_rate_per_cycle * service_cycles, max_utilization)


def bus_queueing_delay(
    miss_rate_per_cycle: float,
    service_cycles: float,
    *,
    max_utilization: float = 0.95,
) -> float:
    """Expected queueing delay (cycles) a miss waits for the bus."""
    u = bus_utilization(
        miss_rate_per_cycle, service_cycles, max_utilization=max_utilization
    )
    return service_cycles * u / (2.0 * (1.0 - u))
