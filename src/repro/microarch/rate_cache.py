"""Memoized, persistable coschedule-rate cache.

The symbiotic scheduler re-evaluates per-coschedule execution rates at
every scheduling event, and every figure/table experiment asks the
microarch simulator for the same ``r_b(s)`` entries over and over.
:class:`~repro.microarch.rates.RateTable` already memoizes within one
object, but nothing shares those entries *across* rate sources,
processes, or repository runs.  This module adds that layer:

* :class:`CachedRateSource` — wraps **any**
  :class:`~repro.microarch.rates.RateSource` (a live
  :class:`~repro.microarch.rates.RateTable`, a frozen
  :class:`~repro.microarch.rates.TableRates`, a test double, ...),
  keyed on canonical coschedule tuples, with hit/miss statistics, an
  optional precompute-all-coschedules pass, and JSON persistence.
  Unknown attributes delegate to the wrapped source, so a wrapped
  :class:`RateTable` still exposes ``machine``, ``alone_ipc``, etc.
* :class:`RateCacheStore` — a single JSON file holding one entry
  section per machine configuration, so one persisted sweep (the
  analogue of the paper's 1,365-combination Sniper run) serves the SMT
  and quad-core rate tables of every experiment, benchmark session,
  and parallel worker process.
* :class:`CacheStats` — hit/miss/preload accounting with a one-line
  :meth:`~CacheStats.render` used by the experiment runner CLI.

A worked example (see ``docs/architecture.md`` for the full data
flow)::

    from repro.microarch.config import smt_machine
    from repro.microarch.rates import RateTable
    from repro.microarch.rate_cache import RateCacheStore

    store = RateCacheStore("rates.json")      # empty on first run
    rates = store.wrap(RateTable(smt_machine()))
    rates.type_rates(("mcf", "hmmer"))        # miss -> simulate
    rates.type_rates(("hmmer", "mcf"))        # hit (canonical key)
    store.save()                              # persist for next process
    print(rates.stats.render())
    # rate cache [smt4]: 1 hits, 1 misses (50.0% hit rate), 0 preloaded
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable, Mapping, Sequence

from repro.errors import WorkloadError
from repro.microarch.rates import RateSource, canonical_coschedule
from repro.util.multiset import multisets

__all__ = ["CacheStats", "CachedRateSource", "RateCacheStore"]

_KEY_SEPARATOR = "|"


def _join_key(key: tuple[str, ...]) -> str:
    for name in key:
        if _KEY_SEPARATOR in name:
            raise WorkloadError(
                f"job type {name!r} contains the reserved separator "
                f"{_KEY_SEPARATOR!r}"
            )
    return _KEY_SEPARATOR.join(key)


def _split_key(key: str) -> tuple[str, ...]:
    # The empty coschedule serializes to "" and must round-trip to (),
    # not ("",).
    return tuple(key.split(_KEY_SEPARATOR)) if key else ()


def _atomic_dump(path: Path, write) -> None:
    """Write a file crash-safely: dump to a sibling temp file, then
    ``os.replace`` into place.

    ``write`` receives the temp file object.  If it raises midway (a
    full disk, an unserializable rate, a KeyboardInterrupt), the temp
    file is removed and any existing file at ``path`` is left exactly
    as it was — a failed dump must never truncate a good cache.

    Durable against power loss, not just process death: the temp
    file's contents are fsynced before the rename (so the new name can
    never point at an unwritten file) and the parent directory is
    fsynced after it (so the rename itself survives a crash).  That
    ordering is what lets simulation checkpoints trust whatever file
    the restore path finds.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fp:
            write(fp)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp_name, path)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


#: Everything a malformed-but-valid-JSON cache payload can raise while
#: being normalized; loaders catch these and start cold instead.
_LOAD_ERRORS = (OSError, ValueError, TypeError, AttributeError, KeyError)


def _parse_entries(raw: object) -> dict[tuple[str, ...], dict[str, float]]:
    """Normalize one persisted entry mapping; raises on bad shapes."""
    if not isinstance(raw, dict):
        raise ValueError(f"entries must be a mapping, got {type(raw).__name__}")
    entries: dict[tuple[str, ...], dict[str, float]] = {}
    for key, rates in raw.items():
        if isinstance(rates, dict) and "type_rates" in rates:
            rates = rates["type_rates"]  # RateTable.to_json nesting
        entries[_split_key(key)] = {
            str(b): float(r) for b, r in rates.items()
        }
    return entries


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`CachedRateSource`.

    Attributes:
        hits: ``type_rates`` calls answered from the memo.
        misses: calls that fell through to the wrapped source.
        preloaded: entries seeded from persistence (or a warm sibling)
            before the first lookup.
        label: short origin tag (usually the machine name) used in
            :meth:`render`.
    """

    hits: int = 0
    misses: int = 0
    preloaded: int = 0
    label: str = ""

    @property
    def lookups(self) -> int:
        """Total ``type_rates`` lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the memo (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Elementwise sum (labels joined); used to aggregate workers."""
        labels = sorted({s for s in (self.label, other.label) if s})
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            preloaded=self.preloaded + other.preloaded,
            label="+".join(labels),
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form (emitted in runner result files)."""
        return {
            "label": self.label,
            "hits": self.hits,
            "misses": self.misses,
            "preloaded": self.preloaded,
            "hit_rate": round(self.hit_rate, 4),
        }

    def render(self) -> str:
        """One-line human-readable summary."""
        tag = f" [{self.label}]" if self.label else ""
        return (
            f"rate cache{tag}: {self.hits} hits, {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate), {self.preloaded} preloaded"
        )


class CachedRateSource:
    """A memoizing, persistable wrapper around any :class:`RateSource`.

    Lookups are keyed on :func:`canonical_coschedule`, so permutations
    of the same multiset share one entry.  ``per_job_rate`` and
    ``instantaneous_throughput`` are derived from the memoized
    ``type_rates`` entry, which means even bare sources that only
    implement the minimal protocol gain both helpers.

    Args:
        source: the wrapped rate source.
        entries: optional pre-seeded ``{coschedule: {type: rate}}``
            mapping (counted as ``preloaded`` in the stats).
        stats: optional externally owned stats object (lets several
            wrappers share one counter).
        label: stats label; defaults to the source machine's name.
    """

    def __init__(
        self,
        source: RateSource,
        *,
        entries: Mapping[Sequence[str], Mapping[str, float]] | None = None,
        stats: CacheStats | None = None,
        label: str | None = None,
    ) -> None:
        self._source = source
        self._entries: dict[tuple[str, ...], dict[str, float]] = {}
        self._fresh: set[tuple[str, ...]] = set()
        if label is None:
            machine = getattr(source, "machine", None)
            label = getattr(machine, "name", "") if machine else ""
        self.stats = stats if stats is not None else CacheStats(label=label)
        if entries:
            for coschedule, rates in entries.items():
                key = canonical_coschedule(coschedule)
                self._entries[key] = {
                    str(b): float(r) for b, r in rates.items()
                }
            self.stats.preloaded += len(self._entries)

    # ------------------------------------------------------------------
    # RateSource interface (memoized)
    # ------------------------------------------------------------------
    def type_rates(self, coschedule: Sequence[str]) -> dict[str, float]:
        """Total WIPC per job type in ``coschedule`` (memoized)."""
        key = canonical_coschedule(coschedule)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            entry = dict(self._source.type_rates(key))
            self._entries[key] = entry
            self._fresh.add(key)
        else:
            self.stats.hits += 1
        return dict(entry)

    def instantaneous_throughput(self, coschedule: Sequence[str]) -> float:
        """``it(s)``: total WIPC of the coschedule."""
        return sum(self.type_rates(coschedule).values())

    def per_job_rate(self, coschedule: Sequence[str], name: str) -> float:
        """WIPC of one job of type ``name`` in the coschedule."""
        rates = self.type_rates(coschedule)
        if name not in rates:
            raise WorkloadError(
                f"{name!r} not in coschedule {tuple(coschedule)}"
            )
        return rates[name] / Counter(coschedule)[name]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def source(self) -> RateSource:
        """The wrapped rate source."""
        return self._source

    def coschedules(self) -> list[tuple[str, ...]]:
        """All memoized coschedules, in canonical order."""
        return sorted(self._entries)

    def entries(self) -> dict[tuple[str, ...], dict[str, float]]:
        """A copy of every memoized entry."""
        return {key: dict(rates) for key, rates in self._entries.items()}

    def new_entries(self) -> dict[tuple[str, ...], dict[str, float]]:
        """Entries computed (missed) by *this* wrapper — the delta a
        worker process ships back to the parent for merging."""
        return {key: dict(self._entries[key]) for key in sorted(self._fresh)}

    def drain_new_entries(self) -> dict[tuple[str, ...], dict[str, float]]:
        """Like :meth:`new_entries`, but resets the fresh-set so the
        next call only reports entries computed after this one.  Lets a
        runner ship per-experiment deltas instead of re-shipping the
        whole session's misses with every outcome."""
        delta = self.new_entries()
        self._fresh.clear()
        return delta

    def __getattr__(self, name: str):
        # Delegate everything else (machine, roster, alone_ipc, ...) to
        # the wrapped source so a cached RateTable keeps its full API.
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self._source, name)

    # ------------------------------------------------------------------
    # Bulk precomputation
    # ------------------------------------------------------------------
    def precompute(
        self,
        types: Sequence[str] | None = None,
        *,
        contexts: int | None = None,
        sizes: Iterable[int] | None = None,
    ) -> int:
        """Fill the memo with every multiset of ``types`` and ``sizes``.

        Defaults mirror :meth:`RateTable.precompute`: all roster types
        of the wrapped source and all sizes ``1..contexts``.  Returns
        the number of memoized entries afterwards.
        """
        if types is None:
            roster = getattr(self._source, "roster", None)
            if roster is None:
                raise WorkloadError(
                    "the wrapped source has no roster; pass types explicitly"
                )
            types = tuple(roster)
        if sizes is None:
            if contexts is None:
                machine = getattr(self._source, "machine", None)
                contexts = getattr(machine, "contexts", None)
            if contexts is None:
                raise WorkloadError(
                    "cannot infer coschedule sizes; pass contexts or sizes"
                )
            sizes = range(1, contexts + 1)
        for size in sizes:
            for combo in multisets(sorted(types), size):
                self.type_rates(combo)
        return len(self._entries)

    # ------------------------------------------------------------------
    # Persistence (format-compatible with TableRates.to_json)
    # ------------------------------------------------------------------
    def to_json(self, fp: IO[str]) -> None:
        """Serialize every memoized entry as JSON."""
        machine = getattr(self._source, "machine", None)
        payload = {
            "machine": getattr(machine, "name", None),
            "entries": {
                _join_key(key): rates
                for key, rates in sorted(self._entries.items())
            },
        }
        json.dump(payload, fp, indent=2, sort_keys=True)

    def save(self, path: str | Path) -> None:
        """Crash-safely write the memo to ``path`` (parents created).

        The dump goes to a temp file first and is renamed into place,
        so a failure mid-dump never truncates an existing cache.
        """
        _atomic_dump(Path(path), self.to_json)

    @classmethod
    def from_json(cls, fp: IO[str], source: RateSource) -> "CachedRateSource":
        """Wrap ``source`` with entries loaded from a JSON stream.

        If both the payload and the source name a machine and the names
        disagree, the entries are rejected (warn + cold start): serving
        one machine's rates for another would silently corrupt every
        downstream analysis.
        """
        payload = json.load(fp)
        saved_machine = payload.get("machine")
        machine = getattr(source, "machine", None)
        source_machine = getattr(machine, "name", None) if machine else None
        if saved_machine and source_machine and saved_machine != source_machine:
            print(
                f"warning: rate cache was saved for machine "
                f"{saved_machine!r}, not {source_machine!r}; starting cold",
                file=sys.stderr,
            )
            return cls(source)
        return cls(source, entries=_parse_entries(payload.get("entries", {})))

    @classmethod
    def open(cls, source: RateSource, path: str | Path) -> "CachedRateSource":
        """Wrap ``source``, preloading from ``path`` when it exists.

        An unreadable or corrupt file is treated as a cold start (with
        a warning) — a cache must never be the reason a run crashes.
        """
        path = Path(path)
        if path.exists():
            try:
                with path.open() as fp:
                    return cls.from_json(fp, source)
            except _LOAD_ERRORS as exc:
                print(
                    f"warning: ignoring unreadable rate cache {path}: {exc!r}",
                    file=sys.stderr,
                )
        return cls(source)


class RateCacheStore:
    """One JSON file holding rate entries for several machines.

    The file maps a machine name (the *section*) to its persisted
    entries, so a single ``.repro-cache/rates.json`` serves both the
    SMT and quad-core rate tables of every experiment::

        {"version": 1,
         "sections": {"smt4": {"hmmer|mcf": {"hmmer": 0.9, ...}}, ...}}

    ``wrap()`` hands out :class:`CachedRateSource` wrappers preloaded
    from the matching section; ``save()`` collects everything the
    wrappers have learned and rewrites the file atomically.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._sections: dict[str, dict[tuple[str, ...], dict[str, float]]] = {}
        self._wrappers: list[tuple[str, CachedRateSource]] = []
        if self.path.exists():
            # A cache is disposable: a corrupt or unreadable file means
            # a cold start, never a crash.
            try:
                with self.path.open() as fp:
                    payload = json.load(fp)
                sections = payload.get("sections", {})
                if not sections and "entries" in payload:
                    # Single-source file written by CachedRateSource.save
                    # ({machine, entries}): migrate it into a section
                    # rather than silently discarding the sweep.
                    section = payload.get("machine")
                    if section:
                        sections = {section: payload["entries"]}
                    else:
                        print(
                            f"warning: rate cache {self.path} has entries "
                            "but no machine name; starting cold",
                            file=sys.stderr,
                        )
                self._sections = {
                    str(section): _parse_entries(entries)
                    for section, entries in sections.items()
                }
            except _LOAD_ERRORS as exc:
                print(
                    f"warning: ignoring unreadable rate cache "
                    f"{self.path}: {exc!r}",
                    file=sys.stderr,
                )
                self._sections = {}

    def sections(self) -> list[str]:
        """Names of all persisted sections."""
        return sorted(self._sections)

    def entries_for(
        self, section: str
    ) -> dict[tuple[str, ...], dict[str, float]]:
        """A copy of one section's entries (empty if absent)."""
        return {
            key: dict(rates)
            for key, rates in self._sections.get(section, {}).items()
        }

    def wrap(
        self, source: RateSource, *, section: str | None = None
    ) -> CachedRateSource:
        """A :class:`CachedRateSource` preloaded from ``section``.

        The section defaults to the source machine's name.  The store
        keeps a reference to the wrapper so :meth:`save` picks up
        whatever it computes later.
        """
        if section is None:
            machine = getattr(source, "machine", None)
            section = getattr(machine, "name", None)
            if section is None:
                raise WorkloadError(
                    "source has no machine name; pass section= explicitly"
                )
        wrapper = CachedRateSource(
            source, entries=self._sections.get(section), label=section
        )
        self._wrappers.append((section, wrapper))
        return wrapper

    def merge(
        self,
        section: str,
        entries: Mapping[Sequence[str], Mapping[str, float]],
    ) -> int:
        """Merge externally computed entries (e.g. from a worker
        process) into a section; returns the section's new size."""
        bucket = self._sections.setdefault(section, {})
        for coschedule, rates in entries.items():
            key = canonical_coschedule(coschedule)
            bucket[key] = {str(b): float(r) for b, r in rates.items()}
        return len(bucket)

    def stats(self) -> CacheStats:
        """Aggregated stats over every wrapper handed out."""
        total = CacheStats()
        for _, wrapper in self._wrappers:
            total = total.merge(wrapper.stats)
        return total

    def total_entries(self) -> int:
        """Number of persisted entries across all sections (as of the
        last load/merge/save; live wrapper entries count after save)."""
        return sum(len(entries) for entries in self._sections.values())

    def save(self) -> int:
        """Atomically rewrite the file; returns total entries saved."""
        for section, wrapper in self._wrappers:
            self.merge(section, wrapper.entries())
        payload = {
            "version": 1,
            "sections": {
                section: {
                    _join_key(key): rates
                    for key, rates in sorted(entries.items())
                }
                for section, entries in sorted(self._sections.items())
            },
        }
        _atomic_dump(
            self.path,
            lambda fp: json.dump(payload, fp, indent=2, sort_keys=True),
        )
        return self.total_entries()
