"""Shared-LLC capacity contention.

Co-running jobs compete for last-level-cache capacity.  We use the
standard miss-driven-insertion model: in steady state each job holds a
fraction of the cache proportional to the rate at which it inserts lines,
which is its miss *bandwidth* (IPC x MPKI).  A configurable floor keeps
every job from being fully evicted (real LRU caches never hand 100% of
the capacity to one thread).

The allocation feeds each job's miss-rate curve
(:meth:`repro.microarch.params.JobTypeParams.llc_mpki`), closing the loop
inside the coschedule fixed point.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["cache_shares"]


def cache_shares(
    pressures: Sequence[float],
    total_mb: float,
    *,
    floor_fraction: float = 0.03,
    exponent: float = 0.6,
) -> list[float]:
    """Split ``total_mb`` of cache among jobs by insertion pressure.

    Args:
        pressures: per-job insertion pressure (misses per cycle, i.e.
            IPC x MPKI / 1000; any non-negative scale works since only
            ratios matter).
        total_mb: shared cache capacity.
        floor_fraction: minimum fraction of the cache each job keeps.
        exponent: concavity of the pressure->occupancy relation.  With
            1.0 occupancy is proportional to miss bandwidth; real LRU
            caches are less winner-takes-all because the victim job's
            reuse hits also refresh its lines, which a sub-linear
            exponent captures (a streaming job does not fully evict a
            cache-friendly co-runner).

    Returns:
        Per-job capacity allocations summing to ``total_mb``.

    A single job gets the whole cache.  With all-zero pressures the
    split is even (jobs that never miss do not fight for capacity, and
    their allocation is irrelevant to their performance).
    """
    n = len(pressures)
    if n == 0:
        return []
    if total_mb <= 0.0:
        raise ValueError(f"total_mb must be positive, got {total_mb}")
    if any(p < 0.0 for p in pressures):
        raise ValueError("pressures must be non-negative")
    if exponent <= 0.0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    if n == 1:
        return [total_mb]
    if floor_fraction * n >= 1.0:
        raise ValueError(
            f"floor_fraction {floor_fraction} infeasible for {n} jobs"
        )

    scaled = [p**exponent for p in pressures]
    total_pressure = float(sum(scaled))
    if total_pressure <= 0.0:
        return [total_mb / n] * n

    floor = floor_fraction * total_mb
    distributable = total_mb - n * floor
    return [
        floor + distributable * p / total_pressure for p in scaled
    ]
