"""Interned job-type ids: the integer vocabulary of one run.

Every layer of the event core — stepping, scheduler probing, dispatch —
keys its hot lookups by *coschedule*, a small multiset of job-type
names.  Canonicalizing those multisets with ``tuple(sorted(names))``
and hashing tuples of strings is cheap once, but the cluster loop pays
it per event and MAXIT/SRPT pay it per *candidate* per event.

:class:`TypeCodec` removes the strings from the hot path: each type
name is interned to a dense integer id the first time it is seen, so a
coschedule becomes a small sorted ``tuple[int, ...]`` and per-type
state (rates, queue counts, affinity rows) becomes a flat list indexed
by id.  Names reappear only at the metrics/trace boundary, via
:meth:`canonical_names`, which memoizes the decoded-and-sorted name
tuple per code tuple so the boundary conversion is one dict hit.

Ids are assigned in *encounter order* and are therefore only
meaningful relative to one codec instance — a codec is a per-run
object (the run's :class:`~repro.queueing.ratememo.RunRateMemo` owns
one), never a cross-run identifier.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["TypeCodec"]


class TypeCodec:
    """Dense integer interning of job-type names.

    Args:
        names: optional seed vocabulary, interned in the given order
            (later :meth:`encode` calls extend it on demand).
    """

    __slots__ = ("_code_of", "_name_of", "_canonical")

    def __init__(self, names: Iterable[str] = ()) -> None:
        self._code_of: dict[str, int] = {}
        self._name_of: list[str] = []
        self._canonical: dict[tuple[int, ...], tuple[str, ...]] = {}
        for name in names:
            self.encode(name)

    def __len__(self) -> int:
        return len(self._name_of)

    @property
    def size(self) -> int:
        """Number of interned types (ids are ``0..size-1``)."""
        return len(self._name_of)

    def encode(self, name: str) -> int:
        """The id of ``name``, interning it on first sight."""
        code = self._code_of.get(name)
        if code is None:
            code = len(self._name_of)
            self._code_of[name] = code
            self._name_of.append(name)
        return code

    def decode(self, code: int) -> str:
        """The name behind an id."""
        return self._name_of[code]

    def names(self) -> tuple[str, ...]:
        """Every interned name, in id order."""
        return tuple(self._name_of)

    def canonical_names(self, codes: tuple[int, ...]) -> tuple[str, ...]:
        """Canonical (sorted) name tuple of a coded coschedule.

        Memoized per code tuple: the metrics/trace boundary converts
        every event's running set back to names, and returning the one
        cached tuple keeps downstream dict keys identical (and cheap).
        Note the sort is over *names* — id order is encounter order,
        so a sorted id tuple is not automatically name-sorted.
        """
        names = self._canonical.get(codes)
        if names is None:
            name_of = self._name_of
            names = tuple(sorted(name_of[code] for code in codes))
            self._canonical[codes] = names
        return names
