"""ROB partitioning and instruction-window effects.

The reorder buffer bounds each thread's instruction window, which in
turn bounds its ILP (how much of the dispatch width it can use) and its
MLP (how many memory misses it overlaps).  Two partitioning schemes are
modeled, following Raasch & Reinhardt (PACT 2003):

* **static** — each of the n co-running threads gets ``rob_size / n``
  entries: isolated but inflexible (compute threads with large window
  demands are starved even when co-runners need little).
* **dynamic** — entries are granted by demand.  Under round-robin fetch
  a memory-stalled thread keeps fetching and fills the ROB (occupancy
  demand grows toward the whole ROB during stalls), squeezing everyone
  proportionally; under ICOUNT demands stay near each thread's useful
  window and spare entries are redistributed by water-filling, so no
  thread ends up below its static share.  This interaction is why
  ICOUNT + dynamic sharing is the strongest policy pair in the
  Section-VII study.
"""

from __future__ import annotations

from typing import Sequence

from repro.microarch.config import FetchPolicy, RobPolicy
from repro.microarch.fetch import water_fill
from repro.microarch.params import JobTypeParams

__all__ = ["occupancy_demand", "window_shares"]


def occupancy_demand(
    job: JobTypeParams,
    stall_fraction: float,
    rob_size: int,
    fetch_policy: FetchPolicy,
) -> float:
    """ROB entries a thread would occupy if unconstrained.

    With ICOUNT the thread is throttled once it holds its useful window
    (plus a small overshoot growing with stall time).  With round-robin
    fetch, stall periods let the thread run away toward the full ROB.
    """
    if not 0.0 <= stall_fraction <= 1.0:
        raise ValueError(f"stall fraction out of [0, 1]: {stall_fraction}")
    useful = float(min(job.w_need, rob_size))
    if fetch_policy is FetchPolicy.ICOUNT:
        return useful * (1.0 + 0.25 * stall_fraction)
    return (1.0 - stall_fraction) * useful + stall_fraction * float(rob_size)


def window_shares(
    jobs: Sequence[JobTypeParams],
    stall_fractions: Sequence[float],
    rob_size: int,
    rob_policy: RobPolicy,
    fetch_policy: FetchPolicy,
) -> list[float]:
    """Per-thread instruction-window sizes under the given policies.

    Static partitioning returns ``rob_size / n`` for every thread.
    Dynamic partitioning grants each thread its occupancy demand when
    the ROB is large enough, and splits proportionally to demand when
    over-subscribed.
    """
    n = len(jobs)
    if n == 0:
        return []
    if len(stall_fractions) != n:
        raise ValueError(
            f"length mismatch: {n} jobs vs {len(stall_fractions)} stalls"
        )
    if n == 1:
        return [float(rob_size)]
    if rob_policy is RobPolicy.STATIC:
        return [rob_size / n] * n

    demands = [
        occupancy_demand(job, sf, rob_size, fetch_policy)
        for job, sf in zip(jobs, stall_fractions)
    ]
    total = sum(demands)
    if total <= rob_size:
        return [float(d) for d in demands]
    if fetch_policy is FetchPolicy.ROUND_ROBIN:
        # Runaway occupancy: stalled threads hold entries hostage and
        # the squeeze lands on everyone proportionally.
        return [rob_size * d / total for d in demands]
    # ICOUNT keeps demands honest, so over-subscription resolves like a
    # fair allocator: small demands are met in full, big ones split the
    # remainder — never below the static share.
    return water_fill(demands, [1.0] * n, float(rob_size))
