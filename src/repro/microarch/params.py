"""Per-job-type model parameters.

A :class:`JobTypeParams` is the synthetic analogue of one SPEC CPU2006
benchmark: a handful of mechanistic parameters from which the model
derives the job's performance alone and in any coschedule.  The
parameters are the usual interval-model quantities: dispatch-limited CPI,
branch misprediction rate, a shared-cache miss-rate curve, memory-level
parallelism, and the instruction-window demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["JobTypeParams"]


@dataclass(frozen=True)
class JobTypeParams:
    """Mechanistic parameters of one job type (synthetic benchmark).

    Attributes:
        name: identifier (mirrors the Table-I benchmark it stands in for).
        category: coarse class used in docs/examples ("compute",
            "memory", "balanced", "branch").
        cpi_base: dispatch-limited CPI on the reference 4-wide core with
            perfect caches and a full window (>= 1/width).
        ilp_sens: relative CPI inflation when the instruction window
            shrinks to zero (linear in the window shortfall).
        w_need: window size (ROB entries) needed for full ILP and MLP.
        br_mpki: branch mispredictions per kilo-instruction.
        cpi_short: non-overlapped short-stall CPI component (L2/L3 hits,
            long-latency units).
        mpki_inf: LLC misses per kilo-instruction with unbounded cache.
        mpki_amp: additional MPKI as the cache allocation goes to zero.
        c_half_mb: cache allocation at which half of ``mpki_amp`` is
            eliminated (the knee of the miss curve).
        gamma: steepness of the miss curve.
        mlp: memory-level parallelism with a full window (>= 1); memory
            stall per miss is the memory latency divided by the
            effective MLP.
    """

    name: str
    category: str
    cpi_base: float
    ilp_sens: float
    w_need: int
    br_mpki: float
    cpi_short: float
    mpki_inf: float
    mpki_amp: float
    c_half_mb: float
    gamma: float
    mlp: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("job type needs a non-empty name")
        checks = [
            ("cpi_base", self.cpi_base, 0.0),
            ("w_need", float(self.w_need), 0.0),
            ("cpi_short", self.cpi_short, -1e-12),
            ("br_mpki", self.br_mpki, -1e-12),
            ("mpki_inf", self.mpki_inf, -1e-12),
            ("mpki_amp", self.mpki_amp, -1e-12),
            ("c_half_mb", self.c_half_mb, 0.0),
            ("gamma", self.gamma, 0.0),
        ]
        for label, value, minimum in checks:
            if value <= minimum:
                raise ConfigurationError(
                    f"{self.name}: {label} must be > {max(minimum, 0.0):g}, "
                    f"got {value!r}"
                )
        if self.ilp_sens < 0.0:
            raise ConfigurationError(f"{self.name}: ilp_sens must be >= 0")
        if self.mlp < 1.0:
            raise ConfigurationError(f"{self.name}: mlp must be >= 1")

    def llc_mpki(self, cache_mb: float) -> float:
        """LLC misses per kilo-instruction at a cache allocation.

        Smooth, monotonically decreasing curve::

            mpki(C) = mpki_inf + mpki_amp / (1 + (C / c_half)^gamma)

        ``cache_mb`` may be zero (fully evicted job), giving the maximum
        ``mpki_inf + mpki_amp``.
        """
        if cache_mb < 0.0:
            raise ValueError(f"cache allocation must be >= 0, got {cache_mb}")
        return self.mpki_inf + self.mpki_amp / (
            1.0 + (cache_mb / self.c_half_mb) ** self.gamma
        )

    @property
    def memory_bound(self) -> bool:
        """Heuristic flag: does this job miss the LLC a lot even warm?"""
        return self.mpki_inf + 0.5 * self.mpki_amp > 5.0

    def window_scaling(self, window: float) -> float:
        """Fraction of full ILP/MLP available with ``window`` ROB entries."""
        if window <= 0.0:
            return 0.0
        return min(1.0, window / float(self.w_need))
