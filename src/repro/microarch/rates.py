"""Per-coschedule execution rates — the paper's ``r_b(s)`` abstraction.

Everything in Section IV and beyond consumes one object: the total
execution rate ``r_b(s)`` of each job type *b* in each coschedule *s*,
expressed in **weighted instructions per cycle** (WIPC = IPC divided by
the job's IPC alone on the reference machine; Section III-B).  This
module provides:

* :class:`RateSource` — the minimal protocol the analysis layers need;
* :class:`RateTable` — lazily simulates coschedules on a machine via
  :func:`repro.microarch.simulator.simulate_coschedule` and caches the
  results (the analogue of the paper's 1,365-combination Sniper sweep);
* :class:`TableRates` — an immutable in-memory table, used for JSON
  round-trips, counterfactual rate edits (Section V.D), and test
  doubles.

For memoization that persists across rate sources, processes, and
repository runs (plus hit/miss statistics), wrap any of these in
:class:`repro.microarch.rate_cache.CachedRateSource`.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import IO, Iterable, Mapping, Protocol, Sequence, runtime_checkable

from repro.errors import WorkloadError
from repro.microarch.benchmarks import default_roster
from repro.microarch.config import MachineConfig
from repro.microarch.params import JobTypeParams
from repro.microarch.simulator import SimulationResult, simulate_coschedule
from repro.util.multiset import multisets

__all__ = [
    "RateSource",
    "RateTable",
    "TableRates",
    "canonical_coschedule",
    "infer_contexts",
    "instantaneous_throughput",
]


def canonical_coschedule(names: Iterable[str]) -> tuple[str, ...]:
    """Canonical (sorted-tuple) form of a job-name multiset.

    Fast path: a tuple that is already sorted is returned *as-is*
    (same object, no sort, no copy).  Memo layers canonicalize on
    every lookup and their hits overwhelmingly arrive as canonical
    tuples they handed out earlier, so the common case is a linear
    scan instead of a sort plus a fresh tuple — and reusing the object
    keeps downstream dict keys interned.
    """
    if type(names) is tuple:
        for i in range(len(names) - 1):
            if names[i] > names[i + 1]:
                return tuple(sorted(names))
        return names
    return tuple(sorted(names))


def infer_contexts(rates: object, contexts: int | None = None) -> int:
    """Context count from an explicit argument or the rate source.

    With ``contexts`` given, validates and returns it.  Otherwise the
    source (and any chain of wrappers exposing ``source``) is probed
    for a machine-bearing object — a
    :class:`RateTable`-style source carries its
    :class:`~repro.microarch.config.MachineConfig`, and cache/memo
    wrappers delegate or expose the wrapped source.  The one shared
    implementation behind every ``contexts=K`` default in the
    analysis and queueing layers.
    """
    if contexts is not None:
        if contexts <= 0:
            raise WorkloadError(f"contexts must be positive, got {contexts}")
        return contexts
    probe: object | None = rates
    while probe is not None:
        machine = getattr(probe, "machine", None)
        if machine is not None:
            return machine.contexts
        probe = getattr(probe, "source", None)
    raise WorkloadError(
        "cannot infer the number of contexts from this rate source; "
        "pass contexts=K explicitly"
    )


@runtime_checkable
class RateSource(Protocol):
    """What the analysis layers need to know about a machine+workload.

    ``type_rates(s)`` returns the paper's ``r_b(s)``: for every job type
    *b* present in coschedule *s*, the **total** execution rate of the
    type-b jobs in *s* (WIPC).  The instantaneous throughput ``it(s)``
    is the sum of these values (Equation 1).
    """

    def type_rates(self, coschedule: Sequence[str]) -> Mapping[str, float]:
        """Total WIPC per job type in ``coschedule``."""
        ...  # pragma: no cover - protocol definition


def instantaneous_throughput(
    source: RateSource, coschedule: Sequence[str]
) -> float:
    """``it(s)``: total WIPC of a coschedule (Equation 1 of the paper)."""
    return sum(source.type_rates(coschedule).values())


class RateTable:
    """Lazily simulated, cached rates for one machine configuration.

    Args:
        machine: the machine to simulate.
        roster: job-type definitions; defaults to the 12-entry
            Table-I-style roster.
    """

    def __init__(
        self,
        machine: MachineConfig,
        roster: Mapping[str, JobTypeParams] | None = None,
    ) -> None:
        self.machine = machine
        self.roster: dict[str, JobTypeParams] = dict(
            roster if roster is not None else default_roster()
        )
        self._results: dict[tuple[str, ...], SimulationResult] = {}
        self._alone: dict[str, float] = {}
        self._type_rates: dict[tuple[str, ...], dict[str, float]] = {}

    @classmethod
    def for_machine(
        cls,
        machine: MachineConfig,
        roster: Mapping[str, JobTypeParams] | None = None,
    ) -> "RateTable":
        """Convenience constructor mirroring the docs/quickstart."""
        return cls(machine, roster)

    # ------------------------------------------------------------------
    # Simulation access
    # ------------------------------------------------------------------
    def result(self, names: Sequence[str]) -> SimulationResult:
        """Cached simulation result for a coschedule multiset."""
        key = canonical_coschedule(names)
        cached = self._results.get(key)
        if cached is None:
            cached = simulate_coschedule(self.machine, self.roster, key)
            self._results[key] = cached
        return cached

    def alone_ipc(self, name: str) -> float:
        """IPC of a job type running alone (the WIPC reference)."""
        cached = self._alone.get(name)
        if cached is None:
            cached = self.result((name,)).ipcs[0]
            self._alone[name] = cached
        return cached

    def ipcs(self, names: Sequence[str]) -> tuple[float, ...]:
        """Per-slot raw IPCs, aligned with the canonical multiset order."""
        return self.result(names).ipcs

    def wipcs(self, names: Sequence[str]) -> tuple[float, ...]:
        """Per-slot WIPCs (IPC / alone IPC), canonical order."""
        result = self.result(names)
        return tuple(
            ipc / self.alone_ipc(job)
            for job, ipc in zip(result.job_names, result.ipcs)
        )

    # ------------------------------------------------------------------
    # RateSource interface
    # ------------------------------------------------------------------
    def type_rates(self, coschedule: Sequence[str]) -> dict[str, float]:
        """Total WIPC per job type in ``coschedule`` (the paper's r_b(s))."""
        key = canonical_coschedule(coschedule)
        cached = self._type_rates.get(key)
        if cached is None:
            result = self.result(key)
            cached = {}
            for job, ipc in zip(result.job_names, result.ipcs):
                cached[job] = cached.get(job, 0.0) + ipc / self.alone_ipc(job)
            self._type_rates[key] = cached
        return dict(cached)

    def instantaneous_throughput(self, coschedule: Sequence[str]) -> float:
        """``it(s)``: total WIPC of the coschedule."""
        return sum(self.type_rates(coschedule).values())

    def per_job_rate(self, coschedule: Sequence[str], name: str) -> float:
        """WIPC of **one** job of type ``name`` in the coschedule.

        Jobs of the same type are symmetric, so this is the type total
        divided by the multiplicity.
        """
        rates = self.type_rates(coschedule)
        if name not in rates:
            raise WorkloadError(f"{name!r} not in coschedule {tuple(coschedule)}")
        return rates[name] / Counter(coschedule)[name]

    # ------------------------------------------------------------------
    # Bulk precomputation & persistence
    # ------------------------------------------------------------------
    def precompute(
        self,
        types: Sequence[str] | None = None,
        *,
        sizes: Iterable[int] | None = None,
    ) -> int:
        """Simulate every multiset of the given types and sizes.

        Returns the number of coschedules now cached.  Defaults to all
        roster types and all sizes 1..K — the full analogue of the
        paper's simulation sweep.
        """
        chosen = tuple(types) if types is not None else tuple(self.roster)
        size_list = (
            list(sizes) if sizes is not None else list(range(1, self.machine.contexts + 1))
        )
        for size in size_list:
            for combo in multisets(sorted(chosen), size):
                self.result(combo)
        return len(self._results)

    def cached_coschedules(self) -> list[tuple[str, ...]]:
        """All coschedules simulated so far, in canonical order."""
        return sorted(self._results)

    def snapshot(
        self, coschedules: Iterable[Sequence[str]]
    ) -> "TableRates":
        """Freeze the rates of specific coschedules into a TableRates."""
        table = {
            canonical_coschedule(c): dict(self.type_rates(c))
            for c in coschedules
        }
        return TableRates(table)

    def to_json(self, fp: IO[str]) -> None:
        """Serialize all cached coschedule rates as JSON."""
        payload = {
            "machine": self.machine.name,
            "entries": {
                "|".join(key): {
                    "type_rates": self.type_rates(key),
                    "ipcs": list(result.ipcs),
                }
                for key, result in sorted(self._results.items())
            },
        }
        json.dump(payload, fp, indent=2, sort_keys=True)


class TableRates:
    """An immutable rate table: ``{coschedule: {type: total WIPC}}``.

    Satisfies :class:`RateSource`.  Produced by
    :meth:`RateTable.snapshot`, :func:`TableRates.from_json`, or built
    directly (tests, Section-V.D counterfactuals).
    """

    def __init__(
        self, table: Mapping[Sequence[str], Mapping[str, float]]
    ) -> None:
        self._table: dict[tuple[str, ...], dict[str, float]] = {}
        for coschedule, rates in table.items():
            key = canonical_coschedule(coschedule)
            entry = {str(b): float(r) for b, r in rates.items()}
            if set(entry) != set(key):
                raise WorkloadError(
                    f"rate entry for {key} names types {sorted(entry)}, "
                    f"expected {sorted(set(key))}"
                )
            if any(r < 0.0 for r in entry.values()):
                raise WorkloadError(f"negative rate in entry for {key}")
            self._table[key] = entry

    def type_rates(self, coschedule: Sequence[str]) -> dict[str, float]:
        """Total WIPC per job type in ``coschedule``."""
        key = canonical_coschedule(coschedule)
        try:
            return dict(self._table[key])
        except KeyError:
            raise WorkloadError(
                f"no rates recorded for coschedule {key}"
            ) from None

    def instantaneous_throughput(self, coschedule: Sequence[str]) -> float:
        """``it(s)``: total WIPC of the coschedule."""
        return sum(self.type_rates(coschedule).values())

    def per_job_rate(self, coschedule: Sequence[str], name: str) -> float:
        """WIPC of one job of type ``name`` in the coschedule."""
        rates = self.type_rates(coschedule)
        if name not in rates:
            raise WorkloadError(f"{name!r} not in coschedule {tuple(coschedule)}")
        return rates[name] / Counter(coschedule)[name]

    def coschedules(self) -> list[tuple[str, ...]]:
        """All coschedules with recorded rates, in canonical order."""
        return sorted(self._table)

    def with_rates(
        self,
        coschedule: Sequence[str],
        rates: Mapping[str, float],
    ) -> "TableRates":
        """A copy with one coschedule's rates replaced (counterfactuals)."""
        updated = dict(self._table)
        key = canonical_coschedule(coschedule)
        if key not in updated:
            raise WorkloadError(f"no rates recorded for coschedule {key}")
        updated[key] = dict(rates)
        return TableRates(updated)

    def to_json(self, fp: IO[str]) -> None:
        """Serialize to JSON."""
        payload = {
            "entries": {
                "|".join(key): rates for key, rates in sorted(self._table.items())
            }
        }
        json.dump(payload, fp, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, fp: IO[str]) -> "TableRates":
        """Load a table serialized by :meth:`to_json` or RateTable.to_json."""
        payload = json.load(fp)
        entries = payload.get("entries", {})
        table: dict[tuple[str, ...], dict[str, float]] = {}
        for key, value in entries.items():
            coschedule = tuple(key.split("|"))
            rates = value["type_rates"] if "type_rates" in value else value
            table[coschedule] = {str(b): float(r) for b, r in rates.items()}
        return cls(table)
