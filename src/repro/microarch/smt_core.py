"""The SMT-core sharing model.

Performance of a coschedule on the 4-way SMT core is the fixed point of
coupled contention equations.  One evaluation step, given current
estimates of per-thread IPC and LLC shares:

1. **Cache** — each thread's LLC MPKI from its capacity share
   (:mod:`repro.microarch.cache`).
2. **Bus** — effective memory latency from the total miss bandwidth
   (:mod:`repro.microarch.membus`).
3. **ROB** — instruction-window allocations from the partitioning
   policy and provisional stall fractions (:mod:`repro.microarch.rob`);
   windows set effective ILP and MLP.
4. **Width** — mean-field slot competition: while thread *i* is active
   (not memory-stalled) it sees an expected dispatch share of

       share_i = eta * W / (1 + sum_{j!=i} c_j)

   where ``c_j`` is co-runner j's *rival weight* from the fetch policy
   (:mod:`repro.microarch.fetch`: 1 under round-robin, roughly the
   active fraction under ICOUNT — stalled threads stop eating slots),
   and ``eta`` a front-end fragmentation factor that shrinks the usable
   width as more threads are simultaneously active.  The thread's
   execution rate while active is the minimum of its intrinsic rate and
   this share.

The resulting IPCs and cache-insertion pressures form the next iterate.
The fixed point reproduces the SMT behaviours the paper leans on:
aggregate IPC saturating far below the nominal width (the linear
bottleneck of compute-heavy coschedules), *unfairly distributed*
slowdowns — high-IPC threads are crushed when co-runners are active
while memory-bound threads, already limited by their own misses, lose
comparatively little — and the sensitivity of both to the fetch/ROB
policies studied in Section VII (ICOUNT + dynamic ROB wins because
stalled threads neither clog the ROB nor waste fetch slots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.microarch.cache import cache_shares
from repro.microarch.config import MachineConfig
from repro.microarch.fetch import rival_weights
from repro.microarch.membus import bus_queueing_delay, bus_utilization
from repro.microarch.params import JobTypeParams
from repro.microarch.rob import window_shares

__all__ = ["SmtEvaluation", "evaluate_smt", "smt_iteration"]


@dataclass(frozen=True)
class SmtEvaluation:
    """One evaluation of the SMT contention equations.

    ``next_ipcs``/``next_shares`` form the next fixed-point iterate; the
    remaining fields are diagnostics exposed by the simulator facade.
    """

    next_ipcs: tuple[float, ...]
    next_shares: tuple[float, ...]
    mpkis: tuple[float, ...]
    windows: tuple[float, ...]
    stall_fractions: tuple[float, ...]
    memory_latency: float
    bus_utilization: float


def _core_cpi(
    job: JobTypeParams, machine: MachineConfig, window: float
) -> float:
    """Dispatch-and-front-end CPI component with a window of given size."""
    scale = job.window_scaling(window)
    return (
        job.cpi_base * (1.0 + job.ilp_sens * (1.0 - scale))
        + job.br_mpki / 1000.0 * machine.branch_penalty_cycles
        + job.cpi_short
    )


def _effective_mlp(job: JobTypeParams, window: float) -> float:
    """Memory-level parallelism achievable with a window of given size."""
    return 1.0 + (job.mlp - 1.0) * job.window_scaling(window)


def evaluate_smt(
    machine: MachineConfig,
    jobs: Sequence[JobTypeParams],
    ipcs: Sequence[float],
    shares: Sequence[float],
) -> SmtEvaluation:
    """Evaluate the contention equations once at the given estimates."""
    n = len(jobs)
    if n == 0:
        raise ValueError("need at least one job")
    if len(ipcs) != n or len(shares) != n:
        raise ValueError("state length mismatch with job count")

    mpkis = [job.llc_mpki(share) for job, share in zip(jobs, shares)]

    miss_rate = sum(i * m for i, m in zip(ipcs, mpkis)) / 1000.0
    latency = machine.mem_latency_cycles + bus_queueing_delay(
        miss_rate,
        machine.bus_service_cycles,
        max_utilization=machine.bus_max_utilization,
    )
    utilization = bus_utilization(
        miss_rate,
        machine.bus_service_cycles,
        max_utilization=machine.bus_max_utilization,
    )

    # Pass A: provisional stall fractions with full windows, used only to
    # drive the ROB partitioning.
    provisional_stalls = []
    for job, mpki in zip(jobs, mpkis):
        cpi_core = _core_cpi(job, machine, float(machine.rob_size))
        t_mem = mpki / 1000.0 * latency / job.mlp
        provisional_stalls.append(t_mem / (cpi_core + t_mem))

    windows = window_shares(
        jobs,
        provisional_stalls,
        machine.rob_size,
        machine.rob_policy,
        machine.fetch_policy,
    )

    # Pass B: final per-thread timing with the allocated windows.  The
    # stall/active fractions are evaluated at the *state* IPCs so that,
    # at the fixed point, they reflect the width-squeezed schedule (a
    # thread slowed by slot competition is active a larger fraction of
    # the time) rather than the unconstrained demand.
    smt_factor = 1.0 + machine.smt_overhead * (n - 1)
    t_execs: list[float] = []
    t_mems: list[float] = []
    stall_fractions: list[float] = []
    activities: list[float] = []
    for job, mpki, window, state_ipc in zip(jobs, mpkis, windows, ipcs):
        t_exec = _core_cpi(job, machine, window) * smt_factor
        t_mem = mpki / 1000.0 * latency / _effective_mlp(job, window)
        t_execs.append(t_exec)
        t_mems.append(t_mem)
        stall = min(0.99, max(0.0, t_mem * state_ipc))
        stall_fractions.append(stall)
        activities.append(1.0 - stall)

    weights = rival_weights(
        machine.fetch_policy,
        activities,
        strength=machine.icount_strength,
        rr_slot_waste=machine.rr_slot_waste,
    )

    # Mean-field dispatch-slot competition with front-end fragmentation.
    expected_active = sum(activities)
    eta = 1.0 / (
        1.0 + machine.smt_fragmentation * max(0.0, expected_active - 1.0)
    )
    allocation: list[float] = []
    for i in range(n):
        rivals = sum(weights[j] for j in range(n) if j != i)
        share = eta * machine.width / (1.0 + rivals)
        active_rate = min(1.0 / t_execs[i], share)
        cpi = 1.0 / active_rate + t_mems[i]
        allocation.append(1.0 / cpi)

    pressures = [a * m / 1000.0 for a, m in zip(allocation, mpkis)]
    next_shares = cache_shares(
        pressures,
        machine.llc_mb,
        floor_fraction=machine.cache_share_floor,
    )

    return SmtEvaluation(
        next_ipcs=tuple(allocation),
        next_shares=tuple(next_shares),
        mpkis=tuple(mpkis),
        windows=tuple(windows),
        stall_fractions=tuple(stall_fractions),
        memory_latency=latency,
        bus_utilization=utilization,
    )


def smt_iteration(machine: MachineConfig, jobs: Sequence[JobTypeParams]):
    """Fixed-point map over the state vector ``[ipc_1..n, share_1..n]``."""
    n = len(jobs)

    def iterate(state: Sequence[float]) -> list[float]:
        evaluation = evaluate_smt(machine, jobs, state[:n], state[n:])
        return list(evaluation.next_ipcs) + list(evaluation.next_shares)

    return iterate
