"""Mechanistic SMT / multicore performance-model substrate.

The paper obtained per-coschedule performance numbers by simulating all
1,365 four-job combinations of 12 SPEC CPU2006 benchmarks with the Sniper
simulator on two machines: a 4-way SMT 4-wide out-of-order core, and a
quad-core with a shared last-level cache and memory bus.  SPEC binaries
and Sniper are unavailable here, so this package provides the closest
synthetic equivalent: an interval-model-style mechanistic performance
model (Sniper's own core model is mechanistic at heart) over a roster of
12 synthetic job types that mirrors the Table-I benchmark mix.

The model captures exactly the contention structure the paper's analysis
depends on:

* dispatch-width sharing on the SMT core (the *linear bottleneck* of
  Section V.C.1b for high-IPC coschedules),
* ICOUNT vs round-robin fetch and static vs dynamic ROB partitioning
  (the Section-VII policy study),
* shared-LLC capacity contention with per-job miss-rate curves,
* memory-bus queueing,
* the resulting *unfair* slowdowns on SMT versus the milder, fairer
  interference on the quad-core.

Entry points: :func:`smt_machine`, :func:`quad_core_machine`,
:func:`default_roster`, :func:`simulate_coschedule`, and
:class:`repro.microarch.rates.RateTable`.
"""

from repro.microarch.params import JobTypeParams
from repro.microarch.benchmarks import default_roster, roster_by_name
from repro.microarch.config import (
    FetchPolicy,
    MachineConfig,
    RobPolicy,
    quad_core_machine,
    smt_machine,
)
from repro.microarch.simulator import SimulationResult, simulate_coschedule
from repro.microarch.codec import TypeCodec
from repro.microarch.rates import RateTable
from repro.microarch.rate_cache import (
    CachedRateSource,
    CacheStats,
    RateCacheStore,
)

__all__ = [
    "TypeCodec",
    "JobTypeParams",
    "default_roster",
    "roster_by_name",
    "FetchPolicy",
    "MachineConfig",
    "RobPolicy",
    "quad_core_machine",
    "smt_machine",
    "SimulationResult",
    "simulate_coschedule",
    "RateTable",
    "CachedRateSource",
    "CacheStats",
    "RateCacheStore",
]
