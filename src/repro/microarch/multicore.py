"""The multicore sharing model.

On the quad-core configuration every job owns a full 4-wide core with a
private ROB; only the LLC and the memory bus are shared.  One evaluation
step mirrors :mod:`repro.microarch.smt_core` but without the width and
window competition:

1. per-job MPKI from LLC capacity shares;
2. effective memory latency from total miss bandwidth;
3. per-job IPC = 1 / (core CPI + memory CPI), capped by the core width.

The interference structure that emerges matches the paper's quad-core
discussion: compute jobs with small footprints are nearly *insensitive*
(their allocation barely matters), memory-bound jobs interact through
capacity and bandwidth, and slowdowns are distributed far more evenly
than on SMT — which is exactly why the paper's optimal scheduler can
exploit heterogeneous coschedules so much better on this machine
(Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.microarch.cache import cache_shares
from repro.microarch.config import MachineConfig
from repro.microarch.membus import bus_queueing_delay, bus_utilization
from repro.microarch.params import JobTypeParams

__all__ = ["MulticoreEvaluation", "evaluate_multicore", "multicore_iteration"]


@dataclass(frozen=True)
class MulticoreEvaluation:
    """One evaluation of the multicore contention equations."""

    next_ipcs: tuple[float, ...]
    next_shares: tuple[float, ...]
    mpkis: tuple[float, ...]
    memory_latency: float
    bus_utilization: float


def _core_cpi(job: JobTypeParams, machine: MachineConfig) -> float:
    """Private-core CPI component (full window available)."""
    scale = job.window_scaling(float(machine.rob_size))
    return (
        job.cpi_base * (1.0 + job.ilp_sens * (1.0 - scale))
        + job.br_mpki / 1000.0 * machine.branch_penalty_cycles
        + job.cpi_short
    )


def evaluate_multicore(
    machine: MachineConfig,
    jobs: Sequence[JobTypeParams],
    ipcs: Sequence[float],
    shares: Sequence[float],
) -> MulticoreEvaluation:
    """Evaluate the contention equations once at the given estimates."""
    n = len(jobs)
    if n == 0:
        raise ValueError("need at least one job")
    if len(ipcs) != n or len(shares) != n:
        raise ValueError("state length mismatch with job count")

    mpkis = [job.llc_mpki(share) for job, share in zip(jobs, shares)]
    miss_rate = sum(i * m for i, m in zip(ipcs, mpkis)) / 1000.0
    latency = machine.mem_latency_cycles + bus_queueing_delay(
        miss_rate,
        machine.bus_service_cycles,
        max_utilization=machine.bus_max_utilization,
    )
    utilization = bus_utilization(
        miss_rate,
        machine.bus_service_cycles,
        max_utilization=machine.bus_max_utilization,
    )

    next_ipcs = []
    for job, mpki in zip(jobs, mpkis):
        mlp = 1.0 + (job.mlp - 1.0) * job.window_scaling(
            float(machine.rob_size)
        )
        cpi = _core_cpi(job, machine) + mpki / 1000.0 * latency / mlp
        next_ipcs.append(min(1.0 / cpi, float(machine.width)))

    pressures = [a * m / 1000.0 for a, m in zip(next_ipcs, mpkis)]
    next_shares = cache_shares(
        pressures,
        machine.llc_mb,
        floor_fraction=machine.cache_share_floor,
    )

    return MulticoreEvaluation(
        next_ipcs=tuple(next_ipcs),
        next_shares=tuple(next_shares),
        mpkis=tuple(mpkis),
        memory_latency=latency,
        bus_utilization=utilization,
    )


def multicore_iteration(machine: MachineConfig, jobs: Sequence[JobTypeParams]):
    """Fixed-point map over the state vector ``[ipc_1..n, share_1..n]``."""
    n = len(jobs)

    def iterate(state: Sequence[float]) -> list[float]:
        evaluation = evaluate_multicore(machine, jobs, state[:n], state[n:])
        return list(evaluation.next_ipcs) + list(evaluation.next_shares)

    return iterate
