"""On-disk persistence of simulated rate tables.

A full sweep (all 1,819 multisets of the 12 types on one machine) takes
tens of seconds of simulation; persisting the result lets analyses and
CI re-run instantly and makes the simulated dataset a shareable
artifact — the analogue of publishing the paper's Sniper numbers.

The format is plain JSON with a metadata header (machine configuration
fingerprint), per-coschedule raw IPCs, and WIPC type rates.  Loading
returns a frozen :class:`~repro.microarch.rates.TableRates` plus the
metadata; a fingerprint mismatch is reported rather than silently
accepted.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.microarch.config import MachineConfig
from repro.microarch.rates import RateTable, TableRates, canonical_coschedule

__all__ = ["save_rates", "load_rates", "machine_fingerprint"]

_FORMAT_VERSION = 1


def machine_fingerprint(machine: MachineConfig) -> dict:
    """A JSON-safe dictionary identifying a machine configuration."""
    payload = asdict(machine)
    payload["fetch_policy"] = machine.fetch_policy.value
    payload["rob_policy"] = machine.rob_policy.value
    return payload


def save_rates(
    rates: RateTable,
    path: str | Path,
    *,
    coschedules: Iterable[Sequence[str]] | None = None,
) -> int:
    """Write a rate table to ``path``; returns the entry count.

    Args:
        rates: the simulating table.
        path: output file.
        coschedules: which coschedules to persist; defaults to every
            multiset of all roster types and sizes 1..K (the full
            sweep, simulated on demand).
    """
    if coschedules is None:
        rates.precompute()
        from repro.util.multiset import multisets

        keys: list[tuple[str, ...]] = []
        for size in range(1, rates.machine.contexts + 1):
            keys.extend(multisets(sorted(rates.roster), size))
    else:
        keys = [canonical_coschedule(c) for c in coschedules]

    entries = {}
    for key in keys:
        result = rates.result(key)
        entries["|".join(key)] = {
            "ipcs": list(result.ipcs),
            "type_rates": rates.type_rates(key),
        }
    payload = {
        "format_version": _FORMAT_VERSION,
        "machine": machine_fingerprint(rates.machine),
        "entries": entries,
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))
    return len(entries)


def load_rates(
    path: str | Path,
    *,
    expect_machine: MachineConfig | None = None,
) -> tuple[TableRates, dict]:
    """Load a persisted rate table; returns (rates, machine metadata).

    Args:
        path: file written by :func:`save_rates`.
        expect_machine: when given, the stored fingerprint must match
            this configuration exactly.

    Raises:
        ConfigurationError: on version or fingerprint mismatch.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"rate-table format version {version!r} unsupported "
            f"(expected {_FORMAT_VERSION})"
        )
    metadata = payload.get("machine", {})
    if expect_machine is not None:
        expected = machine_fingerprint(expect_machine)
        if metadata != expected:
            mismatched = sorted(
                key
                for key in set(metadata) | set(expected)
                if metadata.get(key) != expected.get(key)
            )
            raise ConfigurationError(
                f"stored rates were produced on a different machine "
                f"configuration (fields differing: {mismatched})"
            )
    table = {
        tuple(key.split("|")): entry["type_rates"]
        for key, entry in payload.get("entries", {}).items()
    }
    return TableRates(table), metadata
