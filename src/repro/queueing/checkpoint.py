"""Crash-safe checkpoint/restore of a paused cluster run.

A :class:`~repro.queueing.cluster.ClusterRunHandle` paused between
events is a complete description of the simulation's future: the
clock, every machine's queue/running set/rates/lazy-sync point, the
scheduler and dispatcher run state, the arrival stream position, and
the loop's in-flight bookkeeping.  :func:`capture` serializes all of
it to a JSON payload; :func:`restore` rebuilds a handle in a *fresh
process* that continues the run through the exact operation sequence
of the uninterrupted one — a killed multi-million-job run resumes
bit-identically.

Why this is exact, not approximate:

* Floats round-trip JSON losslessly (``repr`` ↔ ``float``), and the
  streaming metrics accumulators serialize as arbitrary-precision
  integers, which JSON also round-trips exactly.
* Per-coschedule rates are *recomputed* on restore through the run
  memo (a pure function of the rate table), reproducing the exact
  floats the paused run held; the type codec's id assignment is
  replayed from the serialized encounter-order name list.
* The arrival stream is rebuilt by the caller from its deterministic
  seed (see :func:`repro.util.rng.derive_rng`) and fast-forwarded by
  the serialized pull count; the in-flight pending job is re-pulled
  from the rebuilt stream and integrity-checked against the payload.

Files are written with the fsync-hardened
:func:`repro.microarch.rate_cache._atomic_dump`, so the file a restore
finds is always a complete checkpoint — power loss mid-write leaves
the previous one in place.

Format: ``repro-checkpoint-v2``.  The version is checked on load;
future format changes must bump it (a restore never guesses).  A
truncated, non-JSON, or version-mismatched file raises
:class:`~repro.errors.CheckpointError` naming the file and the
expected format — never a raw ``json``/``KeyError``.

v2 adds the fault layer: the run's
:class:`~repro.queueing.faults.FaultConfig`, the livelock-guard
threshold, each machine's effective speed (DEGRADED episodes), and the
full :class:`~repro.queueing.faults.FaultRuntime` state (lifecycle,
event heap, retry heap, attempt counts, RNG position) — a killed run
resumes bit-identically *through* a failure event.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.errors import CheckpointError, SimulationError
from repro.microarch.rate_cache import _atomic_dump
from repro.queueing.cluster import (
    Cluster,
    ClusterRunHandle,
    JobQueue,
    LoopState,
)
from repro.queueing.faults import DEFAULT_STALL_EVENTS, FaultConfig
from repro.queueing.job import Job

__all__ = [
    "CHECKPOINT_FORMAT",
    "capture",
    "save",
    "load",
    "restore",
]

#: Format tag embedded in (and required of) every checkpoint file.
CHECKPOINT_FORMAT = "repro-checkpoint-v2"

#: Top-level sections every well-formed checkpoint carries; validated
#: on load so a corrupt file fails with a named diagnosis, not a
#: ``KeyError`` deep inside restore().
_REQUIRED_SECTIONS = (
    "run",
    "loop",
    "stream",
    "machines",
    "schedulers",
    "dispatcher",
)

_INF = float("inf")


def _job_payload(job: Job) -> list:
    return [
        job.job_id,
        job.job_type,
        job.size,
        job.arrival_time,
        job.remaining,
    ]


def _job_matches(job: Job, payload: list) -> bool:
    return (
        job.job_id == payload[0]
        and job.job_type == payload[1]
        and job.size == payload[2]
        and job.arrival_time == payload[3]
    )


def capture(
    handle: ClusterRunHandle, *, extra: dict | None = None
) -> dict:
    """Serialize a paused run handle to a JSON-safe payload.

    The handle must be paused between events (``advance(pause_at=...)``
    returned ``False``); a finished or never-advanced run has nothing
    meaningful to checkpoint.  ``extra`` rides along under ``"extra"``
    — the sharding driver stores its shard index and the exact
    accumulated window metrics there.
    """
    state = handle.state
    if state is None:
        raise SimulationError(
            "capture() needs a paused run (advance(pause_at=...) that "
            "returned False)"
        )
    machines = []
    for machine in handle.machines:
        machines.append({
            "jobs": [_job_payload(job) for job in machine.jobs],
            # Selection order, not just membership: sync() progresses
            # running jobs in this order and float accumulation of the
            # interval's work is order-sensitive.
            "running_ids": [job.job_id for job in machine.running],
            "coschedule": list(machine.coschedule),
            "next_completion": machine.next_completion,
            "last_sync": machine.last_sync,
            "dirty": machine.dirty,
            "speed": machine.speed,
            "metrics": machine.metrics.to_state(),
        })
    return {
        "format": CHECKPOINT_FORMAT,
        "run": {
            "engine": handle.engine,
            "backend": handle.backend,
            "warmup_time": handle.warmup_time,
            "horizon": handle.horizon,
            "stop_when_fewer_than": handle.stop_when_fewer_than,
            "keep_in_system": handle.keep_in_system,
            "max_events": handle.max_events,
            "stall_events": handle.stall_events,
            "faults": (
                handle.fault_config.to_jsonable()
                if handle.fault_config is not None
                else None
            ),
        },
        "loop": {
            "clock": state.clock,
            "last_arrival": state.last_arrival,
            "in_system": state.in_system,
            "full_machines": state.full_machines,
            "routed": state.routed,
            "pending": (
                _job_payload(state.pending)
                if state.pending is not None
                else None
            ),
            "age_ok": (
                list(state.age_ok) if state.age_ok is not None else None
            ),
        },
        "stream": {"jobs_pulled": handle.jobs_pulled},
        # Encounter-order type vocabulary: replaying it on restore
        # reproduces every interned id of the original run.
        "codec": (
            list(handle.memo.codec.names())
            if handle.engine != "legacy"
            else None
        ),
        "machines": machines,
        "schedulers": [
            m.scheduler.state_dict() for m in handle.machines
        ],
        "dispatcher": handle.cluster.dispatcher.state_dict(),
        "faults_state": (
            handle.fault_rt.state_dict()
            if handle.fault_rt is not None
            else None
        ),
        "extra": extra or {},
    }


def save(path: Path | str, payload: dict) -> None:
    """Write a checkpoint payload crash-safely (fsync + atomic rename)."""
    _atomic_dump(
        Path(path), lambda fp: json.dump(payload, fp, separators=(",", ":"))
    )


def load(path: Path | str) -> dict:
    """Read and validate a checkpoint payload.

    Raises :class:`~repro.errors.CheckpointError` — naming the file
    and the expected format — for anything short of a well-formed
    checkpoint: an unreadable file, truncated or non-JSON content, a
    format-version mismatch, or missing required sections.
    """
    try:
        with open(path, encoding="utf-8") as fp:
            payload = json.load(fp)
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON (truncated or "
            f"corrupt write?): {exc} — expected a complete "
            f"{CHECKPOINT_FORMAT!r} payload"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"checkpoint {path} does not contain a JSON object "
            f"(expected a {CHECKPOINT_FORMAT!r} payload)"
        )
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format {payload.get('format')!r} "
            f"in {path} (expected {CHECKPOINT_FORMAT!r})"
        )
    missing = [
        section
        for section in _REQUIRED_SECTIONS
        if section not in payload
    ]
    if missing:
        raise CheckpointError(
            f"checkpoint {path} is missing required section(s) "
            f"{', '.join(missing)} — truncated or not a "
            f"{CHECKPOINT_FORMAT!r} payload"
        )
    return payload


def restore(
    cluster: Cluster,
    arrivals: Iterable[Job],
    payload: dict,
    *,
    pick_log: list | None = None,
) -> ClusterRunHandle:
    """Rebuild a paused run handle from a checkpoint payload.

    ``arrivals`` must be the *same deterministic stream* the original
    run was started with (rebuilt from its seed); it is fast-forwarded
    past every job the checkpointed run had already pulled.  The
    returned handle continues with ``advance()`` exactly as the
    original would have.

    Scheduler and dispatcher run state is restored onto the cluster's
    live objects; the running sets are reconstructed from serialized
    ids — selection is **never** re-invoked on restore (it would
    duplicate pick-log entries, and remaining-time policies could pick
    differently mid-interval).
    """
    run = payload["run"]
    fault_payload = run.get("faults")
    faults = (
        FaultConfig.from_jsonable(fault_payload)
        if fault_payload is not None
        else None
    )
    handle = cluster.start(
        arrivals,
        warmup_time=run["warmup_time"],
        horizon=run["horizon"],
        stop_when_fewer_than=run["stop_when_fewer_than"],
        keep_in_system=run["keep_in_system"],
        max_events=run["max_events"],
        engine=run["engine"],
        backend=run["backend"],
        pick_log=pick_log,
        faults=faults,
        stall_events=run.get("stall_events", DEFAULT_STALL_EVENTS),
    )
    if len(handle.machines) != len(payload["machines"]):
        raise SimulationError(
            "checkpoint machine count does not match this cluster: "
            f"{len(payload['machines'])} vs {len(handle.machines)}"
        )
    fast = handle.engine != "legacy"
    memo = handle.memo
    if fast:
        for name in payload["codec"]:
            memo.codec.encode(name)

    # Fast-forward the rebuilt stream to the checkpointed position.
    loop = payload["loop"]
    pending_payload = loop["pending"]
    pulled = payload["stream"]["jobs_pulled"]
    skip = pulled - (1 if pending_payload is not None else 0)
    for _ in range(skip):
        if next(handle.stream, None) is None:
            raise SimulationError(
                "arrival stream ended before the checkpointed position "
                "— it is not the stream this checkpoint was taken from"
            )
    pending: Job | None = None
    if pending_payload is not None:
        pending = next(handle.stream, None)
        if pending is None or not _job_matches(pending, pending_payload):
            raise SimulationError(
                "arrival stream does not reproduce the checkpointed "
                "pending job — wrong stream or seed"
            )

    from repro.queueing.system import SystemMetrics

    for machine, mstate in zip(handle.machines, payload["machines"]):
        queue = JobQueue()
        by_id: dict[int, Job] = {}
        for job_id, job_type, size, arrival_time, remaining in mstate[
            "jobs"
        ]:
            job = Job(
                job_id=job_id,
                job_type=job_type,
                size=size,
                arrival_time=arrival_time,
                remaining=remaining,
            )
            job.type_code = memo.codec.encode(job_type) if fast else None
            queue.append(job)
            by_id[job.job_id] = job
        if fast:
            queue.enable_index(memo.codec)
        machine.jobs = queue
        running = [by_id[i] for i in mstate["running_ids"]]
        machine.running = running
        # A machine checkpointed mid-DEGRADED-episode steps at a scaled
        # rate; rebuilding the scaling from the memo's nominal entry
        # reproduces the paused run's exact floats (same multiply on
        # the same operands — see Machine.reschedule).
        speed = mstate.get("speed", 1.0)
        machine.speed = speed
        if fast:
            codes = tuple(sorted(job.type_code for job in running))
            entry = memo.compiled_entry(codes)
            machine.coschedule = entry.names
            if speed == 1.0:
                machine.job_rates = entry.per_job
                machine.rates_by_code = entry.rates_by_code
            else:
                machine.job_rates = {
                    k: v * speed for k, v in entry.per_job.items()
                }
                machine.rates_by_code = [
                    r * speed for r in entry.rates_by_code
                ]
        else:
            machine.coschedule = tuple(mstate["coschedule"])
            job_rates = memo.per_job_rates(machine.coschedule)
            if speed != 1.0:
                job_rates = {k: v * speed for k, v in job_rates.items()}
            machine.job_rates = job_rates
            machine.rates_by_code = None
        if list(machine.coschedule) != mstate["coschedule"]:
            raise SimulationError(
                "restored coschedule does not match the checkpoint — "
                "the rate table or codec differs from the original run"
            )
        machine.next_completion = mstate["next_completion"]
        machine.last_sync = mstate["last_sync"]
        machine.dirty = mstate["dirty"]
        machine.metrics = SystemMetrics.from_state(mstate["metrics"])

    for machine, sched_state in zip(
        handle.machines, payload["schedulers"]
    ):
        machine.scheduler.load_state(sched_state)
    cluster.dispatcher.load_state(payload["dispatcher"])

    faults_state = payload.get("faults_state")
    if handle.fault_rt is not None:
        if faults_state is None:
            raise CheckpointError(
                "checkpoint declares a fault config but carries no "
                "faults_state section — truncated or hand-edited file"
            )
        handle.fault_rt.load_state(
            faults_state,
            encode=memo.codec.encode if fast else None,
        )

    handle.state = LoopState(
        clock=loop["clock"],
        last_arrival=loop["last_arrival"],
        in_system=loop["in_system"],
        full_machines=loop["full_machines"],
        routed=loop["routed"],
        pending=pending,
        age_ok=(
            tuple(loop["age_ok"]) if loop["age_ok"] is not None else None
        ),
    )
    return handle
