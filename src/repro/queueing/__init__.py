"""Queueing substrate: the Section-VI latency and saturation experiments.

The paper complements its analytic maximum-throughput results with a
simulated system where jobs arrive as a Poisson process, queue when all
K contexts are busy, and are (re)scheduled by one of four policies:

* **FCFS** — run jobs strictly in arrival order (needs no knowledge);
* **MAXIT** — among the jobs present, run the combination with the
  highest instantaneous throughput (oldest jobs break ties);
* **SRPT** — run the combination with the smallest sum of remaining
  execution times (taking each job's rate in that combination into
  account);
* **MAXTP** — follow the LP-optimal coschedule fractions of Section IV
  (offline phase), falling back to MAXIT when no optimal coschedule can
  be formed from the jobs present.

:mod:`repro.queueing.cluster` is the heap-driven multi-machine event
core (job progress rates change whenever a machine's co-running set
changes; each event touches only its own machine);
:mod:`repro.queueing.dispatch` routes arriving jobs across machines
(round-robin, join-shortest-queue, or the LP-guided symbiosis-affinity
policy); :mod:`repro.queueing.engine` is the single-machine front door
(a thin M=1 wrapper over the core);
:mod:`repro.queueing.experiment` packages the latency experiment
(Figure 5), the saturation experiment (Figure 6), and their metrics
(turnaround time, processor utilization, empty fraction);
:mod:`repro.queueing.mmk` provides the M/M/K analytics behind Figure 4.
"""

from repro.queueing.job import Job
from repro.queueing.system import SystemMetrics
from repro.queueing.ratememo import CandidateSet, ProbeCandidate, RunRateMemo
from repro.queueing.cluster import (
    Cluster,
    ClusterMetrics,
    JobQueue,
    Machine,
    run_cluster,
)
from repro.queueing.dispatch import (
    Dispatcher,
    JoinShortestQueueDispatcher,
    RoundRobinDispatcher,
    SymbiosisAffinityDispatcher,
    make_dispatcher,
)
from repro.queueing.engine import run_system
from repro.queueing.arrivals import (
    batch_arrivals,
    diurnal_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
    saturated_arrivals,
)
from repro.queueing.sizes import (
    BimodalSizes,
    BoundedParetoSizes,
    ExponentialSizes,
    FixedSizes,
    SizeModel,
    make_size_model,
)
from repro.queueing.trace import (
    TraceRecorder,
    jobs_from_trace,
    load_trace,
    save_trace,
    trace_arrivals,
    trace_from_jobs,
)
from repro.queueing.scenarios import (
    SCENARIOS,
    Scenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.queueing.schedulers import (
    FcfsScheduler,
    LongJobFirstScheduler,
    MaxItScheduler,
    MaxTpScheduler,
    RandomScheduler,
    Scheduler,
    SrptScheduler,
    make_scheduler,
)
from repro.queueing.experiment import (
    LatencyResult,
    SaturationResult,
    run_latency_experiment,
    run_saturation_experiment,
)
from repro.queueing.makespan import MakespanResult, run_makespan_experiment
from repro.queueing.mmk import MMKQueue

__all__ = [
    "Job",
    "SystemMetrics",
    "Cluster",
    "ClusterMetrics",
    "JobQueue",
    "Machine",
    "RunRateMemo",
    "ProbeCandidate",
    "CandidateSet",
    "run_cluster",
    "Dispatcher",
    "RoundRobinDispatcher",
    "JoinShortestQueueDispatcher",
    "SymbiosisAffinityDispatcher",
    "make_dispatcher",
    "run_system",
    "poisson_arrivals",
    "saturated_arrivals",
    "mmpp_arrivals",
    "diurnal_arrivals",
    "batch_arrivals",
    "SizeModel",
    "ExponentialSizes",
    "FixedSizes",
    "BoundedParetoSizes",
    "BimodalSizes",
    "make_size_model",
    "TraceRecorder",
    "trace_from_jobs",
    "jobs_from_trace",
    "save_trace",
    "load_trace",
    "trace_arrivals",
    "Scenario",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "Scheduler",
    "FcfsScheduler",
    "MaxItScheduler",
    "SrptScheduler",
    "MaxTpScheduler",
    "LongJobFirstScheduler",
    "RandomScheduler",
    "make_scheduler",
    "LatencyResult",
    "SaturationResult",
    "run_latency_experiment",
    "run_saturation_experiment",
    "MakespanResult",
    "run_makespan_experiment",
    "MMKQueue",
]
