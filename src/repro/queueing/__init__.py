"""Queueing substrate: the Section-VI latency and saturation experiments.

The paper complements its analytic maximum-throughput results with a
simulated system where jobs arrive as a Poisson process, queue when all
K contexts are busy, and are (re)scheduled by one of four policies:

* **FCFS** — run jobs strictly in arrival order (needs no knowledge);
* **MAXIT** — among the jobs present, run the combination with the
  highest instantaneous throughput (oldest jobs break ties);
* **SRPT** — run the combination with the smallest sum of remaining
  execution times (taking each job's rate in that combination into
  account);
* **MAXTP** — follow the LP-optimal coschedule fractions of Section IV
  (offline phase), falling back to MAXIT when no optimal coschedule can
  be formed from the jobs present.

:mod:`repro.queueing.engine` is a rate-based discrete-event loop (job
progress rates change whenever the co-running set changes);
:mod:`repro.queueing.experiment` packages the latency experiment
(Figure 5), the saturation experiment (Figure 6), and their metrics
(turnaround time, processor utilization, empty fraction);
:mod:`repro.queueing.mmk` provides the M/M/K analytics behind Figure 4.
"""

from repro.queueing.job import Job
from repro.queueing.system import SystemMetrics
from repro.queueing.engine import run_system
from repro.queueing.arrivals import poisson_arrivals, saturated_arrivals
from repro.queueing.schedulers import (
    FcfsScheduler,
    LongJobFirstScheduler,
    MaxItScheduler,
    MaxTpScheduler,
    RandomScheduler,
    Scheduler,
    SrptScheduler,
    make_scheduler,
)
from repro.queueing.experiment import (
    LatencyResult,
    SaturationResult,
    run_latency_experiment,
    run_saturation_experiment,
)
from repro.queueing.makespan import MakespanResult, run_makespan_experiment
from repro.queueing.mmk import MMKQueue

__all__ = [
    "Job",
    "SystemMetrics",
    "run_system",
    "poisson_arrivals",
    "saturated_arrivals",
    "Scheduler",
    "FcfsScheduler",
    "MaxItScheduler",
    "SrptScheduler",
    "MaxTpScheduler",
    "LongJobFirstScheduler",
    "RandomScheduler",
    "make_scheduler",
    "LatencyResult",
    "SaturationResult",
    "run_latency_experiment",
    "run_saturation_experiment",
    "MakespanResult",
    "run_makespan_experiment",
    "MMKQueue",
]
