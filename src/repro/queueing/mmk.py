"""M/M/K queueing analytics (Figure 4 and the Section-VI example).

The paper illustrates the turnaround-time/arrival-rate relation with an
M/M/4 queue: at lambda = 3.5 and mu = 1 there are on average 8.7 jobs in
the system and the turnaround time is 2.5; raising mu by 3% (the optimal
scheduler's throughput gain) drops these to 7.3 jobs and 2.1 — a 16%
turnaround reduction from a 3% throughput increase.  This module
implements the standard Erlang-C machinery used for those numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["MMKQueue", "turnaround_curve"]


@dataclass(frozen=True)
class MMKQueue:
    """An M/M/K queue: Poisson arrivals, exponential service, K servers.

    Attributes:
        arrival_rate: lambda, jobs per unit time.
        service_rate: mu, jobs per unit time per server.
        servers: K.
    """

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0.0:
            raise ConfigurationError("arrival rate must be positive")
        if self.service_rate <= 0.0:
            raise ConfigurationError("service rate must be positive")
        if self.servers <= 0:
            raise ConfigurationError("need at least one server")

    @property
    def offered_load(self) -> float:
        """a = lambda / mu (expected busy servers)."""
        return self.arrival_rate / self.service_rate

    @property
    def utilization(self) -> float:
        """rho = a / K; must be < 1 for stability."""
        return self.offered_load / self.servers

    @property
    def is_stable(self) -> bool:
        """True when the queue does not grow without bound."""
        return self.utilization < 1.0

    def _require_stable(self) -> None:
        if not self.is_stable:
            raise ConfigurationError(
                f"unstable queue: rho = {self.utilization:.3f} >= 1"
            )

    @property
    def erlang_c(self) -> float:
        """Probability an arriving job must wait (Erlang C formula)."""
        self._require_stable()
        a, k = self.offered_load, self.servers
        tail = a**k / math.factorial(k) / (1.0 - self.utilization)
        head = sum(a**n / math.factorial(n) for n in range(k))
        return tail / (head + tail)

    @property
    def mean_queue_length(self) -> float:
        """Lq: mean number of jobs waiting (not in service)."""
        self._require_stable()
        rho = self.utilization
        return self.erlang_c * rho / (1.0 - rho)

    @property
    def mean_jobs_in_system(self) -> float:
        """L = Lq + a: the paper's "jobs in the system"."""
        return self.mean_queue_length + self.offered_load

    @property
    def mean_wait(self) -> float:
        """Wq: mean time spent waiting in the queue."""
        return self.mean_queue_length / self.arrival_rate

    @property
    def mean_turnaround(self) -> float:
        """W = Wq + 1/mu: the paper's turnaround time."""
        return self.mean_wait + 1.0 / self.service_rate

    @property
    def empty_probability(self) -> float:
        """P0: probability the system holds no jobs at all."""
        self._require_stable()
        a, k = self.offered_load, self.servers
        head = sum(a**n / math.factorial(n) for n in range(k))
        tail = a**k / math.factorial(k) / (1.0 - self.utilization)
        return 1.0 / (head + tail)


def turnaround_curve(
    service_rate: float,
    servers: int,
    arrival_rates: list[float],
) -> list[float]:
    """Mean turnaround at each arrival rate (inf when unstable).

    This is Figure 4's curve: flat at low load, exploding as the
    arrival rate approaches the maximum service rate K * mu.
    """
    curve = []
    for rate in arrival_rates:
        queue = MMKQueue(
            arrival_rate=rate, service_rate=service_rate, servers=servers
        )
        curve.append(
            queue.mean_turnaround if queue.is_stable else float("inf")
        )
    return curve
