"""Job instances flowing through the queueing system."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError

__all__ = ["Job"]


@dataclass
class Job:
    """One job: a type, a size in work units, and its lifecycle times.

    Sizes are in units of *weighted work*: a job of size 1.0 takes 1.0
    time units when running alone on the reference machine (WIPC = 1).

    Attributes:
        job_id: unique, monotonically increasing identifier (used for
            deterministic tie-breaking: smaller id = older job).
        job_type: the job's type name.
        size: total work.
        arrival_time: when the job entered the system.
        remaining: work still to execute.
        completion_time: set when the job finishes.
        type_code: interned id of ``job_type`` under the *current
            run's* :class:`~repro.microarch.codec.TypeCodec` — set by
            the cluster event loop when the job enters a run (and
            cleared on the legacy path), never meaningful across runs.
            Excluded from equality/repr: it is derived hot-path state,
            not identity.
    """

    job_id: int
    job_type: str
    size: float
    arrival_time: float
    remaining: float = field(default=-1.0)
    completion_time: float | None = None
    type_code: int | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.size <= 0.0:
            raise SimulationError(
                f"job {self.job_id} has non-positive size {self.size}"
            )
        if self.remaining < 0.0:
            self.remaining = self.size

    @property
    def done(self) -> bool:
        """True once all work is executed."""
        return self.remaining <= 1e-12

    @property
    def turnaround(self) -> float:
        """Completion minus arrival; only valid for finished jobs."""
        if self.completion_time is None:
            raise SimulationError(f"job {self.job_id} has not completed")
        return self.completion_time - self.arrival_time

    def progress(self, amount: float) -> None:
        """Execute ``amount`` units of work (clamped at zero remaining)."""
        if amount < -1e-12:
            raise SimulationError(f"negative progress {amount}")
        self.remaining = max(0.0, self.remaining - amount)
