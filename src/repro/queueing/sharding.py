"""Deterministic time-slice sharding of long cluster runs.

A *shard* is one segment of a single simulated timeline: the run
pauses between events at each boundary, detaches its per-shard metrics
window, optionally checkpoints, and warm-hands its in-flight state
(queues, running sets, lazy-sync points, stream position) to the next
segment.  Because pauses land between events and the streaming metrics
merge exactly (:meth:`repro.queueing.system.SystemMetrics.merge`), a
sharded run performs the **identical** event/arrival/pick sequence as
the unsharded one and its reduced metrics are bit-identical — shard
boundaries only choose where checkpoints can happen, never what is
computed.

The determinism contract:

* Boundaries are pure data (:func:`plan_boundaries` is a pure
  function), so every replay shards at the same instants.
* Arrival streams must be rebuilt deterministically from their seed —
  the scenario layer derives per-purpose RNG streams via
  :func:`repro.util.rng.derive_rng`, which is stable across processes
  and Python versions — so a resumed process fast-forwards to the
  exact in-flight job sequence.
* Checkpoints are written with the fsync-hardened atomic dump; a
  killed run (power loss included) resumes from the last completed
  shard bit-identically (:mod:`repro.queueing.checkpoint`).

Cross-*cell* parallelism is the orthogonal axis: independent
(scenario, dispatcher, seed) cells of a sweep share nothing, so
:func:`parallel_map` fans them out over worker processes (the
experiments CLI exposes this via ``--jobs``).

Set ``REPRO_SHARD_DIE_AFTER=<k>`` to hard-kill the process right after
shard *k*'s checkpoint is written — the hook the kill+resume CI test
uses to prove crash recovery is exact.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import SimulationError
from repro.queueing.checkpoint import capture, load, restore, save
from repro.queueing.cluster import Cluster, ClusterMetrics
from repro.queueing.faults import DEFAULT_STALL_EVENTS, FaultConfig
from repro.queueing.job import Job

__all__ = [
    "CHECKPOINT_NAME",
    "ShardedRun",
    "plan_boundaries",
    "run_sharded",
    "parallel_map",
]

#: File name of the (single, atomically replaced) checkpoint inside a
#: ``--checkpoint-dir``.
CHECKPOINT_NAME = "checkpoint.json"

#: Environment kill switch: exit code used right after the matching
#: shard's checkpoint is written.
_DIE_ENV = "REPRO_SHARD_DIE_AFTER"
_DIE_EXIT_CODE = 42

_T = TypeVar("_T")
_R = TypeVar("_R")


def plan_boundaries(n_shards: int, duration: float) -> list[float]:
    """Evenly spaced shard boundaries over an estimated duration.

    Returns ``n_shards - 1`` pause times (the final shard runs to
    completion).  The estimate only controls checkpoint spacing — a
    run that outlives it simply makes its last shard longer, with no
    effect on any result.
    """
    if n_shards < 1:
        raise SimulationError(f"need at least one shard, got {n_shards}")
    if duration <= 0.0:
        raise SimulationError(
            f"duration estimate must be positive, got {duration}"
        )
    return [duration * i / n_shards for i in range(1, n_shards)]


@dataclass(frozen=True)
class ShardedRun:
    """Outcome of :func:`run_sharded`.

    Attributes:
        metrics: the exact reduction of every shard window —
            bit-identical to the unsharded run's metrics.
        shards_run: segments executed *in this process* (a resumed run
            re-executes none of the shards it recovered).
        resumed_from_shard: index of the checkpointed shard this
            process resumed after, or ``None`` for a fresh run.
    """

    metrics: ClusterMetrics
    shards_run: int
    resumed_from_shard: int | None


def run_sharded(
    cluster: Cluster,
    stream_factory: Callable[[], Iterable[Job]],
    *,
    boundaries: Sequence[float],
    checkpoint_dir: Path | str | None = None,
    warmup_time: float = 0.0,
    horizon: float | None = None,
    stop_when_fewer_than: int | None = None,
    keep_in_system: int | None = None,
    max_events: int = 5_000_000,
    engine: str | None = None,
    backend: str | None = None,
    pick_log: list | None = None,
    faults: FaultConfig | None = None,
    stall_events: int = DEFAULT_STALL_EVENTS,
) -> ShardedRun:
    """Run a cluster scenario as consecutive time-slice shards.

    ``stream_factory`` must build the *same deterministic arrival
    stream* on every call (it is re-invoked on checkpoint resume);
    ``boundaries`` are the pause times (see :func:`plan_boundaries`).
    With ``checkpoint_dir`` set, a checkpoint is written after every
    shard and a pre-existing checkpoint in that directory is resumed
    from; the file is removed once the run completes, so a finished
    directory never hijacks a later run.  ``max_events`` bounds each
    segment (not the whole run).
    """
    boundaries = [float(b) for b in boundaries]
    if sorted(boundaries) != boundaries:
        raise SimulationError("shard boundaries must be non-decreasing")
    checkpoint_path: Path | None = None
    if checkpoint_dir is not None:
        checkpoint_path = Path(checkpoint_dir) / CHECKPOINT_NAME

    accumulated: ClusterMetrics | None = None
    resumed_from: int | None = None
    next_shard = 0
    if checkpoint_path is not None and checkpoint_path.exists():
        payload = load(checkpoint_path)
        extra = payload["extra"]
        if extra.get("boundaries") != boundaries:
            raise SimulationError(
                "checkpoint was taken under different shard boundaries "
                "— refusing to resume a different plan"
            )
        expected_faults = (
            faults.to_jsonable() if faults is not None else None
        )
        if payload["run"].get("faults") != expected_faults:
            raise SimulationError(
                "checkpoint was taken under a different fault config "
                "— refusing to resume (the failure schedule would "
                "diverge from the original timeline)"
            )
        handle = restore(
            cluster, stream_factory(), payload, pick_log=pick_log
        )
        accumulated = ClusterMetrics.from_state(extra["accumulated"])
        resumed_from = int(extra["shard"])
        next_shard = resumed_from + 1
    else:
        handle = cluster.start(
            stream_factory(),
            warmup_time=warmup_time,
            horizon=horizon,
            stop_when_fewer_than=stop_when_fewer_than,
            keep_in_system=keep_in_system,
            max_events=max_events,
            engine=engine,
            backend=backend,
            pick_log=pick_log,
            faults=faults,
            stall_events=stall_events,
        )

    die_after = os.environ.get(_DIE_ENV)
    shards_run = 0
    finished = False
    for index in range(next_shard, len(boundaries)):
        finished = handle.advance(pause_at=boundaries[index])
        window = handle.take_window()
        accumulated = (
            window if accumulated is None else accumulated.merge(window)
        )
        shards_run += 1
        if finished:
            break
        if checkpoint_path is not None:
            save(
                checkpoint_path,
                capture(
                    handle,
                    extra={
                        "shard": index,
                        "boundaries": boundaries,
                        "accumulated": accumulated.to_state(),
                    },
                ),
            )
            if die_after is not None and index >= int(die_after):
                # Hard kill (no cleanup, no atexit): the closest a test
                # can get to pulling the plug mid-run.
                os._exit(_DIE_EXIT_CODE)
    if not finished:
        handle.advance()
        window = handle.take_window()
        accumulated = (
            window if accumulated is None else accumulated.merge(window)
        )
        shards_run += 1
    if checkpoint_path is not None and checkpoint_path.exists():
        checkpoint_path.unlink()
    assert accumulated is not None
    return ShardedRun(
        metrics=accumulated,
        shards_run=shards_run,
        resumed_from_shard=resumed_from,
    )


def parallel_map(
    fn: Callable[[_T], _R], payloads: Sequence[_T], jobs: int
) -> list[_R]:
    """Map ``fn`` over independent cells, optionally across processes.

    Uses the spawn start method (clean interpreter state per worker,
    matching the experiments CLI); falls back to a plain loop when
    ``jobs <= 1`` or there is only one cell.  ``fn`` and every payload
    must be picklable.  Results keep payload order, so fan-out never
    changes the assembled output.
    """
    if jobs <= 1 or len(payloads) <= 1:
        return [fn(payload) for payload in payloads]
    context = get_context("spawn")
    with context.Pool(processes=min(jobs, len(payloads))) as pool:
        return pool.map(fn, list(payloads))
