"""Fault layer: machine failure/repair processes shared by every engine.

Deployed schedulers treat node failure and job retry as first-class;
this module gives the cluster simulator the same vocabulary while
keeping the determinism contract of the rest of the codebase:

* :class:`FaultConfig` — a frozen description of the failure processes
  (exponential MTBF/MTTR individual crashes, correlated multi-machine
  outages with an optional drain grace, transient DEGRADED slowdown
  episodes) and the recovery semantics (crash progress-loss policy,
  per-job retry budget with exponential backoff, load-shedding valve,
  degradation-aware dispatch).  The default ``FaultConfig()`` enables
  *no* process — it is the zero-fault control, pinned bit-identical to
  running with ``faults=None`` by the differential harness and the
  golden-trace suite.
* :class:`FaultRuntime` — the mutable per-run state: machine lifecycle
  (UP / DEGRADED / DOWN / DRAINING), the fault event heap, the retry
  heap, the per-job attempt counts, and the availability accounting.

**Bit-identity across engines is structural.**  Both event loops
(:meth:`~repro.queueing.cluster.Cluster._event_loop` and
:func:`~repro.queueing.compiled.run_compiled`) call *the same runtime
methods at the same points of the iteration*, handing over their
engine-specific effects through a tiny :class:`EngineOps` adapter
(sync one machine, mark it dirty, clear its queue, note a speed
change).  Every random draw happens inside the application of a fault
event — never inside an engine — on a dedicated
``derive_rng(seed, "fault-events")`` stream, so the draw sequence is a
pure function of the fault schedule, identical for every engine.

Lifecycle semantics:

* ``crash`` (individual, mean ``mtbf``) and ``planned_down`` (from a
  correlated outage): the machine syncs to the crash instant, every
  job on it loses progress per ``crash_policy`` (``"restart"`` → back
  to full size; ``"resume_fraction"`` → keeps that fraction of the
  completed work), and is either requeued on the retry heap with
  exponential backoff or recorded as abandoned once its
  ``retry_budget`` is exhausted.  The machine is DOWN until a repair
  drawn with mean ``mttr``; repairs re-arm the individual crash
  process.  Down/up transitions fire the membership hook (MAXTP
  re-solves its LP via ``reoptimize``, the affinity dispatcher
  rebuilds its tables via ``rebuild``).
* ``outage`` (correlated, mean ``correlated_mtbf``): samples
  ``blast_fraction`` of the machines; with ``drain_grace > 0`` each
  first enters DRAINING (no new work, running jobs continue) and goes
  down after the grace, otherwise it goes down immediately.
* ``degraded`` episodes (mean gap ``degraded_mtbf``, fixed
  ``degraded_duration``): the machine's effective speed drops to
  ``degraded_factor`` — every per-coschedule rate is scaled, in the
  same float operations on every engine — and recovers afterwards.
  Dispatch prefers non-degraded machines under the default
  ``degraded_dispatch="avoid"``.

Retried jobs keep their original ``arrival_time`` (turnaround includes
every failed attempt) and re-enter through the dispatcher like any
arrival, skipping DOWN/DRAINING machines.  When no machine can accept
work and ``shed_after`` is set, an arrival that has waited that long
past its arrival time is shed (counted, never admitted) — the
admission-control valve for surviving capacity below offered load.
"""

from __future__ import annotations

import heapq
from dataclasses import asdict, dataclass, field
from typing import Callable, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.queueing.job import Job
from repro.util.rng import derive_rng

__all__ = [
    "MACHINE_UP",
    "MACHINE_DEGRADED",
    "MACHINE_DOWN",
    "MACHINE_DRAINING",
    "FaultConfig",
    "FaultStats",
    "EngineOps",
    "FaultRuntime",
]

_EPSILON = 1e-9
_INF = float("inf")

#: Machine lifecycle states (plain strings: JSON-safe, cheap compares).
MACHINE_UP = "up"
MACHINE_DEGRADED = "degraded"
MACHINE_DOWN = "down"
MACHINE_DRAINING = "draining"

_STATES = (MACHINE_UP, MACHINE_DEGRADED, MACHINE_DOWN, MACHINE_DRAINING)
_CRASH_POLICIES = ("restart", "resume_fraction")
_DISPATCH_POLICIES = ("avoid", "allow")

#: Default livelock-guard threshold (consecutive zero-advance events).
DEFAULT_STALL_EVENTS = 100_000


@dataclass(frozen=True)
class FaultConfig:
    """Failure processes and recovery semantics of one run.

    All processes are off by default: ``FaultConfig()`` is the
    zero-fault control, bit-identical to ``faults=None``.

    Attributes:
        seed: seed of the dedicated ``"fault-events"`` RNG stream.
        mtbf: mean time between individual machine crashes
            (exponential), or ``None`` for no individual crashes.
        mttr: mean time to repair a DOWN machine (exponential).
        degraded_mtbf: mean gap between DEGRADED slowdown episodes per
            machine, or ``None`` for none.
        degraded_duration: fixed length of one DEGRADED episode.
        degraded_factor: speed multiplier while DEGRADED (0 < f <= 1).
        correlated_mtbf: mean gap between correlated multi-machine
            outages, or ``None`` for none.
        blast_fraction: fraction of machines hit by one outage.
        drain_grace: DRAINING window before an outage takes a machine
            down (0 → immediate).
        retry_budget: crash retries per job before it is abandoned.
        backoff_base: first retry delay after a crash.
        backoff_factor: multiplier on the delay per further attempt.
        crash_policy: ``"restart"`` (lose all progress) or
            ``"resume_fraction"`` (keep ``resume_fraction`` of it).
        resume_fraction: completed-work fraction retained on crash
            under ``"resume_fraction"``.
        shed_after: how long a blocked arrival may wait (no
            dispatchable machine) before it is shed; ``None`` → wait
            forever.
        degraded_dispatch: ``"avoid"`` routes around DEGRADED machines
            while any non-degraded machine has room; ``"allow"`` treats
            them as equal targets.
    """

    seed: int = 0
    mtbf: float | None = None
    mttr: float = 1.0
    degraded_mtbf: float | None = None
    degraded_duration: float = 1.0
    degraded_factor: float = 0.5
    correlated_mtbf: float | None = None
    blast_fraction: float = 0.5
    drain_grace: float = 0.0
    retry_budget: int = 3
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    crash_policy: str = "restart"
    resume_fraction: float = 0.5
    shed_after: float | None = None
    degraded_dispatch: str = "avoid"

    def __post_init__(self) -> None:
        for name in ("mtbf", "degraded_mtbf", "correlated_mtbf"):
            value = getattr(self, name)
            if value is not None and value <= 0.0:
                raise ConfigurationError(
                    f"{name} must be positive (or None), got {value}"
                )
        for name in ("mttr", "degraded_duration", "backoff_factor"):
            value = getattr(self, name)
            if value <= 0.0:
                raise ConfigurationError(
                    f"{name} must be positive, got {value}"
                )
        if not 0.0 < self.degraded_factor <= 1.0:
            raise ConfigurationError(
                "degraded_factor must be in (0, 1], got "
                f"{self.degraded_factor}"
            )
        if not 0.0 < self.blast_fraction <= 1.0:
            raise ConfigurationError(
                "blast_fraction must be in (0, 1], got "
                f"{self.blast_fraction}"
            )
        if self.drain_grace < 0.0:
            raise ConfigurationError(
                f"drain_grace must be >= 0, got {self.drain_grace}"
            )
        if self.retry_budget < 0:
            raise ConfigurationError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.backoff_base < 0.0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.crash_policy not in _CRASH_POLICIES:
            raise ConfigurationError(
                f"unknown crash_policy {self.crash_policy!r}; choose "
                f"{' or '.join(_CRASH_POLICIES)}"
            )
        if not 0.0 <= self.resume_fraction <= 1.0:
            raise ConfigurationError(
                "resume_fraction must be in [0, 1], got "
                f"{self.resume_fraction}"
            )
        if self.shed_after is not None and self.shed_after < 0.0:
            raise ConfigurationError(
                f"shed_after must be >= 0 (or None), got {self.shed_after}"
            )
        if self.degraded_dispatch not in _DISPATCH_POLICIES:
            raise ConfigurationError(
                f"unknown degraded_dispatch {self.degraded_dispatch!r}; "
                f"choose {' or '.join(_DISPATCH_POLICIES)}"
            )

    @property
    def active(self) -> bool:
        """Whether any failure process is enabled at all."""
        return (
            self.mtbf is not None
            or self.degraded_mtbf is not None
            or self.correlated_mtbf is not None
        )

    def to_jsonable(self) -> dict:
        """JSON-safe dict (checkpoint payloads, experiment results)."""
        return asdict(self)

    @classmethod
    def from_jsonable(cls, payload: dict) -> "FaultConfig":
        """Rebuild from :meth:`to_jsonable`."""
        return cls(**payload)


@dataclass
class FaultStats:
    """Counters of one run's fault activity (availability lives on
    :meth:`FaultRuntime.stats_dict`, which closes open intervals)."""

    crashes: int = 0
    repairs: int = 0
    outages: int = 0
    drains: int = 0
    degrade_episodes: int = 0
    jobs_killed: int = 0
    retried: int = 0
    abandoned: int = 0
    shed: int = 0
    lost_work: float = 0.0

    def as_dict(self) -> dict[str, object]:
        return asdict(self)


class EngineOps:
    """Engine-specific effects a fault event needs to apply.

    Each event loop builds one per segment from its own closures, so
    the runtime stays engine-agnostic while the effects (lazy sync,
    dirty marking, queue/count clearing, rate-cache invalidation on a
    speed change) run through the exact code paths of that engine.
    """

    __slots__ = ("sync", "mark_dirty", "clear_queue", "speed_changed")

    def __init__(
        self,
        sync: Callable[[int, float], None],
        mark_dirty: Callable[[int], None],
        clear_queue: Callable[[int], None],
        speed_changed: Callable[[int], None],
    ) -> None:
        self.sync = sync
        self.mark_dirty = mark_dirty
        self.clear_queue = clear_queue
        self.speed_changed = speed_changed


class FaultRuntime:
    """Mutable fault state of one cluster run (all engines share it).

    Fault events live in a ``(time, seq, kind, machine_id, tag)`` heap;
    ``tag`` is a lifecycle epoch (crash/repair/planned-down events) or
    a degrade token (episode-end events) that lazily invalidates
    events overtaken by a state change — the heap is never searched.
    Retries live in a ``(ready_time, seq, job)`` heap and re-enter
    through the loop's admission phase.  Both ``seq`` tie-breakers and
    every RNG draw are driven purely by the event application order,
    which the loops replicate exactly, so the runtime evolves
    identically under every engine.
    """

    def __init__(
        self,
        config: FaultConfig,
        machines: Sequence,
        *,
        keep_in_system: int | None = None,
    ) -> None:
        self.config = config
        self.machines = machines
        self.keep_in_system = keep_in_system
        n = len(machines)
        self.state: list[str] = [MACHINE_UP] * n
        self.life_epoch: list[int] = [0] * n
        self.degrade_token: list[int] = [0] * n
        self.down_since: list[float | None] = [None] * n
        self.degraded_since: list[float | None] = [None] * n
        self.down_time: list[float] = [0.0] * n
        self.degraded_time: list[float] = [0.0] * n
        self.events: list[tuple] = []
        self.retries: list[tuple] = []
        self.attempts: dict[int, int] = {}
        self.stats = FaultStats()
        self._seq = 0
        #: Fired after every membership change (a machine going down or
        #: coming back): the run handle wires MAXTP's ``reoptimize`` and
        #: the affinity dispatcher's ``rebuild`` here.
        self.membership_hook: Callable[[], None] | None = None
        self.rng = derive_rng(config.seed, "fault-events")
        # Initial schedule, drawn in a fixed order (per-machine crash
        # times, per-machine degrade onsets, then the first correlated
        # outage) so the stream position is engine-independent.
        if config.mtbf is not None:
            for mid in range(n):
                self._push(
                    self.rng.expovariate(1.0 / config.mtbf),
                    "crash",
                    mid,
                    0,
                )
        if config.degraded_mtbf is not None:
            for mid in range(n):
                self._push(
                    self.rng.expovariate(1.0 / config.degraded_mtbf),
                    "deg_on",
                    mid,
                    None,
                )
        if config.correlated_mtbf is not None:
            self._push(
                self.rng.expovariate(1.0 / config.correlated_mtbf),
                "outage",
                -1,
                None,
            )

    # ------------------------------------------------------------------
    # Event heap plumbing
    # ------------------------------------------------------------------
    def _push(self, time: float, kind: str, mid: int, tag) -> None:
        self._seq += 1
        heapq.heappush(self.events, (time, self._seq, kind, mid, tag))

    # ------------------------------------------------------------------
    # Queries the event loops make every iteration
    # ------------------------------------------------------------------
    def routable(self, mid: int) -> bool:
        """Whether a previously made dispatch decision is still valid."""
        return self.state[mid] in (MACHINE_UP, MACHINE_DEGRADED)

    def _has_room(self, mid: int) -> bool:
        keep = self.keep_in_system
        return keep is None or len(self.machines[mid].jobs) < keep

    def any_dispatchable(self) -> bool:
        """Whether any machine can accept a new job right now."""
        state = self.state
        for mid in range(len(state)):
            if state[mid] in (MACHINE_UP, MACHINE_DEGRADED) and (
                self._has_room(mid)
            ):
                return True
        return False

    def dispatch_eligible(self) -> list[int]:
        """Machine ids a dispatcher may route to, in machine order.

        Under ``degraded_dispatch="avoid"`` DEGRADED machines are only
        offered when no non-degraded machine has room; under
        ``"allow"`` they are equal targets.  With every machine UP this
        is exactly the no-fault eligible list, in the same order — the
        zero-fault identity depends on it.
        """
        state = self.state
        eligible: list[int] = []
        degraded: list[int] = []
        for mid in range(len(state)):
            if state[mid] == MACHINE_UP:
                if self._has_room(mid):
                    eligible.append(mid)
            elif state[mid] == MACHINE_DEGRADED:
                if self._has_room(mid):
                    degraded.append(mid)
        if degraded:
            if self.config.degraded_dispatch == "allow":
                eligible = sorted(eligible + degraded)
            elif not eligible:
                eligible = degraded
        return eligible

    def due_retry(self, clock: float) -> Job | None:
        """The retry-heap head if its backoff has elapsed (not popped)."""
        if self.retries and self.retries[0][0] <= clock + _EPSILON:
            return self.retries[0][2]
        return None

    def pop_retry(self) -> None:
        heapq.heappop(self.retries)

    def retry_pending(self) -> int:
        return len(self.retries)

    def idle(self) -> bool:
        """No retries waiting — safe to end the run when drained."""
        return not self.retries

    def should_shed(self, job: Job, clock: float) -> bool:
        shed = self.config.shed_after
        return shed is not None and clock + _EPSILON >= (
            job.arrival_time + shed
        )

    def record_shed(self, job: Job) -> None:
        self.stats.shed += 1
        self.attempts.pop(job.job_id, None)

    def next_wake(
        self, clock: float, eligible_exists: bool, pending: Job | None
    ) -> float:
        """Time step to the next fault-layer instant (``inf`` if none).

        Retry ready-times only bound the step while a machine could
        actually accept the retry (otherwise the wake would spin); a
        blocked pending arrival contributes its shed deadline instead.
        """
        t = self.events[0][0] if self.events else _INF
        if eligible_exists and self.retries:
            ready = self.retries[0][0]
            if ready < t:
                t = ready
        elif (
            pending is not None
            and not eligible_exists
            and self.config.shed_after is not None
        ):
            deadline = pending.arrival_time + self.config.shed_after
            if deadline < t:
                t = deadline
        if t == _INF:
            return _INF
        dt = t - clock
        return dt if dt > 0.0 else 0.0

    # ------------------------------------------------------------------
    # Event application (the only place the RNG is drawn)
    # ------------------------------------------------------------------
    def on_wake(self, clock: float, ops: EngineOps) -> int:
        """Apply the earliest due fault event, if any.

        Called by the loops when the fault layer won the ``dt`` race.
        At most one event is applied per call (one loop iteration), so
        same-instant cascades — a correlated outage downing several
        machines — process machine by machine in heap order on every
        engine.  Returns the number of jobs removed from machines (the
        loop adjusts ``in_system``); retry/shed instants need no event
        here — the next admission phase handles them.
        """
        events = self.events
        if not events or events[0][0] > clock + _EPSILON:
            return 0
        _, _, kind, mid, tag = heapq.heappop(events)
        if kind in ("crash", "planned_down"):
            return self._apply_down(mid, tag, clock, ops)
        if kind == "up":
            self._apply_up(mid, tag, clock)
            return 0
        if kind == "drain":
            self._apply_drain(mid, tag, clock)
            return 0
        if kind == "deg_on":
            self._apply_deg_on(mid, clock, ops)
            return 0
        if kind == "deg_off":
            self._apply_deg_off(mid, tag, clock, ops)
            return 0
        if kind == "outage":
            self._apply_outage(clock)
            return 0
        raise SimulationError(f"unknown fault event kind {kind!r}")

    def _apply_down(
        self, mid: int, tag: int, clock: float, ops: EngineOps
    ) -> int:
        if self.life_epoch[mid] != tag or self.state[mid] == MACHINE_DOWN:
            return 0
        config = self.config
        ops.sync(mid, clock)
        machine = self.machines[mid]
        resume = (
            config.resume_fraction
            if config.crash_policy == "resume_fraction"
            else 0.0
        )
        removed = 0
        stats = self.stats
        for job in machine.jobs:
            removed += 1
            completed = job.size - job.remaining
            if completed > 0.0:
                retained = completed * resume
                stats.lost_work += completed - retained
                job.remaining = job.size - retained
            attempts = self.attempts.get(job.job_id, 0) + 1
            if attempts > config.retry_budget:
                self.attempts.pop(job.job_id, None)
                stats.abandoned += 1
            else:
                self.attempts[job.job_id] = attempts
                delay = config.backoff_base * (
                    config.backoff_factor ** (attempts - 1)
                )
                self._seq += 1
                heapq.heappush(
                    self.retries, (clock + delay, self._seq, job)
                )
                stats.retried += 1
        stats.jobs_killed += removed
        ops.clear_queue(mid)
        machine.running = []
        machine.next_completion = _INF
        if machine.speed != 1.0:
            machine.speed = 1.0
            ops.speed_changed(mid)
        if self.state[mid] == MACHINE_DEGRADED:
            self.degraded_time[mid] += clock - self.degraded_since[mid]
            self.degraded_since[mid] = None
        self.state[mid] = MACHINE_DOWN
        self.down_since[mid] = clock
        self.life_epoch[mid] += 1
        stats.crashes += 1
        self._push(
            clock + self.rng.expovariate(1.0 / config.mttr),
            "up",
            mid,
            self.life_epoch[mid],
        )
        # The machine reschedules (to the empty running set) before any
        # time can pass, so its stale coschedule never observes a
        # positive interval.
        ops.mark_dirty(mid)
        if self.membership_hook is not None:
            self.membership_hook()
        return removed

    def _apply_up(self, mid: int, tag: int, clock: float) -> None:
        if self.life_epoch[mid] != tag or self.state[mid] != MACHINE_DOWN:
            return
        self.state[mid] = MACHINE_UP
        self.down_time[mid] += clock - self.down_since[mid]
        self.down_since[mid] = None
        self.life_epoch[mid] += 1
        self.stats.repairs += 1
        if self.config.mtbf is not None:
            self._push(
                clock + self.rng.expovariate(1.0 / self.config.mtbf),
                "crash",
                mid,
                self.life_epoch[mid],
            )
        if self.membership_hook is not None:
            self.membership_hook()

    def _apply_drain(self, mid: int, tag: int, clock: float) -> None:
        if self.life_epoch[mid] != tag or self.state[mid] not in (
            MACHINE_UP,
            MACHINE_DEGRADED,
        ):
            return
        if self.state[mid] == MACHINE_DEGRADED:
            # The drain window keeps the degraded speed (it ends in a
            # planned down anyway); only the interval accounting closes.
            self.degraded_time[mid] += clock - self.degraded_since[mid]
            self.degraded_since[mid] = None
        self.state[mid] = MACHINE_DRAINING
        self.stats.drains += 1

    def _apply_deg_on(
        self, mid: int, clock: float, ops: EngineOps
    ) -> None:
        config = self.config
        if self.state[mid] == MACHINE_UP:
            ops.sync(mid, clock)
            self.state[mid] = MACHINE_DEGRADED
            machine = self.machines[mid]
            machine.speed = config.degraded_factor
            ops.speed_changed(mid)
            self.degrade_token[mid] += 1
            self.degraded_since[mid] = clock
            self.stats.degrade_episodes += 1
            self._push(
                clock + config.degraded_duration,
                "deg_off",
                mid,
                self.degrade_token[mid],
            )
            ops.mark_dirty(mid)
        # The onset process self-sustains whether or not this episode
        # fired (machine DOWN/DRAINING/already degraded): the next
        # onset is always drawn here, keeping the stream position a
        # pure function of the event sequence.
        self._push(
            clock + self.rng.expovariate(1.0 / config.degraded_mtbf),
            "deg_on",
            mid,
            None,
        )

    def _apply_deg_off(
        self, mid: int, tag: int, clock: float, ops: EngineOps
    ) -> None:
        if (
            self.state[mid] != MACHINE_DEGRADED
            or self.degrade_token[mid] != tag
        ):
            return
        ops.sync(mid, clock)
        self.state[mid] = MACHINE_UP
        machine = self.machines[mid]
        machine.speed = 1.0
        ops.speed_changed(mid)
        self.degraded_time[mid] += clock - self.degraded_since[mid]
        self.degraded_since[mid] = None
        ops.mark_dirty(mid)

    def _apply_outage(self, clock: float) -> None:
        config = self.config
        n = len(self.machines)
        k = int(round(config.blast_fraction * n))
        if k < 1:
            k = 1
        if k > n:
            k = n
        affected = sorted(self.rng.sample(range(n), k))
        for mid in affected:
            if self.state[mid] == MACHINE_DOWN:
                continue
            if config.drain_grace > 0.0:
                self._push(clock, "drain", mid, self.life_epoch[mid])
                self._push(
                    clock + config.drain_grace,
                    "planned_down",
                    mid,
                    self.life_epoch[mid],
                )
            else:
                self._push(
                    clock, "planned_down", mid, self.life_epoch[mid]
                )
        self.stats.outages += 1
        self._push(
            clock + self.rng.expovariate(1.0 / config.correlated_mtbf),
            "outage",
            -1,
            None,
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats_dict(self, clock: float) -> dict[str, object]:
        """Counters plus availability, with open intervals closed at
        ``clock`` (non-destructively — the run may continue)."""
        n = len(self.machines)
        down = list(self.down_time)
        degraded = list(self.degraded_time)
        for mid in range(n):
            if self.down_since[mid] is not None:
                down[mid] += clock - self.down_since[mid]
            if self.degraded_since[mid] is not None:
                degraded[mid] += clock - self.degraded_since[mid]
        total = clock * n
        payload = self.stats.as_dict()
        payload.update(
            availability=(
                1.0 - sum(down) / total if total > 0.0 else 1.0
            ),
            degraded_fraction=(
                sum(degraded) / total if total > 0.0 else 0.0
            ),
            down_time=down,
            degraded_time=degraded,
            retry_pending=len(self.retries),
            machine_states=list(self.state),
        )
        return payload

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, object]:
        """JSON-safe full state (checkpoint payload section)."""
        version, internal, gauss = self.rng.getstate()
        return {
            "state": list(self.state),
            "life_epoch": list(self.life_epoch),
            "degrade_token": list(self.degrade_token),
            "down_since": list(self.down_since),
            "degraded_since": list(self.degraded_since),
            "down_time": list(self.down_time),
            "degraded_time": list(self.degraded_time),
            "events": [list(entry) for entry in self.events],
            "retries": [
                [
                    ready,
                    seq,
                    [
                        job.job_id,
                        job.job_type,
                        job.size,
                        job.arrival_time,
                        job.remaining,
                    ],
                ]
                for ready, seq, job in self.retries
            ],
            "attempts": [
                [job_id, count] for job_id, count in self.attempts.items()
            ],
            "seq": self._seq,
            "rng": [version, list(internal), gauss],
            "stats": self.stats.as_dict(),
        }

    def load_state(
        self,
        payload: dict,
        *,
        encode: Callable[[str], int] | None = None,
    ) -> None:
        """Restore :meth:`state_dict` onto this runtime.

        ``encode`` is the run codec's interning function on the fast
        engines (retry-heap jobs get their type ids back), ``None`` on
        the legacy engine.
        """
        self.state = [str(s) for s in payload["state"]]
        self.life_epoch = [int(e) for e in payload["life_epoch"]]
        self.degrade_token = [int(t) for t in payload["degrade_token"]]
        self.down_since = list(payload["down_since"])
        self.degraded_since = list(payload["degraded_since"])
        self.down_time = [float(t) for t in payload["down_time"]]
        self.degraded_time = [float(t) for t in payload["degraded_time"]]
        self.events = [tuple(entry) for entry in payload["events"]]
        heapq.heapify(self.events)
        retries = []
        for ready, seq, job_fields in payload["retries"]:
            job_id, job_type, size, arrival_time, remaining = job_fields
            job = Job(
                job_id=job_id,
                job_type=job_type,
                size=size,
                arrival_time=arrival_time,
                remaining=remaining,
            )
            job.type_code = encode(job_type) if encode is not None else None
            retries.append((ready, seq, job))
        heapq.heapify(retries)
        self.retries = retries
        self.attempts = {
            int(job_id): int(count)
            for job_id, count in payload["attempts"]
        }
        self._seq = int(payload["seq"])
        version, internal, gauss = payload["rng"]
        self.rng.setstate((version, tuple(internal), gauss))
        self.stats = FaultStats(**payload["stats"])
