"""Count-vector compiled engine: perf trajectory point 1.

The PR-4 fast path interned type names and memoized probes, but still
advances the cluster one Python event at a time through the generic
:class:`~repro.queueing.cluster.Machine` / ``Scheduler.select`` stack.
This module re-expresses per-machine state as **dense type-count
vectors** keyed by the run's
:class:`~repro.microarch.codec.TypeCodec` and drives the run through a
specialized event loop (``engine="compiled"`` on
:meth:`~repro.queueing.cluster.Cluster.run`):

* **count vectors** — each machine maintains ``counts[type_id]``
  incrementally at admission/completion, so the probe key of a
  scheduling decision (the capped per-type count tuple) is an O(types)
  scan with no sorting, no ``Counter``, and no per-job pass;
* **event fusion** — consecutive events that leave a machine's count
  vector (and therefore its rates) unchanged are fused: zero-length
  syncs (batched same-instant arrivals, the admission that follows a
  completion in a saturated backlog) are skipped outright, because a
  zero-span sync is a *provable float no-op* on every metric and job
  field; and a departure the scheduler refills with the same type
  multiset reuses the previous coschedule's rate entry without
  touching the memo;
* **machine batching** — when several machines reschedule in one
  dirty-flush (run start, horizon clamp, simultaneous events), those
  with identical count vectors share one probe resolution and — when
  the decision is machine-independent (a unique MAXIT winner) — one
  resolved candidate template, instantiated per machine from its own
  job pools;
* **vectorized probe scoring** — MAXIT/SRPT/MAXTP scoring runs over
  the memoized candidate set as array operations.  SRPT (the only
  scorer whose objective depends on continuous per-job state) has two
  backends behind the ``backend=`` switch: ``"tuples"`` (pure-int
  tuple iteration, zero dependencies) and ``"numpy"`` (one gather +
  one segmented reduction across *all* candidates at once).  Both are
  bit-identical to the string path: the numpy backend divides and
  accumulates the exact floats, in the exact order, of the legacy
  per-candidate loop (``np.add.reduceat`` sums each segment
  sequentially).

**Bit-identity is the contract.**  Every float written to a job, a
metric, or a scheduler observation is produced by the same operation,
on the same operands, in the same order as the legacy engine; anything
that cannot be made exactly identical (e.g. summing a queue's affinity
by count×weight instead of per job) is deliberately *not* done.
``tests/property/test_differential_engines.py`` fuzzes random
(scenario, dispatcher, scheduler, cluster, horizon) configurations and
asserts bit-identical :class:`~repro.queueing.cluster.ClusterMetrics`
and scheduler pick sequences across all three engines, and
``tests/property/test_compiled_invariants.py`` pins the fusion and
batching layers in isolation via the ``fuse``/``batch`` debug knobs.

Schedulers the engine does not specialize (LJF, random, or any
scheduler probing a counterfactual rate source) fall back to their own
``select`` — the compiled engine is a superset, never a restriction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.errors import SimulationError
from repro.queueing.cluster import LoopState, _stall_error
from repro.queueing.faults import (
    DEFAULT_STALL_EVENTS,
    EngineOps,
    FaultRuntime,
)
from repro.queueing.job import Job
from repro.queueing.ratememo import CandidateSet, ProbeCandidate, RunRateMemo
from repro.queueing.schedulers import (
    FcfsScheduler,
    MaxItScheduler,
    MaxTpScheduler,
    Scheduler,
    SrptScheduler,
    _age_key,
)

try:  # pragma: no cover - exercised via both backends in the test suite
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

__all__ = [
    "CompiledEngineStats",
    "default_backend",
    "run_compiled",
    "BACKENDS",
]

_EPSILON = 1e-9
_INF = float("inf")

#: Recognized values of the ``backend=`` switch.
BACKENDS = ("tuples", "numpy")

#: Below this many feasible candidates the numpy backend's fixed
#: per-call overhead (array fills, one gather, one reduction) loses to
#: the plain tuple loop, so ``backend="numpy"`` only vectorizes probes
#: at or above it.  Measured on the ``bench_hotpath`` workloads; both
#: code paths are bit-identical, so the threshold is pure tuning.
NUMPY_MIN_CANDIDATES = 12


def default_backend() -> str:
    """The scoring backend used when ``backend=None``.

    Benchmarked head to head on the four ``HOTPATH_WORKLOADS``
    (see ``tools/profile_hotpaths.py --engine compiled``), pure-int
    tuples win or tie everywhere — per-decision candidate sets are
    small enough that numpy's array-construction overhead cancels its
    scoring throughput except on the widest SRPT probes, where the two
    backends tie.  ``backend="numpy"`` stays available behind the
    switch for workloads with much wider candidate spaces.
    """
    return "tuples"


@dataclass
class CompiledEngineStats:
    """Observable counters of one compiled-engine run.

    Attributes:
        backend: resolved scoring backend of the run.
        events: event-loop iterations consumed.
        reschedules: scheduling decisions made.
        fused_syncs: zero-span machine syncs skipped by event fusion.
        fused_entries: reschedules that reused the machine's previous
            coschedule rate entry (departure refilled with the same
            type multiset).
        batch_rounds: dirty-flushes that rescheduled >1 machine.
        batch_shared: reschedules served from a batch-shared template
            (identical count vectors inside one flush).
        max_batch: largest dirty-flush seen.
        probe_hits: probes answered from the memoized candidate sets.
        probe_builds: probes that had to build a candidate set.
        vectorized_probes: SRPT scorings run on the numpy backend.
        scalar_probes: SRPT scorings run on the tuple loop.
    """

    backend: str
    events: int = 0
    reschedules: int = 0
    fused_syncs: int = 0
    fused_entries: int = 0
    batch_rounds: int = 0
    batch_shared: int = 0
    max_batch: int = 1
    probe_hits: int = 0
    probe_builds: int = 0
    vectorized_probes: int = 0
    scalar_probes: int = 0

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly counters plus derived rates."""
        probes = self.probe_hits + self.probe_builds
        scored = self.vectorized_probes + self.scalar_probes
        return {
            "backend": self.backend,
            "events": self.events,
            "reschedules": self.reschedules,
            "fused_syncs": self.fused_syncs,
            "fused_entries": self.fused_entries,
            "batch_rounds": self.batch_rounds,
            "batch_shared": self.batch_shared,
            "max_batch": self.max_batch,
            "probe_hits": self.probe_hits,
            "probe_builds": self.probe_builds,
            "probe_hit_rate": (
                round(self.probe_hits / probes, 4) if probes else 0.0
            ),
            "vectorized_probes": self.vectorized_probes,
            "scalar_probes": self.scalar_probes,
            "vectorization_hit_rate": (
                round(self.vectorized_probes / scored, 4) if scored else 0.0
            ),
        }


class _MState:
    """Per-machine compiled state riding alongside a ``Machine``.

    The ``Machine`` object stays authoritative for everything the rest
    of the system reads (dispatchers inspect ``machine.jobs``, metrics
    live on ``machine.metrics``); this wrapper only adds the derived
    hot-path state: the incremental count vector, the scheduler
    specialization, and the fusion bookkeeping.
    """

    __slots__ = (
        "machine",
        "counts",
        "kind",
        "observe",
        "zero_obs_safe",
        "rate_observer",
        "age_ok",
        "last_codes_key",
        "probe_cache",
        "maxtp_targets",
        "deficit",
    )

    def __init__(self, machine) -> None:
        self.machine = machine
        #: counts[type_id] = jobs of that type on the machine.
        self.counts: list[int] = []
        #: specialized selector tag; None = generic ``select`` fallback.
        self.kind: str | None = None
        #: the scheduler's observe hook, or None when it is the base
        #: no-op (so steady-state syncs skip a useless call).
        self.observe: Callable | None = None
        #: True when calling observe with dt=0 is a provable no-op
        #: (base hook or MAXTP's ``+= dt``), enabling zero-span fusion.
        self.zero_obs_safe: bool = True
        #: the machine's rate-estimation feed (estimated-rate runs),
        #: or None.  Only ever called with span > 0, so zero-span
        #: fusion never needs it.
        self.rate_observer: Callable | None = None
        #: True while the job list is (arrival, id)-sorted, letting
        #: age-ordered picks slice queue pools without sorting.
        self.age_ok: bool = True
        #: sorted code tuple of the current coschedule (refill fusion).
        self.last_codes_key: tuple[int, ...] | None = None
        #: (size, capped counts_key, CandidateSet) of the last probe,
        #: kept while no count crosses the contexts cap (deep-backlog
        #: steady state: the capped key cannot have changed).
        self.probe_cache: tuple | None = None
        #: MAXTP only: [(names, count_items)] in target-fraction order.
        self.maxtp_targets: list | None = None
        #: MAXTP only: the scheduler's bound ``_deficit``.
        self.deficit: Callable | None = None


def _prepare_state(
    machines: Sequence, memo: RunRateMemo
) -> list[_MState]:
    """Classify every machine's scheduler and build its state."""
    codec = memo.codec
    states = []
    for machine in machines:
        ms = _MState(machine)
        # Seed the count vector from jobs already queued (a
        # checkpoint-restored machine); empty on a fresh run.
        counts = ms.counts
        for job in machine.jobs:
            code = job.type_code
            while code >= len(counts):
                counts.append(0)
            counts[code] += 1
        scheduler = machine.scheduler
        observe = type(scheduler).observe
        if observe is not Scheduler.observe:
            ms.observe = scheduler.observe
            ms.zero_obs_safe = observe is MaxTpScheduler.observe
        ms.rate_observer = machine.rate_observer
        # Specialize only schedulers probing *this run's* memo — one
        # probing a counterfactual source must keep doing exactly that
        # through its own ``select``.
        if scheduler.rates is memo:
            kind = type(scheduler)
            if kind is MaxItScheduler:
                ms.kind = "maxit"
            elif kind is SrptScheduler:
                ms.kind = "srpt"
            elif kind is FcfsScheduler:
                ms.kind = "fcfs"
            elif kind is MaxTpScheduler:
                ms.kind = "maxtp"
                # Intern the LP targets up front (ids are mode-internal;
                # candidate enumeration and tie-breaks stay name-based).
                from collections import Counter

                ms.maxtp_targets = [
                    (
                        s,
                        tuple(
                            (codec.encode(t), c)
                            for t, c in Counter(s).items()
                        ),
                        tuple(sorted(codec.encode(t) for t in s)),
                    )
                    for s in scheduler.target_fractions
                ]
                ms.deficit = scheduler._deficit
        states.append(ms)
    return states


def _sorted_pool(pools: dict, by_code: dict, code: int) -> list[Job]:
    """Age-sorted pool cache for machines whose admission order was
    perturbed (out-of-order ids within the arrival epsilon)."""
    pool = pools.get(code)
    if pool is None:
        pool = sorted(by_code[code], key=_age_key)
        pools[code] = pool
    return pool


def _srpt_arrays(probe: CandidateSet, size: int):
    """Lazy numpy scoring arrays of one memoized candidate set.

    Lays every feasible candidate's ``(type, count, rate)`` items out
    as one fixed-width 2D gather into a per-decision prefix matrix
    (row = position of the type in the probe key, column = count).
    Candidates with fewer item slots are padded with the index of a
    dedicated always-0.0 cell and a divisor of 1.0, so their trailing
    terms are exact ``+ 0.0/1.0`` no-ops — the per-candidate total is
    then accumulated **column by column**, which performs precisely
    the left-to-right float additions of the legacy scalar loop
    (``np.sum``/``reduceat`` would not: numpy's pairwise summation
    produces different bits).  Built once per (count vector, size)
    memo entry.
    """
    arrays = probe.srpt_np
    if arrays is None:
        width = size + 1
        n_rows = len(probe.key_codes)
        zero_cell = n_rows * width  # matrix is padded by one 0.0 slot
        rows = {code: i for i, code in enumerate(probe.key_codes)}
        feasible = probe.feasible
        n_items = max(len(c.srpt_items) for c in feasible)
        gather = _np.full(
            (len(feasible), n_items), zero_cell, dtype=_np.intp
        )
        rates = _np.ones((len(feasible), n_items), dtype=_np.float64)
        max_count: dict[int, int] = {}
        for i, candidate in enumerate(feasible):
            for j, (code, count, rate) in enumerate(candidate.srpt_items):
                gather[i, j] = rows[code] * width + count
                rates[i, j] = rate
                if count > max_count.get(code, 0):
                    max_count[code] = count
        fill = [(rows[code], count) for code, count in max_count.items()]
        arrays = (gather, rates, n_rows, width, fill)
        probe.srpt_np = arrays
    return arrays


def run_compiled(
    memo: RunRateMemo,
    machines: Sequence,
    stream: Iterator[Job],
    *,
    warmup_time: float,
    horizon: float | None,
    stop_when_fewer_than: int | None,
    keep_in_system: int | None,
    max_events: int,
    stats: CompiledEngineStats,
    dispatcher,
    fuse: bool = True,
    batch: bool = True,
    pick_log: list | None = None,
    pause_at: float | None = None,
    resume: LoopState | None = None,
    states: list[_MState] | None = None,
    faults: FaultRuntime | None = None,
    stall_events: int = DEFAULT_STALL_EVENTS,
) -> LoopState | None:
    """The compiled event loop (semantics of ``Cluster._event_loop``).

    Mutates the machines' metrics in place, exactly as the legacy loop
    does; ``stats`` is filled in as the run progresses (so a raising
    run still reports its counters).  ``fuse`` and ``batch`` are debug
    knobs for the isolation property tests — disabling them must not
    change a single bit of any output.

    Segmentation mirrors ``Cluster._event_loop``: with ``pause_at``
    set, the loop stops between events once the next event would fall
    past it and returns the :class:`LoopState` to resume from
    (``resume=``); ``None`` means the run completed.  ``states`` lets a
    run handle keep the per-machine compiled states (count vectors,
    queue-order flags) alive across segments.
    """
    backend = stats.backend
    use_numpy = backend == "numpy" and _np is not None
    if states is None:
        states = _prepare_state(machines, memo)
    n_machines = len(machines)
    all_ids = list(range(n_machines))
    codec = memo.codec
    probe_cached = memo.probe_cached
    probe_build = memo.probe_filtered
    compiled_entry = memo.compiled_entry
    heappush, heappop = heapq.heappush, heapq.heappop

    if resume is None:
        pending: Job | None = next(stream, None)
        clock = 0.0
        last_arrival = -1.0
        routed: int | None = None
        in_system = 0
        full_machines = 0
    else:
        pending = resume.pending
        clock = resume.clock
        last_arrival = resume.last_arrival
        routed = resume.routed
        in_system = resume.in_system
        full_machines = resume.full_machines
        if resume.age_ok is not None:
            # Queue-order flags are monotone (True -> False) within a
            # run; a cross-process restore re-applies them here.
            for ms, ok in zip(states, resume.age_ok):
                ms.age_ok = ok
    # Heap seeded from machines holding a valid selection — a no-op on
    # a fresh run, where every machine starts dirty and gets pushed by
    # the flush below.
    heap: list[tuple[float, int, int]] = []
    dirty_list: list[_MState] = []
    for ms in states:
        if ms.machine.dirty:
            dirty_list.append(ms)
        elif ms.machine.running:
            heappush(
                heap,
                (
                    ms.machine.last_sync + ms.machine.next_completion,
                    ms.machine.machine_id,
                    ms.machine.epoch,
                ),
            )
    # Stale lazy-deletion entries are compacted once they dominate, so
    # heap memory stays O(machines) over arbitrarily long runs (pop
    # order depends only on entry values, never on layout).
    compact_floor = max(64, 4 * n_machines)

    # ------------------------------------------------------------------
    # Inner helpers (closures: locals beat attribute lookups here).
    # ------------------------------------------------------------------
    def sync(ms: _MState, new_clock: float, span: float | None) -> None:
        machine = ms.machine
        last = machine.last_sync
        if fuse and new_clock == last and not span:
            # Zero-span fusion: progress(0.0), a <=0-measured interval,
            # and observe(cos, 0.0) are all exact float no-ops (MAXTP's
            # accumulators only ever hold non-negative values).  Fusing
            # is only valid when the span truly is zero: past clock 2^14
            # an event's exact dt can round below ulp(clock), so
            # new_clock == last with span > 0 — the interpreted loop
            # still progresses the running jobs by rate * dt there, and
            # skipping it would re-fire the completion forever.
            if not ms.zero_obs_safe:
                ms.observe(machine.coschedule, 0.0)
            stats.fused_syncs += 1
            return
        if span is None:
            span = new_clock - last
        work = 0.0
        rates = machine.rates_by_code
        for job in machine.running:
            step = rates[job.type_code] * span
            remaining = job.remaining - step
            job.remaining = remaining if remaining > 0.0 else 0.0
            work += step
        measured = new_clock - (last if last > warmup_time else warmup_time)
        if measured > 0.0:
            fraction = measured / span if span > 0.0 else 0.0
            machine.metrics.observe_interval(
                measured,
                machine.coschedule,
                len(machine.jobs),
                work * fraction,
            )
        if ms.observe is not None:
            ms.observe(machine.coschedule, span)
        if ms.rate_observer is not None and span > 0.0 and machine.coschedule:
            ms.rate_observer(machine.coschedule, span)
        machine.last_sync = new_clock

    def probe_for(
        ms: _MState, size: int
    ) -> tuple[tuple[tuple[int, int], ...], CandidateSet]:
        """Capped probe key from the count vector, and its candidates."""
        cached = ms.probe_cache
        if cached is not None and cached[0] == size:
            # No count crossed the cap since this was built, so the
            # capped key — and therefore the candidate set — is
            # byte-identical to rebuilding it.
            stats.probe_hits += 1
            return cached[1], cached[2]
        key_items = []
        for code, count in enumerate(ms.counts):
            if count:
                key_items.append(
                    (code, count if count < size else size)
                )
        counts_key = tuple(key_items)
        probe = probe_cached(counts_key, size)
        if probe is None:
            probe = probe_build(counts_key, size)
            stats.probe_builds += 1
        else:
            stats.probe_hits += 1
        ms.probe_cache = (size, counts_key, probe)
        return counts_key, probe

    def instantiate(
        ms: _MState, candidate: ProbeCandidate
    ) -> list[Job]:
        """The candidate's jobs, oldest-first per type (legacy order)."""
        by_code = ms.machine.jobs.by_code
        chosen: list[Job] = []
        if ms.age_ok:
            for code, count in candidate.count_items:
                chosen.extend(by_code[code][:count])
        else:
            pools: dict[int, list[Job]] = {}
            for code, count in candidate.count_items:
                chosen.extend(_sorted_pool(pools, by_code, code)[:count])
        return chosen

    def accumulate_age(
        ms: _MState,
        candidate: ProbeCandidate,
        pools: dict[int, list[Job]],
    ) -> float:
        by_code = ms.machine.jobs.by_code
        age = 0.0
        if ms.age_ok:
            for code, count in candidate.count_items:
                for job in by_code[code][:count]:
                    age += job.arrival_time
        else:
            for code, count in candidate.count_items:
                for job in _sorted_pool(pools, by_code, code)[:count]:
                    age += job.arrival_time
        return age

    def pick_maxit(
        ms: _MState, n_jobs: int, flush_cache: dict | None
    ) -> tuple[list[Job], tuple[int, ...]]:
        size = ms.machine.contexts
        if n_jobs < size:
            size = n_jobs
        counts_key, probe = probe_for(ms, size)
        best = None
        if flush_cache is None:
            group = probe.max_it_group
            if len(group) == 1:
                best = group[0]
        else:
            # Batched flush: machines with identical (capped) count
            # vectors share the resolved winner when it is machine-
            # independent (a unique MAXIT candidate needs no ages).
            cache_key = (counts_key, size)
            if cache_key in flush_cache:
                best = flush_cache[cache_key]
                if best is not None:
                    stats.batch_shared += 1
            else:
                group = probe.max_it_group
                if len(group) == 1:
                    best = group[0]
                # None is cached too: it records "winner is machine-
                # dependent (age tie)", sparing peers the group check.
                flush_cache[cache_key] = best
        if best is None:
            group = probe.max_it_group
            pools: dict[int, list[Job]] = {}
            best_age = None
            for candidate in group:
                age = accumulate_age(ms, candidate, pools)
                if best_age is None or age < best_age:
                    best_age = age
                    best = candidate
        return instantiate(ms, best), best.codes_key

    def pick_srpt(
        ms: _MState, n_jobs: int
    ) -> tuple[list[Job], tuple[int, ...]]:
        size = ms.machine.contexts
        if n_jobs < size:
            size = n_jobs
        _, probe = probe_for(ms, size)
        feasible = probe.feasible
        if not feasible:
            raise SimulationError("no feasible coschedule (zero rates?)")
        by_code = ms.machine.jobs.by_code
        # pools[code] = (jobs shortest-remaining-first, prefix sums) —
        # the prefix sums perform the exact additions of the legacy
        # ``sum(pool[:count])``.
        pools: dict[int, tuple[list[Job], list[float]]] = {}

        def pool(code: int) -> tuple[list[Job], list[float]]:
            entry = pools.get(code)
            if entry is None:
                ordered = sorted(
                    by_code[code],
                    key=lambda job: (job.remaining, job.job_id),
                )
                prefix = [0.0]
                acc = 0.0
                for job in ordered:
                    acc += job.remaining
                    prefix.append(acc)
                entry = (ordered, prefix)
                pools[code] = entry
            return entry

        if use_numpy and len(feasible) >= NUMPY_MIN_CANDIDATES:
            stats.vectorized_probes += 1
            gather, rates, n_rows, width, fill = _srpt_arrays(probe, size)
            matrix = _np.empty(n_rows * width + 1, dtype=_np.float64)
            matrix[-1] = 0.0  # the padding cell
            for row, count in fill:
                prefix = pool(probe.key_codes[row])[1]
                base = row * width
                matrix[base : base + count + 1] = prefix[: count + 1]
            # One gather + one divide, then column-by-column adds: the
            # same divisions and the same left-to-right additions as
            # the legacy per-candidate loop, hence the same floats
            # (padded slots append exact + 0.0 no-ops).
            vals = matrix[gather] / rates
            totals = vals[:, 0].copy()
            for column in range(1, vals.shape[1]):
                totals += vals[:, column]
            first = int(totals.argmin())
            best_total = totals[first]
            ties = _np.flatnonzero(totals == best_total)
            if len(ties) == 1:
                best = feasible[first]
            else:
                age_pools: dict[int, list[Job]] = {}

                def age_of(candidate: ProbeCandidate) -> float:
                    age = 0.0
                    for code, count in candidate.count_items:
                        for job in pool(code)[0][:count]:
                            age += job.arrival_time
                    return age

                best = feasible[first]
                best_age = age_of(best)
                for index in ties[1:]:
                    candidate = feasible[int(index)]
                    age = age_of(candidate)
                    if age < best_age:
                        best = candidate
                        best_age = age
        else:
            stats.scalar_probes += 1
            best = None
            best_total = None
            best_age = None

            def age_of(candidate: ProbeCandidate) -> float:
                age = 0.0
                for code, count in candidate.count_items:
                    for job in pool(code)[0][:count]:
                        age += job.arrival_time
                return age

            for candidate in feasible:
                total_remaining = 0.0
                for code, count, rate in candidate.srpt_items:
                    total_remaining += pool(code)[1][count] / rate
                if best_total is None or total_remaining < best_total:
                    best = candidate
                    best_total = total_remaining
                    best_age = None
                elif total_remaining == best_total:
                    if best_age is None:
                        best_age = age_of(best)
                    age = age_of(candidate)
                    if age < best_age:
                        best = candidate
                        best_age = age
        chosen: list[Job] = []
        for code, count in best.count_items:
            chosen.extend(pool(code)[0][:count])
        return chosen, best.codes_key

    def pick_maxtp(
        ms: _MState, n_jobs: int, flush_cache: dict | None
    ) -> tuple[list[Job], tuple[int, ...]]:
        machine = ms.machine
        if n_jobs >= machine.contexts:
            counts = ms.counts
            n_counts = len(counts)
            formable = []
            for target in ms.maxtp_targets:
                for code, count in target[1]:
                    if code >= n_counts or counts[code] < count:
                        break
                else:
                    formable.append(target)
            if formable:
                deficit = ms.deficit
                fractions = machine.scheduler.target_fractions
                best = max(
                    formable,
                    key=lambda pair: (
                        deficit(pair[0]),
                        fractions[pair[0]],
                        pair[0],
                    ),
                )
                by_code = machine.jobs.by_code
                chosen: list[Job] = []
                if ms.age_ok:
                    for code, count in best[1]:
                        chosen.extend(by_code[code][:count])
                else:
                    pools: dict[int, list[Job]] = {}
                    for code, count in best[1]:
                        chosen.extend(
                            _sorted_pool(pools, by_code, code)[:count]
                        )
                return chosen, best[2]
        return pick_maxit(ms, n_jobs, flush_cache)

    def reschedule(
        ms: _MState, clock: float, flush_cache: dict | None
    ) -> None:
        machine = ms.machine
        jobs = machine.jobs
        n_jobs = len(jobs)
        stats.reschedules += 1
        if n_jobs == 0:
            running: list[Job] = []
            codes_key: tuple[int, ...] = ()
        else:
            kind = ms.kind
            if kind == "maxit":
                running, codes_key = pick_maxit(ms, n_jobs, flush_cache)
            elif kind == "srpt":
                running, codes_key = pick_srpt(ms, n_jobs)
            elif kind == "maxtp":
                running, codes_key = pick_maxtp(ms, n_jobs, flush_cache)
            elif kind == "fcfs":
                contexts = machine.contexts
                if ms.age_ok:
                    running = jobs[:contexts]
                else:
                    running = sorted(jobs, key=_age_key)[:contexts]
                codes_key = tuple(
                    sorted(job.type_code for job in running)
                )
            else:
                # Generic fallback: the scheduler's own select, with
                # the legacy validation (a custom scheduler can
                # misbehave; the specialized picks cannot).
                scheduler = machine.scheduler
                running = scheduler.select(jobs, clock)
                if len(running) > scheduler.contexts:
                    raise SimulationError(
                        f"{scheduler.name} selected {len(running)} jobs "
                        f"for {scheduler.contexts} contexts"
                    )
                ids = {job.job_id for job in running}
                if len(ids) != len(running):
                    raise SimulationError(
                        f"{scheduler.name} selected a job twice"
                    )
                codes = []
                for job in running:
                    code = job.type_code
                    if code is None:
                        code = codec.encode(job.job_type)
                        job.type_code = code
                    codes.append(code)
                codes.sort()
                codes_key = tuple(codes)
        if fuse and codes_key == ms.last_codes_key:
            # Refill fusion: the departure was replaced by the same
            # type multiset, so the coschedule entry (names, per-job
            # rates, flat rate array) is unchanged — skip the memo.
            # Degrade edges invalidate ``last_codes_key`` (see the
            # fault ops below), so a fused reuse never carries a stale
            # speed scaling.
            stats.fused_entries += 1
            rates_by_code = machine.rates_by_code
        else:
            entry = compiled_entry(codes_key)
            machine.coschedule = entry.names
            # DEGRADED machines step at a scaled rate; decisions keep
            # probing the memo's nominal rates (same split as the
            # interpreted engines).  Fresh copies — memo entries are
            # shared and must never be mutated.
            speed = machine.speed
            if speed == 1.0:
                machine.job_rates = entry.per_job
                rates_by_code = entry.rates_by_code
            else:
                machine.job_rates = {
                    k: v * speed for k, v in entry.per_job.items()
                }
                rates_by_code = [r * speed for r in entry.rates_by_code]
            machine.rates_by_code = rates_by_code
            ms.last_codes_key = codes_key
        next_completion = _INF
        for job in running:
            rate = rates_by_code[job.type_code]
            if rate <= 0.0:
                raise SimulationError(
                    f"job {job.job_id} ({job.job_type}) has zero rate "
                    "in its coschedule"
                )
            remaining = job.remaining / rate
            if remaining < next_completion:
                next_completion = remaining
        machine.running = running
        machine.next_completion = next_completion
        machine.dirty = False
        machine.epoch += 1
        if pick_log is not None:
            pick_log.append(
                (
                    machine.machine_id,
                    tuple(job.job_id for job in running),
                )
            )

    def retire(ms: _MState, when: float) -> None:
        nonlocal in_system, full_machines
        machine = ms.machine
        finished = [
            job for job in machine.running if job.remaining <= 1e-12
        ]
        if finished:
            was_full = (
                keep_in_system is not None
                and len(machine.jobs) >= keep_in_system
            )
            metrics = machine.metrics
            counts = ms.counts
            contexts = machine.contexts
            for job in finished:
                job.completion_time = when
                if when >= warmup_time:
                    metrics.observe_completion(when - job.arrival_time)
                code = job.type_code
                remaining_count = counts[code] - 1
                counts[code] = remaining_count
                if remaining_count < contexts:
                    # The capped count for this type changed (or the
                    # type drained) — the cached probe key is stale.
                    ms.probe_cache = None
            jobs = machine.jobs
            if len(finished) == 1:
                # Common case: one departure.  Identity-scan removal
                # beats rebuilding the whole backlog list (and the
                # dataclass __eq__ a plain ``list.remove`` would run).
                job = finished[0]
                for i, queued in enumerate(jobs):
                    if queued is job:
                        del jobs[i]
                        break
                pool = jobs.by_code[job.type_code]
                for i, queued in enumerate(pool):
                    if queued is job:
                        del pool[i]
                        break
            else:
                done_ids = {job.job_id for job in finished}
                jobs.remove_ids(
                    done_ids, {job.type_code for job in finished}
                )
            in_system -= len(finished)
            if was_full and len(machine.jobs) < keep_in_system:
                full_machines -= 1
        if not machine.dirty:
            machine.dirty = True
            dirty_list.append(ms)

    def admit(ms: _MState, job: Job) -> None:
        nonlocal in_system, full_machines
        machine = ms.machine
        jobs = machine.jobs
        if ms.age_ok and jobs:
            last = jobs[-1]
            if (job.arrival_time, job.job_id) < (
                last.arrival_time,
                last.job_id,
            ):
                ms.age_ok = False
        machine.admit(job)
        code = job.type_code
        counts = ms.counts
        while code >= len(counts):
            counts.append(0)
        grown_count = counts[code] + 1
        counts[code] = grown_count
        if grown_count <= machine.contexts:
            # The capped count for this type grew — stale probe key.
            ms.probe_cache = None
        in_system += 1
        if keep_in_system is not None and len(jobs) >= keep_in_system:
            full_machines += 1
        if not machine.dirty:
            machine.dirty = True
            dirty_list.append(ms)

    def route(job: Job) -> int:
        """Validated dispatch decision among machines with room."""
        if keep_in_system is None:
            eligible = all_ids
        else:
            eligible = [
                i
                for i in all_ids
                if len(machines[i].jobs) < keep_in_system
            ]
        target = dispatcher.route(job, machines, eligible, clock)
        if not 0 <= target < n_machines or (
            keep_in_system is not None
            and len(machines[target].jobs) >= keep_in_system
        ):
            raise SimulationError(
                f"{dispatcher.name} routed to invalid machine {target}"
            )
        return target

    def has_room(index: int) -> bool:
        return (
            keep_in_system is None
            or len(machines[index].jobs) < keep_in_system
        )

    fault_ops: EngineOps | None = None
    if faults is not None:
        # The runtime is engine-agnostic; these ops are the compiled
        # loop's twin of the interpreted loop's closures.  Same events,
        # same order, same RNG stream — only the bookkeeping differs.
        def _fault_sync(mid: int, at: float) -> None:
            sync(states[mid], at, None)

        def _fault_dirty(mid: int) -> None:
            machine = machines[mid]
            if not machine.dirty:
                machine.dirty = True
                dirty_list.append(states[mid])

        def _fault_clear(mid: int) -> None:
            ms = states[mid]
            queue = ms.machine.jobs
            del queue[:]
            if queue.by_code is not None:
                queue.by_code = {}
            counts = ms.counts
            for i in range(len(counts)):
                counts[i] = 0
            # An empty queue is trivially age-sorted again; the probe
            # key and the refill-fusion anchor are both stale.
            ms.age_ok = True
            ms.probe_cache = None
            ms.last_codes_key = None

        def _fault_speed(mid: int) -> None:
            # Invalidate refill fusion: the machine's cached rate
            # array carries the old speed scaling.
            states[mid].last_codes_key = None

        fault_ops = EngineOps(
            _fault_sync, _fault_dirty, _fault_clear, _fault_speed
        )

        def fault_route(job: Job) -> int:
            eligible = faults.dispatch_eligible()
            target = dispatcher.route(job, machines, eligible, clock)
            if (
                not 0 <= target < n_machines
                or not has_room(target)
                or not faults.routable(target)
            ):
                raise SimulationError(
                    f"{dispatcher.name} routed to invalid machine "
                    f"{target}"
                )
            return target

    # ------------------------------------------------------------------
    # The event loop proper (same event order as the legacy engine).
    # ------------------------------------------------------------------
    stalled = 0
    for _ in range(max_events):
        stats.events += 1
        if faults is not None:
            while True:
                retry_job = faults.due_retry(clock)
                if retry_job is None or not faults.any_dispatchable():
                    break
                target = fault_route(retry_job)
                faults.pop_retry()
                ms = states[target]
                sync(ms, clock, None)
                admit(ms, retry_job)
        while (
            pending is not None
            and pending.arrival_time <= clock + _EPSILON
        ):
            if (
                routed is not None
                and has_room(routed)
                and (faults is None or faults.routable(routed))
            ):
                target = routed
            elif faults is not None:
                if faults.any_dispatchable():
                    target = fault_route(pending)
                elif faults.should_shed(pending, clock):
                    faults.record_shed(pending)
                    routed = None
                    pending = next(stream, None)
                    continue
                else:
                    break
            elif full_machines < n_machines:
                target = route(pending)
            else:
                break
            routed = None
            if pending.arrival_time < last_arrival - _EPSILON:
                raise SimulationError("arrivals out of order")
            last_arrival = pending.arrival_time
            ms = states[target]
            sync(ms, clock, None)
            admit(ms, pending)
            pending = next(stream, None)

        if stop_when_fewer_than is not None and pending is None:
            in_flight = in_system + (
                faults.retry_pending() if faults is not None else 0
            )
            if in_flight < stop_when_fewer_than:
                break
        if (
            in_system == 0
            and pending is None
            and (faults is None or faults.idle())
        ):
            break
        if horizon is not None and clock >= horizon:
            break

        if dirty_list:
            flush_cache = (
                {} if batch and len(dirty_list) > 1 else None
            )
            if len(dirty_list) > 1:
                stats.batch_rounds += 1
                if len(dirty_list) > stats.max_batch:
                    stats.max_batch = len(dirty_list)
            for ms in dirty_list:
                reschedule(ms, clock, flush_cache)
                machine = ms.machine
                if machine.running:
                    heappush(
                        heap,
                        (
                            machine.last_sync + machine.next_completion,
                            machine.machine_id,
                            machine.epoch,
                        ),
                    )
            dirty_list = []

        if len(heap) > compact_floor:
            heap = [
                entry
                for entry in heap
                if machines[entry[1]].epoch == entry[2]
                and machines[entry[1]].running
            ]
            heapq.heapify(heap)

        next_state: _MState | None = None
        next_completion = _INF
        while heap:
            _, machine_id, epoch = heap[0]
            machine = machines[machine_id]
            if epoch != machine.epoch or not machine.running:
                heappop(heap)
                continue
            next_state = states[machine_id]
            next_completion = machine.next_completion + (
                machine.last_sync - clock
            )
            break

        if faults is None:
            can_admit = pending is not None and full_machines < n_machines
            fault_dt = _INF
        else:
            eligible_exists = faults.any_dispatchable()
            can_admit = pending is not None and eligible_exists
            fault_dt = faults.next_wake(clock, eligible_exists, pending)
        next_arrival = (
            pending.arrival_time - clock if can_admit else _INF
        )
        dt = (
            next_completion
            if next_completion < next_arrival
            else next_arrival
        )
        if fault_dt < dt:
            dt = fault_dt
        if horizon is not None:
            clamp = horizon - clock
            if clamp < dt:
                dt = clamp
        if dt == _INF:
            raise SimulationError(
                "no progress possible: idle with no arrivals"
            )
        if dt < 0.0:
            dt = 0.0
        new_clock = clock + dt

        # Shard boundary: stop between events (see the interpreted
        # loop's twin check) — after the no-progress guard, so a stuck
        # run raises exactly as it would unpaused.
        if pause_at is not None and new_clock > pause_at:
            return LoopState(
                clock=clock,
                last_arrival=last_arrival,
                in_system=in_system,
                full_machines=full_machines,
                routed=routed,
                pending=pending,
                age_ok=tuple(ms.age_ok for ms in states),
            )

        # Livelock guard (twin of the interpreted loop's).
        if dt > 0.0:
            stalled = 0
        else:
            stalled += 1
            if stalled >= stall_events:
                raise _stall_error(
                    clock, stalled, in_system, pending, machines, faults
                )

        if next_state is not None and next_completion <= dt:
            machine = next_state.machine
            sync(
                next_state,
                new_clock,
                dt if machine.last_sync == clock else None,
            )
            clock = new_clock
            retire(next_state, clock)
        elif can_admit and next_arrival <= dt:
            if faults is not None:
                if (
                    routed is None
                    or not has_room(routed)
                    or not faults.routable(routed)
                ):
                    routed = fault_route(pending)
            elif routed is None or not has_room(routed):
                routed = route(pending)
            target_state = states[routed]
            machine = target_state.machine
            sync(
                target_state,
                new_clock,
                dt if machine.last_sync == clock else None,
            )
            clock = new_clock
            retire(target_state, clock)
        elif faults is not None and fault_dt <= dt:
            # Fault event: the shared runtime applies (at most) one due
            # event through this loop's ops; see the interpreted twin.
            clock = new_clock
            removed = faults.on_wake(clock, fault_ops)
            if removed:
                in_system -= removed
                if keep_in_system is not None:
                    full_machines = sum(
                        1
                        for m in machines
                        if len(m.jobs) >= keep_in_system
                    )
        else:
            for ms in states:
                sync(
                    ms,
                    new_clock,
                    dt if ms.machine.last_sync == clock else None,
                )
            clock = new_clock
            for ms in states:
                retire(ms, clock)
    else:
        raise SimulationError(
            f"simulation exceeded {max_events} events without "
            "terminating"
        )

    for ms in states:
        sync(ms, clock, None)
    return None
