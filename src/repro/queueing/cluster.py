"""Cluster-scale event core: M machines, one heap-driven event loop.

The seed engine (`run_system`) simulated exactly one machine and
re-scanned the whole system at every event.  This module generalizes it
to an M-machine cluster while *removing* the per-event full rescan:

* :class:`Machine` — one machine's contexts (via its per-machine
  :class:`~repro.queueing.schedulers.Scheduler`), admitted jobs,
  current running set and rates, and its own
  :class:`~repro.queueing.system.SystemMetrics`.
* :class:`Cluster` — the event loop.  An indexed min-heap (lazy
  deletion keyed by a per-machine epoch) orders the machines'
  next-completion times; each event touches only the machine it
  belongs to.  Untouched machines stay *lazy*: their running sets,
  rates, and metrics intervals are brought up to date only when one of
  their own events (or the final flush) arrives, so an event costs
  O(log M + rescheduling one machine) instead of O(M) scheduler calls.
* :class:`RunRateMemo` — the per-run rate memo, hoisted out of the old
  engine loop and *shared*: identical machines share one coschedule
  space, so the memo serves every machine's stepping **and** every
  scheduler's candidate probing (MAXIT/SRPT evaluate many multisets per
  decision; previously those lookups bypassed the engine memo).  It
  wraps any :class:`~repro.microarch.rates.RateSource`, including a
  persisted :class:`~repro.microarch.rate_cache.CachedRateSource`.
  Probing shares the memo only when a scheduler was built on *the same
  rate source object* the run uses — a scheduler probing a different
  source (a counterfactual table, say) keeps doing exactly that.

Single-machine runs are the M=1 special case:
:func:`repro.queueing.engine.run_system` is now a thin wrapper over
this core, and a property test pins its :class:`SystemMetrics`
bit-identical to the seed engine.  The arithmetic below is therefore
deliberately event-relative (``dt`` first, absolute times only for
heap ordering) so the M=1 path performs the exact floating-point
operations of the seed loop.

Dispatch — which machine an arriving job joins — is delegated to a
:class:`~repro.queueing.dispatch.Dispatcher` (round-robin,
join-shortest-queue, or the LP-guided symbiosis-affinity policy).
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import SimulationError
from repro.microarch.rates import RateSource
from repro.queueing.dispatch import Dispatcher
from repro.queueing.job import Job
from repro.queueing.schedulers import Scheduler
from repro.queueing.system import SystemMetrics

__all__ = [
    "RunRateMemo",
    "Machine",
    "ClusterMetrics",
    "Cluster",
    "run_cluster",
]

_EPSILON = 1e-9
_INF = float("inf")


def _per_job_type_rates(
    rates: RateSource, coschedule: tuple[str, ...]
) -> dict[str, float]:
    """Execution rate (work per unit time) of one job of each type.

    Same-type jobs are symmetric, so the rate depends only on the
    coschedule multiset — which is what makes per-run memoization by
    coschedule exact.
    """
    if not coschedule:
        return {}
    type_rates = rates.type_rates(coschedule)
    counts = Counter(coschedule)
    return {
        job_type: type_rates.get(job_type, 0.0) / count
        for job_type, count in counts.items()
    }


class RunRateMemo:
    """Per-run rate memo shared by stepping, probing, and dispatch.

    Memoizes ``type_rates`` by canonical multiset and derives the
    per-job rates the event loop steps with.  One memo serves all
    machines of a run (identical machines share one coschedule space),
    and the engine rebinds each scheduler's rate source to it for the
    run's duration, so MAXIT/SRPT candidate evaluation and engine
    stepping hit the same entries instead of maintaining separate
    caches.  Unknown attributes delegate to the wrapped source, so a
    wrapped :class:`~repro.microarch.rates.RateTable` keeps its full
    API (``machine``, ``alone_ipc``, ...).
    """

    def __init__(self, source: RateSource) -> None:
        self.source = source
        self._type_rates: dict[tuple[str, ...], dict[str, float]] = {}
        self._per_job: dict[tuple[str, ...], dict[str, float]] = {}

    def type_rates(self, coschedule: Sequence[str]) -> dict[str, float]:
        """Total WIPC per job type in ``coschedule`` (memoized)."""
        key = tuple(sorted(coschedule))
        entry = self._type_rates.get(key)
        if entry is None:
            entry = dict(self.source.type_rates(key))
            self._type_rates[key] = entry
        return entry

    def per_job_rates(self, coschedule: tuple[str, ...]) -> dict[str, float]:
        """Per-job rate of each type in a canonical coschedule."""
        entry = self._per_job.get(coschedule)
        if entry is None:
            entry = _per_job_type_rates(self, coschedule)
            self._per_job[coschedule] = entry
        return entry

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.source, name)


@dataclass
class Machine:
    """One machine of the cluster: scheduler, jobs, and lazy state.

    ``last_sync`` is the simulation time up to which this machine's
    jobs have been progressed and its metrics observed; between its own
    events the machine's coschedule (and hence every job's rate) is
    constant, so catching up is one interval, not one per cluster
    event.  ``next_completion`` is *relative to* ``last_sync`` — the
    event loop keeps absolute times only inside the heap.
    """

    machine_id: int
    scheduler: Scheduler
    jobs: list[Job] = field(default_factory=list)
    running: list[Job] = field(default_factory=list)
    coschedule: tuple[str, ...] = ()
    job_rates: dict[str, float] = field(default_factory=dict)
    next_completion: float = _INF
    last_sync: float = 0.0
    metrics: SystemMetrics = field(default_factory=SystemMetrics)
    dirty: bool = True
    epoch: int = 0

    @property
    def contexts(self) -> int:
        """Hardware contexts of this machine (from its scheduler)."""
        return self.scheduler.contexts

    def reschedule(self, memo: RunRateMemo, clock: float) -> None:
        """Re-select the running set and its rates (one machine only)."""
        scheduler = self.scheduler
        running = scheduler.select(self.jobs, clock) if self.jobs else []
        if len(running) > scheduler.contexts:
            raise SimulationError(
                f"{scheduler.name} selected {len(running)} jobs for "
                f"{scheduler.contexts} contexts"
            )
        ids = {job.job_id for job in running}
        if len(ids) != len(running):
            raise SimulationError(f"{scheduler.name} selected a job twice")

        coschedule = tuple(sorted(job.job_type for job in running))
        job_rates = memo.per_job_rates(coschedule)
        next_completion = _INF
        for job in running:
            rate = job_rates[job.job_type]
            if rate <= 0.0:
                raise SimulationError(
                    f"job {job.job_id} ({job.job_type}) has zero rate in "
                    "its coschedule"
                )
            next_completion = min(next_completion, job.remaining / rate)
        self.running = running
        self.coschedule = coschedule
        self.job_rates = job_rates
        self.next_completion = next_completion
        self.dirty = False
        self.epoch += 1

    def sync(
        self,
        new_clock: float,
        *,
        span: float | None = None,
        warmup: float = 0.0,
    ) -> None:
        """Progress this machine's running jobs up to ``new_clock``.

        ``span`` is the elapsed time; when the caller knows the exact
        event step (``dt``) it passes it so the M=1 path reproduces the
        seed engine's arithmetic bit for bit — otherwise the span is
        the clock difference since the machine's last sync (the lazy
        catch-up of an untouched machine).
        """
        if span is None:
            span = new_clock - self.last_sync
        work = 0.0
        for job in self.running:
            step = self.job_rates[job.job_type] * span
            job.progress(step)
            work += step

        measured = new_clock - max(self.last_sync, warmup)
        if measured > 0.0:
            fraction = measured / span if span > 0.0 else 0.0
            self.metrics.observe_interval(
                measured, self.coschedule, len(self.jobs), work * fraction
            )
        self.scheduler.observe(self.coschedule, span)
        self.last_sync = new_clock

    def complete_finished(self, clock: float, warmup: float) -> int:
        """Retire running jobs whose work is done; returns the count."""
        finished = [job for job in self.running if job.done]
        for job in finished:
            job.completion_time = clock
            if clock >= warmup:
                self.metrics.observe_completion(job.turnaround)
        if finished:
            done_ids = {job.job_id for job in finished}
            self.jobs = [
                job for job in self.jobs if job.job_id not in done_ids
            ]
        return len(finished)


@dataclass(frozen=True)
class ClusterMetrics:
    """Per-machine metrics of one cluster run, plus aggregates.

    Every machine's metrics cover the same measurement window (idle
    machines accumulate empty intervals, and the run flushes all
    machines to the final clock), so cluster-level rates are sums of
    per-machine rates.
    """

    per_machine: tuple[SystemMetrics, ...]

    @property
    def n_machines(self) -> int:
        """Number of machines in the cluster."""
        return len(self.per_machine)

    def machine(self, index: int) -> SystemMetrics:
        """Metrics of one machine."""
        return self.per_machine[index]

    @property
    def completed(self) -> int:
        """Jobs completed inside the window, cluster-wide."""
        return sum(m.completed for m in self.per_machine)

    @property
    def work_done(self) -> float:
        """Weighted work executed inside the window, cluster-wide."""
        return sum(m.work_done for m in self.per_machine)

    @property
    def mean_turnaround(self) -> float:
        """Average turnaround over every completed job in the cluster."""
        if self.completed == 0:
            raise SimulationError("no completions observed")
        total = sum(m.turnaround_sum for m in self.per_machine)
        return total / self.completed

    @property
    def throughput(self) -> float:
        """Cluster throughput: sum of per-machine work rates (WIPC)."""
        return sum(m.throughput for m in self.per_machine)

    @property
    def utilization(self) -> float:
        """Average busy contexts cluster-wide (sum over machines)."""
        return sum(m.utilization for m in self.per_machine)

    @property
    def empty_fraction(self) -> float:
        """Mean per-machine fraction of time with no jobs."""
        return sum(m.empty_fraction for m in self.per_machine) / max(
            self.n_machines, 1
        )


class Cluster:
    """M identical-hardware machines behind one dispatch policy.

    Args:
        rates: per-coschedule execution rates (shared by all machines —
            identical machines share one coschedule space, so one
            per-run memo serves the whole cluster).
        schedulers: one per machine; each machine packs its own
            coschedules with its own scheduler instance.
        dispatcher: routes each arriving job to a machine.
    """

    def __init__(
        self,
        rates: RateSource,
        schedulers: Sequence[Scheduler],
        dispatcher: Dispatcher,
    ) -> None:
        if not schedulers:
            raise SimulationError("a cluster needs at least one machine")
        self.rates = rates
        self.schedulers = list(schedulers)
        self.dispatcher = dispatcher

    @property
    def n_machines(self) -> int:
        """Number of machines."""
        return len(self.schedulers)

    def run(
        self,
        arrivals: Iterable[Job],
        *,
        warmup_time: float = 0.0,
        horizon: float | None = None,
        stop_when_fewer_than: int | None = None,
        keep_in_system: int | None = None,
        max_events: int = 5_000_000,
    ) -> ClusterMetrics:
        """Run the cluster to completion and return per-machine metrics.

        Args:
            arrivals: jobs in non-decreasing arrival order (one global
                stream; the dispatcher splits it across machines).
            warmup_time: observations before this time are discarded.
            horizon: optional hard stop time.
            stop_when_fewer_than: stop once the whole cluster holds
                fewer jobs than this (and the stream is exhausted) —
                cuts the drain tail of saturation runs.
            keep_in_system: per-machine cap on concurrently admitted
                jobs (a bounded backlog).  A due arrival waits outside
                until its dispatch target has room; if every machine is
                full, the stream stalls until a completion.
            max_events: safety bound on processed events.
        """
        memo = RunRateMemo(self.rates)
        machines = [
            Machine(machine_id=i, scheduler=s)
            for i, s in enumerate(self.schedulers)
        ]
        # Hoist the per-run memo into every scheduler that probes the
        # run's own rate source, so candidate evaluation and stepping
        # share one memo (restored on exit — schedulers outlive runs).
        # The rebind is identity-conditioned on purpose: a scheduler
        # deliberately built on a *different* rate source (e.g. a
        # counterfactual table) keeps probing its own source.
        rebound = [s for s in self.schedulers if s.rates is self.rates]
        for scheduler in rebound:
            scheduler.bind_rates(memo)
        try:
            self._event_loop(
                memo,
                machines,
                iter(arrivals),
                warmup_time=warmup_time,
                horizon=horizon,
                stop_when_fewer_than=stop_when_fewer_than,
                keep_in_system=keep_in_system,
                max_events=max_events,
            )
        finally:
            for scheduler in rebound:
                scheduler.bind_rates(self.rates)
        return ClusterMetrics(
            per_machine=tuple(m.metrics for m in machines)
        )

    def _event_loop(
        self,
        memo: RunRateMemo,
        machines: list[Machine],
        stream: Iterator[Job],
        *,
        warmup_time: float,
        horizon: float | None,
        stop_when_fewer_than: int | None,
        keep_in_system: int | None,
        max_events: int,
    ) -> None:
        dispatcher = self.dispatcher
        pending: Job | None = next(stream, None)
        clock = 0.0
        last_arrival = -1.0
        # Indexed min-heap of absolute next-completion times; entries
        # are invalidated by bumping the machine's epoch (lazy deletion).
        heap: list[tuple[float, int, int]] = []
        # Dispatch decision made at an arrival event, consumed by the
        # admission at the top of the next iteration (so the event and
        # the admission agree on the target, and round-robin's cursor
        # advances exactly once per job).
        routed: int | None = None
        # Incrementally maintained cluster state, so an event costs
        # O(log M + rescheduling one machine) instead of O(M) scans:
        # jobs currently admitted, machines at their admission cap, and
        # the machines needing re-selection before the next event.
        in_system = 0
        full_machines = 0
        dirty_list: list[Machine] = list(machines)

        def has_room(machine: Machine) -> bool:
            return (
                keep_in_system is None
                or len(machine.jobs) < keep_in_system
            )

        def mark_dirty(machine: Machine) -> None:
            if not machine.dirty:
                machine.dirty = True
                dirty_list.append(machine)

        def route(job: Job) -> int:
            """Validated dispatch decision among machines with room."""
            eligible = [m.machine_id for m in machines if has_room(m)]
            target = dispatcher.route(job, machines, eligible, clock)
            if not 0 <= target < len(machines) or not has_room(
                machines[target]
            ):
                raise SimulationError(
                    f"{dispatcher.name} routed to invalid machine {target}"
                )
            return target

        def retire(machine: Machine, when: float) -> None:
            """Completion bookkeeping shared by every event branch."""
            nonlocal in_system, full_machines
            was_full = not has_room(machine)
            finished = machine.complete_finished(when, warmup_time)
            in_system -= finished
            if was_full and has_room(machine):
                full_machines -= 1
            # The machine's event always triggers re-selection (the
            # seed engine re-selected after every event, and MAXTP's
            # deficits and SRPT's remaining-time ordering shift even
            # without arrivals).
            mark_dirty(machine)

        for _ in range(max_events):
            # Admit every arrival due now (handles batched time-zero
            # jobs).  The target machine catches up to the clock before
            # its queue changes, so its pending interval is observed
            # with the pre-arrival job count.
            while (
                pending is not None
                and pending.arrival_time <= clock + _EPSILON
            ):
                if routed is not None and has_room(machines[routed]):
                    target = routed
                elif full_machines < len(machines):
                    target = route(pending)
                else:
                    break
                routed = None
                if pending.arrival_time < last_arrival - _EPSILON:
                    raise SimulationError("arrivals out of order")
                last_arrival = pending.arrival_time
                machine = machines[target]
                machine.sync(clock, warmup=warmup_time)
                machine.jobs.append(pending)
                in_system += 1
                if not has_room(machine):
                    full_machines += 1
                mark_dirty(machine)
                pending = next(stream, None)

            if stop_when_fewer_than is not None and pending is None:
                if in_system < stop_when_fewer_than:
                    break
            if in_system == 0 and pending is None:
                break
            if horizon is not None and clock >= horizon:
                break

            if dirty_list:
                for machine in dirty_list:
                    machine.reschedule(memo, clock)
                    if machine.running:
                        heapq.heappush(
                            heap,
                            (
                                machine.last_sync + machine.next_completion,
                                machine.machine_id,
                                machine.epoch,
                            ),
                        )
                dirty_list.clear()

            # Earliest completion across machines (heap top, pruning
            # stale entries), expressed relative to the clock so the
            # M=1 path compares the exact quantities the seed did.
            next_machine: Machine | None = None
            next_completion = _INF
            while heap:
                _, machine_id, epoch = heap[0]
                machine = machines[machine_id]
                if epoch != machine.epoch or not machine.running:
                    heapq.heappop(heap)
                    continue
                next_machine = machine
                next_completion = machine.next_completion + (
                    machine.last_sync - clock
                )
                break

            # A due-but-not-admitted arrival (bounded backlog at
            # capacity) must not produce zero-length steps: the next
            # admission can only happen at a completion, so ignore it
            # for time stepping.
            can_admit = pending is not None and full_machines < len(
                machines
            )
            next_arrival = (
                pending.arrival_time - clock if can_admit else _INF
            )
            dt = min(next_completion, next_arrival)
            if horizon is not None:
                dt = min(dt, horizon - clock)
            if dt == _INF:
                raise SimulationError(
                    "no progress possible: idle with no arrivals"
                )
            dt = max(dt, 0.0)
            new_clock = clock + dt

            if next_machine is not None and next_completion <= dt:
                # Completion event: only its machine advances eagerly.
                # A machine already current at the clock steps by the
                # exact dt (the M=1 bit-identity path); a lazy one
                # catches up over its whole pending interval.
                next_machine.sync(
                    new_clock,
                    span=dt if next_machine.last_sync == clock else None,
                    warmup=warmup_time,
                )
                clock = new_clock
                retire(next_machine, clock)
            elif can_admit and next_arrival <= dt:
                # Arrival event: route now (once per job), advance the
                # target to the arrival instant; the admission happens
                # at the top of the next iteration, as in the seed loop.
                if routed is None or not has_room(machines[routed]):
                    routed = route(pending)
                target_machine = machines[routed]
                target_machine.sync(
                    new_clock,
                    span=dt if target_machine.last_sync == clock else None,
                    warmup=warmup_time,
                )
                clock = new_clock
                retire(target_machine, clock)
            else:
                # Horizon clamp: one final step for every machine (the
                # loop exits at the top of the next iteration).
                for machine in machines:
                    machine.sync(
                        new_clock,
                        span=dt if machine.last_sync == clock else None,
                        warmup=warmup_time,
                    )
                clock = new_clock
                for machine in machines:
                    retire(machine, clock)
        else:
            raise SimulationError(
                f"simulation exceeded {max_events} events without "
                "terminating"
            )

        # Flush: lazy machines observe their tail interval (idle
        # machines' empty time included) up to the final clock.
        for machine in machines:
            machine.sync(clock, warmup=warmup_time)


def run_cluster(
    rates: RateSource,
    schedulers: Sequence[Scheduler],
    dispatcher: Dispatcher,
    arrivals: Iterable[Job],
    *,
    warmup_time: float = 0.0,
    horizon: float | None = None,
    stop_when_fewer_than: int | None = None,
    keep_in_system: int | None = None,
    max_events: int = 5_000_000,
) -> ClusterMetrics:
    """Build a :class:`Cluster` and run it once (convenience wrapper)."""
    cluster = Cluster(rates, schedulers, dispatcher)
    return cluster.run(
        arrivals,
        warmup_time=warmup_time,
        horizon=horizon,
        stop_when_fewer_than=stop_when_fewer_than,
        keep_in_system=keep_in_system,
        max_events=max_events,
    )
