"""Cluster-scale event core: M machines, one heap-driven event loop.

The seed engine (`run_system`) simulated exactly one machine and
re-scanned the whole system at every event.  This module generalizes it
to an M-machine cluster while *removing* the per-event full rescan:

* :class:`Machine` — one machine's contexts (via its per-machine
  :class:`~repro.queueing.schedulers.Scheduler`), admitted jobs,
  current running set and rates, and its own
  :class:`~repro.queueing.system.SystemMetrics`.
* :class:`Cluster` — the event loop.  An indexed min-heap (lazy
  deletion keyed by a per-machine epoch) orders the machines'
  next-completion times; each event touches only the machine it
  belongs to.  Untouched machines stay *lazy*: their running sets,
  rates, and metrics intervals are brought up to date only when one of
  their own events (or the final flush) arrives, so an event costs
  O(log M + rescheduling one machine) instead of O(M) scheduler calls.
* :class:`~repro.queueing.ratememo.RunRateMemo` (re-exported here) —
  the per-run rate memo, hoisted out of the old engine loop and
  *shared*: identical machines share one coschedule space, so the memo
  serves every machine's stepping **and** every scheduler's candidate
  probing (MAXIT/SRPT evaluate many multisets per decision; previously
  those lookups bypassed the engine memo).  It wraps any
  :class:`~repro.microarch.rates.RateSource`, including a persisted
  :class:`~repro.microarch.rate_cache.CachedRateSource`.  Probing
  shares the memo only when a scheduler was built on *the same rate
  source object* the run uses — a scheduler probing a different source
  (a counterfactual table, say) keeps doing exactly that.  By default
  the memo runs *compiled*: a per-run
  :class:`~repro.microarch.codec.TypeCodec` interns type names to
  dense int ids, coschedules become small sorted int tuples, and
  stepping/probing index flat per-type rate arrays — bit-identical to
  the string path (``fast_path=False``), just without its per-event
  sorting and dict churn.

Single-machine runs are the M=1 special case:
:func:`repro.queueing.engine.run_system` is now a thin wrapper over
this core, and a property test pins its :class:`SystemMetrics`
bit-identical to the seed engine.  The arithmetic below is therefore
deliberately event-relative (``dt`` first, absolute times only for
heap ordering) so the M=1 path performs the exact floating-point
operations of the seed loop.

Dispatch — which machine an arriving job joins — is delegated to a
:class:`~repro.queueing.dispatch.Dispatcher` (round-robin,
join-shortest-queue, or the LP-guided symbiosis-affinity policy).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import EngineStallError, EstimationError, SimulationError
from repro.microarch.codec import TypeCodec
from repro.microarch.rates import RateSource
from repro.queueing.dispatch import Dispatcher
from repro.queueing.estimation import EstimationConfig, ThroughputEstimator
from repro.queueing.faults import (
    DEFAULT_STALL_EVENTS,
    EngineOps,
    FaultConfig,
    FaultRuntime,
)
from repro.queueing.job import Job
from repro.queueing.ratememo import RunRateMemo
from repro.queueing.schedulers import Scheduler
from repro.queueing.system import SystemMetrics

__all__ = [
    "RunRateMemo",
    "JobQueue",
    "Machine",
    "ClusterMetrics",
    "Cluster",
    "ClusterRunHandle",
    "LoopState",
    "run_cluster",
]

_EPSILON = 1e-9
_INF = float("inf")


def _encoded_stream(stream: Iterator[Job], codec: TypeCodec) -> Iterator[Job]:
    """Intern each arriving job's type id as it enters the run.

    The loop reads every job exactly once, so this is the single point
    where ``job.type_code`` becomes authoritative for the current
    run's codec — jobs recycled from an earlier run (whose codec
    assigned different ids) are re-coded here before anything can
    index with a stale id.
    """
    for job in stream:
        job.type_code = codec.encode(job.job_type)
        yield job


def _uncoded_stream(stream: Iterator[Job]) -> Iterator[Job]:
    """Legacy-mode twin of :func:`_encoded_stream`: clear stale ids so
    every downstream consumer takes its string path."""
    for job in stream:
        job.type_code = None
        yield job


class _CountingStream:
    """Iterator wrapper counting successful pulls.

    The count is what checkpoints persist: a resumed run rebuilds the
    (deterministic) arrival stream and skips exactly ``pulled`` jobs to
    land on the next un-pulled arrival.
    """

    __slots__ = ("_stream", "pulled")

    def __init__(self, stream: Iterator[Job]) -> None:
        self._stream = stream
        self.pulled = 0

    def __iter__(self) -> "_CountingStream":
        return self

    def __next__(self) -> Job:
        job = next(self._stream)
        self.pulled += 1
        return job


@dataclass
class LoopState:
    """Engine loop state between two events, captured at a pause.

    A pause always lands *between* events — after the clock advanced to
    the next event's time but before any of that event's effects — so
    resuming performs the exact operation sequence of the unpaused
    run.  ``pending`` is the pulled-but-unadmitted head of the arrival
    stream; ``routed`` its already-made dispatch decision (if any);
    ``age_ok`` the compiled engine's per-machine queue-order flags
    (``None`` on the interpreted engines).
    """

    clock: float
    last_arrival: float
    in_system: int
    full_machines: int
    routed: int | None
    pending: Job | None
    age_ok: tuple[bool, ...] | None = None


class JobQueue(list):
    """A machine's job list with an incremental per-type-code index.

    Scheduler probing needs the queue grouped by type at every event;
    rebuilding that grouping is O(queue) per event and dominates long
    non-saturated queues.  With the index enabled (compiled runs), the
    grouping is maintained as a delta per admission/completion instead:
    ``by_code[type_id]`` lists the queued jobs of that type in
    admission order (pools may be left empty when a type drains —
    consumers skip those).  Legacy runs, and plain lists handed to a
    scheduler directly, leave ``by_code`` as ``None`` and schedulers
    rebuild the grouping as before.
    """

    __slots__ = ("by_code", "index_codec")

    def __init__(self) -> None:
        super().__init__()
        self.by_code: dict[int, list[Job]] | None = None
        #: The codec whose ids key ``by_code`` — consumers probing
        #: with a different codec must rebuild their own grouping.
        self.index_codec: TypeCodec | None = None

    def enable_index(self, codec: TypeCodec) -> None:
        """Start maintaining the per-type-code index.

        Any jobs already queued (a checkpoint-restored queue) seed the
        pools in list order, which is admission order — the exact
        grouping incremental maintenance would have produced.
        """
        index: dict[int, list[Job]] = {}
        for job in self:
            pool = index.get(job.type_code)
            if pool is None:
                index[job.type_code] = [job]
            else:
                pool.append(job)
        self.by_code = index
        self.index_codec = codec

    def admit(self, job: Job) -> None:
        """Append an arriving job, keeping the index in sync."""
        self.append(job)
        index = self.by_code
        if index is not None:
            pool = index.get(job.type_code)
            if pool is None:
                index[job.type_code] = [job]
            else:
                pool.append(job)

    def remove_ids(self, done_ids: set[int], codes: set[int | None]) -> None:
        """Drop completed jobs, rebuilding only the affected pools."""
        self[:] = [job for job in self if job.job_id not in done_ids]
        index = self.by_code
        if index is not None:
            for code in codes:
                pool = index.get(code)
                if pool is not None:
                    index[code] = [
                        job for job in pool if job.job_id not in done_ids
                    ]


@dataclass
class Machine:
    """One machine of the cluster: scheduler, jobs, and lazy state.

    ``last_sync`` is the simulation time up to which this machine's
    jobs have been progressed and its metrics observed; between its own
    events the machine's coschedule (and hence every job's rate) is
    constant, so catching up is one interval, not one per cluster
    event.  ``next_completion`` is *relative to* ``last_sync`` — the
    event loop keeps absolute times only inside the heap.
    """

    machine_id: int
    scheduler: Scheduler
    jobs: JobQueue = field(default_factory=JobQueue)
    running: list[Job] = field(default_factory=list)
    coschedule: tuple[str, ...] = ()
    job_rates: dict[str, float] = field(default_factory=dict)
    #: Compiled-mode rate array (per-job rate indexed by type id);
    #: ``None`` on the legacy string path.
    rates_by_code: list[float] | None = None
    next_completion: float = _INF
    last_sync: float = 0.0
    metrics: SystemMetrics = field(default_factory=SystemMetrics)
    dirty: bool = True
    epoch: int = 0
    #: Estimated-rate runs install the estimator's observation feed
    #: here; called once per positive-span sync of a busy machine.
    rate_observer: Callable[[tuple[str, ...], float], None] | None = None
    #: Effective speed multiplier — 1.0 normally, the configured
    #: ``degraded_factor`` during a fault-layer DEGRADED episode.
    #: Applied by :meth:`reschedule` as a scale on every per-coschedule
    #: rate (fresh scaled copies; memo entries are never mutated).
    speed: float = 1.0

    def __post_init__(self) -> None:
        # Normalize whatever iterable the caller handed in: every
        # engine then takes JobQueue's incremental removal path, and
        # the O(queue)-per-completion plain-list rebuild is gone.
        if type(self.jobs) is not JobQueue:
            queue = JobQueue()
            queue.extend(self.jobs)
            self.jobs = queue

    @property
    def contexts(self) -> int:
        """Hardware contexts of this machine (from its scheduler)."""
        return self.scheduler.contexts

    def reschedule(self, memo: RunRateMemo, clock: float) -> None:
        """Re-select the running set and its rates (one machine only)."""
        scheduler = self.scheduler
        running = scheduler.select(self.jobs, clock) if self.jobs else []
        if len(running) > scheduler.contexts:
            raise SimulationError(
                f"{scheduler.name} selected {len(running)} jobs for "
                f"{scheduler.contexts} contexts"
            )
        ids = {job.job_id for job in running}
        if len(ids) != len(running):
            raise SimulationError(f"{scheduler.name} selected a job twice")

        rates_by_code: list[float] | None = None
        if memo.compiled:
            # Coded path: small sorted int tuple in, flat rate array
            # out.  The array holds the exact floats of the legacy
            # per-job dict, so stepping stays bit-identical.
            codec = memo.codec
            codes = []
            for job in running:
                code = job.type_code
                if code is None:
                    code = codec.encode(job.job_type)
                    job.type_code = code
                codes.append(code)
            codes.sort()
            entry = memo.compiled_entry(tuple(codes))
            coschedule = entry.names
            job_rates = entry.per_job
            rates_by_code = entry.rates_by_code
            speed = self.speed
            if speed != 1.0:
                job_rates = {k: v * speed for k, v in job_rates.items()}
                rates_by_code = [r * speed for r in rates_by_code]
            next_completion = _INF
            for job in running:
                rate = rates_by_code[job.type_code]
                if rate <= 0.0:
                    raise SimulationError(
                        f"job {job.job_id} ({job.job_type}) has zero rate "
                        "in its coschedule"
                    )
                next_completion = min(next_completion, job.remaining / rate)
        else:
            coschedule = tuple(sorted(job.job_type for job in running))
            job_rates = memo.per_job_rates(coschedule)
            speed = self.speed
            if speed != 1.0:
                job_rates = {k: v * speed for k, v in job_rates.items()}
            next_completion = _INF
            for job in running:
                rate = job_rates[job.job_type]
                if rate <= 0.0:
                    raise SimulationError(
                        f"job {job.job_id} ({job.job_type}) has zero rate in "
                        "its coschedule"
                    )
                next_completion = min(next_completion, job.remaining / rate)
        self.running = running
        self.coschedule = coschedule
        self.job_rates = job_rates
        self.rates_by_code = rates_by_code
        self.next_completion = next_completion
        self.dirty = False
        self.epoch += 1

    def sync(
        self,
        new_clock: float,
        *,
        span: float | None = None,
        warmup: float = 0.0,
    ) -> None:
        """Progress this machine's running jobs up to ``new_clock``.

        ``span`` is the elapsed time; when the caller knows the exact
        event step (``dt``) it passes it so the M=1 path reproduces the
        seed engine's arithmetic bit for bit — otherwise the span is
        the clock difference since the machine's last sync (the lazy
        catch-up of an untouched machine).
        """
        if span is None:
            span = new_clock - self.last_sync
        work = 0.0
        rates_by_code = self.rates_by_code
        if rates_by_code is not None:
            for job in self.running:
                step = rates_by_code[job.type_code] * span
                job.progress(step)
                work += step
        else:
            for job in self.running:
                step = self.job_rates[job.job_type] * span
                job.progress(step)
                work += step

        measured = new_clock - max(self.last_sync, warmup)
        if measured > 0.0:
            fraction = measured / span if span > 0.0 else 0.0
            self.metrics.observe_interval(
                measured, self.coschedule, len(self.jobs), work * fraction
            )
        self.scheduler.observe(self.coschedule, span)
        observer = self.rate_observer
        if observer is not None and span > 0.0 and self.coschedule:
            observer(self.coschedule, span)
        self.last_sync = new_clock

    def admit(self, job: Job) -> None:
        """Add an arriving job to the queue (index kept in sync)."""
        self.jobs.admit(job)

    def complete_finished(self, clock: float, warmup: float) -> int:
        """Retire running jobs whose work is done; returns the count.

        Retired jobs leave the machine entirely: their turnaround is
        folded into the streaming metrics here and nothing retains the
        Job object afterwards, so a run's footprint is bounded by the
        jobs *in* the system, never by the jobs it has completed.
        """
        finished = [job for job in self.running if job.done]
        for job in finished:
            job.completion_time = clock
            if clock >= warmup:
                self.metrics.observe_completion(job.turnaround)
        if finished:
            self.jobs.remove_ids(
                {job.job_id for job in finished},
                {job.type_code for job in finished},
            )
        return len(finished)


@dataclass(frozen=True)
class ClusterMetrics:
    """Per-machine metrics of one cluster run, plus aggregates.

    Every machine's metrics cover the same measurement window (idle
    machines accumulate empty intervals, and the run flushes all
    machines to the final clock), so cluster-level rates are sums of
    per-machine rates.
    """

    per_machine: tuple[SystemMetrics, ...]

    @property
    def n_machines(self) -> int:
        """Number of machines in the cluster."""
        return len(self.per_machine)

    def merge(self, other: "ClusterMetrics") -> "ClusterMetrics":
        """Exact machine-wise reduction of two measurement windows.

        Inherits :meth:`SystemMetrics.merge`'s algebra: associative,
        commutative, bit-identical to the monolithic single-window run
        for any split of the same event sequence.
        """
        if self.n_machines != other.n_machines:
            raise SimulationError(
                "cannot merge windows over different machine counts: "
                f"{self.n_machines} vs {other.n_machines}"
            )
        return ClusterMetrics(per_machine=tuple(
            a.merge(b) for a, b in zip(self.per_machine, other.per_machine)
        ))

    @classmethod
    def reduce(cls, windows: Iterable["ClusterMetrics"]) -> "ClusterMetrics":
        """Merge any number of windows (order-independent result)."""
        merged: ClusterMetrics | None = None
        for window in windows:
            merged = window if merged is None else merged.merge(window)
        if merged is None:
            raise SimulationError("no metric windows to reduce")
        return merged

    def to_state(self) -> list[dict[str, object]]:
        """Exact per-machine accumulator states (checkpoint payload)."""
        return [m.to_state() for m in self.per_machine]

    @classmethod
    def from_state(cls, state: Sequence[dict]) -> "ClusterMetrics":
        """Rebuild from :meth:`to_state`, bit-exactly."""
        return cls(per_machine=tuple(
            SystemMetrics.from_state(s) for s in state
        ))

    def machine(self, index: int) -> SystemMetrics:
        """Metrics of one machine."""
        return self.per_machine[index]

    @property
    def completed(self) -> int:
        """Jobs completed inside the window, cluster-wide."""
        return sum(m.completed for m in self.per_machine)

    @property
    def work_done(self) -> float:
        """Weighted work executed inside the window, cluster-wide."""
        return sum(m.work_done for m in self.per_machine)

    @property
    def mean_turnaround(self) -> float:
        """Average turnaround over every completed job in the cluster."""
        if self.completed == 0:
            raise SimulationError("no completions observed")
        total = sum(m.turnaround_sum for m in self.per_machine)
        return total / self.completed

    @property
    def throughput(self) -> float:
        """Cluster throughput: sum of per-machine work rates (WIPC)."""
        return sum(m.throughput for m in self.per_machine)

    @property
    def utilization(self) -> float:
        """Average busy contexts cluster-wide (sum over machines)."""
        return sum(m.utilization for m in self.per_machine)

    @property
    def empty_fraction(self) -> float:
        """Mean per-machine fraction of time with no jobs."""
        return sum(m.empty_fraction for m in self.per_machine) / max(
            self.n_machines, 1
        )


def _stall_error(
    clock: float,
    stalled: int,
    in_system: int,
    pending: Job | None,
    machines: Sequence[Machine],
    faults: "FaultRuntime | None",
) -> EngineStallError:
    """Livelock diagnostics shared by both event loops."""
    head = (
        f"job {pending.job_id} @ {pending.arrival_time!r}"
        if pending is not None
        else "none"
    )
    lines = [
        f"event loop stalled: {stalled} consecutive events with no "
        f"clock progress at t={clock!r} "
        f"(in_system={in_system}, pending={head})"
    ]
    for machine in machines[:8]:
        state = (
            faults.state[machine.machine_id]
            if faults is not None
            else "up"
        )
        lines.append(
            f"  machine {machine.machine_id}: state={state} "
            f"jobs={len(machine.jobs)} running={len(machine.running)} "
            f"next_completion={machine.next_completion!r} "
            f"last_sync={machine.last_sync!r} dirty={machine.dirty}"
        )
    if len(machines) > 8:
        lines.append(f"  ... {len(machines) - 8} more machines")
    if faults is not None:
        lines.append(
            f"  faults: events={len(faults.events)} "
            f"retries={len(faults.retries)} stats={faults.stats.as_dict()}"
        )
    return EngineStallError("\n".join(lines))


class Cluster:
    """M identical-hardware machines behind one dispatch policy.

    Args:
        rates: per-coschedule execution rates (shared by all machines —
            identical machines share one coschedule space, so one
            per-run memo serves the whole cluster).
        schedulers: one per machine; each machine packs its own
            coschedules with its own scheduler instance.
        dispatcher: routes each arriving job to a machine.
    """

    def __init__(
        self,
        rates: RateSource,
        schedulers: Sequence[Scheduler],
        dispatcher: Dispatcher,
    ) -> None:
        if not schedulers:
            raise SimulationError("a cluster needs at least one machine")
        self.rates = rates
        self.schedulers = list(schedulers)
        self.dispatcher = dispatcher
        #: Hit/miss/size counters of the last run's memo (see
        #: :meth:`RunRateMemo.stats_dict`); ``None`` before any run.
        self.last_memo_stats: dict[str, object] | None = None
        #: Compiled-engine counters of the last run (see
        #: :meth:`repro.queueing.compiled.CompiledEngineStats.as_dict`);
        #: ``None`` before any run and after legacy/fast runs.
        self.last_engine_stats: dict[str, object] | None = None
        #: Estimator summary of the last run (see
        #: :meth:`repro.queueing.estimation.ThroughputEstimator.stats_dict`);
        #: ``None`` before any run and after oracle runs.
        self.last_estimator_stats: dict[str, object] | None = None
        #: Fault-layer summary of the last run (see
        #: :meth:`repro.queueing.faults.FaultRuntime.stats_dict`);
        #: ``None`` before any run and after runs without ``faults=``.
        self.last_fault_stats: dict[str, object] | None = None

    @property
    def n_machines(self) -> int:
        """Number of machines."""
        return len(self.schedulers)

    def run(
        self,
        arrivals: Iterable[Job],
        *,
        warmup_time: float = 0.0,
        horizon: float | None = None,
        stop_when_fewer_than: int | None = None,
        keep_in_system: int | None = None,
        max_events: int = 5_000_000,
        fast_path: bool = True,
        engine: str | None = None,
        backend: str | None = None,
        engine_options: dict[str, bool] | None = None,
        pick_log: list | None = None,
        rate_source: str = "oracle",
        estimation: EstimationConfig | None = None,
        faults: FaultConfig | None = None,
        stall_events: int = DEFAULT_STALL_EVENTS,
    ) -> ClusterMetrics:
        """Run the cluster to completion and return per-machine metrics.

        Args:
            arrivals: jobs in non-decreasing arrival order (one global
                stream; the dispatcher splits it across machines).
            warmup_time: observations before this time are discarded.
            horizon: optional hard stop time.
            stop_when_fewer_than: stop once the whole cluster holds
                fewer jobs than this (and the stream is exhausted) —
                cuts the drain tail of saturation runs.
            keep_in_system: per-machine cap on concurrently admitted
                jobs (a bounded backlog).  A due arrival waits outside
                until its dispatch target has room; if every machine is
                full, the stream stalls until a completion.
            max_events: safety bound on processed events.
            fast_path: legacy spelling of the engine switch, honoured
                when ``engine`` is ``None``: ``True`` → ``"fast"``,
                ``False`` → ``"legacy"``.
            engine: which event loop advances the run — all three are
                bit-identical (pinned by the differential fuzz harness
                in ``tests/property/test_differential_engines.py``):

                * ``"legacy"`` — the pre-interning string path, kept
                  in-tree for equivalence testing and before/after
                  profiling;
                * ``"fast"`` — the PR-4 interned-type path (compiled
                  memo + per-machine lazy sync);
                * ``"compiled"`` — the count-vector engine
                  (:mod:`repro.queueing.compiled`): dense per-machine
                  type counts, event fusion, machine batching, and
                  vectorized probe scoring.
            backend: compiled-engine probe-scoring backend,
                ``"numpy"`` or ``"tuples"`` (``None`` → the benchmarked
                default, numpy when importable).  Ignored by the other
                engines.
            engine_options: compiled-engine debug knobs (``{"fuse":
                False}`` / ``{"batch": False}``) used by the isolation
                property tests; either knob off must not change a bit
                of any output.
            pick_log: optional list; every engine appends one
                ``(machine_id, (job_id, ...))`` entry per scheduling
                decision, in decision order — the pick-sequence trace
                the differential harness compares across engines.
            rate_source: what the *policies* (schedulers and the
                dispatcher) see — job stepping always uses the true
                rates.  ``"oracle"`` is today's behavior; with
                ``"estimated"`` every policy decision reads a
                :class:`~repro.queueing.estimation.ThroughputEstimator`
                fed by the run's own observed progress.  With zero
                noise and the warm ``"oracle"`` prior, estimated runs
                are bit-identical to oracle runs (pinned by the
                differential harness).
            estimation: estimator knobs for ``rate_source="estimated"``
                (:class:`~repro.queueing.estimation.EstimationConfig`;
                ``None`` → defaults).
            faults: failure/repair model
                (:class:`~repro.queueing.faults.FaultConfig`).  ``None``
                runs the historical fault-free loop; a config with no
                process enabled (``FaultConfig()``) takes the
                fault-aware path but is bit-identical to ``None`` —
                pinned by the golden and fuzz harnesses.  Fault stats
                land in :attr:`last_fault_stats`.
            stall_events: livelock guard — raise
                :class:`~repro.errors.EngineStallError` after this many
                consecutive events with no clock progress.
        """
        handle = self.start(
            arrivals,
            warmup_time=warmup_time,
            horizon=horizon,
            stop_when_fewer_than=stop_when_fewer_than,
            keep_in_system=keep_in_system,
            max_events=max_events,
            fast_path=fast_path,
            engine=engine,
            backend=backend,
            engine_options=engine_options,
            pick_log=pick_log,
            rate_source=rate_source,
            estimation=estimation,
            faults=faults,
            stall_events=stall_events,
        )
        try:
            handle.advance()
        finally:
            handle.close()
        return handle.result()

    def start(
        self,
        arrivals: Iterable[Job],
        *,
        warmup_time: float = 0.0,
        horizon: float | None = None,
        stop_when_fewer_than: int | None = None,
        keep_in_system: int | None = None,
        max_events: int = 5_000_000,
        fast_path: bool = True,
        engine: str | None = None,
        backend: str | None = None,
        engine_options: dict[str, bool] | None = None,
        pick_log: list | None = None,
        rate_source: str = "oracle",
        estimation: EstimationConfig | None = None,
        faults: FaultConfig | None = None,
        stall_events: int = DEFAULT_STALL_EVENTS,
    ) -> "ClusterRunHandle":
        """Begin a pausable run; same knobs as :meth:`run`.

        Returns a :class:`ClusterRunHandle` whose
        :meth:`~ClusterRunHandle.advance` processes events up to a
        pause time per call.  Any segmentation performs the exact
        operation sequence of the single-call :meth:`run` — the
        scale-out contract the sharding and checkpoint layers build on.
        """
        return ClusterRunHandle(
            self,
            arrivals,
            warmup_time=warmup_time,
            horizon=horizon,
            stop_when_fewer_than=stop_when_fewer_than,
            keep_in_system=keep_in_system,
            max_events=max_events,
            fast_path=fast_path,
            engine=engine,
            backend=backend,
            engine_options=engine_options,
            pick_log=pick_log,
            rate_source=rate_source,
            estimation=estimation,
            faults=faults,
            stall_events=stall_events,
        )

    def _event_loop(
        self,
        memo: RunRateMemo,
        machines: list[Machine],
        stream: Iterator[Job],
        *,
        warmup_time: float,
        horizon: float | None,
        stop_when_fewer_than: int | None,
        keep_in_system: int | None,
        max_events: int,
        pick_log: list | None = None,
        pause_at: float | None = None,
        resume: LoopState | None = None,
        faults: FaultRuntime | None = None,
        stall_events: int = DEFAULT_STALL_EVENTS,
    ) -> LoopState | None:
        dispatcher = self.dispatcher
        if resume is None:
            pending: Job | None = next(stream, None)
            clock = 0.0
            last_arrival = -1.0
            # Dispatch decision made at an arrival event, consumed by
            # the admission at the top of the next iteration (so the
            # event and the admission agree on the target, and
            # round-robin's cursor advances exactly once per job).
            routed: int | None = None
            # Incrementally maintained cluster state, so an event costs
            # O(log M + rescheduling one machine) instead of O(M)
            # scans: jobs currently admitted, machines at their
            # admission cap, and the machines needing re-selection
            # before the next event.
            in_system = 0
            full_machines = 0
        else:
            pending = resume.pending
            clock = resume.clock
            last_arrival = resume.last_arrival
            routed = resume.routed
            in_system = resume.in_system
            full_machines = resume.full_machines
        # Indexed min-heap of absolute next-completion times; entries
        # are invalidated by bumping the machine's epoch (lazy
        # deletion).  Seeded from machines that already hold a valid
        # selection (a no-op on a fresh run, where every machine is
        # dirty); dirty machines are re-selected — and pushed — by the
        # flush below, so a paused run resumes with the same heap top.
        heap: list[tuple[float, int, int]] = []
        dirty_list: list[Machine] = []
        for machine in machines:
            if machine.dirty:
                dirty_list.append(machine)
            elif machine.running:
                heapq.heappush(
                    heap,
                    (
                        machine.last_sync + machine.next_completion,
                        machine.machine_id,
                        machine.epoch,
                    ),
                )
        # Stale lazy-deletion entries accumulate one per reschedule;
        # compact once they dominate so heap memory stays O(machines)
        # over arbitrarily long runs.  Rebuilding never changes pop
        # order: ordering depends only on entry values.
        compact_floor = max(64, 4 * len(machines))

        def has_room(machine: Machine) -> bool:
            return (
                keep_in_system is None
                or len(machine.jobs) < keep_in_system
            )

        def mark_dirty(machine: Machine) -> None:
            if not machine.dirty:
                machine.dirty = True
                dirty_list.append(machine)

        def route(job: Job) -> int:
            """Validated dispatch decision among machines with room."""
            eligible = [m.machine_id for m in machines if has_room(m)]
            target = dispatcher.route(job, machines, eligible, clock)
            if not 0 <= target < len(machines) or not has_room(
                machines[target]
            ):
                raise SimulationError(
                    f"{dispatcher.name} routed to invalid machine {target}"
                )
            return target

        def retire(machine: Machine, when: float) -> None:
            """Completion bookkeeping shared by every event branch."""
            nonlocal in_system, full_machines
            was_full = not has_room(machine)
            finished = machine.complete_finished(when, warmup_time)
            in_system -= finished
            if was_full and has_room(machine):
                full_machines -= 1
            # The machine's event always triggers re-selection (the
            # seed engine re-selected after every event, and MAXTP's
            # deficits and SRPT's remaining-time ordering shift even
            # without arrivals).
            mark_dirty(machine)

        fault_ops: EngineOps | None = None
        if faults is not None:
            # Engine-specific effects of a fault event, run through
            # this loop's own closures (the compiled loop builds its
            # twin from *its* closures — the runtime itself is shared).
            def _fault_sync(mid: int, at: float) -> None:
                machines[mid].sync(at, warmup=warmup_time)

            def _fault_dirty(mid: int) -> None:
                mark_dirty(machines[mid])

            def _fault_clear(mid: int) -> None:
                queue = machines[mid].jobs
                del queue[:]
                if queue.by_code is not None:
                    queue.by_code = {}

            def _fault_speed(mid: int) -> None:
                # The interpreted reschedule re-reads the memo entry
                # every time, so there is no cached scaled rate array
                # to invalidate here.
                pass

            fault_ops = EngineOps(
                _fault_sync, _fault_dirty, _fault_clear, _fault_speed
            )

            def fault_route(job: Job) -> int:
                """Dispatch among UP (and, as fallback, DEGRADED)
                machines with room — the fault-aware twin of route()."""
                eligible = faults.dispatch_eligible()
                target = dispatcher.route(job, machines, eligible, clock)
                if (
                    not 0 <= target < len(machines)
                    or not has_room(machines[target])
                    or not faults.routable(target)
                ):
                    raise SimulationError(
                        f"{dispatcher.name} routed to invalid machine "
                        f"{target}"
                    )
                return target

        stalled = 0
        for _ in range(max_events):
            # Fault-mode retries whose backoff elapsed re-enter ahead
            # of new arrivals at the same instant, through the same
            # dispatch layer (skipping DOWN/DRAINING machines).
            if faults is not None:
                while True:
                    retry_job = faults.due_retry(clock)
                    if retry_job is None or not faults.any_dispatchable():
                        break
                    target = fault_route(retry_job)
                    faults.pop_retry()
                    machine = machines[target]
                    machine.sync(clock, warmup=warmup_time)
                    machine.admit(retry_job)
                    in_system += 1
                    if not has_room(machine):
                        full_machines += 1
                    mark_dirty(machine)
            # Admit every arrival due now (handles batched time-zero
            # jobs).  The target machine catches up to the clock before
            # its queue changes, so its pending interval is observed
            # with the pre-arrival job count.
            while (
                pending is not None
                and pending.arrival_time <= clock + _EPSILON
            ):
                if (
                    routed is not None
                    and has_room(machines[routed])
                    and (faults is None or faults.routable(routed))
                ):
                    target = routed
                elif faults is not None:
                    if faults.any_dispatchable():
                        target = fault_route(pending)
                    elif faults.should_shed(pending, clock):
                        # Admission-control valve: no machine can take
                        # the job and it has waited out its shed
                        # deadline — drop it and move on.
                        faults.record_shed(pending)
                        routed = None
                        pending = next(stream, None)
                        continue
                    else:
                        break
                elif full_machines < len(machines):
                    target = route(pending)
                else:
                    break
                routed = None
                if pending.arrival_time < last_arrival - _EPSILON:
                    raise SimulationError("arrivals out of order")
                last_arrival = pending.arrival_time
                machine = machines[target]
                machine.sync(clock, warmup=warmup_time)
                machine.admit(pending)
                in_system += 1
                if not has_room(machine):
                    full_machines += 1
                mark_dirty(machine)
                pending = next(stream, None)

            if stop_when_fewer_than is not None and pending is None:
                in_flight = in_system + (
                    faults.retry_pending() if faults is not None else 0
                )
                if in_flight < stop_when_fewer_than:
                    break
            if (
                in_system == 0
                and pending is None
                and (faults is None or faults.idle())
            ):
                break
            if horizon is not None and clock >= horizon:
                break

            if dirty_list:
                for machine in dirty_list:
                    machine.reschedule(memo, clock)
                    if pick_log is not None:
                        pick_log.append(
                            (
                                machine.machine_id,
                                tuple(
                                    job.job_id for job in machine.running
                                ),
                            )
                        )
                    if machine.running:
                        heapq.heappush(
                            heap,
                            (
                                machine.last_sync + machine.next_completion,
                                machine.machine_id,
                                machine.epoch,
                            ),
                        )
                dirty_list.clear()

            if len(heap) > compact_floor:
                heap = [
                    entry
                    for entry in heap
                    if machines[entry[1]].epoch == entry[2]
                    and machines[entry[1]].running
                ]
                heapq.heapify(heap)

            # Earliest completion across machines (heap top, pruning
            # stale entries), expressed relative to the clock so the
            # M=1 path compares the exact quantities the seed did.
            next_machine: Machine | None = None
            next_completion = _INF
            while heap:
                _, machine_id, epoch = heap[0]
                machine = machines[machine_id]
                if epoch != machine.epoch or not machine.running:
                    heapq.heappop(heap)
                    continue
                next_machine = machine
                next_completion = machine.next_completion + (
                    machine.last_sync - clock
                )
                break

            # A due-but-not-admitted arrival (bounded backlog at
            # capacity) must not produce zero-length steps: the next
            # admission can only happen at a completion, so ignore it
            # for time stepping.
            if faults is None:
                can_admit = pending is not None and full_machines < len(
                    machines
                )
                fault_dt = _INF
            else:
                # Fault mode swaps the full_machines gate for a state-
                # aware one (DOWN/DRAINING machines are not targets)
                # and adds the fault layer's own instants: the next
                # fault event, a retry whose backoff elapsed (only
                # while someone could accept it), or a blocked
                # arrival's shed deadline.
                eligible_exists = faults.any_dispatchable()
                can_admit = pending is not None and eligible_exists
                fault_dt = faults.next_wake(clock, eligible_exists, pending)
            next_arrival = (
                pending.arrival_time - clock if can_admit else _INF
            )
            dt = min(next_completion, next_arrival, fault_dt)
            if horizon is not None:
                dt = min(dt, horizon - clock)
            if dt == _INF:
                raise SimulationError(
                    "no progress possible: idle with no arrivals"
                )
            dt = max(dt, 0.0)
            new_clock = clock + dt

            # Shard boundary: the next event falls past the pause time,
            # so stop *between* events — the clock stays at the last
            # processed event, no machine syncs, and the tail interval
            # is observed (identically) by the next segment.  Placed
            # after the no-progress check so a stuck run raises here
            # exactly as it would unpaused.
            if pause_at is not None and new_clock > pause_at:
                return LoopState(
                    clock=clock,
                    last_arrival=last_arrival,
                    in_system=in_system,
                    full_machines=full_machines,
                    routed=routed,
                    pending=pending,
                )

            # Livelock guard: many same-instant events in a row means
            # the loop is spinning, not simulating (the class of bug a
            # swallowed residual completion causes) — fail loudly with
            # diagnostics instead of burning the max_events budget.
            if dt > 0.0:
                stalled = 0
            else:
                stalled += 1
                if stalled >= stall_events:
                    raise _stall_error(
                        clock, stalled, in_system, pending, machines,
                        faults,
                    )

            if next_machine is not None and next_completion <= dt:
                # Completion event: only its machine advances eagerly.
                # A machine already current at the clock steps by the
                # exact dt (the M=1 bit-identity path); a lazy one
                # catches up over its whole pending interval.
                next_machine.sync(
                    new_clock,
                    span=dt if next_machine.last_sync == clock else None,
                    warmup=warmup_time,
                )
                clock = new_clock
                retire(next_machine, clock)
            elif can_admit and next_arrival <= dt:
                # Arrival event: route now (once per job), advance the
                # target to the arrival instant; the admission happens
                # at the top of the next iteration, as in the seed loop.
                if faults is not None:
                    if (
                        routed is None
                        or not has_room(machines[routed])
                        or not faults.routable(routed)
                    ):
                        routed = fault_route(pending)
                elif routed is None or not has_room(machines[routed]):
                    routed = route(pending)
                target_machine = machines[routed]
                target_machine.sync(
                    new_clock,
                    span=dt if target_machine.last_sync == clock else None,
                    warmup=warmup_time,
                )
                clock = new_clock
                retire(target_machine, clock)
            elif faults is not None and fault_dt <= dt:
                # Fault event: the runtime applies (at most) one due
                # event — crash, repair, drain, degrade edge, outage
                # fan-out — through this loop's own ops.  Retry/shed
                # instants need no event here: the next iteration's
                # admission phase handles them at the advanced clock.
                clock = new_clock
                removed = faults.on_wake(clock, fault_ops)
                if removed:
                    in_system -= removed
                    if keep_in_system is not None:
                        full_machines = sum(
                            1
                            for m in machines
                            if len(m.jobs) >= keep_in_system
                        )
            else:
                # Horizon clamp: one final step for every machine (the
                # loop exits at the top of the next iteration).
                for machine in machines:
                    machine.sync(
                        new_clock,
                        span=dt if machine.last_sync == clock else None,
                        warmup=warmup_time,
                    )
                clock = new_clock
                for machine in machines:
                    retire(machine, clock)
        else:
            raise SimulationError(
                f"simulation exceeded {max_events} events without "
                "terminating"
            )

        # Flush: lazy machines observe their tail interval (idle
        # machines' empty time included) up to the final clock.
        for machine in machines:
            machine.sync(clock, warmup=warmup_time)
        return None


class ClusterRunHandle:
    """One pausable run of a :class:`Cluster` (see :meth:`Cluster.start`).

    Owns the run's memo, machines, stream and scheduler/dispatcher
    bindings, and advances the run in segments.  Each :meth:`advance`
    stops *between* events, so any sequence of segments — including
    segments executed in a different process after a checkpoint
    restore — performs the exact operation sequence of one
    uninterrupted :meth:`Cluster.run`.  Sharded drivers swap per-shard
    metric windows out with :meth:`take_window`; the exact-merge
    algebra of :class:`~repro.queueing.system.SystemMetrics` makes the
    reduced windows bit-identical to the monolithic run's metrics.
    """

    def __init__(
        self,
        cluster: Cluster,
        arrivals: Iterable[Job],
        *,
        warmup_time: float = 0.0,
        horizon: float | None = None,
        stop_when_fewer_than: int | None = None,
        keep_in_system: int | None = None,
        max_events: int = 5_000_000,
        fast_path: bool = True,
        engine: str | None = None,
        backend: str | None = None,
        engine_options: dict[str, bool] | None = None,
        pick_log: list | None = None,
        rate_source: str = "oracle",
        estimation: EstimationConfig | None = None,
        faults: FaultConfig | None = None,
        stall_events: int = DEFAULT_STALL_EVENTS,
    ) -> None:
        if engine is None:
            engine = "fast" if fast_path else "legacy"
        if engine not in ("legacy", "fast", "compiled"):
            raise SimulationError(
                f"unknown engine {engine!r}; choose legacy, fast, "
                "or compiled"
            )
        if rate_source not in ("oracle", "estimated"):
            raise SimulationError(
                f"unknown rate_source {rate_source!r}; choose oracle "
                "or estimated"
            )
        if faults is not None and not isinstance(faults, FaultConfig):
            raise SimulationError(
                "faults must be a FaultConfig (or None), got "
                f"{type(faults).__name__}"
            )
        self.cluster = cluster
        self.engine = engine
        self.rate_source = rate_source
        fast = engine != "legacy"
        self.memo = RunRateMemo(cluster.rates, compiled=fast)
        #: Estimated-rate state: the estimator (fed by every machine's
        #: sync) and the policy-side memo over its published estimates.
        #: Both ``None`` on oracle runs.  Stepping always uses
        #: ``self.memo`` (true rates) — only decisions see estimates.
        self.estimator: ThroughputEstimator | None = None
        self.policy_memo: RunRateMemo | None = None
        if rate_source == "estimated":
            foreign = sorted(
                {
                    s.name
                    for s in cluster.schedulers
                    if s.rates is not cluster.rates
                }
            )
            if foreign:
                raise EstimationError(
                    "rate_source='estimated' needs every scheduler "
                    "probing the cluster's own rate source so it can "
                    f"be rebound to the estimates; {foreign} probe a "
                    "different source and would silently keep reading "
                    "oracle rates"
                )
            if cluster.dispatcher.uses_rates and not callable(
                getattr(cluster.dispatcher, "rebuild", None)
            ):
                raise EstimationError(
                    f"dispatcher {cluster.dispatcher.name!r} consumes "
                    "rates but has no rebuild() hook: its oracle-built "
                    "tables would never refresh from observations.  "
                    "Implement rebuild(rates) or run with "
                    "rate_source='oracle'"
                )
            self.estimator = ThroughputEstimator(self.memo, estimation)
            self.policy_memo = RunRateMemo(
                self.estimator, compiled=fast, codec=self.memo.codec
            )
        self.machines = [
            Machine(machine_id=i, scheduler=s)
            for i, s in enumerate(cluster.schedulers)
        ]
        if fast:
            for machine in self.machines:
                machine.jobs.enable_index(self.memo.codec)
        #: Raw-pull counter around the arrival stream; its ``pulled``
        #: count is what checkpoints persist to fast-forward a rebuilt
        #: stream on restore.
        self.counter = _CountingStream(iter(arrivals))
        self.stream = (
            _encoded_stream(self.counter, self.memo.codec)
            if fast
            else _uncoded_stream(self.counter)
        )
        self.warmup_time = warmup_time
        self.horizon = horizon
        self.stop_when_fewer_than = stop_when_fewer_than
        self.keep_in_system = keep_in_system
        self.max_events = max_events
        self.pick_log = pick_log
        #: Loop state while paused between segments; ``None`` before
        #: the first :meth:`advance` and after completion.
        self.state: LoopState | None = None
        self.finished = False
        self._closed = False
        #: Compiled-engine per-machine count-vector states, kept across
        #: segments (their queue-order flags must survive a pause).
        self._cstates: list | None = None
        self._engine_options = engine_options or {}
        self.backend: str | None = None
        self.engine_stats = None
        if engine == "compiled":
            from repro.queueing.compiled import (
                BACKENDS,
                CompiledEngineStats,
                default_backend,
            )

            resolved = backend or default_backend()
            if resolved not in BACKENDS:
                raise SimulationError(
                    f"unknown backend {resolved!r}; choose "
                    f"{' or '.join(BACKENDS)}"
                )
            self.backend = resolved
            self.engine_stats = CompiledEngineStats(backend=resolved)
        # Hoist the per-run memo into every scheduler that probes the
        # run's own rate source, so candidate evaluation and stepping
        # share one memo (restored on close — schedulers outlive runs).
        # The rebind is identity-conditioned on purpose: a scheduler
        # deliberately built on a *different* rate source (e.g. a
        # counterfactual table) keeps probing its own source.
        self._rebound = [
            s for s in cluster.schedulers if s.rates is cluster.rates
        ]
        probe_source = (
            self.policy_memo if self.policy_memo is not None else self.memo
        )
        for scheduler in self._rebound:
            scheduler.bind_rates(probe_source)
        # Dispatchers with per-type state (the affinity policy) flatten
        # it onto the run's type ids; unbound on close so a later run —
        # whose codec may assign different ids — starts clean.
        self._bind_codec = getattr(cluster.dispatcher, "bind_codec", None)
        if self._bind_codec is not None and fast:
            self._bind_codec(self.memo.codec)
        # Estimated mode: wire the observation feed into every machine,
        # start every offline-solved policy from the estimator's priors
        # (estimated runs must not inherit oracle-built tables), and
        # register the re-optimization round fired at each publish.
        self._dispatcher_rebuild = None
        if self.estimator is not None:
            for machine in self.machines:
                machine.rate_observer = self.estimator.observe_interval
            policy_memo = self.policy_memo
            rebound = self._rebound
            rebuild = (
                cluster.dispatcher.rebuild
                if cluster.dispatcher.uses_rates
                else None
            )
            self._dispatcher_rebuild = rebuild
            for scheduler in rebound:
                scheduler.reoptimize(policy_memo)
            if rebuild is not None:
                rebuild(policy_memo)

            def _reoptimize(_estimator: ThroughputEstimator) -> None:
                # New epoch published: every memoized estimate is
                # stale.  Flush the policy memo (codec survives, so
                # queue indexes stay valid) and re-solve the offline
                # policies against the fresh estimates.
                policy_memo.clear()
                for scheduler in rebound:
                    scheduler.reoptimize(policy_memo)
                if rebuild is not None:
                    rebuild(policy_memo)

            self.estimator.add_listener(_reoptimize)
        #: Fault layer: one runtime per run, shared verbatim by every
        #: engine (the loops call the same methods at the same points —
        #: that is what makes faulty runs bit-identical across engines).
        self.fault_config = faults
        self.stall_events = stall_events
        self.fault_rt: FaultRuntime | None = None
        if faults is not None:
            self.fault_rt = FaultRuntime(
                faults, self.machines, keep_in_system=keep_in_system
            )
            # Topology churn re-plans through the PR-8 hooks: on any
            # membership change (machine down or repaired) the offline
            # policies re-solve over the run's probe source.  With
            # oracle rates the re-solve is value-neutral (same table,
            # same solution) but it exercises the same code path the
            # estimated mode uses, identically in every engine.
            rebound = self._rebound
            rebuild = (
                getattr(cluster.dispatcher, "rebuild", None)
                if cluster.dispatcher.uses_rates
                else None
            )

            def _membership_changed() -> None:
                for scheduler in rebound:
                    scheduler.reoptimize(probe_source)
                if rebuild is not None:
                    rebuild(probe_source)

            self.fault_rt.membership_hook = _membership_changed

    @property
    def jobs_pulled(self) -> int:
        """Jobs pulled from the arrival stream so far (incl. pending)."""
        return self.counter.pulled

    def advance(self, pause_at: float | None = None) -> bool:
        """Process events up to ``pause_at`` (or completion).

        Returns ``True`` once the run has completed.  On completion the
        handle closes itself (bindings restored, run stats recorded on
        the cluster), exactly as the single-shot :meth:`Cluster.run`
        does in its ``finally`` block — as it also does if a segment
        raises.
        """
        if self.finished:
            return True
        if self._closed:
            raise SimulationError("cluster run handle already closed")
        try:
            if self.engine == "compiled":
                from repro.queueing.compiled import (
                    _prepare_state,
                    run_compiled,
                )

                if self._cstates is None:
                    self._cstates = _prepare_state(self.machines, self.memo)
                state = run_compiled(
                    self.memo,
                    self.machines,
                    self.stream,
                    warmup_time=self.warmup_time,
                    horizon=self.horizon,
                    stop_when_fewer_than=self.stop_when_fewer_than,
                    keep_in_system=self.keep_in_system,
                    max_events=self.max_events,
                    stats=self.engine_stats,
                    dispatcher=self.cluster.dispatcher,
                    fuse=self._engine_options.get("fuse", True),
                    batch=self._engine_options.get("batch", True),
                    pick_log=self.pick_log,
                    pause_at=pause_at,
                    resume=self.state,
                    states=self._cstates,
                    faults=self.fault_rt,
                    stall_events=self.stall_events,
                )
            else:
                state = self.cluster._event_loop(
                    self.memo,
                    self.machines,
                    self.stream,
                    warmup_time=self.warmup_time,
                    horizon=self.horizon,
                    stop_when_fewer_than=self.stop_when_fewer_than,
                    keep_in_system=self.keep_in_system,
                    max_events=self.max_events,
                    pick_log=self.pick_log,
                    pause_at=pause_at,
                    resume=self.state,
                    faults=self.fault_rt,
                    stall_events=self.stall_events,
                )
        except BaseException:
            self.close()
            raise
        self.state = state
        if state is None:
            self.finished = True
            self.close()
        return self.finished

    def take_window(self) -> ClusterMetrics:
        """Detach the metrics window accumulated since the last take.

        Every machine gets a fresh accumulator for the next window;
        :meth:`ClusterMetrics.reduce` over all windows reproduces the
        monolithic run's metrics bit-identically.
        """
        window = ClusterMetrics(
            per_machine=tuple(m.metrics for m in self.machines)
        )
        for machine in self.machines:
            machine.metrics = SystemMetrics()
        return window

    def result(self) -> ClusterMetrics:
        """Metrics accumulated since the last window take (or start)."""
        return ClusterMetrics(
            per_machine=tuple(m.metrics for m in self.machines)
        )

    def close(self) -> None:
        """Restore bindings and record run stats (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for scheduler in self._rebound:
            scheduler.bind_rates(self.cluster.rates)
        if self._bind_codec is not None:
            self._bind_codec(None)
        if self.estimator is not None:
            # Restore the oracle-built policy state (schedulers and
            # dispatchers outlive runs): the re-solves are
            # deterministic in the true rates, so this reproduces the
            # constructed tables bit for bit.
            for machine in self.machines:
                machine.rate_observer = None
            for scheduler in self._rebound:
                scheduler.reoptimize(self.cluster.rates)
            if self._dispatcher_rebuild is not None:
                self._dispatcher_rebuild(self.cluster.rates)
        elif self.fault_rt is not None:
            # Oracle + faults: the membership hook re-solved policies
            # mid-run over the run memo; restore the tables built on
            # the cluster's own rate source (deterministic re-solve,
            # reproduces them bit for bit).
            for scheduler in self._rebound:
                scheduler.reoptimize(self.cluster.rates)
            rebuild = (
                getattr(self.cluster.dispatcher, "rebuild", None)
                if self.cluster.dispatcher.uses_rates
                else None
            )
            if rebuild is not None:
                rebuild(self.cluster.rates)
        # Recorded even when a segment raises: a diagnostic path
        # catching the error should see this run's counters, not the
        # previous run's.
        self.cluster.last_memo_stats = self.memo.stats_dict()
        self.cluster.last_engine_stats = (
            self.engine_stats.as_dict()
            if self.engine_stats is not None
            else None
        )
        self.cluster.last_estimator_stats = (
            self.estimator.stats_dict()
            if self.estimator is not None
            else None
        )
        if self.fault_rt is not None:
            now = max(m.last_sync for m in self.machines)
            self.cluster.last_fault_stats = self.fault_rt.stats_dict(now)
        else:
            self.cluster.last_fault_stats = None


def run_cluster(
    rates: RateSource,
    schedulers: Sequence[Scheduler],
    dispatcher: Dispatcher,
    arrivals: Iterable[Job],
    *,
    warmup_time: float = 0.0,
    horizon: float | None = None,
    stop_when_fewer_than: int | None = None,
    keep_in_system: int | None = None,
    max_events: int = 5_000_000,
    fast_path: bool = True,
    engine: str | None = None,
    backend: str | None = None,
    engine_options: dict[str, bool] | None = None,
    pick_log: list | None = None,
    rate_source: str = "oracle",
    estimation: EstimationConfig | None = None,
    faults: FaultConfig | None = None,
    stall_events: int = DEFAULT_STALL_EVENTS,
) -> ClusterMetrics:
    """Build a :class:`Cluster` and run it once (convenience wrapper)."""
    cluster = Cluster(rates, schedulers, dispatcher)
    return cluster.run(
        arrivals,
        warmup_time=warmup_time,
        horizon=horizon,
        stop_when_fewer_than=stop_when_fewer_than,
        keep_in_system=keep_in_system,
        max_events=max_events,
        fast_path=fast_path,
        engine=engine,
        backend=backend,
        engine_options=engine_options,
        pick_log=pick_log,
        rate_source=rate_source,
        estimation=estimation,
        faults=faults,
        stall_events=stall_events,
    )
